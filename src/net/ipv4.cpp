#include "net/ipv4.hpp"

#include <charconv>

namespace eyeball::net {
namespace {

/// Parses a decimal integer in [0, limit]; advances `text` past it.
std::optional<std::uint32_t> parse_number(std::string_view& text, std::uint32_t limit) {
  std::uint32_t out = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || ptr == begin || out > limit) return std::nullopt;
  // Reject leading zeros like "01" (ambiguous octal notation).
  if (ptr - begin > 1 && *begin == '0') return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return out;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    const auto octet = parse_number(text, 255);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return Ipv4Address{value};
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  std::string_view length_text = text.substr(slash + 1);
  const auto length = parse_number(length_text, 32);
  if (!length || !length_text.empty()) return std::nullopt;
  return Ipv4Prefix{*address, static_cast<int>(*length)};
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

std::string to_string(Asn asn) { return "AS" + std::to_string(value_of(asn)); }

}  // namespace eyeball::net
