// IPv4 addresses and CIDR prefixes.
//
// The pipeline's "grouping users by AS" step is a longest-prefix match of
// every sampled IP against a BGP RIB; these are the value types that step
// operates on.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace eyeball::net {

/// An IPv4 address stored as a host-order 32-bit integer.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int index) const noexcept {
    EYEBALL_DCHECK(index >= 0 && index < 4, "octet index outside [0, 3] shifts UB");
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - index)));
  }
  /// Bit `i` counted from the most significant (bit 0 = 128.0.0.0).
  [[nodiscard]] constexpr bool bit(int i) const noexcept {
    EYEBALL_DCHECK(i >= 0 && i < 32, "bit index outside [0, 31] shifts UB");
    return ((value_ >> (31 - i)) & 1U) != 0;
  }

  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix (network address + mask length).  The network address is
/// always stored canonically (host bits zeroed).
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// Canonicalizes: host bits of `address` beyond `length` are cleared.
  constexpr Ipv4Prefix(Ipv4Address address, int length) noexcept
      : address_(Ipv4Address{length == 0 ? 0 : (address.value() & mask_for(length))}),
        length_(length) {
    EYEBALL_DCHECK(length >= 0 && length <= 32, "prefix length outside [0, 32]");
  }

  [[nodiscard]] constexpr Ipv4Address address() const noexcept { return address_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }
  [[nodiscard]] constexpr std::uint32_t netmask() const noexcept {
    return mask_for(length_);
  }
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }
  [[nodiscard]] constexpr Ipv4Address first() const noexcept { return address_; }
  [[nodiscard]] constexpr Ipv4Address last() const noexcept {
    return Ipv4Address{address_.value() | ~netmask()};
  }

  [[nodiscard]] constexpr bool contains(Ipv4Address ip) const noexcept {
    return (ip.value() & netmask()) == address_.value();
  }
  [[nodiscard]] constexpr bool contains(const Ipv4Prefix& other) const noexcept {
    return other.length_ >= length_ && contains(other.address_);
  }

  /// The two halves of this prefix (length + 1).  Valid for length < 32.
  [[nodiscard]] constexpr Ipv4Prefix lower_half() const noexcept {
    EYEBALL_DCHECK(length_ < 32, "a /32 has no halves");
    return {address_, length_ + 1};
  }
  [[nodiscard]] constexpr Ipv4Prefix upper_half() const noexcept {
    EYEBALL_DCHECK(length_ < 32, "a /32 has no halves");
    return {Ipv4Address{address_.value() | (1U << (31 - length_))}, length_ + 1};
  }

  /// Parses "a.b.c.d/len"; rejects malformed text and non-canonical hosts
  /// bits are cleared silently (mirrors routing-table semantics).
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  [[nodiscard]] static constexpr std::uint32_t mask_for(int length) noexcept {
    return length == 0 ? 0U : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Address address_{};
  int length_ = 0;
};

/// Autonomous System number (16/32-bit).
enum class Asn : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t value_of(Asn asn) noexcept {
  return static_cast<std::uint32_t>(asn);
}
[[nodiscard]] std::string to_string(Asn asn);

}  // namespace eyeball::net
