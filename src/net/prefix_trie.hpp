// Binary (Patricia-style, path-per-bit) trie keyed by IPv4 prefixes with
// longest-prefix-match lookup — the same data structure a router's FIB uses
// and the engine behind the pipeline's IP -> origin-AS grouping step.
//
// Header-only template.  Nodes are stored in a contiguous arena (indices,
// not pointers) so the trie is cache-friendly and trivially movable.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"
#include "util/check.hpp"

namespace eyeball::net {

template <typename Value>
class PrefixTrie {
 public:
  PrefixTrie() { nodes_.push_back(Node{}); }

  /// Inserts or overwrites the value at `prefix`.  Returns true if a new
  /// entry was created, false if an existing one was replaced.
  bool insert(const Ipv4Prefix& prefix, Value value) {
    // Ipv4Prefix's constructor canonicalizes, so a non-canonical prefix here
    // means someone bypassed it (e.g. a future binary-deserialization path);
    // the trie walk below silently files the entry under the wrong subtree.
    EYEBALL_DCHECK((prefix.address().value() & ~prefix.netmask()) == 0,
                   "trie keys must be canonical (host bits zeroed)");
    std::uint32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const int branch = prefix.address().bit(depth) ? 1 : 0;
      std::uint32_t& child = nodes_[node].children[branch];
      if (child == kNull) {
        child = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{});
      }
      node = nodes_[node].children[branch];
    }
    const bool fresh = !nodes_[node].value.has_value();
    nodes_[node].value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Value of the longest prefix containing `ip`, or nullopt.
  [[nodiscard]] std::optional<Value> longest_match(Ipv4Address ip) const {
    const Value* best = nullptr;
    std::uint32_t node = 0;
    for (int depth = 0;; ++depth) {
      if (nodes_[node].value.has_value()) best = &*nodes_[node].value;
      if (depth == 32) break;
      const std::uint32_t child = nodes_[node].children[ip.bit(depth) ? 1 : 0];
      if (child == kNull) break;
      node = child;
    }
    if (best == nullptr) return std::nullopt;
    return *best;
  }

  /// Longest match returned together with its prefix (for diagnostics).
  /// The reported prefix is canonical — host bits of the lookup address
  /// beyond the match depth are zeroed, so it compares equal to the prefix
  /// that was inserted.
  [[nodiscard]] std::optional<std::pair<Ipv4Prefix, Value>> longest_match_entry(
      Ipv4Address ip) const {
    std::optional<std::pair<Ipv4Prefix, Value>> best;
    std::uint32_t node = 0;
    for (int depth = 0;; ++depth) {
      if (nodes_[node].value.has_value()) {
        // The prefix is rebuilt from the lookup address; Ipv4Prefix's
        // constructor must clear the host bits beyond `depth` or they would
        // leak into callers comparing against the RIB.  The regression test
        // pins that canonicalization.
        best = {Ipv4Prefix{ip, depth}, *nodes_[node].value};
      }
      if (depth == 32) break;
      const std::uint32_t child = nodes_[node].children[ip.bit(depth) ? 1 : 0];
      if (child == kNull) break;
      node = child;
    }
    return best;
  }

  /// Exact-prefix lookup (no LPM walk past the prefix end).
  [[nodiscard]] std::optional<Value> exact_match(const Ipv4Prefix& prefix) const {
    std::uint32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const std::uint32_t child = nodes_[node].children[prefix.address().bit(depth) ? 1 : 0];
      if (child == kNull) return std::nullopt;
      node = child;
    }
    return nodes_[node].value;
  }

  /// Removes the entry at `prefix`.  Returns true if it existed.  Nodes are
  /// not reclaimed (tables in this library are build-once).
  bool erase(const Ipv4Prefix& prefix) {
    std::uint32_t node = 0;
    for (int depth = 0; depth < prefix.length(); ++depth) {
      const std::uint32_t child = nodes_[node].children[prefix.address().bit(depth) ? 1 : 0];
      if (child == kNull) return false;
      node = child;
    }
    if (!nodes_[node].value.has_value()) return false;
    nodes_[node].value.reset();
    --size_;
    return true;
  }

  /// Visits every (prefix, value) entry in lexicographic prefix order.
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    walk(0, Ipv4Prefix{}, visit);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

 private:
  static constexpr std::uint32_t kNull = 0xffffffffU;

  struct Node {
    std::uint32_t children[2] = {kNull, kNull};
    std::optional<Value> value;
  };

  template <typename Visitor>
  void walk(std::uint32_t node, Ipv4Prefix prefix, Visitor& visit) const {
    EYEBALL_DCHECK(node < nodes_.size(), "trie arena index out of range");
    if (nodes_[node].value.has_value()) visit(prefix, *nodes_[node].value);
    if (prefix.length() == 32) return;
    if (nodes_[node].children[0] != kNull) {
      walk(nodes_[node].children[0], prefix.lower_half(), visit);
    }
    if (nodes_[node].children[1] != kNull) {
      walk(nodes_[node].children[1], prefix.upper_half(), visit);
    }
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace eyeball::net
