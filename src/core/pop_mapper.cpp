#include "core/pop_mapper.hpp"

#include <algorithm>
#include <map>

#include "util/format.hpp"

namespace eyeball::core {

bool PopFootprint::has_city(gazetteer::CityId city) const noexcept {
  return std::any_of(pops.begin(), pops.end(),
                     [city](const PopEntry& e) { return e.city == city; });
}

std::vector<geo::GeoPoint> PopFootprint::pop_locations(
    const gazetteer::Gazetteer& gaz) const {
  std::vector<geo::GeoPoint> out;
  out.reserve(pops.size());
  for (const auto& pop : pops) out.push_back(gaz.city(pop.city).location);
  return out;
}

PopCityMapper::PopCityMapper(const gazetteer::Gazetteer& gazetteer) : gaz_(gazetteer) {}

PopFootprint PopCityMapper::map(const AsFootprint& footprint) const {
  return map(footprint, footprint.bandwidth_km);
}

PopFootprint PopCityMapper::map(const AsFootprint& footprint, double radius_km) const {
  PopFootprint out;
  // Several peaks can land near one city (suburb clusters); merge them,
  // accumulating the user-mass score and keeping the strongest peak.
  std::map<gazetteer::CityId, PopEntry> merged;
  for (const auto& peak : footprint.peaks) {
    const auto city = gaz_.largest_city_within(peak.location, radius_km);
    if (!city) {
      ++out.unmapped_peaks;
      continue;
    }
    auto& entry = merged[*city];
    entry.city = *city;
    entry.score += peak.score;
    if (peak.density > entry.peak_density) {
      entry.peak_density = peak.density;
      entry.peak_location = peak.location;
    }
  }
  out.pops.reserve(merged.size());
  for (auto& [city, entry] : merged) out.pops.push_back(entry);
  // Total order: score descending, exact ties by CityId ascending.  Two
  // cities can accumulate identical scores (e.g. one equal-score peak
  // each); a score-only comparator would leave their relative order to the
  // sort implementation, breaking cross-stdlib determinism.
  std::sort(out.pops.begin(), out.pops.end(), [](const PopEntry& a, const PopEntry& b) {
    return a.score != b.score ? a.score > b.score : a.city < b.city;
  });
  return out;
}

std::string PopCityMapper::describe(const PopFootprint& footprint) const {
  std::string out = "[";
  for (std::size_t i = 0; i < footprint.pops.size(); ++i) {
    if (i > 0) out += ", ";
    const auto& entry = footprint.pops[i];
    out += std::string{gaz_.city(entry.city).name};
    std::string score = util::fixed(entry.score, 3);
    if (score.starts_with("0.")) score.erase(0, 1);  // ".130" style, as in the paper
    out += " (" + score + ")";
  }
  out += "]";
  return out;
}

}  // namespace eyeball::core
