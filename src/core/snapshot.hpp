// On-disk snapshots of StreamingDatasetBuilder state — the persistence
// substrate for longitudinal runs (the paper's six monthly windows span
// half a year; the conditioning state must survive process restarts).
//
// Format EYBSNAP1 (all integers little-endian, doubles as IEEE-754 bits):
//
//   header   "EYBSNAP1"  8 B   magic
//            u32              format version (currently 1)
//            u64              generation (monotonic per snapshot directory)
//            u64              config fingerprint (result-affecting fields)
//            u32              section count
//   section  u32              section id          |
//            u64              payload size         |  repeated
//            u32              payload CRC32C       |  section-count times
//            payload bytes                         |
//   footer   u32              CRC32C of everything above
//            "EYBSNEND"  8 B   tail magic
//
// Decode validates outside-in: magics, then the whole-file CRC, then the
// version, then the config fingerprint, then each section (bounds, CRC,
// strict id/order checks, semantic invariants), parsing into temporaries
// and committing to the builder only when every check has passed — a
// failed decode never leaves partially-restored state.  The ordering is
// deliberate: a bit-flipped version byte fails the file CRC and reports
// kCorruption, while a genuinely newer format (valid CRC, higher version)
// reports kVersionMismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.hpp"

namespace eyeball::core {

struct DatasetConfig;
class StreamingDatasetBuilder;

/// What restore_snapshot recovered: which generation loaded, and how many
/// newer-but-unloadable generations were skipped on the way (0 on the happy
/// path; >0 means a torn/corrupt newest snapshot was detected and survived).
/// [[nodiscard]] like Status: the skip count is the only signal that a
/// corrupt newest generation was silently survived, so an API returning one
/// by value must not have it dropped on the floor.
struct [[nodiscard]] SnapshotRestoreInfo {
  std::uint64_t generation = 0;
  std::size_t generations_skipped = 0;
};

/// Encoder/decoder for the EYBSNAP1 format.  Stateless; a friend of
/// StreamingDatasetBuilder so the builder's persisted fields stay private.
///
/// Ownership contract: the caller must hold the builder's single-owner
/// role (`serial_`) for the duration of encode/decode — true for the
/// save/restore paths and for tests that own a builder outright.  The
/// definitions opt out of the thread-safety analysis for exactly that
/// reason (a friend cannot name another class's capability in its
/// signature); see snapshot.cpp.
class SnapshotCodec {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Serializes the builder's complete logical state (buckets, dedup keys,
  /// stats incl. windows, touched set, config fingerprint).  Canonical:
  /// equal builder states encode to identical bytes (unordered sets are
  /// sorted on the way out), so snapshot bytes double as a state-identity
  /// check in tests.  Memo contents are deliberately not persisted — they
  /// are a cache, rebuilt warm by subsequent ingests.
  [[nodiscard]] static std::vector<std::byte> encode(
      const StreamingDatasetBuilder& builder, std::uint64_t generation);

  /// Validates `bytes` and, only if every check passes, replaces the
  /// builder's state with the decoded one (memos reset cold, pending
  /// scratch cleared).  On any error the builder is untouched.  Typed
  /// failures: kCorruption (bad magic/CRC/bounds/semantic invariant),
  /// kVersionMismatch (well-formed, newer format), kConfigMismatch (well-
  /// formed, but written under a different result-affecting configuration —
  /// loading it would silently change results, so we refuse).
  [[nodiscard]] static util::Status decode(std::span<const std::byte> bytes,
                                           StreamingDatasetBuilder& builder,
                                           std::uint64_t* generation = nullptr);

  /// Fingerprint over the RESULT-AFFECTING config fields only
  /// (max_geo_error_km, min_peers_per_as, max_p90_geo_error_km).  Thread
  /// count and memo size are execution knobs with byte-identical results,
  /// so snapshots deliberately transfer across them.
  [[nodiscard]] static std::uint64_t config_fingerprint(const DatasetConfig& config) noexcept;
};

}  // namespace eyeball::core
