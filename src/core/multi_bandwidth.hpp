// Multi-bandwidth PoP refinement — the paper's §5 future-work idea,
// implemented: "use different kernel bandwidth and determine these PoPs
// based on the relative distance and user density of associated peaks with
// different bandwidths".
//
// A coarse bandwidth yields reliable but merged PoPs (nearby PoPs collapse
// into one peak); a fine bandwidth separates them but admits noise.  The
// refiner keeps the coarse peak set as the trusted skeleton and splits a
// coarse PoP only when the fine pass finds two or more sufficiently strong
// peaks, mapping to distinct cities, inside the coarse kernel's radius.
#pragma once

#include "core/footprint.hpp"
#include "core/pop_mapper.hpp"

namespace eyeball::core {

struct MultiBandwidthConfig {
  double coarse_bandwidth_km = 40.0;
  double fine_bandwidth_km = 15.0;
  /// A fine peak participates in a split only if its score is at least
  /// this fraction of the coarse peak's score.
  double min_split_share = 0.2;
  /// When > 1, the independent coarse and fine KDE passes run concurrently
  /// on util::ThreadPool::shared().  The refinement itself is unchanged, so
  /// results are identical across settings.
  std::size_t threads = 1;
};

struct RefinedPops {
  PopFootprint pops;
  /// Number of coarse PoPs that were split into multiple fine PoPs.
  std::size_t splits = 0;
};

class MultiBandwidthRefiner {
 public:
  MultiBandwidthRefiner(const gazetteer::Gazetteer& gazetteer,
                        const GeoFootprintEstimator& estimator,
                        MultiBandwidthConfig config = {});

  [[nodiscard]] RefinedPops refine(const AsPeerSet& peers) const;

 private:
  const gazetteer::Gazetteer& gaz_;
  const GeoFootprintEstimator& estimator_;
  MultiBandwidthConfig config_;
};

}  // namespace eyeball::core
