// End-to-end facade: the full method of the paper in one object.
//
//   EyeballPipeline pipeline{gazetteer, primary_db, secondary_db, mapper};
//   auto dataset = pipeline.build_dataset(crawl.samples);
//   for (const auto& as : dataset.ases()) {
//     auto analysis = pipeline.analyze(as);
//     // analysis.classification, analysis.footprint, analysis.pops
//   }
#pragma once

#include <optional>
#include <vector>

#include "core/classifier.hpp"
#include "core/dataset.hpp"
#include "core/footprint.hpp"
#include "core/pop_mapper.hpp"

namespace eyeball::core {

struct PipelineConfig {
  DatasetConfig dataset{};
  FootprintConfig footprint{};
  double classify_threshold = 0.95;
};

/// Everything the method infers about one eyeball AS.
struct AsAnalysis {
  net::Asn asn{};
  Classification classification;
  AsFootprint footprint;
  PopFootprint pops;
};

class EyeballPipeline {
 public:
  EyeballPipeline(const gazetteer::Gazetteer& gazetteer,
                  const geodb::GeoDatabase& primary, const geodb::GeoDatabase& secondary,
                  const bgp::IpToAsMapper& mapper, PipelineConfig config = {});

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const gazetteer::Gazetteer& gazetteer() const noexcept { return gaz_; }

  [[nodiscard]] TargetDataset build_dataset(std::span<const p2p::PeerSample> samples) const;

  /// Classification + footprint + PoP footprint at the configured bandwidth.
  [[nodiscard]] AsAnalysis analyze(const AsPeerSet& peers) const;
  /// Same with an explicit bandwidth (sweeps).
  [[nodiscard]] AsAnalysis analyze(const AsPeerSet& peers, double bandwidth_km) const;

  /// PoP footprint only (skips classification; cheaper inner loop for the
  /// validation benches).
  [[nodiscard]] PopFootprint pop_footprint(const AsPeerSet& peers,
                                           double bandwidth_km) const;

 private:
  const gazetteer::Gazetteer& gaz_;
  DatasetBuilder builder_;
  AsClassifier classifier_;
  GeoFootprintEstimator estimator_;
  PopCityMapper mapper_;
  PipelineConfig config_;
};

}  // namespace eyeball::core
