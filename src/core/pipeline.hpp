// End-to-end facade: the full method of the paper in one object.
//
//   EyeballPipeline pipeline{gazetteer, primary_db, secondary_db, mapper};
//   auto dataset = pipeline.build_dataset(crawl.samples);
//   for (const auto& as : dataset.ases()) {
//     auto analysis = pipeline.analyze(as);
//     // analysis.classification, analysis.footprint, analysis.pops
//   }
#pragma once

#include <optional>
#include <vector>

#include "core/classifier.hpp"
#include "core/dataset.hpp"
#include "core/footprint.hpp"
#include "core/pop_mapper.hpp"
#include "core/streaming_dataset.hpp"

namespace eyeball::core {

struct PipelineConfig {
  DatasetConfig dataset{};
  FootprintConfig footprint{};
  double classify_threshold = 0.95;
  /// Per-AS fan-out concurrency for analyze_all(): ASes are distributed in
  /// contiguous chunks over util::ThreadPool::shared().  1 = serial, 0 = one
  /// chunk per hardware thread.  Results are collected in AS order and are
  /// bit-identical to the serial path regardless of the setting.
  std::size_t threads = 1;
};

/// Everything the method infers about one eyeball AS.
struct AsAnalysis {
  net::Asn asn{};
  Classification classification;
  AsFootprint footprint;
  PopFootprint pops;
};

class EyeballPipeline {
 public:
  EyeballPipeline(const gazetteer::Gazetteer& gazetteer,
                  const geodb::GeoDatabase& primary, const geodb::GeoDatabase& secondary,
                  const bgp::IpToAsMapper& mapper, PipelineConfig config = {});

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const gazetteer::Gazetteer& gazetteer() const noexcept { return gaz_; }

  /// §2 conditioning, sharded at `DatasetConfig::threads` (see
  /// DatasetBuilder::build — byte-identical at any thread count).
  [[nodiscard]] TargetDataset build_dataset(std::span<const p2p::PeerSample> samples) const;
  /// Same with an explicit shard count (benchmark threads axis).
  [[nodiscard]] TargetDataset build_dataset(std::span<const p2p::PeerSample> samples,
                                            std::size_t threads) const;

  /// Streaming §2 conditioning over the pipeline's databases/mapper/config
  /// for longitudinal crawls: ingest windows as they arrive, finalize() for
  /// a snapshot byte-identical to build_dataset over the deduplicated
  /// window concatenation (see core/streaming_dataset.hpp).
  [[nodiscard]] StreamingDatasetBuilder streaming_builder() const;

  /// Incremental re-analysis after an ingest/finalize cycle: re-analyzes
  /// only the ASes named in `changed` (StreamingDatasetBuilder::
  /// touched_asns()) plus any AS absent from `previous`, and reuses the
  /// ASN-matched `previous` entry for the rest.  Entry i corresponds to
  /// dataset.ases()[i]; the result equals analyze_all(dataset.ases()) as
  /// long as `previous` came from the same pipeline configuration.
  [[nodiscard]] std::vector<AsAnalysis> refresh_analyses(
      const TargetDataset& dataset, std::span<const AsAnalysis> previous,
      std::span<const net::Asn> changed) const;

  /// Classification + footprint + PoP footprint at the configured bandwidth.
  [[nodiscard]] AsAnalysis analyze(const AsPeerSet& peers) const;
  /// Same with an explicit bandwidth (sweeps).
  [[nodiscard]] AsAnalysis analyze(const AsPeerSet& peers, double bandwidth_km) const;

  /// Analyzes every AS, fanned out over the shared thread pool at the
  /// configured `PipelineConfig::threads`.  The result vector is in input
  /// order; entry i is exactly what analyze(ases[i]) returns on one thread.
  [[nodiscard]] std::vector<AsAnalysis> analyze_all(
      std::span<const AsPeerSet> ases) const;
  /// Same with an explicit concurrency (benchmark threads axis).
  [[nodiscard]] std::vector<AsAnalysis> analyze_all(std::span<const AsPeerSet> ases,
                                                    std::size_t threads) const;

  /// PoP footprint only (skips classification; cheaper inner loop for the
  /// validation benches).
  [[nodiscard]] PopFootprint pop_footprint(const AsPeerSet& peers,
                                           double bandwidth_km) const;

 private:
  const gazetteer::Gazetteer& gaz_;
  DatasetBuilder builder_;
  AsClassifier classifier_;
  GeoFootprintEstimator estimator_;
  PopCityMapper mapper_;
  PipelineConfig config_;
};

}  // namespace eyeball::core
