#include "core/dataset.hpp"

#include <algorithm>
#include <map>

#include "util/stats.hpp"

namespace eyeball::core {

std::size_t AsPeerSet::count_for(p2p::App app) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(peers.begin(), peers.end(),
                    [app](const PeerRecord& p) { return p.app == app; }));
}

std::vector<geo::GeoPoint> AsPeerSet::locations() const {
  std::vector<geo::GeoPoint> out;
  out.reserve(peers.size());
  for (const auto& p : peers) out.push_back(p.location);
  return out;
}

std::vector<double> AsPeerSet::geo_errors() const {
  std::vector<double> out;
  out.reserve(peers.size());
  for (const auto& p : peers) out.push_back(p.geo_error_km);
  return out;
}

TargetDataset::TargetDataset(std::vector<AsPeerSet> ases, DatasetStats stats)
    : ases_(std::move(ases)), stats_(stats) {}

const AsPeerSet* TargetDataset::find(net::Asn asn) const noexcept {
  for (const auto& as : ases_) {
    if (as.asn == asn) return &as;
  }
  return nullptr;
}

DatasetBuilder::DatasetBuilder(const geodb::GeoDatabase& primary,
                               const geodb::GeoDatabase& secondary,
                               const bgp::IpToAsMapper& mapper, DatasetConfig config)
    : primary_(primary), secondary_(secondary), mapper_(mapper), config_(config) {}

TargetDataset DatasetBuilder::build(std::span<const p2p::PeerSample> samples) const {
  DatasetStats stats;
  stats.raw_samples = samples.size();

  std::map<std::uint32_t, AsPeerSet> by_as;
  for (const auto& sample : samples) {
    // Geo-map with both databases; require city-level records from both
    // (the paper drops ~2.4 M peers lacking one).
    const auto primary_record = primary_.lookup(sample.ip);
    const auto secondary_record = secondary_.lookup(sample.ip);
    if (!primary_record || !secondary_record) {
      ++stats.missing_geo;
      continue;
    }
    const double error_km =
        geo::distance_km(primary_record->location, secondary_record->location);
    if (error_km > config_.max_geo_error_km) {
      ++stats.high_error;
      continue;
    }
    const auto asn = mapper_.map(sample.ip);
    if (!asn) {
      ++stats.unmapped_as;
      continue;
    }
    auto& set = by_as[net::value_of(*asn)];
    set.asn = *asn;
    set.peers.push_back(PeerRecord{sample.ip, sample.app, primary_record->location,
                                   error_km, primary_record->city_id});
  }

  std::vector<AsPeerSet> kept;
  for (auto& [asn_value, set] : by_as) {
    if (set.peers.size() < config_.min_peers_per_as) {
      ++stats.ases_below_min_peers;
      stats.peers_in_small_ases += set.peers.size();
      continue;
    }
    const auto errors = set.geo_errors();
    if (util::percentile(errors, 90.0) > config_.max_p90_geo_error_km) {
      ++stats.ases_above_p90_error;
      continue;
    }
    stats.final_peers += set.peers.size();
    kept.push_back(std::move(set));
  }
  stats.final_ases = kept.size();
  return TargetDataset{std::move(kept), stats};
}

}  // namespace eyeball::core
