#include "core/dataset.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <ostream>
#include <utility>

#include "core/streaming_dataset.hpp"
#include "geodb/lookup_memo.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace eyeball::core {

std::size_t AsPeerSet::count_for(p2p::App app) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(peers.begin(), peers.end(),
                    [app](const PeerRecord& p) { return p.app == app; }));
}

std::vector<geo::GeoPoint> AsPeerSet::locations() const {
  std::vector<geo::GeoPoint> out;
  out.reserve(peers.size());
  for (const auto& p : peers) out.push_back(p.location);
  return out;
}

std::vector<double> AsPeerSet::geo_errors() const {
  std::vector<double> out;
  geo_errors(out);
  return out;
}

void AsPeerSet::geo_errors(std::vector<double>& out) const {
  out.clear();
  out.reserve(peers.size());
  for (const auto& p : peers) out.push_back(p.geo_error_km);
}

namespace {

template <typename Visit>
void visit_stats(const DatasetStats& stats, Visit&& visit) {
  visit("raw_samples", stats.raw_samples);
  visit("missing_geo", stats.missing_geo);
  visit("high_error", stats.high_error);
  visit("unmapped_as", stats.unmapped_as);
  visit("peers_in_small_ases", stats.peers_in_small_ases);
  visit("ases_below_min_peers", stats.ases_below_min_peers);
  visit("ases_above_p90_error", stats.ases_above_p90_error);
  visit("final_peers", stats.final_peers);
  visit("final_ases", stats.final_ases);
}

}  // namespace

std::string to_string(const DatasetStats& stats) {
  std::string out;
  visit_stats(stats, [&](const char* name, std::size_t value) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  });
  // Observability outside the identity counters (see the field comments):
  // window count and validity rejects, so logs show a stream was a stream
  // and a hostile input was a hostile input.
  if (stats.rejected_samples != 0) {
    out += " rejected_samples=";
    out += std::to_string(stats.rejected_samples);
  }
  if (!stats.windows.empty()) {
    out += " windows=";
    out += std::to_string(stats.windows.size());
  }
  return out;
}

std::string diff_stats(const DatasetStats& expected, const DatasetStats& actual) {
  std::string out;
  std::vector<std::pair<const char*, std::size_t>> lhs;
  visit_stats(expected, [&](const char* name, std::size_t value) {
    lhs.emplace_back(name, value);
  });
  std::size_t i = 0;
  visit_stats(actual, [&](const char* name, std::size_t value) {
    if (lhs[i].second != value) {
      if (!out.empty()) out += ' ';
      out += name;
      out += ": expected ";
      out += std::to_string(lhs[i].second);
      out += ", got ";
      out += std::to_string(value);
    }
    ++i;
  });
  return out;
}

std::ostream& operator<<(std::ostream& os, const DatasetStats& stats) {
  return os << to_string(stats);
}

TargetDataset::TargetDataset(std::vector<AsPeerSet> ases, DatasetStats stats)
    : ases_(std::move(ases)), stats_(stats) {
  by_asn_.resize(ases_.size());
  for (std::uint32_t i = 0; i < by_asn_.size(); ++i) by_asn_[i] = i;
  // Stable so duplicate ASNs keep construction order and find() returns
  // the same entry the old linear scan did.
  std::stable_sort(by_asn_.begin(), by_asn_.end(),
                   [this](std::uint32_t a, std::uint32_t b) {
                     return net::value_of(ases_[a].asn) < net::value_of(ases_[b].asn);
                   });
}

const AsPeerSet* TargetDataset::find(net::Asn asn) const noexcept {
  const std::uint32_t key = net::value_of(asn);
  const auto it = std::lower_bound(
      by_asn_.begin(), by_asn_.end(), key,
      [this](std::uint32_t index, std::uint32_t k) {
        return net::value_of(ases_[index].asn) < k;
      });
  if (it == by_asn_.end() || net::value_of(ases_[*it].asn) != key) return nullptr;
  return &ases_[*it];
}

DatasetBuilder::DatasetBuilder(const geodb::GeoDatabase& primary,
                               const geodb::GeoDatabase& secondary,
                               const bgp::IpToAsMapper& mapper, DatasetConfig config)
    : primary_(primary), secondary_(secondary), mapper_(mapper), config_(config) {}

namespace detail {
namespace {

/// Samples per SoA staging block: big enough to amortize the batched
/// lookup calls, small enough that the arenas (a few doubles + two cached
/// records per lane) stay cache-resident.
constexpr std::size_t kConditionBlock = 4096;

/// Per-lane verdict of the staged conditioning passes, in the exact drop
/// precedence of the scalar pipeline.
enum LaneState : std::uint8_t {
  kEligible = 0,
  kMissingGeo,
  kRejected,
  kHighError,
};

/// Open-addressed ASN -> bucket-index table (linear probing, power-of-two):
/// the per-survivor grouping cost is one hash probe into a table that fits
/// in L1, instead of the old per-sample std::map tree walk.
class AsnBucketIndex {
 public:
  AsnBucketIndex() : table_(kInitialSlots, kEmpty), keys_(kInitialSlots, 0) {}

  [[nodiscard]] std::size_t find_or_add(std::uint32_t asn,
                                        std::vector<AsPeerSet>& buckets) {
    if ((buckets.size() + 1) * 4 > table_.size() * 3) grow();
    std::size_t i = mix(asn) & (table_.size() - 1);
    while (table_[i] != kEmpty) {
      if (keys_[i] == asn) return table_[i];
      i = (i + 1) & (table_.size() - 1);
    }
    table_[i] = static_cast<std::uint32_t>(buckets.size());
    keys_[i] = asn;
    buckets.push_back(AsPeerSet{net::Asn{asn}, {}});
    return buckets.size() - 1;
  }

 private:
  static constexpr std::size_t kInitialSlots = 256;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  [[nodiscard]] static std::uint32_t mix(std::uint32_t x) noexcept {
    x ^= x >> 16;
    x *= 0x45d9f3bu;
    x ^= x >> 16;
    return x;
  }

  void grow() {
    std::vector<std::uint32_t> old_table = std::move(table_);
    std::vector<std::uint32_t> old_keys = std::move(keys_);
    table_.assign(old_table.size() * 2, kEmpty);
    keys_.assign(old_keys.size() * 2, 0);
    for (std::size_t i = 0; i < old_table.size(); ++i) {
      if (old_table[i] == kEmpty) continue;
      std::size_t j = mix(old_keys[i]) & (table_.size() - 1);
      while (table_[j] != kEmpty) j = (j + 1) & (table_.size() - 1);
      table_[j] = old_table[i];
      keys_[j] = old_keys[i];
    }
  }

  std::vector<std::uint32_t> table_;  // bucket index per slot, kEmpty if free
  std::vector<std::uint32_t> keys_;   // ASN per occupied slot
};

/// SoA staging arenas for one conditioning block.  Each pass below streams
/// one or two of these arrays sequentially instead of re-walking an array
/// of fat per-peer structs, so the filter loops are cache-friendly and the
/// non-trig arithmetic vectorizes.
///
/// Concurrency contract: strictly shard-private.  One ConditionArena is a
/// block-scoped local of condition_chunk(), so each shard's arena lives on
/// that shard's stack and can never be observed by another thread — scoped
/// ownership needs no capability annotation (there is no member for a
/// second thread to name).  The shared inputs it reads (mapper, config,
/// the sample span) are const; the memos it drives carry their own
/// single-owner role (see geodb::LookupMemo).
struct ConditionArena {
  std::vector<net::Ipv4Address> ips;
  std::vector<std::optional<geodb::GeoRecord>> primary, secondary;
  std::vector<double> lat_a, lon_a, lat_b, lon_b;
  std::vector<double> err;
  std::vector<gazetteer::CityId> city;
  std::vector<std::uint8_t> state;

  explicit ConditionArena(std::size_t n)
      : ips(n), primary(n), secondary(n), lat_a(n), lon_a(n), lat_b(n), lon_b(n),
        err(n), city(n), state(n) {}
};

}  // namespace

ConditionShard condition_chunk(std::span<const p2p::PeerSample> samples, std::size_t lo,
                               std::size_t hi, geodb::LookupMemo& primary,
                               geodb::LookupMemo& secondary,
                               const bgp::IpToAsMapper& mapper,
                               const DatasetConfig& config) {
  ConditionShard shard;
  AsnBucketIndex index;
  ConditionArena arena{std::min(kConditionBlock, hi - lo)};

  for (std::size_t base = lo; base < hi; base += kConditionBlock) {
    const std::size_t n = std::min(kConditionBlock, hi - base);

    // Pass 1: gather the block's IPs and geo-map them through both memos in
    // one batched call each (the paper requires city-level records from
    // both databases; missing ones drop ~2.4 M peers).  Batch order equals
    // sample order, so memo state and counters match the scalar loop.
    for (std::size_t i = 0; i < n; ++i) arena.ips[i] = samples[base + i].ip;
    const std::span<const net::Ipv4Address> ips{arena.ips.data(), n};
    primary.lookup_batch(ips, {arena.primary.data(), n});
    secondary.lookup_batch(ips, {arena.secondary.data(), n});

    // Pass 2: scatter the record coordinates into the SoA lanes and settle
    // presence/validity.  A corrupt database row (NaN / out-of-range
    // coordinates) must be rejected here: past this point its location
    // feeds the distance computation and, if kept, the KDE — both poisoned
    // by a single NaN.
    for (std::size_t i = 0; i < n; ++i) {
      const auto& a = arena.primary[i];
      const auto& b = arena.secondary[i];
      if (!a || !b) {
        arena.state[i] = kMissingGeo;
        continue;
      }
      arena.lat_a[i] = a->location.lat_deg;
      arena.lon_a[i] = a->location.lon_deg;
      arena.lat_b[i] = b->location.lat_deg;
      arena.lon_b[i] = b->location.lon_deg;
      arena.city[i] = a->city_id;
      arena.state[i] =
          geo::is_valid(a->location) && geo::is_valid(b->location) ? kEligible
                                                                   : kRejected;
    }

    // Pass 3: the inter-database error proxy over the coordinate lanes,
    // then the threshold verdict.  Same distance_km call on the same
    // inputs as the scalar loop — error values stay bit-identical.  When
    // both databases report the same zip centroid bit-for-bit (both drew
    // the "exact" outcome — the majority of samples), the haversine chain
    // evaluates to exactly +0.0 (every difference term is +0, sin(+0) is
    // +0, asin(+0) is +0), so the equality fast path returns the identical
    // value while skipping four libm calls.
    for (std::size_t i = 0; i < n; ++i) {
      if (arena.state[i] != kEligible) continue;
      if (arena.lat_a[i] == arena.lat_b[i] && arena.lon_a[i] == arena.lon_b[i]) {
        arena.err[i] = 0.0;
        continue;
      }
      arena.err[i] = geo::distance_km({arena.lat_a[i], arena.lon_a[i]},
                                      {arena.lat_b[i], arena.lon_b[i]});
      if (arena.err[i] > config.max_geo_error_km) arena.state[i] = kHighError;
    }

    // Pass 4: fold verdicts in sample order (exact scalar drop precedence),
    // LPM-map survivors, and append to the flat AS buckets.
    for (std::size_t i = 0; i < n; ++i) {
      switch (arena.state[i]) {
        case kMissingGeo: ++shard.dropped.missing_geo; continue;
        case kRejected: ++shard.dropped.rejected; continue;
        case kHighError: ++shard.dropped.high_error; continue;
        default: break;
      }
      const auto asn = mapper.map(arena.ips[i]);
      if (!asn) {
        ++shard.dropped.unmapped_as;
        continue;
      }
      shard.by_as[index.find_or_add(net::value_of(*asn), shard.by_as)]
          .peers.push_back(PeerRecord{arena.ips[i], samples[base + i].app,
                                      {arena.lat_a[i], arena.lon_a[i]}, arena.err[i],
                                      arena.city[i]});
    }
  }

  // First-seen bucket order -> ascending ASN, the order the old per-shard
  // std::map produced and merge_shard_ordered/filter_ases require.  Peer
  // order inside each bucket is untouched (already sample order).
  std::sort(shard.by_as.begin(), shard.by_as.end(),
            [](const AsPeerSet& a, const AsPeerSet& b) {
              return net::value_of(a.asn) < net::value_of(b.asn);
            });
  return shard;
}

void merge_shard_ordered(ConditionShard shard, std::map<std::uint32_t, AsPeerSet>& by_as,
                         ConditionCounters& dropped) {
  dropped.missing_geo += shard.dropped.missing_geo;
  dropped.high_error += shard.dropped.high_error;
  dropped.unmapped_as += shard.dropped.unmapped_as;
  dropped.rejected += shard.dropped.rejected;
  for (auto& set : shard.by_as) {
    auto& merged = by_as[net::value_of(set.asn)];
    if (merged.peers.empty()) {
      merged = std::move(set);
    } else {
      merged.peers.insert(merged.peers.end(),
                          std::make_move_iterator(set.peers.begin()),
                          std::make_move_iterator(set.peers.end()));
    }
  }
}

std::vector<AsPeerSet> filter_ases(std::span<AsPeerSet* const> buckets,
                                   const DatasetConfig& config, std::size_t threads,
                                   DatasetStats& stats, bool take_ownership) {
  // The kept-AS list below inherits its order from this span; it must be
  // ASN-ascending (the builders' std::map guarantees it today) or the final
  // dataset ceases to be byte-identical to the serial build.
  EYEBALL_DCHECK(std::is_sorted(buckets.begin(), buckets.end(),
                                [](const AsPeerSet* a, const AsPeerSet* b) {
                                  return net::value_of(a->asn) < net::value_of(b->asn);
                                }),
                 "merged AS buckets must stay in ascending ASN order");

  enum Verdict : std::uint8_t { kKeep, kBelowMinPeers, kAboveP90Error };
  std::vector<std::uint8_t> verdicts(buckets.size(), kKeep);
  util::ThreadPool::shared().parallel_for(
      0, buckets.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> scratch;  // one allocation per chunk, not per AS
        for (std::size_t i = lo; i < hi; ++i) {
          const auto& set = *buckets[i];
          if (set.peers.size() < config.min_peers_per_as) {
            verdicts[i] = kBelowMinPeers;
            continue;
          }
          set.geo_errors(scratch);
          if (util::percentile_in_place(scratch, 90.0) > config.max_p90_geo_error_km) {
            verdicts[i] = kAboveP90Error;
          }
        }
      },
      threads);

  std::vector<AsPeerSet> kept;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    AsPeerSet& set = *buckets[i];
    switch (verdicts[i]) {
      case kBelowMinPeers:
        ++stats.ases_below_min_peers;
        stats.peers_in_small_ases += set.peers.size();
        break;
      case kAboveP90Error:
        ++stats.ases_above_p90_error;
        break;
      default:
        stats.final_peers += set.peers.size();
        if (take_ownership) {
          kept.push_back(std::move(set));
        } else {
          kept.push_back(set);
        }
        break;
    }
  }
  stats.final_ases = kept.size();
  return kept;
}

}  // namespace detail

TargetDataset DatasetBuilder::build(std::span<const p2p::PeerSample> samples) const {
  return build(samples, config_.threads);
}

TargetDataset DatasetBuilder::build(std::span<const p2p::PeerSample> samples,
                                    std::size_t threads) const {
  DatasetStats stats;
  stats.raw_samples = samples.size();

  // Stage 1: shard the sample span into contiguous chunks; every worker
  // geo-maps, error-filters and LPM-groups into its own ConditionShard (the
  // trie/table lookups are read-only, so the hot loop takes no locks).
  // The ordered reduction then appends each shard's peers per AS in shard
  // order — shard chunks are contiguous and in sample order, so the merged
  // per-AS peer order is exactly the serial loop's, whatever `threads` is.
  std::map<std::uint32_t, AsPeerSet> by_as;
  detail::ConditionCounters dropped;
  util::ThreadPool::shared().parallel_map_reduce(
      0, samples.size(),
      [&](std::size_t lo, std::size_t hi) {
        geodb::LookupMemo primary{primary_, config_.lookup_memo_slots};
        geodb::LookupMemo secondary{secondary_, config_.lookup_memo_slots};
        return detail::condition_chunk(samples, lo, hi, primary, secondary, mapper_,
                                       config_);
      },
      [&](detail::ConditionShard shard) {
        detail::merge_shard_ordered(std::move(shard), by_as, dropped);
      },
      threads);
  dropped.add_to(stats);

  // Stage 2: the per-AS filter over the merged buckets, in ASN (map) order.
  std::vector<AsPeerSet> owned;
  owned.reserve(by_as.size());
  for (auto& [asn_value, set] : by_as) owned.push_back(std::move(set));
  std::vector<AsPeerSet*> buckets;
  buckets.reserve(owned.size());
  for (auto& set : owned) buckets.push_back(&set);
  auto kept = detail::filter_ases(buckets, config_, threads, stats,
                                  /*take_ownership=*/true);
  return TargetDataset{std::move(kept), std::move(stats)};
}

StreamingDatasetBuilder DatasetBuilder::streaming() const {
  return StreamingDatasetBuilder{primary_, secondary_, mapper_, config_};
}

}  // namespace eyeball::core
