// The serving artifact: a relocatable, memory-mappable image of one
// finalized epoch — the conditioned TargetDataset plus every per-AS
// analysis (classification, footprint grid, contour, peaks, PoP mapping).
//
// Why a second on-disk format next to EYBSNAP1: the snapshot persists
// *builder* state and pays a full parse on restore (~seconds at the 166 MB
// scale) before the first query can be answered.  The artifact persists the
// *published* epoch in its final in-memory shape, so restore is mmap +
// validate: no per-record parsing, no allocation proportional to the file,
// and N replicas mapping the same artifact share read-only pages.
//
// Format EYBART1 (all integers little-endian, doubles as IEEE-754 bit
// patterns, every section offset 8-byte aligned):
//
//   header   "EYBART1\0"  8 B   magic
//            u32               format version (currently 1)
//            u32               section count (currently 11)
//            u64               epoch the artifact was published at
//            u64               config fingerprint (result-affecting fields,
//                              same derivation as EYBSNAP1)
//            u64               total file size in bytes (truncation check)
//            u64               AS count
//            u32               meta CRC32C (header above + section table)
//            u32               reserved (zero)
//   table    section-count entries x 40 B:
//            u32               section id (strictly ascending)
//            u32               encoding (0 = raw, 1 = zstd)
//            u64               file offset of the payload (8-aligned)
//            u64               stored payload size in bytes
//            u64               raw (decompressed) payload size
//            u32               payload CRC32C (over the stored bytes)
//            u32               reserved (zero)
//   payload  sections back-to-back in table order, each zero-padded to the
//            next 8-byte boundary
//   tail     "EYBAREND"  8 B   tail magic
//
// Relocation rule: the file contains no pointers and no file offsets
// outside the section table.  All variable-length data lives in contiguous
// per-kind arenas (peers, grid runs, grid nonzero doubles, contour
// partitions, boundary segments, peaks, PoP entries, region strings), and
// the per-AS index records address them by ELEMENT offset + count within
// the arena.  Every AS's ranges are consecutive in AS order and exactly
// tile each arena — checked at open, so overlapping or out-of-bounds
// ranges are typed corruption, never a wild read.
//
// Grid storage is zero-suppressed: KDE density grids are overwhelmingly
// exact-zero cells (~97% at bench scale), so each AS's row-major grid is
// stored as maximal runs of bit-nonzero cells (u64 start cell + u64 count
// per run, AS-local indices) plus a packed arena of just the nonzero
// doubles.  A cell is zero iff its IEEE-754 bit pattern is exactly zero,
// so -0.0 and denormals survive the round trip bit-exactly.  The open-time
// walk checks run canonicality (counts >= 1, strictly separated, inside
// the grid, value total matches, stored values bit-nonzero), which keeps
// materialize() a bounded scatter.  This is what holds the artifact to
// ~1/5 the dense size and the open-time CRC pass under the latency budget.
//
// Validation order at open (once; queries after that are unchecked reads):
//   1. envelope: minimum size, 8-aligned file size (what the encoder's
//      padding always produces; keeps payload_end aligned so the packing
//      arithmetic in step 3 cannot wrap), head magic, tail magic, recorded
//      file size
//   2. meta CRC over header + section table (any flipped header/table bit
//      lands here), then the version check — a bit-flipped version byte
//      fails the CRC as kCorruption, a genuinely newer format passes it and
//      reports kVersionMismatch
//   3. section-table walk: exact id order, exact packing (each offset is
//      the previous section's padded end), encodings known, zstd raw sizes
//      capped at 32768x stored (past zstd's physical maximum expansion, so
//      a forged table cannot demand an unbounded decompression buffer)
//   4. per-section payload CRC (hardware-accelerated crc32c_fast)
//   5. zstd sections decompressed into owned side buffers ("cold"
//      sections; the frame header's content size must equal the table's
//      raw size before the buffer is allocated; refused with
//      kVersionMismatch when built without zstd)
//   6. structural walk: arena sizes vs record sizes, per-AS ranges tile the
//      arenas, ASN order index is a sorted permutation, enums in range,
//      grid geometry consistent (rows/cols re-derived from box + cell size)
//
// Encode is canonical: a given (dataset, analyses, epoch, fingerprint)
// produces identical bytes regardless of thread counts or how the samples
// were windowed upstream — pinned by tests/artifact_test.cpp, so artifact
// bytes double as a state-identity check exactly like snapshot bytes do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/dataset.hpp"
#include "core/pipeline.hpp"
#include "util/file.hpp"
#include "util/status.hpp"

namespace eyeball::core {

/// One maximal run of bit-nonzero grid cells, in AS-local row-major cell
/// indices.  The matching values live contiguously in the nonzero arena.
struct GridRun {
  std::uint64_t start_cell = 0;
  std::uint64_t count = 0;
};

struct ArtifactEncodeOptions {
  /// Compress the cold sections (currently the peer arena — needed for
  /// re-analysis, not for answering queries) with zstd.  Requires a build
  /// with zstd available (see ArtifactCodec::zstd_supported()); encode
  /// fails typed otherwise rather than silently writing raw.
  bool compress_cold = false;
};

/// Encoder for the EYBART1 format.  Stateless; reads only the public
/// surface of the finalized dataset and analyses (unlike SnapshotCodec it
/// needs no friendship — the artifact captures published output, not
/// builder internals).
class ArtifactCodec {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;

  using EncodeOptions = ArtifactEncodeOptions;

  /// Serializes one epoch into `out` (replaced).  `analyses` must be
  /// parallel to `dataset.ases()`.  Canonical: equal inputs encode to
  /// identical bytes.
  [[nodiscard]] static util::Status encode(const TargetDataset& dataset,
                                           std::span<const AsAnalysis> analyses,
                                           std::uint64_t epoch,
                                           std::uint64_t config_fingerprint,
                                           std::vector<std::byte>& out,
                                           const EncodeOptions& options = {});

  /// encode() + crash-safe publish via atomic_write_file: a crash leaves
  /// the previous artifact or the new one, never a hybrid.
  [[nodiscard]] static util::Status write(util::FileSystem& fs, const std::string& path,
                                          const TargetDataset& dataset,
                                          std::span<const AsAnalysis> analyses,
                                          std::uint64_t epoch,
                                          std::uint64_t config_fingerprint,
                                          const EncodeOptions& options = {});

  /// True when this binary was built against zstd (EncodeOptions::
  /// compress_cold usable, compressed sections readable).
  [[nodiscard]] static bool zstd_supported() noexcept;
};

/// Zero-copy reader over a validated artifact.  open() maps the file and
/// runs the full validation walk once; every accessor after that reads the
/// mapped bytes in place.  The view owns the mapping — a ServingSnapshot
/// (or any caller) holding the view by shared_ptr keeps the pages alive for
/// as long as any epoch still answers from them.
class ArtifactView {
 public:
  ArtifactView() = default;
  ArtifactView(ArtifactView&&) noexcept = default;
  ArtifactView& operator=(ArtifactView&&) noexcept = default;
  ArtifactView(const ArtifactView&) = delete;
  ArtifactView& operator=(const ArtifactView&) = delete;

  /// Maps `path` through `fs` (mmap on the real filesystem) and validates.
  /// On failure `out` is untouched and the mapping is released.
  [[nodiscard]] static util::Status open(const std::string& path, util::FileSystem& fs,
                                         ArtifactView& out);
  /// Same over the process-wide real filesystem.
  [[nodiscard]] static util::Status open(const std::string& path, ArtifactView& out);
  /// Validates an in-memory image the view takes ownership of.
  [[nodiscard]] static util::Status from_bytes(std::vector<std::byte> bytes,
                                               ArtifactView& out);
  /// Validates a borrowed image; the caller must keep `bytes` alive and
  /// unchanged for the view's lifetime.  Exists for the fault sweep, which
  /// opens thousands of mutated/truncated images without copying each one.
  [[nodiscard]] static util::Status from_borrowed(std::span<const std::byte> bytes,
                                                  ArtifactView& out);

  /// False for a default-constructed (never-opened) view.
  [[nodiscard]] bool valid() const noexcept { return opened_; }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::uint64_t config_fingerprint() const noexcept {
    return config_fingerprint_;
  }
  [[nodiscard]] std::size_t as_count() const noexcept { return entries_.size(); }
  /// Dataset-level stats, windows included (decoded eagerly at open — a
  /// few hundred bytes, not worth lazy plumbing).
  [[nodiscard]] const DatasetStats& stats() const noexcept { return stats_; }
  /// Size of the backing image in bytes.
  [[nodiscard]] std::size_t image_size() const noexcept { return bytes_.size(); }

  /// One AS's slice of the artifact: cheap value handle (index + pointer to
  /// the view), every accessor an in-place read of the mapped bytes.
  /// Accessor results equal the in-memory epoch's values exactly (pinned by
  /// the differential test).
  class AsView {
   public:
    [[nodiscard]] net::Asn asn() const noexcept;
    [[nodiscard]] topology::AsLevel level() const noexcept;
    [[nodiscard]] gazetteer::Continent continent() const noexcept;
    [[nodiscard]] double dominant_share() const noexcept;
    /// Points into the mapped string arena; valid while the view lives.
    [[nodiscard]] std::string_view dominant_region() const noexcept;

    [[nodiscard]] std::size_t peer_count() const noexcept;
    [[nodiscard]] PeerRecord peer(std::size_t i) const noexcept;

    [[nodiscard]] std::size_t grid_rows() const noexcept;
    [[nodiscard]] std::size_t grid_cols() const noexcept;
    [[nodiscard]] geo::BoundingBox grid_box() const;
    [[nodiscard]] double grid_cell_km() const noexcept;
    /// Zero-suppressed density values: the runs of bit-nonzero cells and
    /// their packed values, read in place from the mapped arenas (the
    /// open-time walk guaranteed alignment, bounds and run canonicality).
    /// Cells covered by no run are exactly 0.0.
    [[nodiscard]] std::size_t grid_run_count() const noexcept;
    [[nodiscard]] GridRun grid_run(std::size_t i) const noexcept;
    [[nodiscard]] std::size_t grid_nonzero_count() const noexcept;
    [[nodiscard]] std::span<const double> grid_nonzero_values() const noexcept;

    [[nodiscard]] double contour_level() const noexcept;
    [[nodiscard]] std::size_t partition_count() const noexcept;
    [[nodiscard]] kde::FootprintPartition partition(std::size_t i) const noexcept;
    [[nodiscard]] std::size_t boundary_count() const noexcept;
    [[nodiscard]] kde::BoundarySegment boundary(std::size_t i) const noexcept;

    [[nodiscard]] std::size_t peak_count() const noexcept;
    [[nodiscard]] kde::Peak peak(std::size_t i) const noexcept;

    [[nodiscard]] std::size_t pop_count() const noexcept;
    [[nodiscard]] PopEntry pop(std::size_t i) const noexcept;
    [[nodiscard]] std::size_t unmapped_peaks() const noexcept;

    [[nodiscard]] std::size_t sample_count() const noexcept;
    [[nodiscard]] double bandwidth_km() const noexcept;

    /// Copies this AS out of the artifact into the exact in-memory analysis
    /// the epoch was published with — what the lazy serving thaw uses.
    [[nodiscard]] AsAnalysis materialize() const;
    /// Same for the conditioned peer set.
    [[nodiscard]] AsPeerSet materialize_peers() const;

   private:
    friend class ArtifactView;
    AsView(const ArtifactView* view, std::size_t index) noexcept
        : view_(view), index_(index) {}

    const ArtifactView* view_;
    std::size_t index_;
  };

  /// The i-th AS in dataset order (parallel to the epoch's ases()).
  [[nodiscard]] AsView as_at(std::size_t index) const noexcept {
    return AsView{this, index};
  }
  /// TargetDataset::find semantics: O(log n) over the persisted ASN order,
  /// first entry on duplicates, nullopt when the ASN is not in the epoch.
  [[nodiscard]] std::optional<std::size_t> find_index(net::Asn asn) const noexcept;
  [[nodiscard]] std::optional<AsView> find(net::Asn asn) const noexcept;

 private:
  friend class AsView;

  /// Fixed-size per-AS index record, decoded once at open (240 B each on
  /// disk; cheaper to hold decoded than to re-parse per query).
  struct AsEntry {
    std::uint32_t asn = 0;
    std::uint32_t level = 0;
    std::uint32_t continent = 0;
    double dominant_share = 0.0;
    std::uint64_t region_offset = 0, region_size = 0;
    std::uint64_t peer_offset = 0, peer_count = 0;
    std::uint64_t grid_run_offset = 0, grid_run_count = 0;
    std::uint64_t grid_value_offset = 0, grid_nonzero_count = 0;
    std::uint64_t grid_rows = 0, grid_cols = 0;
    double min_lat = 0.0, max_lat = 0.0, min_lon = 0.0, max_lon = 0.0;
    double cell_km = 0.0;
    double contour_level = 0.0;
    std::uint64_t partition_offset = 0, partition_count = 0;
    std::uint64_t boundary_offset = 0, boundary_count = 0;
    std::uint64_t peak_offset = 0, peak_count = 0;
    std::uint64_t pop_offset = 0, pop_count = 0;
    std::uint64_t unmapped_peaks = 0;
    std::uint64_t sample_count = 0;
    double bandwidth_km = 0.0;
  };

  [[nodiscard]] util::Status load(std::span<const std::byte> bytes);

  // Backing storage: exactly one of map_/owned_ holds the image for the
  // owning factories; from_borrowed leaves both empty.  bytes_ always spans
  // the live image.
  util::MappedFile map_;
  std::vector<std::byte> owned_;
  std::span<const std::byte> bytes_;
  /// Owned decompressed payloads for zstd sections (empty slots for raw
  /// sections, which point straight into bytes_).
  std::vector<std::vector<std::byte>> inflated_;

  bool opened_ = false;
  std::uint64_t epoch_ = 0;
  std::uint64_t config_fingerprint_ = 0;
  DatasetStats stats_;
  std::vector<AsEntry> entries_;
  /// Indices into entries_, stably sorted by ASN (persisted, validated).
  std::span<const std::byte> asn_order_;
  // Arena payloads (post-decompression views).
  std::span<const std::byte> peers_;
  std::span<const std::byte> grid_runs_;
  std::span<const double> grid_values_;
  std::span<const std::byte> partitions_;
  std::span<const std::byte> boundary_;
  std::span<const std::byte> peaks_;
  std::span<const std::byte> pops_;
  std::span<const std::byte> regions_;
};

}  // namespace eyeball::core
