// PoP-level footprint: the paper's §4.2 "loose" mapping of density peaks to
// cities — each peak maps to the most populated city within one kernel
// bandwidth, or to "no city" (and is dropped as noise) otherwise.  The
// result is a list of cities sorted by user density.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/footprint.hpp"
#include "gazetteer/gazetteer.hpp"

namespace eyeball::core {

struct PopEntry {
  gazetteer::CityId city = gazetteer::kInvalidCity;
  /// Fraction of the AS's users attributed to this PoP (sum of the scores
  /// of all peaks mapping to the city).
  double score = 0.0;
  double peak_density = 0.0;
  geo::GeoPoint peak_location;
};

struct PopFootprint {
  /// Entries sorted by score descending, exact score ties by CityId
  /// ascending (a total order — deterministic across stdlib sorts).  Each
  /// city appears once.
  std::vector<PopEntry> pops;
  /// Peaks whose bandwidth-radius neighbourhood contains no city — noise
  /// under a proper alpha, per the paper.
  std::size_t unmapped_peaks = 0;

  [[nodiscard]] bool has_city(gazetteer::CityId city) const noexcept;
  [[nodiscard]] std::vector<geo::GeoPoint> pop_locations(
      const gazetteer::Gazetteer& gaz) const;
};

class PopCityMapper {
 public:
  explicit PopCityMapper(const gazetteer::Gazetteer& gazetteer);

  /// Maps the peaks of `footprint` to cities within `footprint.bandwidth_km`.
  [[nodiscard]] PopFootprint map(const AsFootprint& footprint) const;
  /// Same with an explicit search radius.
  [[nodiscard]] PopFootprint map(const AsFootprint& footprint, double radius_km) const;

  /// Human-readable rendering: "[Milan (.130), Rome (.122), ...]".
  [[nodiscard]] std::string describe(const PopFootprint& footprint) const;

 private:
  const gazetteer::Gazetteer& gaz_;
};

}  // namespace eyeball::core
