#include "core/footprint.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace eyeball::core {
namespace {

/// Bounding box over the central mass of the points: the 0.2th-99.8th
/// percentile per axis, padded by the kernel support.  Residual geo-error
/// outliers (e.g. correlated vendor mistakes parking a block on another
/// continent) would otherwise stretch the KDE grid across the world; the
/// few trimmed points simply do not contribute to the density.
geo::BoundingBox trimmed_box(std::span<const geo::GeoPoint> points, double margin_km) {
  std::vector<double> lats;
  std::vector<double> lons;
  lats.reserve(points.size());
  lons.reserve(points.size());
  for (const auto& p : points) {
    lats.push_back(p.lat_deg);
    lons.push_back(p.lon_deg);
  }
  const geo::BoundingBox core_box{
      util::percentile(lats, 0.2), util::percentile(lats, 99.8),
      util::percentile(lons, 0.2), util::percentile(lons, 99.8)};
  return core_box.expanded_km(margin_km);
}

}  // namespace

GeoFootprintEstimator::GeoFootprintEstimator(FootprintConfig config)
    : config_(config) {}

AsFootprint GeoFootprintEstimator::estimate(const AsPeerSet& peers) const {
  return estimate(peers, config_.kde.bandwidth_km);
}

AsFootprint GeoFootprintEstimator::estimate(const AsPeerSet& peers,
                                            double bandwidth_km) const {
  kde::KdeConfig kde_config = config_.kde;
  kde_config.bandwidth_km = bandwidth_km;
  // Keep the grid fine enough for the kernel: ~8 cells per sigma, capped by
  // the configured base resolution.
  kde_config.cell_km = std::min(config_.kde.cell_km, bandwidth_km / 4.0);
  const kde::KernelDensityEstimator estimator{kde_config};

  const auto locations = peers.locations();
  const auto box = trimmed_box(
      locations, bandwidth_km * kde_config.truncate_sigmas + 20.0);
  auto grid = estimator.estimate(locations, box);

  kde::PeakConfig peak_config;
  peak_config.alpha = config_.alpha;
  peak_config.bandwidth_km = bandwidth_km;
  auto peaks = kde::find_peaks(grid, peak_config);
  auto contour = kde::extract_footprint_relative(grid, config_.contour_fraction);

  return AsFootprint{std::move(grid), std::move(contour), std::move(peaks),
                     locations.size(), bandwidth_km};
}

double GeoFootprintEstimator::adaptive_bandwidth_km(const AsPeerSet& peers,
                                                    double resolution_floor_km) const {
  const auto errors = peers.geo_errors();
  return std::max(resolution_floor_km, util::percentile(errors, 90.0));
}

}  // namespace eyeball::core
