// Geo-footprint estimation for one AS (paper §3): KDE over the peer
// locations, the largest contour as the footprint, and the density peaks as
// PoP candidates.
#pragma once

#include <vector>

#include "core/dataset.hpp"
#include "kde/contour.hpp"
#include "kde/estimator.hpp"
#include "kde/peaks.hpp"

namespace eyeball::core {

struct FootprintConfig {
  kde::KdeConfig kde{};
  /// Peak-selection threshold (paper: alpha = 0.01).
  double alpha = 0.01;
  /// Contour level for the footprint region, as a fraction of Dmax.
  double contour_fraction = 0.01;
};

struct AsFootprint {
  kde::DensityGrid grid;
  kde::Footprint contour;
  std::vector<kde::Peak> peaks;
  std::size_t sample_count = 0;
  double bandwidth_km = 0.0;
};

class GeoFootprintEstimator {
 public:
  explicit GeoFootprintEstimator(FootprintConfig config = {});

  [[nodiscard]] const FootprintConfig& config() const noexcept { return config_; }

  [[nodiscard]] AsFootprint estimate(const AsPeerSet& peers) const;
  /// Same, with the bandwidth overridden (bandwidth sweeps in Figures 1-2).
  [[nodiscard]] AsFootprint estimate(const AsPeerSet& peers, double bandwidth_km) const;

  /// The paper's §3.1 AS-dependent rule: bandwidth = max(resolution floor,
  /// 90th percentile of the AS's geo error).
  [[nodiscard]] double adaptive_bandwidth_km(const AsPeerSet& peers,
                                             double resolution_floor_km = 40.0) const;

 private:
  FootprintConfig config_;
};

}  // namespace eyeball::core
