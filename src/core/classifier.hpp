// Geographic level classification of an eyeball AS (paper §2): the smallest
// region — city, state, country, continent — containing a large majority
// (> 95 %) of the AS's peers; `global` otherwise.  Peers are attributed to
// administrative regions through their nearest gazetteer city.
#pragma once

#include <string>

#include "core/dataset.hpp"
#include "gazetteer/gazetteer.hpp"
#include "topology/types.hpp"

namespace eyeball::core {

struct Classification {
  topology::AsLevel level = topology::AsLevel::kGlobal;
  /// Name of the dominant region at the classified level ("Rome",
  /// "Lombardy", "IT", "EU"), empty for global.
  std::string dominant_region;
  /// Share of peers inside the dominant region at that level.
  double dominant_share = 0.0;
  gazetteer::Continent continent = gazetteer::Continent::kEurope;
};

class AsClassifier {
 public:
  AsClassifier(const gazetteer::Gazetteer& gazetteer, double majority_threshold = 0.95);

  [[nodiscard]] Classification classify(const AsPeerSet& peers) const;

 private:
  const gazetteer::Gazetteer& gaz_;
  double threshold_;
};

}  // namespace eyeball::core
