#include "core/artifact.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <new>
#include <numeric>
#include <utility>

#include "util/check.hpp"
#include "util/crc32c.hpp"

#if defined(EYEBALL_HAS_ZSTD)
#include <zstd.h>
#endif

// EYBART1 encoder / validator / in-place reader.  The format contract
// (layout, relocation rules, validation order) lives in artifact.hpp; this
// file keeps the byte-level constants and the two sides of the codec next
// to each other so they cannot drift.

namespace eyeball::core {

namespace {

// In-place f64 arena reads reinterpret mapped little-endian IEEE-754 bytes;
// everything else is decoded byte-by-byte (endian-portable).  The
// reinterpret path is the hot one and is only correct on a little-endian
// host, which every supported target is.
static_assert(std::endian::native == std::endian::little,
              "EYBART1 in-place reads require a little-endian host");
static_assert(sizeof(double) == 8 && std::numeric_limits<double>::is_iec559,
              "EYBART1 stores doubles as IEEE-754 bit patterns");

constexpr std::array<std::byte, 8> kHeadMagic{
    std::byte{'E'}, std::byte{'Y'}, std::byte{'B'}, std::byte{'A'},
    std::byte{'R'}, std::byte{'T'}, std::byte{'1'}, std::byte{0}};
constexpr std::array<std::byte, 8> kTailMagic{
    std::byte{'E'}, std::byte{'Y'}, std::byte{'B'}, std::byte{'A'},
    std::byte{'R'}, std::byte{'E'}, std::byte{'N'}, std::byte{'D'}};

constexpr std::size_t kHeaderSize = 56;
constexpr std::size_t kMetaCrcOffset = 48;  // u32 at [48], reserved u32 at [52]
constexpr std::size_t kTableEntrySize = 40;
constexpr std::size_t kTailSize = 8;

constexpr std::size_t kAsEntrySize = 240;
constexpr std::size_t kGridRunRecordSize = 16;
constexpr std::size_t kPeerRecordSize = 40;
constexpr std::size_t kPartitionRecordSize = 80;
constexpr std::size_t kSegmentRecordSize = 32;
constexpr std::size_t kPeakRecordSize = 40;
constexpr std::size_t kPopRecordSize = 40;
constexpr std::size_t kStatsFixedSize = 88;  // 10 counters + window count
constexpr std::size_t kWindowRecordSize = 40;

/// Section ids, in the exact file order the table must carry.
enum SectionId : std::uint32_t {
  kSecStats = 1,
  kSecAsIndex = 2,
  kSecAsnOrder = 3,
  kSecPeers = 4,
  kSecGridRuns = 5,
  kSecGridValues = 6,
  kSecPartitions = 7,
  kSecBoundary = 8,
  kSecPeaks = 9,
  kSecPops = 10,
  kSecRegions = 11,
};
constexpr std::size_t kSectionCount = 11;

constexpr std::uint32_t kEncodingRaw = 0;
constexpr std::uint32_t kEncodingZstd = 1;

// Hard ceiling on a zstd section's declared expansion: one compressed block
// can emit at most 128 KiB from a ~4-byte RLE header, so 32768x is past the
// format's physical maximum and a table claiming more is provably corrupt.
constexpr std::uint64_t kMaxZstdExpansion = 32768;

[[nodiscard]] constexpr std::size_t align8(std::size_t n) noexcept {
  return (n + 7U) & ~std::size_t{7};
}

// ---- little-endian writers (canonical bytes, host-independent) -----------

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xffU));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::byte>((v >> shift) & 0xffU));
  }
}

void put_f64(std::vector<std::byte>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_u32_at(std::span<std::byte> out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xffU);
  }
}

void pad8(std::vector<std::byte>& out) {
  while ((out.size() & 7U) != 0) out.push_back(std::byte{0});
}

// ---- little-endian readers (callers guarantee bounds) --------------------

[[nodiscard]] std::uint32_t load_u32(std::span<const std::byte> bytes,
                                     std::size_t at) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t load_u64(std::span<const std::byte> bytes,
                                     std::size_t at) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

[[nodiscard]] double load_f64(std::span<const std::byte> bytes,
                              std::size_t at) noexcept {
  return std::bit_cast<double>(load_u64(bytes, at));
}

// ---- grid geometry (mirror of DensityGrid's constructor math) ------------

/// Re-derives the row/col counts DensityGrid computes from (box, cell_km).
/// The artifact stores the POST-coarsening cell size, so one evaluation of
/// the formula (no budget loop) must reproduce the stored counts exactly —
/// any drift between this and kde/grid.cpp fails the differential test.
/// Returns false when the inputs cannot have come from a real grid.
[[nodiscard]] bool derive_grid_shape(double min_lat, double max_lat, double min_lon,
                                     double max_lon, double cell_km,
                                     std::uint64_t& rows,
                                     std::uint64_t& cols) noexcept {
  if (!(cell_km > 0.0) || !std::isfinite(cell_km)) return false;
  const double mid_lat = (min_lat + max_lat) / 2.0;
  const double lon_scale = std::max(1.0, geo::km_per_degree_lon(mid_lat));
  const double dlat_deg = cell_km / geo::kKmPerDegreeLat;
  const double dlon_deg = cell_km / lon_scale;
  const double want_rows = std::max(1.0, std::ceil((max_lat - min_lat) / dlat_deg));
  const double want_cols = std::max(1.0, std::ceil((max_lon - min_lon) / dlon_deg));
  // 2^31 caps each axis so rows*cols cannot overflow u64 downstream; a real
  // grid is orders of magnitude below this (DensityGrid's cell budget).
  constexpr double kAxisCap = 2147483648.0;
  if (!(want_rows >= 1.0) || !(want_cols >= 1.0)) return false;
  if (want_rows >= kAxisCap || want_cols >= kAxisCap) return false;
  rows = static_cast<std::uint64_t>(want_rows);
  cols = static_cast<std::uint64_t>(want_cols);
  return true;
}

[[nodiscard]] util::Status corruption_at(const char* what) {
  return util::Status::corruption(std::string{"artifact: "} + what);
}

#if defined(EYEBALL_HAS_ZSTD)
[[nodiscard]] util::Status zstd_compress(std::span<const std::byte> raw,
                                         std::vector<std::byte>& out) {
  const std::size_t bound = ZSTD_compressBound(raw.size());
  out.assign(bound, std::byte{0});
  // Level 3: the zstd default; cold-section reads decompress once at open,
  // so the write-side ratio/speed tradeoff is not hot either way.
  const std::size_t got = ZSTD_compress(out.data(), bound, raw.data(), raw.size(), 3);
  if (ZSTD_isError(got) != 0U) {
    return util::Status::io_error(std::string{"artifact: zstd compress: "} +
                                  ZSTD_getErrorName(got));
  }
  out.resize(got);
  return util::Status{};
}
#endif

}  // namespace

// ---- encoder --------------------------------------------------------------

bool ArtifactCodec::zstd_supported() noexcept {
#if defined(EYEBALL_HAS_ZSTD)
  return true;
#else
  return false;
#endif
}

util::Status ArtifactCodec::encode(const TargetDataset& dataset,
                                   std::span<const AsAnalysis> analyses,
                                   std::uint64_t epoch,
                                   std::uint64_t config_fingerprint,
                                   std::vector<std::byte>& out,
                                   const EncodeOptions& options) {
  const std::span<const AsPeerSet> ases = dataset.ases();
  if (analyses.size() != ases.size()) {
    return util::Status::invalid_argument(
        "artifact: analyses must be parallel to the dataset's ASes");
  }
  if (options.compress_cold && !zstd_supported()) {
    return util::Status::invalid_argument(
        "artifact: compress_cold requested but this binary was built without zstd");
  }
  const std::size_t n = ases.size();

  // -- stats section --------------------------------------------------------
  std::vector<std::byte> stats_pay;
  {
    const DatasetStats& s = dataset.stats();
    stats_pay.reserve(kStatsFixedSize + s.windows.size() * kWindowRecordSize);
    put_u64(stats_pay, s.raw_samples);
    put_u64(stats_pay, s.missing_geo);
    put_u64(stats_pay, s.high_error);
    put_u64(stats_pay, s.unmapped_as);
    put_u64(stats_pay, s.peers_in_small_ases);
    put_u64(stats_pay, s.ases_below_min_peers);
    put_u64(stats_pay, s.ases_above_p90_error);
    put_u64(stats_pay, s.final_peers);
    put_u64(stats_pay, s.final_ases);
    put_u64(stats_pay, s.rejected_samples);
    put_u64(stats_pay, s.windows.size());
    for (const WindowStats& w : s.windows) {
      put_u64(stats_pay, w.offered);
      put_u64(stats_pay, w.duplicates);
      put_u64(stats_pay, w.admitted);
      put_u64(stats_pay, w.cumulative_unique);
      put_u64(stats_pay, w.rejected);
    }
  }

  // -- ASN order (TargetDataset::find's index, persisted) -------------------
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0U);
  // Stable, exactly like TargetDataset's construction: duplicates keep
  // dataset order, so find() through the view returns the same entry.
  std::stable_sort(order.begin(), order.end(),
                   [&ases](std::uint32_t a, std::uint32_t b) {
                     return net::value_of(ases[a].asn) < net::value_of(ases[b].asn);
                   });
  std::vector<std::byte> order_pay;
  order_pay.reserve(align8(n * 4));
  for (const std::uint32_t index : order) put_u32(order_pay, index);
  pad8(order_pay);

  // -- per-AS index + arenas ------------------------------------------------
  std::vector<std::byte> index_pay;
  std::vector<std::byte> peers_pay;
  std::vector<std::byte> runs_pay;
  std::vector<std::byte> grid_pay;
  std::vector<std::byte> parts_pay;
  std::vector<std::byte> bound_pay;
  std::vector<std::byte> peaks_pay;
  std::vector<std::byte> pops_pay;
  std::vector<std::byte> regions_pay;
  index_pay.reserve(n * kAsEntrySize);
  {
    std::size_t total_peers = 0;
    for (std::size_t i = 0; i < n; ++i) total_peers += ases[i].peers.size();
    peers_pay.reserve(total_peers * kPeerRecordSize);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const AsPeerSet& as = ases[i];
    const AsAnalysis& analysis = analyses[i];
    if (analysis.asn != as.asn) {
      return util::Status::invalid_argument(
          "artifact: analyses out of order vs the dataset's ASes");
    }
    const kde::DensityGrid& grid = analysis.footprint.grid;
    const kde::Footprint& contour = analysis.footprint.contour;

    // Zero-suppress the grid before writing the index entry: maximal runs
    // of bit-nonzero cells into the run arena, their values (and only
    // those) into the nonzero arena.  "Zero" means the u64 bit pattern is
    // exactly zero — -0.0 and denormals count as nonzero and round-trip
    // bit-exactly.
    const std::uint64_t grid_run_offset = runs_pay.size() / kGridRunRecordSize;
    const std::uint64_t grid_value_offset = grid_pay.size() / 8;
    {
      const std::span<const double> values = grid.values();
      std::uint64_t run_start = 0;
      bool in_run = false;
      for (std::uint64_t c = 0; c < values.size(); ++c) {
        if (std::bit_cast<std::uint64_t>(values[c]) != 0) {
          if (!in_run) {
            in_run = true;
            run_start = c;
          }
          put_f64(grid_pay, values[c]);
        } else if (in_run) {
          in_run = false;
          put_u64(runs_pay, run_start);
          put_u64(runs_pay, c - run_start);
        }
      }
      if (in_run) {
        put_u64(runs_pay, run_start);
        put_u64(runs_pay, values.size() - run_start);
      }
    }
    const std::uint64_t grid_run_count =
        runs_pay.size() / kGridRunRecordSize - grid_run_offset;
    const std::uint64_t grid_nonzero_count = grid_pay.size() / 8 - grid_value_offset;

    put_u32(index_pay, net::value_of(as.asn));
    put_u32(index_pay, static_cast<std::uint32_t>(analysis.classification.level));
    put_u32(index_pay, static_cast<std::uint32_t>(analysis.classification.continent));
    put_u32(index_pay, 0);  // reserved
    put_f64(index_pay, analysis.classification.dominant_share);
    put_u64(index_pay, regions_pay.size());
    put_u64(index_pay, analysis.classification.dominant_region.size());
    put_u64(index_pay, peers_pay.size() / kPeerRecordSize);
    put_u64(index_pay, as.peers.size());
    put_u64(index_pay, grid_run_offset);
    put_u64(index_pay, grid_run_count);
    put_u64(index_pay, grid_value_offset);
    put_u64(index_pay, grid_nonzero_count);
    put_u64(index_pay, grid.rows());
    put_u64(index_pay, grid.cols());
    put_f64(index_pay, grid.box().min_lat());
    put_f64(index_pay, grid.box().max_lat());
    put_f64(index_pay, grid.box().min_lon());
    put_f64(index_pay, grid.box().max_lon());
    put_f64(index_pay, grid.cell_km());
    put_f64(index_pay, contour.level);
    put_u64(index_pay, parts_pay.size() / kPartitionRecordSize);
    put_u64(index_pay, contour.partitions.size());
    put_u64(index_pay, bound_pay.size() / kSegmentRecordSize);
    put_u64(index_pay, contour.boundary.size());
    put_u64(index_pay, peaks_pay.size() / kPeakRecordSize);
    put_u64(index_pay, analysis.footprint.peaks.size());
    put_u64(index_pay, pops_pay.size() / kPopRecordSize);
    put_u64(index_pay, analysis.pops.pops.size());
    put_u64(index_pay, analysis.pops.unmapped_peaks);
    put_u64(index_pay, analysis.footprint.sample_count);
    put_f64(index_pay, analysis.footprint.bandwidth_km);

    for (const char c : analysis.classification.dominant_region) {
      regions_pay.push_back(static_cast<std::byte>(c));
    }
    for (const PeerRecord& peer : as.peers) {
      put_u32(peers_pay, peer.ip.value());
      put_u32(peers_pay, static_cast<std::uint32_t>(peer.app));
      put_u32(peers_pay, peer.reported_city);
      put_u32(peers_pay, 0);  // reserved
      put_f64(peers_pay, peer.location.lat_deg);
      put_f64(peers_pay, peer.location.lon_deg);
      put_f64(peers_pay, peer.geo_error_km);
    }
    for (const kde::FootprintPartition& p : contour.partitions) {
      put_u64(parts_pay, p.cell_count);
      put_f64(parts_pay, p.area_km2);
      put_f64(parts_pay, p.mass);
      put_f64(parts_pay, p.peak_density);
      put_f64(parts_pay, p.peak_location.lat_deg);
      put_f64(parts_pay, p.peak_location.lon_deg);
      put_f64(parts_pay, p.min_lat);
      put_f64(parts_pay, p.max_lat);
      put_f64(parts_pay, p.min_lon);
      put_f64(parts_pay, p.max_lon);
    }
    for (const kde::BoundarySegment& s : contour.boundary) {
      put_f64(bound_pay, s.a.lat_deg);
      put_f64(bound_pay, s.a.lon_deg);
      put_f64(bound_pay, s.b.lat_deg);
      put_f64(bound_pay, s.b.lon_deg);
    }
    for (const kde::Peak& peak : analysis.footprint.peaks) {
      put_f64(peaks_pay, peak.location.lat_deg);
      put_f64(peaks_pay, peak.location.lon_deg);
      put_f64(peaks_pay, peak.density);
      put_f64(peaks_pay, peak.score);
      put_u32(peaks_pay, static_cast<std::uint32_t>(peak.row));
      put_u32(peaks_pay, static_cast<std::uint32_t>(peak.col));
    }
    for (const PopEntry& pop : analysis.pops.pops) {
      put_u32(pops_pay, pop.city);
      put_u32(pops_pay, 0);  // reserved
      put_f64(pops_pay, pop.score);
      put_f64(pops_pay, pop.peak_density);
      put_f64(pops_pay, pop.peak_location.lat_deg);
      put_f64(pops_pay, pop.peak_location.lon_deg);
    }
  }
  pad8(regions_pay);

  // -- optional cold-section compression ------------------------------------
  struct SectionPlan {
    std::uint32_t id;
    std::uint32_t encoding;
    const std::vector<std::byte>* stored;
    std::uint64_t raw_size;
  };
  std::vector<std::byte> peers_stored;
  std::uint32_t peers_encoding = kEncodingRaw;
  std::uint64_t peers_raw_size = peers_pay.size();
  const std::vector<std::byte>* peers_section = &peers_pay;
#if defined(EYEBALL_HAS_ZSTD)
  if (options.compress_cold && !peers_pay.empty()) {
    if (util::Status status = zstd_compress(peers_pay, peers_stored); !status.ok()) {
      return status;
    }
    peers_encoding = kEncodingZstd;
    peers_section = &peers_stored;
  }
#else
  static_cast<void>(peers_stored);  // unreferenced without zstd
#endif

  const SectionPlan plan[kSectionCount] = {
      {kSecStats, kEncodingRaw, &stats_pay, stats_pay.size()},
      {kSecAsIndex, kEncodingRaw, &index_pay, index_pay.size()},
      {kSecAsnOrder, kEncodingRaw, &order_pay, order_pay.size()},
      {kSecPeers, peers_encoding, peers_section, peers_raw_size},
      {kSecGridRuns, kEncodingRaw, &runs_pay, runs_pay.size()},
      {kSecGridValues, kEncodingRaw, &grid_pay, grid_pay.size()},
      {kSecPartitions, kEncodingRaw, &parts_pay, parts_pay.size()},
      {kSecBoundary, kEncodingRaw, &bound_pay, bound_pay.size()},
      {kSecPeaks, kEncodingRaw, &peaks_pay, peaks_pay.size()},
      {kSecPops, kEncodingRaw, &pops_pay, pops_pay.size()},
      {kSecRegions, kEncodingRaw, &regions_pay, regions_pay.size()},
  };

  // -- assembly: header + table + packed sections + tail --------------------
  const std::size_t table_size = kSectionCount * kTableEntrySize;
  std::size_t cursor = kHeaderSize + table_size;
  std::uint64_t offsets[kSectionCount];
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    cursor = align8(cursor);
    offsets[s] = cursor;
    cursor += plan[s].stored->size();
  }
  const std::size_t file_size = align8(cursor) + kTailSize;

  std::vector<std::byte> buffer;
  buffer.reserve(file_size);
  buffer.insert(buffer.end(), kHeadMagic.begin(), kHeadMagic.end());
  put_u32(buffer, kFormatVersion);
  put_u32(buffer, static_cast<std::uint32_t>(kSectionCount));
  put_u64(buffer, epoch);
  put_u64(buffer, config_fingerprint);
  put_u64(buffer, file_size);
  put_u64(buffer, n);
  put_u32(buffer, 0);  // meta CRC, patched below
  put_u32(buffer, 0);  // reserved
  EYEBALL_DCHECK(buffer.size() == kHeaderSize, "artifact header layout drifted");

  for (std::size_t s = 0; s < kSectionCount; ++s) {
    put_u32(buffer, plan[s].id);
    put_u32(buffer, plan[s].encoding);
    put_u64(buffer, offsets[s]);
    put_u64(buffer, plan[s].stored->size());
    put_u64(buffer, plan[s].raw_size);
    put_u32(buffer, util::crc32c_fast(*plan[s].stored));
    put_u32(buffer, 0);  // reserved
  }

  // Meta CRC covers the header (with the CRC field still zero) + the table.
  const std::uint32_t meta_crc = util::crc32c_fast(buffer);
  put_u32_at(buffer, kMetaCrcOffset, meta_crc);

  for (std::size_t s = 0; s < kSectionCount; ++s) {
    while (buffer.size() < offsets[s]) buffer.push_back(std::byte{0});
    buffer.insert(buffer.end(), plan[s].stored->begin(), plan[s].stored->end());
  }
  while ((buffer.size() & 7U) != 0) buffer.push_back(std::byte{0});
  buffer.insert(buffer.end(), kTailMagic.begin(), kTailMagic.end());
  EYEBALL_DCHECK(buffer.size() == file_size, "artifact assembly size drifted");

  out = std::move(buffer);
  return util::Status{};
}

util::Status ArtifactCodec::write(util::FileSystem& fs, const std::string& path,
                                  const TargetDataset& dataset,
                                  std::span<const AsAnalysis> analyses,
                                  std::uint64_t epoch, std::uint64_t config_fingerprint,
                                  const EncodeOptions& options) {
  std::vector<std::byte> bytes;
  if (util::Status status =
          encode(dataset, analyses, epoch, config_fingerprint, bytes, options);
      !status.ok()) {
    return status;
  }
  return util::atomic_write_file(fs, path, bytes);
}

// ---- view: open + validation ----------------------------------------------

util::Status ArtifactView::open(const std::string& path, util::FileSystem& fs,
                                ArtifactView& out) {
  ArtifactView view;
  if (util::Status status = fs.map_read_only(path, view.map_); !status.ok()) {
    return status;
  }
  if (util::Status status = view.load(view.map_.bytes()); !status.ok()) {
    return status.with_context("artifact '" + path + "'");
  }
  out = std::move(view);
  return util::Status{};
}

util::Status ArtifactView::open(const std::string& path, ArtifactView& out) {
  return open(path, util::local_filesystem(), out);
}

util::Status ArtifactView::from_bytes(std::vector<std::byte> bytes, ArtifactView& out) {
  ArtifactView view;
  view.owned_ = std::move(bytes);
  if (util::Status status = view.load(view.owned_); !status.ok()) return status;
  out = std::move(view);
  return util::Status{};
}

util::Status ArtifactView::from_borrowed(std::span<const std::byte> bytes,
                                         ArtifactView& out) {
  ArtifactView view;
  if (util::Status status = view.load(bytes); !status.ok()) return status;
  out = std::move(view);
  return util::Status{};
}

util::Status ArtifactView::load(std::span<const std::byte> bytes) {
  bytes_ = bytes;

  // 1. Envelope: sizes and magics.  Every truncation length fails here (the
  // recorded file size no longer matches) or at the meta-region bound.
  if (bytes.size() < kHeaderSize + kTailSize) {
    return corruption_at("file shorter than the fixed envelope");
  }
  // The encoder pads every section to 8 bytes and all fixed regions are
  // 8-aligned, so a well-formed image's size is always a multiple of 8.
  // Rejecting unaligned sizes here keeps payload_end 8-aligned, which the
  // section-table walk's align8 packing arithmetic relies on.
  if (bytes.size() % 8 != 0) {
    return corruption_at("file size is not 8-aligned");
  }
  if (!std::equal(kHeadMagic.begin(), kHeadMagic.end(), bytes.begin())) {
    return corruption_at("bad head magic");
  }
  const std::uint32_t version = load_u32(bytes, 8);
  const std::uint32_t section_count = load_u32(bytes, 12);
  const std::uint64_t recorded_size = load_u64(bytes, 32);
  // Bound the table before touching it; 1024 is far past any real format
  // revision and keeps the arithmetic overflow-free.
  if (section_count > 1024) return corruption_at("implausible section count");
  const std::size_t table_size = section_count * kTableEntrySize;
  if (bytes.size() < kHeaderSize + table_size + kTailSize) {
    return corruption_at("file truncated inside the section table");
  }
  if (recorded_size != bytes.size()) {
    return corruption_at("recorded file size does not match the image");
  }
  if (!std::equal(kTailMagic.begin(), kTailMagic.end(),
                  bytes.end() - static_cast<std::ptrdiff_t>(kTailSize))) {
    return corruption_at("bad tail magic");
  }

  // 2. Meta CRC over header + table (with the CRC field zeroed), THEN the
  // version check: a flipped version byte is kCorruption, a CRC-valid
  // higher version is a genuine kVersionMismatch.
  {
    std::vector<std::byte> meta(bytes.begin(),
                                bytes.begin() + static_cast<std::ptrdiff_t>(
                                                    kHeaderSize + table_size));
    const std::uint32_t stored_crc = load_u32(meta, kMetaCrcOffset);
    put_u32_at(meta, kMetaCrcOffset, 0);
    if (util::crc32c_fast(meta) != stored_crc) {
      return corruption_at("meta CRC mismatch (header or section table damaged)");
    }
  }
  if (version != ArtifactCodec::kFormatVersion) {
    return util::Status::version_mismatch(
        "artifact: format version " + std::to_string(version) + ", this build reads " +
        std::to_string(ArtifactCodec::kFormatVersion));
  }
  if (section_count != kSectionCount) {
    return corruption_at("wrong section count for format version 1");
  }
  const std::uint64_t epoch = load_u64(bytes, 16);
  const std::uint64_t fingerprint = load_u64(bytes, 24);
  const std::uint64_t as_count64 = load_u64(bytes, 40);
  if (as_count64 > bytes.size() / kAsEntrySize) {
    return corruption_at("AS count exceeds what the image could hold");
  }
  const auto n = static_cast<std::size_t>(as_count64);

  // 3. Section-table walk: exact ids, exact packing, known encodings.
  struct Section {
    std::uint32_t encoding = 0;
    std::uint64_t offset = 0;
    std::uint64_t stored_size = 0;
    std::uint64_t raw_size = 0;
    std::uint32_t crc = 0;
  };
  std::array<Section, kSectionCount> sections;
  {
    const std::size_t payload_end = bytes.size() - kTailSize;
    std::uint64_t cursor = kHeaderSize + table_size;
    for (std::size_t s = 0; s < kSectionCount; ++s) {
      const std::size_t at = kHeaderSize + s * kTableEntrySize;
      Section& sec = sections[s];
      const std::uint32_t id = load_u32(bytes, at);
      sec.encoding = load_u32(bytes, at + 4);
      sec.offset = load_u64(bytes, at + 8);
      sec.stored_size = load_u64(bytes, at + 16);
      sec.raw_size = load_u64(bytes, at + 24);
      sec.crc = load_u32(bytes, at + 32);
      if (id != s + 1) return corruption_at("section ids out of order");
      if (sec.encoding != kEncodingRaw && sec.encoding != kEncodingZstd) {
        return corruption_at("unknown section encoding");
      }
      if (sec.encoding == kEncodingRaw && sec.raw_size != sec.stored_size) {
        return corruption_at("raw section with mismatched raw/stored sizes");
      }
      // raw_size drives an allocation at decompression time, so bound it
      // before anything trusts it.  A zstd block emits at most 128 KiB from
      // a ~4-byte RLE header, so no real frame expands beyond 32768x; a
      // table claiming more is corrupt regardless of what the payload says,
      // and rejecting it here keeps a crafted raw_size (e.g. 2^60) from
      // turning into an OOM/bad_alloc escaping this typed-Status path.
      if (sec.encoding == kEncodingZstd &&
          sec.raw_size / kMaxZstdExpansion > sec.stored_size) {
        return corruption_at("zstd section claims an impossible expansion ratio");
      }
      // Exact packing: each section starts at the previous one's padded
      // end.  This single equality makes out-of-bounds, overlapping and
      // misaligned offset-table entries all typed errors.
      const std::uint64_t expected = align8(cursor);
      if (sec.offset != expected) {
        return corruption_at("section offset breaks the packing rule");
      }
      // Guard the offset before subtracting: with an unaligned payload_end
      // the align8 packing rule could otherwise place `expected` past the
      // end and the u64 difference would wrap.  The alignment check in the
      // envelope makes that unreachable, but keep the arithmetic locally
      // safe rather than depending on a check 80 lines away.
      if (sec.offset > payload_end ||
          sec.stored_size > payload_end - sec.offset) {
        return corruption_at("section runs past the end of the image");
      }
      // Padding between sections is dead space; require zeros so no byte of
      // the image is outside some check's coverage.
      for (std::uint64_t p = cursor; p < sec.offset; ++p) {
        if (bytes[p] != std::byte{0}) return corruption_at("nonzero section padding");
      }
      cursor = sec.offset + sec.stored_size;
    }
    for (std::uint64_t p = cursor; p < payload_end; ++p) {
      if (bytes[p] != std::byte{0}) return corruption_at("nonzero trailing padding");
    }
  }

  // 4. Payload CRCs (hardware-accelerated; this is the only full read of
  // the image at open — everything later is query-driven page touches).
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const std::span<const std::byte> stored =
        bytes.subspan(sections[s].offset, sections[s].stored_size);
    if (util::crc32c_fast(stored) != sections[s].crc) {
      return corruption_at("section CRC mismatch");
    }
  }

  // 5. Decompress cold sections (owned side buffers); raw sections are
  // served straight from the mapping.
  std::vector<std::vector<std::byte>> inflated(kSectionCount);
  std::array<std::span<const std::byte>, kSectionCount> payload;
  for (std::size_t s = 0; s < kSectionCount; ++s) {
    const std::span<const std::byte> stored =
        bytes.subspan(sections[s].offset, sections[s].stored_size);
    if (sections[s].encoding == kEncodingRaw) {
      payload[s] = stored;
      continue;
    }
#if defined(EYEBALL_HAS_ZSTD)
    // The encoder's one-shot ZSTD_compress always records the content size
    // in the frame header, so it must equal the table's raw_size.  Checking
    // before the allocation means a frame/table disagreement is a typed
    // error, not a buffer sized by whichever side an attacker forged.
    const unsigned long long frame_raw =
        ZSTD_getFrameContentSize(stored.data(), stored.size());
    if (frame_raw == ZSTD_CONTENTSIZE_ERROR ||
        frame_raw == ZSTD_CONTENTSIZE_UNKNOWN ||
        frame_raw != sections[s].raw_size) {
      return corruption_at("zstd frame content size disagrees with the table");
    }
    std::vector<std::byte>& raw = inflated[s];
    try {
      raw.assign(sections[s].raw_size, std::byte{0});
    } catch (const std::bad_alloc&) {
      // raw_size is already ratio-bounded by the table walk; if the host
      // still cannot back the buffer, surface it as a typed error rather
      // than letting bad_alloc escape the no-throw load contract.
      return util::Status::io_error(
          "artifact: cannot allocate buffer for zstd section");
    }
    const std::size_t got = ZSTD_decompress(raw.data(), raw.size(), stored.data(),
                                            stored.size());
    if (ZSTD_isError(got) != 0U || got != raw.size()) {
      return corruption_at("zstd section fails to decompress to its raw size");
    }
    payload[s] = raw;
#else
    // A well-formed artifact this build cannot read — the same taxonomy
    // slot as a newer format version, not corruption.
    return util::Status::version_mismatch(
        "artifact: zstd-compressed section but this binary was built without zstd");
#endif
  }

  // 6. Structural walk.
  const std::span<const std::byte> stats_pay = payload[kSecStats - 1];
  const std::span<const std::byte> index_pay = payload[kSecAsIndex - 1];
  const std::span<const std::byte> order_pay = payload[kSecAsnOrder - 1];
  const std::span<const std::byte> peers_pay = payload[kSecPeers - 1];
  const std::span<const std::byte> runs_pay = payload[kSecGridRuns - 1];
  const std::span<const std::byte> grid_pay = payload[kSecGridValues - 1];
  const std::span<const std::byte> parts_pay = payload[kSecPartitions - 1];
  const std::span<const std::byte> bound_pay = payload[kSecBoundary - 1];
  const std::span<const std::byte> peaks_pay = payload[kSecPeaks - 1];
  const std::span<const std::byte> pops_pay = payload[kSecPops - 1];
  const std::span<const std::byte> regions_pay = payload[kSecRegions - 1];

  // Stats: fixed counters + declared window count.
  if (stats_pay.size() < kStatsFixedSize) return corruption_at("stats section too small");
  DatasetStats stats;
  stats.raw_samples = static_cast<std::size_t>(load_u64(stats_pay, 0));
  stats.missing_geo = static_cast<std::size_t>(load_u64(stats_pay, 8));
  stats.high_error = static_cast<std::size_t>(load_u64(stats_pay, 16));
  stats.unmapped_as = static_cast<std::size_t>(load_u64(stats_pay, 24));
  stats.peers_in_small_ases = static_cast<std::size_t>(load_u64(stats_pay, 32));
  stats.ases_below_min_peers = static_cast<std::size_t>(load_u64(stats_pay, 40));
  stats.ases_above_p90_error = static_cast<std::size_t>(load_u64(stats_pay, 48));
  stats.final_peers = static_cast<std::size_t>(load_u64(stats_pay, 56));
  stats.final_ases = static_cast<std::size_t>(load_u64(stats_pay, 64));
  stats.rejected_samples = static_cast<std::size_t>(load_u64(stats_pay, 72));
  const std::uint64_t window_count = load_u64(stats_pay, 80);
  if (window_count > (stats_pay.size() - kStatsFixedSize) / kWindowRecordSize ||
      stats_pay.size() != kStatsFixedSize + window_count * kWindowRecordSize) {
    return corruption_at("stats window count does not match the section size");
  }
  stats.windows.reserve(static_cast<std::size_t>(window_count));
  for (std::uint64_t w = 0; w < window_count; ++w) {
    const std::size_t at = kStatsFixedSize + static_cast<std::size_t>(w) *
                                                 kWindowRecordSize;
    WindowStats window;
    window.offered = static_cast<std::size_t>(load_u64(stats_pay, at));
    window.duplicates = static_cast<std::size_t>(load_u64(stats_pay, at + 8));
    window.admitted = static_cast<std::size_t>(load_u64(stats_pay, at + 16));
    window.cumulative_unique = static_cast<std::size_t>(load_u64(stats_pay, at + 24));
    window.rejected = static_cast<std::size_t>(load_u64(stats_pay, at + 32));
    stats.windows.push_back(window);
  }

  // Arena element counts.
  if (index_pay.size() != n * kAsEntrySize) {
    return corruption_at("AS index size does not match the AS count");
  }
  if (peers_pay.size() % kPeerRecordSize != 0 ||
      runs_pay.size() % kGridRunRecordSize != 0 || grid_pay.size() % 8 != 0 ||
      parts_pay.size() % kPartitionRecordSize != 0 ||
      bound_pay.size() % kSegmentRecordSize != 0 ||
      peaks_pay.size() % kPeakRecordSize != 0 || pops_pay.size() % kPopRecordSize != 0) {
    return corruption_at("arena size not a multiple of its record size");
  }
  const std::uint64_t total_peers = peers_pay.size() / kPeerRecordSize;
  const std::uint64_t total_runs = runs_pay.size() / kGridRunRecordSize;
  const std::uint64_t total_values = grid_pay.size() / 8;
  const std::uint64_t total_parts = parts_pay.size() / kPartitionRecordSize;
  const std::uint64_t total_segments = bound_pay.size() / kSegmentRecordSize;
  const std::uint64_t total_peaks = peaks_pay.size() / kPeakRecordSize;
  const std::uint64_t total_pops = pops_pay.size() / kPopRecordSize;

  // Per-AS entries: decode, then check that the ranges exactly tile every
  // arena in AS order — the relocation contract that makes in-place reads
  // safe without per-query bounds checks.
  std::vector<AsEntry> entries;
  entries.reserve(n);
  std::uint64_t peer_cur = 0, run_cur = 0, value_cur = 0, part_cur = 0, seg_cur = 0,
                peak_cur = 0, pop_cur = 0, region_cur = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t at = i * kAsEntrySize;
    AsEntry e;
    e.asn = load_u32(index_pay, at);
    e.level = load_u32(index_pay, at + 4);
    e.continent = load_u32(index_pay, at + 8);
    e.dominant_share = load_f64(index_pay, at + 16);
    e.region_offset = load_u64(index_pay, at + 24);
    e.region_size = load_u64(index_pay, at + 32);
    e.peer_offset = load_u64(index_pay, at + 40);
    e.peer_count = load_u64(index_pay, at + 48);
    e.grid_run_offset = load_u64(index_pay, at + 56);
    e.grid_run_count = load_u64(index_pay, at + 64);
    e.grid_value_offset = load_u64(index_pay, at + 72);
    e.grid_nonzero_count = load_u64(index_pay, at + 80);
    e.grid_rows = load_u64(index_pay, at + 88);
    e.grid_cols = load_u64(index_pay, at + 96);
    e.min_lat = load_f64(index_pay, at + 104);
    e.max_lat = load_f64(index_pay, at + 112);
    e.min_lon = load_f64(index_pay, at + 120);
    e.max_lon = load_f64(index_pay, at + 128);
    e.cell_km = load_f64(index_pay, at + 136);
    e.contour_level = load_f64(index_pay, at + 144);
    e.partition_offset = load_u64(index_pay, at + 152);
    e.partition_count = load_u64(index_pay, at + 160);
    e.boundary_offset = load_u64(index_pay, at + 168);
    e.boundary_count = load_u64(index_pay, at + 176);
    e.peak_offset = load_u64(index_pay, at + 184);
    e.peak_count = load_u64(index_pay, at + 192);
    e.pop_offset = load_u64(index_pay, at + 200);
    e.pop_count = load_u64(index_pay, at + 208);
    e.unmapped_peaks = load_u64(index_pay, at + 216);
    e.sample_count = load_u64(index_pay, at + 224);
    e.bandwidth_km = load_f64(index_pay, at + 232);

    if (e.level > static_cast<std::uint32_t>(topology::AsLevel::kGlobal)) {
      return corruption_at("AS level out of range");
    }
    if (e.continent > static_cast<std::uint32_t>(gazetteer::Continent::kOceania)) {
      return corruption_at("continent out of range");
    }
    if (e.region_offset != region_cur || e.region_size > regions_pay.size() - region_cur) {
      return corruption_at("region string range breaks the tiling rule");
    }
    region_cur += e.region_size;
    if (e.peer_offset != peer_cur || e.peer_count > total_peers - peer_cur) {
      return corruption_at("peer range breaks the tiling rule");
    }
    peer_cur += e.peer_count;
    // Grid geometry: box sane, and rows/cols exactly what DensityGrid
    // derives from (box, cell_km) — so materialize() can rebuild the
    // identical grid without the constructor throwing on hostile inputs.
    if (!std::isfinite(e.min_lat) || !std::isfinite(e.max_lat) ||
        !std::isfinite(e.min_lon) || !std::isfinite(e.max_lon) ||
        e.min_lat > e.max_lat || e.min_lon > e.max_lon || e.min_lat < -90.0 ||
        e.max_lat > 90.0 || e.min_lon < -180.0 || e.max_lon > 180.0) {
      return corruption_at("grid bounding box out of range");
    }
    std::uint64_t want_rows = 0, want_cols = 0;
    if (!derive_grid_shape(e.min_lat, e.max_lat, e.min_lon, e.max_lon, e.cell_km,
                           want_rows, want_cols) ||
        want_rows != e.grid_rows || want_cols != e.grid_cols) {
      return corruption_at("grid shape inconsistent with its box and cell size");
    }
    const std::uint64_t cells = e.grid_rows * e.grid_cols;  // capped by derive
    // Zero-suppressed grid: the run and value ranges tile their arenas like
    // every other arena, and the runs themselves must be canonical —
    // non-empty, strictly separated (maximal), inside the grid, covering
    // exactly the declared number of values, and every stored value
    // bit-nonzero.  Canonical form makes encode bytes unique for a given
    // grid and bounds materialize()'s scatter without per-cell checks.
    if (e.grid_run_offset != run_cur || e.grid_run_count > total_runs - run_cur) {
      return corruption_at("grid run range breaks the tiling rule");
    }
    if (e.grid_value_offset != value_cur ||
        e.grid_nonzero_count > total_values - value_cur) {
      return corruption_at("grid value range breaks the tiling rule");
    }
    {
      std::uint64_t covered = 0;
      std::uint64_t prev_end = 0;
      for (std::uint64_t r = 0; r < e.grid_run_count; ++r) {
        const std::size_t run_at =
            static_cast<std::size_t>(run_cur + r) * kGridRunRecordSize;
        const std::uint64_t start = load_u64(runs_pay, run_at);
        const std::uint64_t count = load_u64(runs_pay, run_at + 8);
        if (count == 0) return corruption_at("empty grid run");
        if (r > 0 && start <= prev_end) {
          return corruption_at("grid runs overlap or are not maximal");
        }
        if (start > cells || count > cells - start) {
          return corruption_at("grid run outside its grid");
        }
        prev_end = start + count;
        covered += count;
      }
      if (covered != e.grid_nonzero_count) {
        return corruption_at("grid runs do not cover the declared nonzero count");
      }
      for (std::uint64_t v = 0; v < e.grid_nonzero_count; ++v) {
        if (load_u64(grid_pay, static_cast<std::size_t>(value_cur + v) * 8) == 0) {
          return corruption_at("bit-zero value stored in the nonzero grid arena");
        }
      }
    }
    run_cur += e.grid_run_count;
    value_cur += e.grid_nonzero_count;
    if (e.partition_offset != part_cur || e.partition_count > total_parts - part_cur) {
      return corruption_at("partition range breaks the tiling rule");
    }
    part_cur += e.partition_count;
    if (e.boundary_offset != seg_cur || e.boundary_count > total_segments - seg_cur) {
      return corruption_at("boundary range breaks the tiling rule");
    }
    seg_cur += e.boundary_count;
    if (e.peak_offset != peak_cur || e.peak_count > total_peaks - peak_cur) {
      return corruption_at("peak range breaks the tiling rule");
    }
    for (std::uint64_t p = 0; p < e.peak_count; ++p) {
      const std::size_t peak_at =
          static_cast<std::size_t>(peak_cur + p) * kPeakRecordSize;
      if (load_u32(peaks_pay, peak_at + 32) >= e.grid_rows ||
          load_u32(peaks_pay, peak_at + 36) >= e.grid_cols) {
        return corruption_at("peak cell outside its grid");
      }
    }
    peak_cur += e.peak_count;
    if (e.pop_offset != pop_cur || e.pop_count > total_pops - pop_cur) {
      return corruption_at("PoP range breaks the tiling rule");
    }
    pop_cur += e.pop_count;
    entries.push_back(e);
  }
  if (peer_cur != total_peers || run_cur != total_runs || value_cur != total_values ||
      part_cur != total_parts || seg_cur != total_segments || peak_cur != total_peaks ||
      pop_cur != total_pops) {
    return corruption_at("arena larger than the union of AS ranges");
  }
  if (regions_pay.size() - region_cur >= 8) {
    return corruption_at("region arena larger than the union of AS ranges");
  }
  for (std::size_t p = static_cast<std::size_t>(region_cur); p < regions_pay.size();
       ++p) {
    if (regions_pay[p] != std::byte{0}) return corruption_at("nonzero region padding");
  }

  // ASN order: a stable-sorted permutation of [0, n).
  if (order_pay.size() != align8(n * 4)) {
    return corruption_at("ASN order size does not match the AS count");
  }
  for (std::size_t p = n * 4; p < order_pay.size(); ++p) {
    if (order_pay[p] != std::byte{0}) return corruption_at("nonzero ASN order padding");
  }
  {
    std::vector<bool> seen(n, false);
    std::uint32_t prev_asn = 0;
    std::uint32_t prev_index = 0;
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint32_t index = load_u32(order_pay, k * 4);
      if (index >= n || seen[index]) {
        return corruption_at("ASN order is not a permutation of the ASes");
      }
      seen[index] = true;
      const std::uint32_t asn = entries[index].asn;
      if (k > 0 && (asn < prev_asn || (asn == prev_asn && index <= prev_index))) {
        return corruption_at("ASN order is not stably sorted");
      }
      prev_asn = asn;
      prev_index = index;
    }
  }

  // The f64 arena is read in place; its 8-alignment is guaranteed by the
  // section packing as long as the image base itself is 8-aligned (true for
  // mmap and heap buffers; a borrowed span could violate it).
  if ((reinterpret_cast<std::uintptr_t>(grid_pay.data()) & 7U) != 0) {
    return util::Status::invalid_argument(
        "artifact: image base must be 8-byte aligned for in-place reads");
  }

  // Commit — nothing above mutated the view's published state.
  opened_ = true;
  epoch_ = epoch;
  config_fingerprint_ = fingerprint;
  stats_ = std::move(stats);
  entries_ = std::move(entries);
  inflated_ = std::move(inflated);
  asn_order_ = order_pay;
  peers_ = peers_pay;
  grid_runs_ = runs_pay;
  // In-place reinterpret of the validated, 8-aligned arena as its on-disk
  // element type; the static_asserts at the top of this file pin the
  // little-endian IEEE-754 representation this relies on.
  grid_values_ = {reinterpret_cast<const double*>(grid_pay.data()), total_values};
  partitions_ = parts_pay;
  boundary_ = bound_pay;
  peaks_ = peaks_pay;
  pops_ = pops_pay;
  regions_ = regions_pay;
  return util::Status{};
}

std::optional<std::size_t> ArtifactView::find_index(net::Asn asn) const noexcept {
  const std::uint32_t key = net::value_of(asn);
  std::size_t lo = 0;
  std::size_t hi = entries_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::uint32_t mid_asn = entries_[load_u32(asn_order_, mid * 4)].asn;
    if (mid_asn < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == entries_.size()) return std::nullopt;
  const std::uint32_t index = load_u32(asn_order_, lo * 4);
  if (entries_[index].asn != key) return std::nullopt;
  return index;
}

std::optional<ArtifactView::AsView> ArtifactView::find(net::Asn asn) const noexcept {
  const std::optional<std::size_t> index = find_index(asn);
  if (!index.has_value()) return std::nullopt;
  return as_at(*index);
}

// ---- view: per-AS accessors ------------------------------------------------

net::Asn ArtifactView::AsView::asn() const noexcept {
  return net::Asn{view_->entries_[index_].asn};
}

topology::AsLevel ArtifactView::AsView::level() const noexcept {
  return static_cast<topology::AsLevel>(view_->entries_[index_].level);
}

gazetteer::Continent ArtifactView::AsView::continent() const noexcept {
  return static_cast<gazetteer::Continent>(view_->entries_[index_].continent);
}

double ArtifactView::AsView::dominant_share() const noexcept {
  return view_->entries_[index_].dominant_share;
}

std::string_view ArtifactView::AsView::dominant_region() const noexcept {
  const AsEntry& e = view_->entries_[index_];
  return {reinterpret_cast<const char*>(view_->regions_.data()) + e.region_offset,
          static_cast<std::size_t>(e.region_size)};
}

std::size_t ArtifactView::AsView::peer_count() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].peer_count);
}

PeerRecord ArtifactView::AsView::peer(std::size_t i) const noexcept {
  const AsEntry& e = view_->entries_[index_];
  EYEBALL_DCHECK(i < e.peer_count, "artifact peer read out of bounds");
  const std::span<const std::byte> arena = view_->peers_;
  const std::size_t at =
      static_cast<std::size_t>(e.peer_offset + i) * kPeerRecordSize;
  PeerRecord record;
  record.ip = net::Ipv4Address{load_u32(arena, at)};
  record.app = static_cast<p2p::App>(load_u32(arena, at + 4));
  record.reported_city = load_u32(arena, at + 8);
  record.location = {load_f64(arena, at + 16), load_f64(arena, at + 24)};
  record.geo_error_km = load_f64(arena, at + 32);
  return record;
}

std::size_t ArtifactView::AsView::grid_rows() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].grid_rows);
}

std::size_t ArtifactView::AsView::grid_cols() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].grid_cols);
}

geo::BoundingBox ArtifactView::AsView::grid_box() const {
  const AsEntry& e = view_->entries_[index_];
  return {e.min_lat, e.max_lat, e.min_lon, e.max_lon};
}

double ArtifactView::AsView::grid_cell_km() const noexcept {
  return view_->entries_[index_].cell_km;
}

std::size_t ArtifactView::AsView::grid_run_count() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].grid_run_count);
}

GridRun ArtifactView::AsView::grid_run(std::size_t i) const noexcept {
  const AsEntry& e = view_->entries_[index_];
  EYEBALL_DCHECK(i < e.grid_run_count, "artifact grid run read out of bounds");
  const std::span<const std::byte> arena = view_->grid_runs_;
  const std::size_t at =
      static_cast<std::size_t>(e.grid_run_offset + i) * kGridRunRecordSize;
  return GridRun{load_u64(arena, at), load_u64(arena, at + 8)};
}

std::size_t ArtifactView::AsView::grid_nonzero_count() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].grid_nonzero_count);
}

std::span<const double> ArtifactView::AsView::grid_nonzero_values() const noexcept {
  const AsEntry& e = view_->entries_[index_];
  return view_->grid_values_.subspan(static_cast<std::size_t>(e.grid_value_offset),
                                     static_cast<std::size_t>(e.grid_nonzero_count));
}

double ArtifactView::AsView::contour_level() const noexcept {
  return view_->entries_[index_].contour_level;
}

std::size_t ArtifactView::AsView::partition_count() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].partition_count);
}

kde::FootprintPartition ArtifactView::AsView::partition(std::size_t i) const noexcept {
  const AsEntry& e = view_->entries_[index_];
  EYEBALL_DCHECK(i < e.partition_count, "artifact partition read out of bounds");
  const std::span<const std::byte> arena = view_->partitions_;
  const std::size_t at =
      static_cast<std::size_t>(e.partition_offset + i) * kPartitionRecordSize;
  kde::FootprintPartition p;
  p.cell_count = static_cast<std::size_t>(load_u64(arena, at));
  p.area_km2 = load_f64(arena, at + 8);
  p.mass = load_f64(arena, at + 16);
  p.peak_density = load_f64(arena, at + 24);
  p.peak_location = {load_f64(arena, at + 32), load_f64(arena, at + 40)};
  p.min_lat = load_f64(arena, at + 48);
  p.max_lat = load_f64(arena, at + 56);
  p.min_lon = load_f64(arena, at + 64);
  p.max_lon = load_f64(arena, at + 72);
  return p;
}

std::size_t ArtifactView::AsView::boundary_count() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].boundary_count);
}

kde::BoundarySegment ArtifactView::AsView::boundary(std::size_t i) const noexcept {
  const AsEntry& e = view_->entries_[index_];
  EYEBALL_DCHECK(i < e.boundary_count, "artifact boundary read out of bounds");
  const std::span<const std::byte> arena = view_->boundary_;
  const std::size_t at =
      static_cast<std::size_t>(e.boundary_offset + i) * kSegmentRecordSize;
  kde::BoundarySegment s;
  s.a = {load_f64(arena, at), load_f64(arena, at + 8)};
  s.b = {load_f64(arena, at + 16), load_f64(arena, at + 24)};
  return s;
}

std::size_t ArtifactView::AsView::peak_count() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].peak_count);
}

kde::Peak ArtifactView::AsView::peak(std::size_t i) const noexcept {
  const AsEntry& e = view_->entries_[index_];
  EYEBALL_DCHECK(i < e.peak_count, "artifact peak read out of bounds");
  const std::span<const std::byte> arena = view_->peaks_;
  const std::size_t at = static_cast<std::size_t>(e.peak_offset + i) * kPeakRecordSize;
  kde::Peak p;
  p.location = {load_f64(arena, at), load_f64(arena, at + 8)};
  p.density = load_f64(arena, at + 16);
  p.score = load_f64(arena, at + 24);
  p.row = load_u32(arena, at + 32);
  p.col = load_u32(arena, at + 36);
  return p;
}

std::size_t ArtifactView::AsView::pop_count() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].pop_count);
}

PopEntry ArtifactView::AsView::pop(std::size_t i) const noexcept {
  const AsEntry& e = view_->entries_[index_];
  EYEBALL_DCHECK(i < e.pop_count, "artifact PoP read out of bounds");
  const std::span<const std::byte> arena = view_->pops_;
  const std::size_t at = static_cast<std::size_t>(e.pop_offset + i) * kPopRecordSize;
  PopEntry pop;
  pop.city = load_u32(arena, at);
  pop.score = load_f64(arena, at + 8);
  pop.peak_density = load_f64(arena, at + 16);
  pop.peak_location = {load_f64(arena, at + 24), load_f64(arena, at + 32)};
  return pop;
}

std::size_t ArtifactView::AsView::unmapped_peaks() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].unmapped_peaks);
}

std::size_t ArtifactView::AsView::sample_count() const noexcept {
  return static_cast<std::size_t>(view_->entries_[index_].sample_count);
}

double ArtifactView::AsView::bandwidth_km() const noexcept {
  return view_->entries_[index_].bandwidth_km;
}

AsAnalysis ArtifactView::AsView::materialize() const {
  const AsEntry& e = view_->entries_[index_];

  Classification classification;
  classification.level = level();
  classification.dominant_region = std::string{dominant_region()};
  classification.dominant_share = e.dominant_share;
  classification.continent = continent();

  // The open-time walk pinned rows/cols to exactly what this constructor
  // derives, so passing the cell count as the budget reproduces the
  // original grid without triggering the coarsening loop.
  const std::size_t cells = grid_rows() * grid_cols();
  kde::DensityGrid grid{grid_box(), e.cell_km, cells == 0 ? 1 : cells};
  EYEBALL_DCHECK(grid.rows() == grid_rows() && grid.cols() == grid_cols(),
                 "artifact grid shape diverged from DensityGrid's derivation");
  {
    // Scatter the nonzero runs into the (zero-initialized) dense grid; the
    // open-time walk guaranteed the runs stay inside it and consume exactly
    // the nonzero arena range.
    const std::span<const double> values = grid_nonzero_values();
    const std::span<double> dense = grid.values();
    std::size_t cursor = 0;
    for (std::size_t r = 0; r < grid_run_count(); ++r) {
      const GridRun run = grid_run(r);
      std::copy(values.begin() + static_cast<std::ptrdiff_t>(cursor),
                values.begin() + static_cast<std::ptrdiff_t>(cursor + run.count),
                dense.begin() + static_cast<std::ptrdiff_t>(run.start_cell));
      cursor += static_cast<std::size_t>(run.count);
    }
  }

  kde::Footprint contour;
  contour.level = e.contour_level;
  contour.partitions.reserve(partition_count());
  for (std::size_t i = 0; i < partition_count(); ++i) {
    contour.partitions.push_back(partition(i));
  }
  contour.boundary.reserve(boundary_count());
  for (std::size_t i = 0; i < boundary_count(); ++i) {
    contour.boundary.push_back(boundary(i));
  }

  std::vector<kde::Peak> peaks;
  peaks.reserve(peak_count());
  for (std::size_t i = 0; i < peak_count(); ++i) peaks.push_back(peak(i));

  AsFootprint footprint{std::move(grid), std::move(contour), std::move(peaks),
                        sample_count(), e.bandwidth_km};

  PopFootprint pops;
  pops.pops.reserve(pop_count());
  for (std::size_t i = 0; i < pop_count(); ++i) pops.pops.push_back(pop(i));
  pops.unmapped_peaks = unmapped_peaks();

  return AsAnalysis{asn(), std::move(classification), std::move(footprint),
                    std::move(pops)};
}

AsPeerSet ArtifactView::AsView::materialize_peers() const {
  AsPeerSet as;
  as.asn = asn();
  as.peers.reserve(peer_count());
  for (std::size_t i = 0; i < peer_count(); ++i) as.peers.push_back(peer(i));
  return as;
}

}  // namespace eyeball::core
