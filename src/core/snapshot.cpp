#include "core/snapshot.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstring>
#include <functional>
#include <string>
#include <utility>

#include "core/streaming_dataset.hpp"
#include "util/annotations.hpp"
#include "util/crc32c.hpp"
#include "util/file.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace eyeball::core {

namespace {

// Layout constants (see the format comment in snapshot.hpp).
constexpr char kHeadMagic[8] = {'E', 'Y', 'B', 'S', 'N', 'A', 'P', '1'};
constexpr char kTailMagic[8] = {'E', 'Y', 'B', 'S', 'N', 'E', 'N', 'D'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8 + 4;
constexpr std::size_t kSectionHeaderSize = 4 + 8 + 4;
constexpr std::size_t kFooterSize = 4 + 8;

// Section ids, in the order they appear in the file.
enum SectionId : std::uint32_t {
  kConfig = 1,
  kBuckets = 2,
  kSeen = 3,
  kStats = 4,
  kTouched = 5,
};
constexpr std::uint32_t kSectionCount = 5;

constexpr std::size_t kPeerRecordSize = 4 + 1 + 8 + 8 + 8 + 4;
constexpr std::size_t kBucketHeaderSize = 4 + 8;
constexpr std::size_t kStatsCounterBytes = 10 * 8;
constexpr std::size_t kWindowRecordSize = 5 * 8;
constexpr std::size_t kConfigPayloadSize = 3 * 8;

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffU));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffU));
  }
}

void put_f64(std::vector<std::byte>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked little-endian reader over a byte span.  Every read
/// returns false instead of walking past the end; callers funnel a false
/// into kCorruption.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }

  [[nodiscard]] bool read_u8(std::uint8_t& out) noexcept {
    if (remaining() < 1) return false;
    out = std::to_integer<std::uint8_t>(data_[pos_++]);
    return true;
  }

  [[nodiscard]] bool read_u32(std::uint32_t& out) noexcept {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool read_u64(std::uint64_t& out) noexcept {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(data_[pos_ + static_cast<std::size_t>(i)]))
             << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  [[nodiscard]] bool read_f64(double& out) noexcept {
    std::uint64_t bits = 0;
    if (!read_u64(bits)) return false;
    out = std::bit_cast<double>(bits);
    return true;
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

[[nodiscard]] util::Status corrupt(const char* what) {
  return util::Status::corruption(what);
}

/// snapshot.<20-digit zero-padded generation>.eyb
[[nodiscard]] std::string snapshot_filename(std::uint64_t generation) {
  std::string digits = std::to_string(generation);
  std::string out = "snapshot.";
  // eyeball-lint: allow(unchecked-status): std::string::append, not the Status-returning file API
  out.append(20 - digits.size(), '0');
  out += digits;
  out += ".eyb";
  return out;
}

/// Parses a snapshot filename; returns false for anything else in the dir.
[[nodiscard]] bool parse_snapshot_filename(const std::string& name,
                                           std::uint64_t& generation) {
  constexpr std::string_view prefix = "snapshot.";
  constexpr std::string_view suffix = ".eyb";
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
  const char* first = name.data() + prefix.size();
  const char* last = first + 20;
  if (!std::all_of(first, last, [](char c) { return c >= '0' && c <= '9'; })) {
    return false;
  }
  const auto [ptr, ec] = std::from_chars(first, last, generation);
  return ec == std::errc{} && ptr == last;
}

/// Like parse_snapshot_filename, but ALSO recognizes a quarantined
/// generation (`snapshot.<gen>.eyb.quarantined`), reporting which kind it
/// saw.  Generation-number allocation must consult both: a quarantined
/// generation's number may be the highest in the directory, and reusing it
/// would let a fresh save collide with preserved evidence (the new file's
/// quarantine would overwrite the old corpse).
[[nodiscard]] bool parse_generation_name(const std::string& name,
                                         std::uint64_t& generation,
                                         bool& quarantined) {
  if (parse_snapshot_filename(name, generation)) {
    quarantined = false;
    return true;
  }
  constexpr std::string_view suffix = util::kQuarantineSuffix;
  if (name.size() > suffix.size() &&
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
    const std::string stem = name.substr(0, name.size() - suffix.size());
    if (parse_snapshot_filename(stem, generation)) {
      quarantined = true;
      return true;
    }
  }
  return false;
}

}  // namespace

std::uint64_t SnapshotCodec::config_fingerprint(const DatasetConfig& config) noexcept {
  // Only the fields that change results; see the header comment.
  std::uint64_t fp = util::mix64(std::bit_cast<std::uint64_t>(config.max_geo_error_km),
                                 static_cast<std::uint64_t>(config.min_peers_per_as));
  return util::mix64(fp, std::bit_cast<std::uint64_t>(config.max_p90_geo_error_km));
}

// The codec reads (encode) and replaces (decode's commit) the builder's
// serial_-guarded state without claiming the role itself: its caller —
// save/restore_snapshot_locked, or a test that owns the builder outright —
// already holds it, and the capability expression `builder.serial_` is not
// spellable from a friend's signature.  Hence the targeted opt-out; the
// single-owner contract is stated in the codec's header comment.
std::vector<std::byte> SnapshotCodec::encode(const StreamingDatasetBuilder& builder,
                                             std::uint64_t generation)
    EYEBALL_NO_THREAD_SAFETY_ANALYSIS {
  std::vector<std::byte> out;

  // Header.
  for (const char c : kHeadMagic) out.push_back(static_cast<std::byte>(c));
  put_u32(out, kFormatVersion);
  put_u64(out, generation);
  put_u64(out, config_fingerprint(builder.config_));
  put_u32(out, kSectionCount);

  std::vector<std::byte> payload;
  const auto emit_section = [&out, &payload](std::uint32_t id) {
    put_u32(out, id);
    put_u64(out, payload.size());
    put_u32(out, util::crc32c(payload));
    out.insert(out.end(), payload.begin(), payload.end());
    payload.clear();
  };

  // kConfig: the recorded result-affecting fields, human-recoverable even
  // though the fingerprint alone decides admissibility.
  put_f64(payload, builder.config_.max_geo_error_km);
  put_u64(payload, static_cast<std::uint64_t>(builder.config_.min_peers_per_as));
  put_f64(payload, builder.config_.max_p90_geo_error_km);
  emit_section(kConfig);

  // kBuckets: the live ASN-ordered peer buckets (std::map iteration is
  // already canonical ascending order).
  put_u64(payload, static_cast<std::uint64_t>(builder.by_as_.size()));
  for (const auto& [asn_value, set] : builder.by_as_) {
    put_u32(payload, asn_value);
    put_u64(payload, static_cast<std::uint64_t>(set.peers.size()));
    for (const PeerRecord& peer : set.peers) {
      put_u32(payload, peer.ip.value());
      payload.push_back(static_cast<std::byte>(peer.app));
      put_f64(payload, peer.location.lat_deg);
      put_f64(payload, peer.location.lon_deg);
      put_f64(payload, peer.geo_error_km);
      put_u32(payload, peer.reported_city);
    }
  }
  emit_section(kBuckets);

  // kSeen: the dedup keys, sorted so equal states encode identically.
  std::vector<std::uint64_t> seen_keys{builder.seen_.begin(), builder.seen_.end()};
  std::sort(seen_keys.begin(), seen_keys.end());
  put_u64(payload, static_cast<std::uint64_t>(seen_keys.size()));
  for (const std::uint64_t key : seen_keys) put_u64(payload, key);
  emit_section(kSeen);

  // kStats: cumulative counters + per-window snapshots.
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.raw_samples));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.missing_geo));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.high_error));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.unmapped_as));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.peers_in_small_ases));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.ases_below_min_peers));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.ases_above_p90_error));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.final_peers));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.final_ases));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.rejected_samples));
  put_u64(payload, static_cast<std::uint64_t>(builder.stats_.windows.size()));
  for (const WindowStats& w : builder.stats_.windows) {
    put_u64(payload, static_cast<std::uint64_t>(w.offered));
    put_u64(payload, static_cast<std::uint64_t>(w.duplicates));
    put_u64(payload, static_cast<std::uint64_t>(w.admitted));
    put_u64(payload, static_cast<std::uint64_t>(w.cumulative_unique));
    put_u64(payload, static_cast<std::uint64_t>(w.rejected));
  }
  emit_section(kStats);

  // kTouched: sorted for canonical bytes.
  std::vector<std::uint32_t> touched{builder.touched_.begin(), builder.touched_.end()};
  std::sort(touched.begin(), touched.end());
  put_u64(payload, static_cast<std::uint64_t>(touched.size()));
  for (const std::uint32_t asn : touched) put_u32(payload, asn);
  emit_section(kTouched);

  // Footer: whole-file CRC over everything so far, then the tail magic.
  put_u32(out, util::crc32c(out));
  for (const char c : kTailMagic) out.push_back(static_cast<std::byte>(c));
  return out;
}

// See encode() above for why the analysis is opted out here.
util::Status SnapshotCodec::decode(std::span<const std::byte> bytes,
                                   StreamingDatasetBuilder& builder,
                                   std::uint64_t* generation)
    EYEBALL_NO_THREAD_SAFETY_ANALYSIS {
  // ---- Envelope: magics, whole-file CRC, version, fingerprint. ----
  if (bytes.size() < kHeaderSize + kSectionCount * kSectionHeaderSize + kFooterSize) {
    return corrupt("snapshot truncated: shorter than the minimum envelope");
  }
  if (std::memcmp(bytes.data(), kHeadMagic, sizeof kHeadMagic) != 0) {
    return corrupt("bad head magic: not a snapshot file");
  }
  if (std::memcmp(bytes.data() + bytes.size() - sizeof kTailMagic, kTailMagic,
                  sizeof kTailMagic) != 0) {
    return corrupt("bad tail magic: truncated or overwritten snapshot");
  }
  const std::span<const std::byte> body = bytes.first(bytes.size() - kFooterSize);
  Reader footer{bytes.subspan(bytes.size() - kFooterSize)};
  std::uint32_t stored_file_crc = 0;
  if (!footer.read_u32(stored_file_crc)) return corrupt("unreadable footer");
  // CRC before the version check: a damaged version byte is corruption; a
  // version mismatch verdict is reserved for files that are intact.
  if (util::crc32c(body) != stored_file_crc) {
    return corrupt("whole-file CRC mismatch");
  }

  Reader reader{body};
  std::uint64_t skip = 0;
  static_cast<void>(reader.read_u64(skip));  // head magic, verified above
  std::uint32_t version = 0;
  std::uint64_t stored_generation = 0;
  std::uint64_t stored_fingerprint = 0;
  std::uint32_t section_count = 0;
  if (!reader.read_u32(version) || !reader.read_u64(stored_generation) ||
      !reader.read_u64(stored_fingerprint) || !reader.read_u32(section_count)) {
    return corrupt("unreadable header");
  }
  if (version != kFormatVersion) {
    std::string message = "snapshot format v";
    message += std::to_string(version);
    message += ", this binary reads v";
    message += std::to_string(kFormatVersion);
    return util::Status::version_mismatch(std::move(message));
  }
  if (stored_fingerprint != config_fingerprint(builder.config_)) {
    return util::Status::config_mismatch(
        "snapshot was written under a different dataset configuration; "
        "loading it would silently change results");
  }
  if (section_count != kSectionCount) {
    return corrupt("unexpected section count for format v1");
  }

  // ---- Section walk: bounds, per-section CRC, strict id order. ----
  std::array<std::span<const std::byte>, kSectionCount> sections;
  for (std::uint32_t expected_id = 1; expected_id <= kSectionCount; ++expected_id) {
    std::uint32_t id = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    if (!reader.read_u32(id) || !reader.read_u64(size) || !reader.read_u32(crc)) {
      return corrupt("unreadable section header");
    }
    if (id != expected_id) return corrupt("unknown, duplicate, or misordered section id");
    if (size > reader.remaining()) return corrupt("section payload overruns the file");
    const std::span<const std::byte> payload =
        body.subspan(body.size() - reader.remaining(), static_cast<std::size_t>(size));
    if (util::crc32c(payload) != crc) return corrupt("section CRC mismatch");
    sections[expected_id - 1] = payload;
    reader = Reader{body.subspan(body.size() - reader.remaining() +
                                 static_cast<std::size_t>(size))};
  }
  if (reader.remaining() != 0) return corrupt("trailing garbage after the last section");

  // ---- kConfig: must agree with the header fingerprint AND the live
  // config (defense in depth; the message names the offending field). ----
  {
    Reader r{sections[kConfig - 1]};
    if (sections[kConfig - 1].size() != kConfigPayloadSize) {
      return corrupt("config section has the wrong size");
    }
    double max_geo = 0.0;
    std::uint64_t min_peers = 0;
    double max_p90 = 0.0;
    if (!r.read_f64(max_geo) || !r.read_u64(min_peers) || !r.read_f64(max_p90)) {
      return corrupt("unreadable config section");
    }
    DatasetConfig recorded;
    recorded.max_geo_error_km = max_geo;
    recorded.min_peers_per_as = static_cast<std::size_t>(min_peers);
    recorded.max_p90_geo_error_km = max_p90;
    if (config_fingerprint(recorded) != stored_fingerprint) {
      return corrupt("config section disagrees with the header fingerprint");
    }
    if (std::bit_cast<std::uint64_t>(max_geo) !=
        std::bit_cast<std::uint64_t>(builder.config_.max_geo_error_km)) {
      return util::Status::config_mismatch("max_geo_error_km differs from the live config");
    }
    if (min_peers != static_cast<std::uint64_t>(builder.config_.min_peers_per_as)) {
      return util::Status::config_mismatch("min_peers_per_as differs from the live config");
    }
    if (std::bit_cast<std::uint64_t>(max_p90) !=
        std::bit_cast<std::uint64_t>(builder.config_.max_p90_geo_error_km)) {
      return util::Status::config_mismatch(
          "max_p90_geo_error_km differs from the live config");
    }
  }

  // ---- Parse every data section into temporaries; nothing below touches
  // the builder until all of them have validated. ----
  std::map<std::uint32_t, AsPeerSet> by_as;
  {
    Reader r{sections[kBuckets - 1]};
    std::uint64_t as_count = 0;
    if (!r.read_u64(as_count)) return corrupt("unreadable bucket count");
    if (as_count > r.remaining() / kBucketHeaderSize) {
      return corrupt("bucket count exceeds the section payload");
    }
    std::uint64_t previous_asn = 0;
    bool first = true;
    for (std::uint64_t a = 0; a < as_count; ++a) {
      std::uint32_t asn_value = 0;
      std::uint64_t peer_count = 0;
      if (!r.read_u32(asn_value) || !r.read_u64(peer_count)) {
        return corrupt("unreadable bucket header");
      }
      if (!first && asn_value <= previous_asn) {
        return corrupt("bucket ASNs not strictly ascending");
      }
      first = false;
      previous_asn = asn_value;
      if (peer_count > r.remaining() / kPeerRecordSize) {
        return corrupt("peer count exceeds the section payload");
      }
      AsPeerSet set;
      set.asn = net::Asn{asn_value};
      set.peers.reserve(static_cast<std::size_t>(peer_count));
      for (std::uint64_t p = 0; p < peer_count; ++p) {
        std::uint32_t ip = 0;
        std::uint8_t app = 0;
        double lat = 0.0;
        double lon = 0.0;
        double err = 0.0;
        std::uint32_t city = 0;
        if (!r.read_u32(ip) || !r.read_u8(app) || !r.read_f64(lat) ||
            !r.read_f64(lon) || !r.read_f64(err) || !r.read_u32(city)) {
          return corrupt("unreadable peer record");
        }
        if (app >= p2p::kAllApps.size()) return corrupt("peer record has an unknown app tag");
        if (!geo::is_valid(geo::GeoPoint{lat, lon})) {
          return corrupt("peer record has out-of-range coordinates");
        }
        if (!std::isfinite(err) || err < 0.0) {
          return corrupt("peer record has an invalid geo error");
        }
        set.peers.push_back(PeerRecord{net::Ipv4Address{ip}, static_cast<p2p::App>(app),
                                       geo::GeoPoint{lat, lon}, err, city});
      }
      by_as.emplace_hint(by_as.end(), asn_value, std::move(set));
    }
    if (r.remaining() != 0) return corrupt("trailing bytes in the bucket section");
  }

  std::vector<std::uint64_t> seen_keys;
  {
    Reader r{sections[kSeen - 1]};
    std::uint64_t count = 0;
    if (!r.read_u64(count)) return corrupt("unreadable dedup-key count");
    // Divide, never multiply: a hostile count must not overflow the check.
    if (r.remaining() % 8 != 0 || count != r.remaining() / 8) {
      return corrupt("dedup-key count disagrees with the payload");
    }
    seen_keys.reserve(static_cast<std::size_t>(count));
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint64_t key = 0;
      if (!r.read_u64(key)) return corrupt("unreadable dedup key");
      if (i != 0 && key <= previous) return corrupt("dedup keys not strictly ascending");
      previous = key;
      seen_keys.push_back(key);
    }
  }

  DatasetStats stats;
  {
    Reader r{sections[kStats - 1]};
    std::uint64_t v = 0;
    const auto read_counter = [&r, &v](std::size_t& field) {
      if (!r.read_u64(v)) return false;
      field = static_cast<std::size_t>(v);
      return true;
    };
    if (!read_counter(stats.raw_samples) || !read_counter(stats.missing_geo) ||
        !read_counter(stats.high_error) || !read_counter(stats.unmapped_as) ||
        !read_counter(stats.peers_in_small_ases) ||
        !read_counter(stats.ases_below_min_peers) ||
        !read_counter(stats.ases_above_p90_error) || !read_counter(stats.final_peers) ||
        !read_counter(stats.final_ases) || !read_counter(stats.rejected_samples)) {
      return corrupt("unreadable stats counters");
    }
    std::uint64_t window_count = 0;
    if (!r.read_u64(window_count)) return corrupt("unreadable window count");
    if (r.remaining() % kWindowRecordSize != 0 ||
        window_count != r.remaining() / kWindowRecordSize) {
      return corrupt("window count disagrees with the payload");
    }
    stats.windows.reserve(static_cast<std::size_t>(window_count));
    for (std::uint64_t i = 0; i < window_count; ++i) {
      WindowStats w;
      if (!read_counter(w.offered) || !read_counter(w.duplicates) ||
          !read_counter(w.admitted) || !read_counter(w.cumulative_unique) ||
          !read_counter(w.rejected)) {
        return corrupt("unreadable window record");
      }
      stats.windows.push_back(w);
    }
  }

  std::vector<std::uint32_t> touched;
  {
    Reader r{sections[kTouched - 1]};
    std::uint64_t count = 0;
    if (!r.read_u64(count)) return corrupt("unreadable touched count");
    if (r.remaining() % 4 != 0 || count != r.remaining() / 4) {
      return corrupt("touched count disagrees with the payload");
    }
    touched.reserve(static_cast<std::size_t>(count));
    std::uint32_t previous = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      std::uint32_t asn = 0;
      if (!r.read_u32(asn)) return corrupt("unreadable touched ASN");
      if (i != 0 && asn <= previous) return corrupt("touched ASNs not strictly ascending");
      previous = asn;
      touched.push_back(asn);
    }
  }

  // ---- Cross-section invariants of real builder state. ----
  if (stats.raw_samples != seen_keys.size()) {
    return corrupt("raw_samples disagrees with the dedup-key count");
  }
  if (!stats.windows.empty() &&
      stats.windows.back().cumulative_unique != seen_keys.size()) {
    return corrupt("last window's cumulative_unique disagrees with the dedup-key count");
  }
  for (const std::uint32_t asn : touched) {
    if (by_as.find(asn) == by_as.end()) {
      return corrupt("touched ASN has no bucket");
    }
  }

  // ---- Commit: every check passed; replace the builder's state. ----
  builder.by_as_ = std::move(by_as);
  builder.seen_.clear();
  builder.seen_.reserve(seen_keys.size());
  builder.seen_.insert(seen_keys.begin(), seen_keys.end());
  builder.stats_ = std::move(stats);
  builder.touched_.clear();
  builder.touched_.insert(touched.begin(), touched.end());
  builder.pending_.clear();
  // Memos restart cold: they are a deterministic cache, so this cannot
  // change results — only the hit rate of the next few ingests.
  for (auto& memos : builder.memos_) {
    memos.primary.reset();
    memos.secondary.reset();
  }
  builder.last_generation_ = stored_generation;
  if (generation != nullptr) *generation = stored_generation;
  return util::Status{};
}

util::Status StreamingDatasetBuilder::save_snapshot(const std::string& dir) {
  const util::SerialSection owner{serial_};
  return save_snapshot_locked(dir, util::local_filesystem(), nullptr);
}

util::Status StreamingDatasetBuilder::save_snapshot(const std::string& dir,
                                                    util::FileSystem& fs,
                                                    std::uint64_t* generation) {
  const util::SerialSection owner{serial_};
  return save_snapshot_locked(dir, fs, generation);
}

util::Status StreamingDatasetBuilder::save_snapshot_locked(const std::string& dir,
                                                           util::FileSystem& fs,
                                                           std::uint64_t* generation) {
  util::Status status = fs.create_directories(dir);
  if (!status.ok()) return status.with_context("save_snapshot");

  // Next generation: one past the newest on disk and the newest this
  // builder has seen — INCLUDING quarantined generations, so save after
  // restore-with-fallback never reuses the number of a skipped (corrupt)
  // newer file, and a fresh save can never collide with quarantined
  // evidence of the same number.
  std::vector<std::string> names;
  status = fs.list_dir(dir, names);
  if (!status.ok()) return status.with_context("save_snapshot");
  std::uint64_t max_generation = last_generation_;
  std::vector<std::uint64_t> live_generations;
  for (const std::string& name : names) {
    std::uint64_t gen = 0;
    bool quarantined = false;
    if (!parse_generation_name(name, gen, quarantined)) continue;
    max_generation = std::max(max_generation, gen);
    if (!quarantined) live_generations.push_back(gen);
  }
  const std::uint64_t next = max_generation + 1;

  const std::vector<std::byte> bytes = SnapshotCodec::encode(*this, next);
  status = util::atomic_write_file(fs, dir + "/" + snapshot_filename(next), bytes);
  if (!status.ok()) return status.with_context("save_snapshot");
  last_generation_ = next;
  if (generation != nullptr) *generation = next;

  // Prune: keep the two newest LIVE generations (current + last-good
  // fallback).  Quarantined generations never appear in this list — their
  // names no longer parse as live snapshots — so a generation that ever
  // failed validation is preserved until a human removes it, however many
  // saves follow.  Best-effort — a failed unlink costs disk, not
  // correctness.
  live_generations.push_back(next);
  std::sort(live_generations.begin(), live_generations.end(), std::greater<>{});
  for (std::size_t i = 2; i < live_generations.size(); ++i) {
    static_cast<void>(
        fs.remove_file(dir + "/" + snapshot_filename(live_generations[i])));
  }
  return util::Status{};
}

util::Status StreamingDatasetBuilder::restore_snapshot(const std::string& dir,
                                                       SnapshotRestoreInfo* info) {
  const util::SerialSection owner{serial_};
  return restore_snapshot_locked(dir, util::local_filesystem(), info);
}

util::Status StreamingDatasetBuilder::restore_snapshot(const std::string& dir,
                                                       util::FileSystem& fs,
                                                       SnapshotRestoreInfo* info) {
  const util::SerialSection owner{serial_};
  return restore_snapshot_locked(dir, fs, info);
}

util::Status StreamingDatasetBuilder::restore_snapshot_locked(const std::string& dir,
                                                              util::FileSystem& fs,
                                                              SnapshotRestoreInfo* info) {
  std::vector<std::string> names;
  util::Status status = fs.list_dir(dir, names);
  if (!status.ok()) return status.with_context("restore_snapshot");

  std::vector<std::uint64_t> generations;
  for (const std::string& name : names) {
    std::uint64_t gen = 0;
    if (parse_snapshot_filename(name, gen)) generations.push_back(gen);
  }
  if (generations.empty()) {
    return util::Status::not_found("restore_snapshot: no snapshot files in " + dir);
  }
  std::sort(generations.begin(), generations.end(), std::greater<>{});

  // Newest first; a corrupt/truncated/skewed generation falls back to the
  // one before it.  decode() has the strong guarantee, so a failed attempt
  // leaves this builder exactly as it was for the next one.
  //
  // A kCorruption verdict quarantines the file (renamed aside with the
  // error recorded next to it) rather than leaving it in place: the evidence
  // survives for a post-mortem, the next restore's fallback never re-trips
  // on the same corpse, and prune never counts it among the live
  // generations it may remove.  Version/config mismatches are NOT
  // quarantined — those files are intact property of another binary or
  // configuration — and read failures are not either (the bytes may be
  // fine; the disk said no today).
  util::Status newest_error;
  for (std::size_t i = 0; i < generations.size(); ++i) {
    const std::uint64_t gen = generations[i];
    const std::string path = dir + "/" + snapshot_filename(gen);
    std::vector<std::byte> bytes;
    status = fs.read_file(path, bytes);
    if (status.ok()) status = SnapshotCodec::decode(bytes, *this, nullptr);
    if (status.ok()) {
      if (info != nullptr) *info = SnapshotRestoreInfo{gen, i};
      return util::Status{};
    }
    if (status.code() == util::StatusCode::kCorruption) {
      // Best-effort: a failed quarantine leaves the corpse in place, which
      // only costs a retried decode on the next restore.
      static_cast<void>(util::quarantine_file(fs, path, status));
    }
    if (i == 0) {
      newest_error = status.with_context("generation " + std::to_string(gen));
    }
  }
  return newest_error.with_context("restore_snapshot: no loadable generation");
}

}  // namespace eyeball::core
