#include "core/multi_bandwidth.hpp"

#include <algorithm>
#include <optional>

#include "util/thread_pool.hpp"

namespace eyeball::core {

MultiBandwidthRefiner::MultiBandwidthRefiner(const gazetteer::Gazetteer& gazetteer,
                                             const GeoFootprintEstimator& estimator,
                                             MultiBandwidthConfig config)
    : gaz_(gazetteer), estimator_(estimator), config_(config) {}

RefinedPops MultiBandwidthRefiner::refine(const AsPeerSet& peers) const {
  const PopCityMapper mapper{gaz_};
  // The two KDE passes share no state; overlap them when concurrency is
  // requested and we are not already inside a pool worker (a nested wait
  // on a saturated pool would deadlock).
  std::optional<AsFootprint> coarse_fp;
  std::optional<AsFootprint> fine_fp;
  if (config_.threads > 1 && !util::ThreadPool::on_worker_thread()) {
    auto fine_future = util::ThreadPool::shared().submit(
        [&] { return estimator_.estimate(peers, config_.fine_bandwidth_km); });
    coarse_fp = estimator_.estimate(peers, config_.coarse_bandwidth_km);
    fine_fp = fine_future.get();
  } else {
    coarse_fp = estimator_.estimate(peers, config_.coarse_bandwidth_km);
    fine_fp = estimator_.estimate(peers, config_.fine_bandwidth_km);
  }
  const auto coarse = mapper.map(*coarse_fp);
  const auto fine = mapper.map(*fine_fp);

  RefinedPops out;
  out.pops.unmapped_peaks = coarse.unmapped_peaks;
  for (const auto& pop : coarse.pops) {
    // Fine PoPs whose peak lies within the coarse kernel radius of this
    // coarse PoP and that carry a meaningful share of its mass.
    std::vector<PopEntry> candidates;
    for (const auto& fine_pop : fine.pops) {
      const double d = geo::distance_km(pop.peak_location, fine_pop.peak_location);
      if (d <= config_.coarse_bandwidth_km &&
          fine_pop.score >= config_.min_split_share * pop.score) {
        candidates.push_back(fine_pop);
      }
    }
    const auto distinct_cities =
        std::count_if(candidates.begin(), candidates.end(),
                      [&](const PopEntry& e) { return e.city != pop.city; });
    if (candidates.size() >= 2 && distinct_cities > 0) {
      ++out.splits;
      // Replace the merged coarse PoP with the fine constituents, rescaled
      // so the coarse mass is preserved.
      double fine_total = 0.0;
      for (const auto& c : candidates) fine_total += c.score;
      for (auto c : candidates) {
        c.score = pop.score * (c.score / fine_total);
        out.pops.pops.push_back(c);
      }
    } else {
      out.pops.pops.push_back(pop);
    }
  }

  // Merge duplicates created by splits landing on an existing city.
  std::sort(out.pops.pops.begin(), out.pops.pops.end(),
            [](const PopEntry& a, const PopEntry& b) { return a.city < b.city; });
  std::vector<PopEntry> merged;
  for (const auto& pop : out.pops.pops) {
    if (!merged.empty() && merged.back().city == pop.city) {
      merged.back().score += pop.score;
      if (pop.peak_density > merged.back().peak_density) {
        merged.back().peak_density = pop.peak_density;
        merged.back().peak_location = pop.peak_location;
      }
    } else {
      merged.push_back(pop);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const PopEntry& a, const PopEntry& b) { return a.score > b.score; });
  out.pops.pops = std::move(merged);
  return out;
}

}  // namespace eyeball::core
