// Streaming §2 conditioning for longitudinal crawls.
//
// The paper's 89.1 M-unique-IP dataset is the union of six monthly crawl
// windows; a longitudinal study that re-runs DatasetBuilder::build per
// snapshot pays O(windows x full-rebuild) on the most input-heavy stage of
// the pipeline.  StreamingDatasetBuilder instead ingests windows as they
// arrive: each ingest() runs the sharded geo-map / error-filter / LPM stage
// for the NEW window only and merges its peers into the live ASN-ordered
// buckets; finalize() applies the per-AS filter whenever a conditioned
// snapshot is wanted, without consuming the live state.
//
// Equivalence contract (pinned by tests/streaming_dataset_test.cpp under
// the TSan gate): after any sequence of ingest() calls, finalize() is
// byte-identical — peers, per-AS peer order, stats, kept-AS list — to a
// one-shot build() over dedup_first_observation(concatenated windows), at
// any thread count and any window split.  Three properties carry it:
//   1. Cross-window (app, ip) dedup to the FIRST observation mirrors
//      longitudinal_crawl's union semantics, so the admitted stream is a
//      well-defined concatenation independent of batching.
//   2. Shards cover contiguous in-order ranges of each window and merge in
//      shard-then-window order, so every AS's peer vector is its admitted
//      samples in stream order (the one-shot ordered-merge invariant,
//      applied window by window).
//   3. The per-AS filter is a pure function of the merged buckets, so
//      running it at finalize() time equals running it after a one-shot
//      build — ingesting after finalize() and finalizing again just
//      re-evaluates it on the grown buckets (an AS crossing the min-peers
//      threshold at window k appears exactly from the k-th finalize on).
//
// Churn makes the per-shard geo memos worth keeping alive: a reassigned
// address stays in the same PoP pool and recurs across windows, so the
// persistent memos short-circuit repeated lookups across ingests (hit
// rates are observable via memo_hits()/memo_misses()).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/dataset.hpp"
#include "geodb/lookup_memo.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"
#include "util/status.hpp"

namespace eyeball::util {
class FileSystem;
}  // namespace eyeball::util

namespace eyeball::core {

class SnapshotCodec;
struct SnapshotRestoreInfo;

/// First-observation (app, ip) dedup of a window concatenation — exactly
/// the sample stream a StreamingDatasetBuilder admits; build() over the
/// result is the one-shot reference for a streaming run.
[[nodiscard]] std::vector<p2p::PeerSample> dedup_first_observation(
    std::span<const p2p::PeerSample> samples);

class StreamingDatasetBuilder {
 public:
  StreamingDatasetBuilder(const geodb::GeoDatabase& primary,
                          const geodb::GeoDatabase& secondary,
                          const bgp::IpToAsMapper& mapper, DatasetConfig config = {});

  /// Ingests one crawl window: dedups against every previously ingested
  /// window (first observation wins, including within the window itself),
  /// then conditions the admitted samples through the sharded stage-1 at
  /// DatasetConfig::threads and merges them into the live buckets in shard
  /// order.  Cost is proportional to the window, not the cumulative stream.
  void ingest(std::span<const p2p::PeerSample> window);
  /// Same with an explicit shard count (benchmark threads axis).
  void ingest(std::span<const p2p::PeerSample> window, std::size_t threads);

  /// Conditioned snapshot of everything ingested so far (§2 min-peers/p90
  /// filter).  Non-destructive: ingestion may continue afterwards and a
  /// later finalize() re-evaluates the filter on the grown buckets.  Also
  /// clears touched_asns().
  [[nodiscard]] TargetDataset finalize();
  /// Same with an explicit filter concurrency (benchmark threads axis).
  [[nodiscard]] TargetDataset finalize(std::size_t threads);

  /// ASNs whose buckets gained peers since the last finalize() (or ever,
  /// before the first), ascending — the incremental re-analysis work list
  /// (see EyeballPipeline::refresh_analyses).
  [[nodiscard]] std::vector<net::Asn> touched_asns() const;

  /// Windows ingested so far (== stats().windows.size()).
  [[nodiscard]] std::size_t windows_ingested() const noexcept {
    const util::SerialSection owner{serial_};
    return stats_.windows.size();
  }
  /// Cumulative stage-1 counters + per-window snapshots.  The stage-2
  /// (per-AS filter) counters are only present on finalize() results.
  [[nodiscard]] const DatasetStats& stats() const noexcept {
    const util::SerialSection owner{serial_};
    return stats_;
  }
  /// Unique (app, ip) samples admitted so far.
  [[nodiscard]] std::size_t unique_samples() const noexcept {
    const util::SerialSection owner{serial_};
    return seen_.size();
  }

  /// Aggregate hit/miss counters over the persistent per-shard geo memos
  /// (both databases) — the observable payoff of cross-window IP reuse.
  [[nodiscard]] std::size_t memo_hits() const noexcept;
  [[nodiscard]] std::size_t memo_misses() const noexcept;
  /// hits / (hits + misses); 0 before the first lookup.
  [[nodiscard]] double memo_hit_rate() const noexcept {
    const std::size_t total = memo_hits() + memo_misses();
    return total == 0 ? 0.0
                      : static_cast<double>(memo_hits()) /
                            static_cast<double>(total);
  }

  /// Forgets every window: buckets, dedup set, stats, and the memo
  /// contents (tables keep their allocation).  The builder is then
  /// equivalent to a freshly constructed one.
  void reset();

  /// Persists the complete logical state to `dir` as the next snapshot
  /// generation, crash-safely (write-to-temp + fsync + atomic rename +
  /// directory sync; see core/snapshot.hpp for the format).  The two newest
  /// generations are retained — current plus a last-good fallback — older
  /// ones are pruned best-effort.  `generation` (optional) receives the
  /// generation number written.
  [[nodiscard]] util::Status save_snapshot(const std::string& dir);
  [[nodiscard]] util::Status save_snapshot(const std::string& dir, util::FileSystem& fs,
                                           std::uint64_t* generation = nullptr);

  /// Replaces this builder's state with the newest loadable generation in
  /// `dir`.  Degrades gracefully: a corrupt, truncated, or version-skewed
  /// newest file is reported through the Status taxonomy internally and the
  /// previous generation is tried — the builder loads silently-wrong state
  /// under NO fault (the invariant the fault-injection harness pins).
  /// Typed refusals: kConfigMismatch when the snapshot was written under a
  /// different result-affecting configuration, kNotFound when `dir` holds
  /// no snapshots.  On failure the builder is untouched.  Memos restart
  /// cold (they are caches; results are unaffected).
  [[nodiscard]] util::Status restore_snapshot(const std::string& dir,
                                              SnapshotRestoreInfo* info = nullptr);
  [[nodiscard]] util::Status restore_snapshot(const std::string& dir, util::FileSystem& fs,
                                              SnapshotRestoreInfo* info = nullptr);

  /// Newest snapshot generation this builder has written or restored; 0
  /// before either.
  [[nodiscard]] std::uint64_t last_generation() const noexcept {
    const util::SerialSection owner{serial_};
    return last_generation_;
  }

 private:
  // The codec serializes/deserializes the complete private state.  Its
  // encode/decode definitions carry EYEBALL_NO_THREAD_SAFETY_ANALYSIS: the
  // caller (save/restore below, or a test that owns the builder outright)
  // holds `serial_` by contract, and friendship doesn't extend the
  // capability analysis across classes.
  friend class SnapshotCodec;

  /// The "single owner at a time" role from the equivalence contract: all
  /// mutable state below is guarded by it, every public method claims it
  /// for its duration (free — acquire/release are no-ops the optimizer
  /// deletes), and the `_locked` helpers require it.  Under
  /// EYEBALL_THREAD_SAFETY this turns "ingest state is single-writer" from
  /// a doc comment into a build error: no code path can reach the buckets,
  /// dedup set, or memos without visibly holding the role.  `mutable`
  /// because const readers (stats, counters) claim it too.
  mutable util::Serial serial_;

  const geodb::GeoDatabase& primary_;
  const geodb::GeoDatabase& secondary_;
  // mapper_/config_ are fixed at construction and only read afterwards
  // (including from inside shard lambdas), so they carry no capability.
  bgp::IpToAsMapper mapper_;
  DatasetConfig config_;

  /// Live ASN-ordered buckets; grown by ingest, read by finalize.
  std::map<std::uint32_t, AsPeerSet> by_as_ EYEBALL_GUARDED_BY(serial_);
  /// Exact (app, ip) keys observed so far (app in the high bits — no
  /// collisions, unlike a mixed hash).
  std::unordered_set<std::uint64_t> seen_ EYEBALL_GUARDED_BY(serial_);
  /// Cumulative stage-1 counters + per-window snapshots.
  DatasetStats stats_ EYEBALL_GUARDED_BY(serial_);
  /// ASN values touched by ingests since the last finalize().
  std::unordered_set<std::uint32_t> touched_ EYEBALL_GUARDED_BY(serial_);
  /// Window scratch: admitted samples (reused allocation across ingests).
  std::vector<p2p::PeerSample> pending_ EYEBALL_GUARDED_BY(serial_);

  /// One persistent memo pair per shard slot; grown to the largest shard
  /// count any ingest has used.  Each concurrent shard owns exactly one
  /// slot, so the hot path stays lock-free.  The vector itself is guarded
  /// by `serial_`; DURING an ingest each element is additionally lent to
  /// exactly one shard (see ingest's shard lambda and LookupMemo's own
  /// `owner_` role).
  struct ShardMemos {
    geodb::LookupMemo primary;
    geodb::LookupMemo secondary;
  };
  std::vector<ShardMemos> memos_ EYEBALL_GUARDED_BY(serial_);

  /// Newest snapshot generation written or restored (see last_generation()).
  std::uint64_t last_generation_ EYEBALL_GUARDED_BY(serial_) = 0;

  // Bodies of the public entry points, factored out so the delegating
  // overload pairs (ingest, finalize, save/restore) claim `serial_` exactly
  // once — re-claiming a held capability is itself a thread-safety error.
  void ingest_locked(std::span<const p2p::PeerSample> window, std::size_t threads)
      EYEBALL_REQUIRES(serial_);
  [[nodiscard]] TargetDataset finalize_locked(std::size_t threads)
      EYEBALL_REQUIRES(serial_);
  [[nodiscard]] util::Status save_snapshot_locked(const std::string& dir,
                                                  util::FileSystem& fs,
                                                  std::uint64_t* generation)
      EYEBALL_REQUIRES(serial_);
  [[nodiscard]] util::Status restore_snapshot_locked(const std::string& dir,
                                                     util::FileSystem& fs,
                                                     SnapshotRestoreInfo* info)
      EYEBALL_REQUIRES(serial_);
  void ensure_memo_slots(std::size_t shards) EYEBALL_REQUIRES(serial_);
};

}  // namespace eyeball::core
