#include "core/pipeline.hpp"

namespace eyeball::core {

EyeballPipeline::EyeballPipeline(const gazetteer::Gazetteer& gazetteer,
                                 const geodb::GeoDatabase& primary,
                                 const geodb::GeoDatabase& secondary,
                                 const bgp::IpToAsMapper& mapper, PipelineConfig config)
    : gaz_(gazetteer),
      builder_(primary, secondary, mapper, config.dataset),
      classifier_(gazetteer, config.classify_threshold),
      estimator_(config.footprint),
      mapper_(gazetteer),
      config_(config) {}

TargetDataset EyeballPipeline::build_dataset(
    std::span<const p2p::PeerSample> samples) const {
  return builder_.build(samples);
}

AsAnalysis EyeballPipeline::analyze(const AsPeerSet& peers) const {
  return analyze(peers, config_.footprint.kde.bandwidth_km);
}

AsAnalysis EyeballPipeline::analyze(const AsPeerSet& peers, double bandwidth_km) const {
  AsAnalysis out{peers.asn, classifier_.classify(peers),
                 estimator_.estimate(peers, bandwidth_km), PopFootprint{}};
  out.pops = mapper_.map(out.footprint);
  return out;
}

PopFootprint EyeballPipeline::pop_footprint(const AsPeerSet& peers,
                                            double bandwidth_km) const {
  return mapper_.map(estimator_.estimate(peers, bandwidth_km));
}

}  // namespace eyeball::core
