#include "core/pipeline.hpp"

#include <optional>

#include "util/thread_pool.hpp"

namespace eyeball::core {

EyeballPipeline::EyeballPipeline(const gazetteer::Gazetteer& gazetteer,
                                 const geodb::GeoDatabase& primary,
                                 const geodb::GeoDatabase& secondary,
                                 const bgp::IpToAsMapper& mapper, PipelineConfig config)
    : gaz_(gazetteer),
      builder_(primary, secondary, mapper, config.dataset),
      classifier_(gazetteer, config.classify_threshold),
      estimator_(config.footprint),
      mapper_(gazetteer),
      config_(config) {}

TargetDataset EyeballPipeline::build_dataset(
    std::span<const p2p::PeerSample> samples) const {
  return builder_.build(samples);
}

TargetDataset EyeballPipeline::build_dataset(std::span<const p2p::PeerSample> samples,
                                             std::size_t threads) const {
  return builder_.build(samples, threads);
}

AsAnalysis EyeballPipeline::analyze(const AsPeerSet& peers) const {
  return analyze(peers, config_.footprint.kde.bandwidth_km);
}

AsAnalysis EyeballPipeline::analyze(const AsPeerSet& peers, double bandwidth_km) const {
  AsAnalysis out{peers.asn, classifier_.classify(peers),
                 estimator_.estimate(peers, bandwidth_km), PopFootprint{}};
  out.pops = mapper_.map(out.footprint);
  return out;
}

PopFootprint EyeballPipeline::pop_footprint(const AsPeerSet& peers,
                                            double bandwidth_km) const {
  return mapper_.map(estimator_.estimate(peers, bandwidth_km));
}

std::vector<AsAnalysis> EyeballPipeline::analyze_all(
    std::span<const AsPeerSet> ases) const {
  return analyze_all(ases, config_.threads);
}

std::vector<AsAnalysis> EyeballPipeline::analyze_all(std::span<const AsPeerSet> ases,
                                                     std::size_t threads) const {
  auto& pool = util::ThreadPool::shared();
  const std::size_t ways = threads == 0 ? pool.worker_count() : threads;
  // Slots keep the output in input order whatever the chunk schedule; each
  // chunk only touches its own indices, so no synchronization is needed.
  std::vector<std::optional<AsAnalysis>> slots(ases.size());
  pool.parallel_for(
      0, ases.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) slots[i] = analyze(ases[i]);
      },
      ways);
  std::vector<AsAnalysis> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace eyeball::core
