#include "core/pipeline.hpp"

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "util/thread_pool.hpp"

namespace eyeball::core {

EyeballPipeline::EyeballPipeline(const gazetteer::Gazetteer& gazetteer,
                                 const geodb::GeoDatabase& primary,
                                 const geodb::GeoDatabase& secondary,
                                 const bgp::IpToAsMapper& mapper, PipelineConfig config)
    : gaz_(gazetteer),
      builder_(primary, secondary, mapper, config.dataset),
      classifier_(gazetteer, config.classify_threshold),
      estimator_(config.footprint),
      mapper_(gazetteer),
      config_(config) {}

TargetDataset EyeballPipeline::build_dataset(
    std::span<const p2p::PeerSample> samples) const {
  return builder_.build(samples);
}

TargetDataset EyeballPipeline::build_dataset(std::span<const p2p::PeerSample> samples,
                                             std::size_t threads) const {
  return builder_.build(samples, threads);
}

StreamingDatasetBuilder EyeballPipeline::streaming_builder() const {
  return builder_.streaming();
}

std::vector<AsAnalysis> EyeballPipeline::refresh_analyses(
    const TargetDataset& dataset, std::span<const AsAnalysis> previous,
    std::span<const net::Asn> changed) const {
  std::unordered_set<std::uint32_t> dirty;
  dirty.reserve(changed.size());
  for (const auto asn : changed) dirty.insert(net::value_of(asn));
  // First occurrence wins on duplicate ASNs, matching TargetDataset::find.
  std::unordered_map<std::uint32_t, const AsAnalysis*> reusable;
  reusable.reserve(previous.size());
  for (const auto& analysis : previous) {
    reusable.emplace(net::value_of(analysis.asn), &analysis);
  }

  const auto ases = dataset.ases();
  std::vector<std::optional<AsAnalysis>> slots(ases.size());
  std::vector<std::size_t> stale;  // indices that need a fresh analyze()
  for (std::size_t i = 0; i < ases.size(); ++i) {
    const std::uint32_t asn_value = net::value_of(ases[i].asn);
    const auto hit = reusable.find(asn_value);
    if (hit != reusable.end() && !dirty.contains(asn_value)) {
      slots[i] = *hit->second;
    } else {
      stale.push_back(i);
    }
  }
  // Same fan-out shape as analyze_all: contiguous chunks of the stale list,
  // disjoint output slots, input-order collection.
  auto& pool = util::ThreadPool::shared();
  const std::size_t ways =
      config_.threads == 0 ? pool.worker_count() : config_.threads;
  pool.parallel_for(
      0, stale.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          slots[stale[i]] = analyze(ases[stale[i]]);
        }
      },
      ways);
  std::vector<AsAnalysis> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

AsAnalysis EyeballPipeline::analyze(const AsPeerSet& peers) const {
  return analyze(peers, config_.footprint.kde.bandwidth_km);
}

AsAnalysis EyeballPipeline::analyze(const AsPeerSet& peers, double bandwidth_km) const {
  AsAnalysis out{peers.asn, classifier_.classify(peers),
                 estimator_.estimate(peers, bandwidth_km), PopFootprint{}};
  out.pops = mapper_.map(out.footprint);
  return out;
}

PopFootprint EyeballPipeline::pop_footprint(const AsPeerSet& peers,
                                            double bandwidth_km) const {
  return mapper_.map(estimator_.estimate(peers, bandwidth_km));
}

std::vector<AsAnalysis> EyeballPipeline::analyze_all(
    std::span<const AsPeerSet> ases) const {
  return analyze_all(ases, config_.threads);
}

std::vector<AsAnalysis> EyeballPipeline::analyze_all(std::span<const AsPeerSet> ases,
                                                     std::size_t threads) const {
  auto& pool = util::ThreadPool::shared();
  const std::size_t ways = threads == 0 ? pool.worker_count() : threads;
  // Slots keep the output in input order whatever the chunk schedule; each
  // chunk only touches its own indices, so no synchronization is needed.
  std::vector<std::optional<AsAnalysis>> slots(ases.size());
  pool.parallel_for(
      0, ases.size(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) slots[i] = analyze(ases[i]);
      },
      ways);
  std::vector<AsAnalysis> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace eyeball::core
