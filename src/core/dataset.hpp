// Target-dataset construction (the paper's §2 pipeline):
//   raw crawl samples
//     -> geo-map each IP with the primary database
//     -> drop IPs lacking a city-level record in either database
//     -> estimate per-IP geo error as the inter-database distance and drop
//        IPs with error above the threshold (~80 km, a metro diameter)
//     -> group by origin AS via BGP longest-prefix match
//     -> drop ASes with fewer than 1000 peers
//     -> drop ASes whose 90th-percentile geo error exceeds the bandwidth
//        floor (the paper's §3.1 rule that legitimizes a fixed 40 km
//        bandwidth).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/rib.hpp"
#include "geo/point.hpp"
#include "geodb/geo_database.hpp"
#include "net/ipv4.hpp"
#include "p2p/crawler.hpp"

namespace eyeball::core {

struct PeerRecord {
  net::Ipv4Address ip;
  p2p::App app = p2p::App::kKad;
  /// Location reported by the primary geo database.
  geo::GeoPoint location;
  /// Inter-database distance for this IP (the error proxy).
  double geo_error_km = 0.0;
  /// City reported by the primary geo database (level classification
  /// aggregates on the databases' city/state/country fields, as in the
  /// paper).
  gazetteer::CityId reported_city = gazetteer::kInvalidCity;
};

/// All conditioned peers of one eyeball AS.
struct AsPeerSet {
  net::Asn asn{};
  std::vector<PeerRecord> peers;

  [[nodiscard]] std::size_t count_for(p2p::App app) const noexcept;
  [[nodiscard]] std::vector<geo::GeoPoint> locations() const;
  [[nodiscard]] std::vector<double> geo_errors() const;
  /// Allocation-free variant: overwrites `out` (clearing first) so hot
  /// loops — the builder's per-AS p90 filter — can reuse one scratch
  /// buffer across ASes.
  void geo_errors(std::vector<double>& out) const;
};

struct DatasetConfig {
  /// Per-IP error threshold; the paper motivates ~100 km (metro diameter)
  /// in §2 and uses 80 km in §3.1 — we default to the operative 80 km.
  double max_geo_error_km = 80.0;
  std::size_t min_peers_per_as = 1000;
  /// Drop ASes whose 90th-percentile geo error exceeds this (§3.1).
  double max_p90_geo_error_km = 80.0;
  /// Shard count for the dataset build: the sample span is split into this
  /// many deterministic contiguous chunks over util::ThreadPool::shared(),
  /// each chunk geo-maps/filters/LPM-groups into private state, and shards
  /// are merged in shard order.  1 = serial, 0 = one shard per hardware
  /// thread.  Results (peer order, stats, kept-AS list) are byte-identical
  /// at any setting.
  std::size_t threads = 1;
  /// Per-shard direct-mapped memo over each geo database (see
  /// geodb::LookupMemo); crawls re-observe IPs heavily, so this short-
  /// circuits repeated lookups.  0 disables.  Never changes results:
  /// lookups are deterministic per IP.
  std::size_t lookup_memo_slots = 8192;
};

struct DatasetStats {
  std::size_t raw_samples = 0;
  std::size_t missing_geo = 0;
  std::size_t high_error = 0;
  std::size_t unmapped_as = 0;
  std::size_t peers_in_small_ases = 0;
  std::size_t ases_below_min_peers = 0;
  std::size_t ases_above_p90_error = 0;
  std::size_t final_peers = 0;
  std::size_t final_ases = 0;

  friend bool operator==(const DatasetStats&, const DatasetStats&) = default;
};

/// One-line "counter=value" rendering of every field, e.g. for logging.
[[nodiscard]] std::string to_string(const DatasetStats& stats);
/// Names the counters on which `actual` diverges from `expected`, or ""
/// when equal — the determinism tests use it so a failure says *which*
/// counter moved, not just that two opaque structs differ.
[[nodiscard]] std::string diff_stats(const DatasetStats& expected,
                                     const DatasetStats& actual);
/// Streams to_string (this is what gtest prints on EXPECT_EQ failure).
std::ostream& operator<<(std::ostream& os, const DatasetStats& stats);

/// The conditioned dataset: one AsPeerSet per eligible eyeball AS.
class TargetDataset {
 public:
  TargetDataset(std::vector<AsPeerSet> ases, DatasetStats stats);

  [[nodiscard]] std::span<const AsPeerSet> ases() const noexcept { return ases_; }
  /// O(log n) via the ASN-sorted index built at construction (the repro
  /// benches call this per AS in loops); equivalent to a linear scan,
  /// including returning the *first* entry on duplicate ASNs.
  [[nodiscard]] const AsPeerSet* find(net::Asn asn) const noexcept;
  [[nodiscard]] const DatasetStats& stats() const noexcept { return stats_; }

 private:
  std::vector<AsPeerSet> ases_;
  /// Indices into ases_, stably sorted by ASN.
  std::vector<std::uint32_t> by_asn_;
  DatasetStats stats_;
};

class DatasetBuilder {
 public:
  DatasetBuilder(const geodb::GeoDatabase& primary, const geodb::GeoDatabase& secondary,
                 const bgp::IpToAsMapper& mapper, DatasetConfig config = {});

  /// Sharded build (§2 conditioning) at the configured
  /// DatasetConfig::threads.  Stage 1 splits the samples into contiguous
  /// shards, each doing both geo lookups, the geo-error filter, and the LPM
  /// grouping into private per-shard buckets + counters (lock-free); shards
  /// merge in shard order, so per-AS peer order keeps the sample order.
  /// Stage 2 applies the min-peers / p90 filter to the merged buckets in
  /// parallel and folds verdicts in ASN order.  Output is byte-identical to
  /// the serial loop at any thread count.
  [[nodiscard]] TargetDataset build(std::span<const p2p::PeerSample> samples) const;
  /// Same with an explicit shard count (benchmark threads axis).
  [[nodiscard]] TargetDataset build(std::span<const p2p::PeerSample> samples,
                                    std::size_t threads) const;

 private:
  const geodb::GeoDatabase& primary_;
  const geodb::GeoDatabase& secondary_;
  bgp::IpToAsMapper mapper_;
  DatasetConfig config_;
};

}  // namespace eyeball::core
