// Target-dataset construction (the paper's §2 pipeline):
//   raw crawl samples
//     -> geo-map each IP with the primary database
//     -> drop IPs lacking a city-level record in either database
//     -> estimate per-IP geo error as the inter-database distance and drop
//        IPs with error above the threshold (~80 km, a metro diameter)
//     -> group by origin AS via BGP longest-prefix match
//     -> drop ASes with fewer than 1000 peers
//     -> drop ASes whose 90th-percentile geo error exceeds the bandwidth
//        floor (the paper's §3.1 rule that legitimizes a fixed 40 km
//        bandwidth).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/rib.hpp"
#include "geo/point.hpp"
#include "geodb/geo_database.hpp"
#include "net/ipv4.hpp"
#include "p2p/crawler.hpp"

namespace eyeball::geodb {
class LookupMemo;
}  // namespace eyeball::geodb

namespace eyeball::core {

struct PeerRecord {
  net::Ipv4Address ip;
  p2p::App app = p2p::App::kKad;
  /// Location reported by the primary geo database.
  geo::GeoPoint location;
  /// Inter-database distance for this IP (the error proxy).
  double geo_error_km = 0.0;
  /// City reported by the primary geo database (level classification
  /// aggregates on the databases' city/state/country fields, as in the
  /// paper).
  gazetteer::CityId reported_city = gazetteer::kInvalidCity;
};

/// All conditioned peers of one eyeball AS.
struct AsPeerSet {
  net::Asn asn{};
  std::vector<PeerRecord> peers;

  [[nodiscard]] std::size_t count_for(p2p::App app) const noexcept;
  [[nodiscard]] std::vector<geo::GeoPoint> locations() const;
  [[nodiscard]] std::vector<double> geo_errors() const;
  /// Allocation-free variant: overwrites `out` (clearing first) so hot
  /// loops — the builder's per-AS p90 filter — can reuse one scratch
  /// buffer across ASes.
  void geo_errors(std::vector<double>& out) const;
};

struct DatasetConfig {
  /// Per-IP error threshold; the paper motivates ~100 km (metro diameter)
  /// in §2 and uses 80 km in §3.1 — we default to the operative 80 km.
  double max_geo_error_km = 80.0;
  std::size_t min_peers_per_as = 1000;
  /// Drop ASes whose 90th-percentile geo error exceeds this (§3.1).
  double max_p90_geo_error_km = 80.0;
  /// Shard count for the dataset build: the sample span is split into this
  /// many deterministic contiguous chunks over util::ThreadPool::shared(),
  /// each chunk geo-maps/filters/LPM-groups into private state, and shards
  /// are merged in shard order.  1 = serial, 0 = one shard per hardware
  /// thread.  Results (peer order, stats, kept-AS list) are byte-identical
  /// at any setting.
  std::size_t threads = 1;
  /// Per-shard direct-mapped memo over each geo database (see
  /// geodb::LookupMemo); crawls re-observe IPs heavily, so this short-
  /// circuits repeated lookups.  0 disables.  Never changes results:
  /// lookups are deterministic per IP.
  std::size_t lookup_memo_slots = 8192;
};

/// Per-ingest-window observability for streaming builds (the paper's six
/// monthly crawl snapshots).  Prefix-level geolocation drifts across crawl
/// windows, so longitudinal studies need the window-by-window view kept
/// visible rather than folded into the cumulative counters.
struct WindowStats {
  /// Samples handed to ingest() for this window, duplicates included.
  std::size_t offered = 0;
  /// Samples dropped by the cross-window (app, ip) first-observation dedup.
  std::size_t duplicates = 0;
  /// offered - duplicates - rejected: what this window contributed to
  /// conditioning.
  std::size_t admitted = 0;
  /// Running unique (app, ip) count after this window — the streaming
  /// analogue of LongitudinalResult::cumulative_unique.
  std::size_t cumulative_unique = 0;
  /// Samples refused at the admission door: reserved/invalid IP or unknown
  /// app tag (a hostile or corrupted crawl window).  Rejected samples never
  /// enter the dedup set, so offered == duplicates + admitted + rejected.
  std::size_t rejected = 0;

  friend bool operator==(const WindowStats&, const WindowStats&) = default;
};

struct DatasetStats {
  /// For a one-shot build: the input span size.  For a streaming build: the
  /// unique (app, ip) samples admitted to conditioning — i.e. the size of
  /// the deduplicated window concatenation, which is exactly the one-shot
  /// input the stream is equivalent to.
  std::size_t raw_samples = 0;
  std::size_t missing_geo = 0;
  std::size_t high_error = 0;
  std::size_t unmapped_as = 0;
  std::size_t peers_in_small_ases = 0;
  std::size_t ases_below_min_peers = 0;
  std::size_t ases_above_p90_error = 0;
  std::size_t final_peers = 0;
  std::size_t final_ases = 0;
  /// Samples refused by validity checks rather than conditioned away:
  /// streaming admission-door rejects (reserved/invalid IP, unknown app)
  /// plus geo-database rows with non-finite or out-of-range coordinates
  /// caught during stage 1.  EXCLUDED from operator== like `windows`: the
  /// door runs before dedup, so a hostile stream's rejects are visible to
  /// the streaming builder but already filtered out of the equivalent
  /// one-shot input (see dedup_first_observation).
  std::size_t rejected_samples = 0;
  /// One entry per ingest() window in ingest order; empty for one-shot
  /// builds.  Deliberately EXCLUDED from operator== / diff_stats: a
  /// dataset's identity is its conditioning outcome, not how the samples
  /// were batched, and the streaming-vs-one-shot byte-identity contract is
  /// stated over the conditioning counters.
  std::vector<WindowStats> windows;

  /// Compares the conditioning counters only (see `windows`).
  friend bool operator==(const DatasetStats& a, const DatasetStats& b) {
    return a.raw_samples == b.raw_samples && a.missing_geo == b.missing_geo &&
           a.high_error == b.high_error && a.unmapped_as == b.unmapped_as &&
           a.peers_in_small_ases == b.peers_in_small_ases &&
           a.ases_below_min_peers == b.ases_below_min_peers &&
           a.ases_above_p90_error == b.ases_above_p90_error &&
           a.final_peers == b.final_peers && a.final_ases == b.final_ases;
  }
};

/// One-line "counter=value" rendering of every field, e.g. for logging.
[[nodiscard]] std::string to_string(const DatasetStats& stats);
/// Names the counters on which `actual` diverges from `expected`, or ""
/// when equal — the determinism tests use it so a failure says *which*
/// counter moved, not just that two opaque structs differ.
[[nodiscard]] std::string diff_stats(const DatasetStats& expected,
                                     const DatasetStats& actual);
/// Streams to_string (this is what gtest prints on EXPECT_EQ failure).
std::ostream& operator<<(std::ostream& os, const DatasetStats& stats);

/// The conditioned dataset: one AsPeerSet per eligible eyeball AS.
class TargetDataset {
 public:
  TargetDataset(std::vector<AsPeerSet> ases, DatasetStats stats);

  [[nodiscard]] std::span<const AsPeerSet> ases() const noexcept { return ases_; }
  /// O(log n) via the ASN-sorted index built at construction (the repro
  /// benches call this per AS in loops); equivalent to a linear scan,
  /// including returning the *first* entry on duplicate ASNs.
  [[nodiscard]] const AsPeerSet* find(net::Asn asn) const noexcept;
  [[nodiscard]] const DatasetStats& stats() const noexcept { return stats_; }

 private:
  std::vector<AsPeerSet> ases_;
  /// Indices into ases_, stably sorted by ASN.
  std::vector<std::uint32_t> by_asn_;
  DatasetStats stats_;
};

class StreamingDatasetBuilder;

/// Shared internals of the §2 conditioning stages, used by both the one-shot
/// DatasetBuilder and the StreamingDatasetBuilder so the two paths cannot
/// drift apart.  Not a stable API — test code should go through the
/// builders.
namespace detail {

/// Per-sample drop tallies of conditioning stage 1.
struct ConditionCounters {
  std::size_t missing_geo = 0;
  std::size_t high_error = 0;
  std::size_t unmapped_as = 0;
  /// Database rows with non-finite / out-of-range coordinates (the invalid
  /// rows the longitudinal geo-database literature documents in the wild) —
  /// rejected before the distance computation so a NaN can never reach the
  /// error filter or the KDE downstream.
  std::size_t rejected = 0;

  void add_to(DatasetStats& stats) const noexcept {
    stats.missing_geo += missing_geo;
    stats.high_error += high_error;
    stats.unmapped_as += unmapped_as;
    stats.rejected_samples += rejected;
  }
};

/// One shard's private stage-1 output: peer buckets in ascending-ASN order
/// plus the partial drop counters.  No shard ever touches another's state.
/// The buckets are a flat vector (grouped through an open-addressed index
/// during the chunk, sorted once at the end) rather than an ordered map:
/// the per-survivor hot path is one hash probe instead of a tree walk.
struct ConditionShard {
  std::vector<AsPeerSet> by_as;
  ConditionCounters dropped;
};

/// Stage 1 over samples[lo, hi): geo-map each IP through the two memos,
/// apply the inter-database error filter, and LPM-group survivors into the
/// shard's private buckets.  Pure function of its inputs (the memos only
/// cache deterministic lookups), so shards parallelize lock-free.
[[nodiscard]] ConditionShard condition_chunk(std::span<const p2p::PeerSample> samples,
                                             std::size_t lo, std::size_t hi,
                                             geodb::LookupMemo& primary,
                                             geodb::LookupMemo& secondary,
                                             const bgp::IpToAsMapper& mapper,
                                             const DatasetConfig& config);

/// Folds one shard into the live buckets + counters.  MUST be called in
/// shard order over contiguous, in-order sample ranges: each AS's merged
/// peer vector is then the concatenation of its shard slices in sample
/// order — exactly the serial loop's peer order.
void merge_shard_ordered(ConditionShard shard,
                         std::map<std::uint32_t, AsPeerSet>& by_as,
                         ConditionCounters& dropped);

/// Stage 2: the min-peers / p90 geo-error per-AS filter over ASN-ascending
/// `buckets`.  Verdicts parallelize into disjoint slots at `threads`; the
/// filter counters and the kept list then accrue in ASN order, exactly like
/// the serial loop.  `take_ownership` moves kept sets out of the buckets
/// (one-shot build); false copies them, leaving the live buckets intact for
/// further ingestion (streaming finalize).
[[nodiscard]] std::vector<AsPeerSet> filter_ases(std::span<AsPeerSet* const> buckets,
                                                 const DatasetConfig& config,
                                                 std::size_t threads, DatasetStats& stats,
                                                 bool take_ownership);

}  // namespace detail

class DatasetBuilder {
 public:
  DatasetBuilder(const geodb::GeoDatabase& primary, const geodb::GeoDatabase& secondary,
                 const bgp::IpToAsMapper& mapper, DatasetConfig config = {});

  /// Sharded build (§2 conditioning) at the configured
  /// DatasetConfig::threads.  Stage 1 splits the samples into contiguous
  /// shards, each doing both geo lookups, the geo-error filter, and the LPM
  /// grouping into private per-shard buckets + counters (lock-free); shards
  /// merge in shard order, so per-AS peer order keeps the sample order.
  /// Stage 2 applies the min-peers / p90 filter to the merged buckets in
  /// parallel and folds verdicts in ASN order.  Output is byte-identical to
  /// the serial loop at any thread count.
  [[nodiscard]] TargetDataset build(std::span<const p2p::PeerSample> samples) const;
  /// Same with an explicit shard count (benchmark threads axis).
  [[nodiscard]] TargetDataset build(std::span<const p2p::PeerSample> samples,
                                    std::size_t threads) const;

  /// A StreamingDatasetBuilder over the same databases/mapper/config, for
  /// longitudinal crawls that arrive window by window (see
  /// core/streaming_dataset.hpp for the equivalence contract).
  [[nodiscard]] StreamingDatasetBuilder streaming() const;

 private:
  const geodb::GeoDatabase& primary_;
  const geodb::GeoDatabase& secondary_;
  bgp::IpToAsMapper mapper_;
  DatasetConfig config_;
};

}  // namespace eyeball::core
