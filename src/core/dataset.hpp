// Target-dataset construction (the paper's §2 pipeline):
//   raw crawl samples
//     -> geo-map each IP with the primary database
//     -> drop IPs lacking a city-level record in either database
//     -> estimate per-IP geo error as the inter-database distance and drop
//        IPs with error above the threshold (~80 km, a metro diameter)
//     -> group by origin AS via BGP longest-prefix match
//     -> drop ASes with fewer than 1000 peers
//     -> drop ASes whose 90th-percentile geo error exceeds the bandwidth
//        floor (the paper's §3.1 rule that legitimizes a fixed 40 km
//        bandwidth).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bgp/rib.hpp"
#include "geo/point.hpp"
#include "geodb/geo_database.hpp"
#include "net/ipv4.hpp"
#include "p2p/crawler.hpp"

namespace eyeball::core {

struct PeerRecord {
  net::Ipv4Address ip;
  p2p::App app = p2p::App::kKad;
  /// Location reported by the primary geo database.
  geo::GeoPoint location;
  /// Inter-database distance for this IP (the error proxy).
  double geo_error_km = 0.0;
  /// City reported by the primary geo database (level classification
  /// aggregates on the databases' city/state/country fields, as in the
  /// paper).
  gazetteer::CityId reported_city = gazetteer::kInvalidCity;
};

/// All conditioned peers of one eyeball AS.
struct AsPeerSet {
  net::Asn asn{};
  std::vector<PeerRecord> peers;

  [[nodiscard]] std::size_t count_for(p2p::App app) const noexcept;
  [[nodiscard]] std::vector<geo::GeoPoint> locations() const;
  [[nodiscard]] std::vector<double> geo_errors() const;
};

struct DatasetConfig {
  /// Per-IP error threshold; the paper motivates ~100 km (metro diameter)
  /// in §2 and uses 80 km in §3.1 — we default to the operative 80 km.
  double max_geo_error_km = 80.0;
  std::size_t min_peers_per_as = 1000;
  /// Drop ASes whose 90th-percentile geo error exceeds this (§3.1).
  double max_p90_geo_error_km = 80.0;
};

struct DatasetStats {
  std::size_t raw_samples = 0;
  std::size_t missing_geo = 0;
  std::size_t high_error = 0;
  std::size_t unmapped_as = 0;
  std::size_t peers_in_small_ases = 0;
  std::size_t ases_below_min_peers = 0;
  std::size_t ases_above_p90_error = 0;
  std::size_t final_peers = 0;
  std::size_t final_ases = 0;
};

/// The conditioned dataset: one AsPeerSet per eligible eyeball AS.
class TargetDataset {
 public:
  TargetDataset(std::vector<AsPeerSet> ases, DatasetStats stats);

  [[nodiscard]] std::span<const AsPeerSet> ases() const noexcept { return ases_; }
  [[nodiscard]] const AsPeerSet* find(net::Asn asn) const noexcept;
  [[nodiscard]] const DatasetStats& stats() const noexcept { return stats_; }

 private:
  std::vector<AsPeerSet> ases_;
  DatasetStats stats_;
};

class DatasetBuilder {
 public:
  DatasetBuilder(const geodb::GeoDatabase& primary, const geodb::GeoDatabase& secondary,
                 const bgp::IpToAsMapper& mapper, DatasetConfig config = {});

  [[nodiscard]] TargetDataset build(std::span<const p2p::PeerSample> samples) const;

 private:
  const geodb::GeoDatabase& primary_;
  const geodb::GeoDatabase& secondary_;
  bgp::IpToAsMapper mapper_;
  DatasetConfig config_;
};

}  // namespace eyeball::core
