#include "core/streaming_dataset.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace eyeball::core {

namespace {

/// Collision-free dedup key: the app tag in the high bits, the IP below.
[[nodiscard]] constexpr std::uint64_t sample_key(const p2p::PeerSample& sample) noexcept {
  return (static_cast<std::uint64_t>(sample.app) << 32) | sample.ip.value();
}

/// The admission door for hostile windows: a sample is admitted only if its
/// IP is plausibly an eyeball address and its app tag is one of the crawled
/// applications.  Special-use address space can never geolocate to an
/// eyeball ("Lost in the Prefix"'s failure mode), so the door rejects every
/// non-routable range, not just the octet-aligned ones: 0/8, 10/8, 127/8,
/// multicast/reserved (224.0.0.0+), 100.64/10 (CGNAT), 172.16/12 and
/// 192.168/16 (RFC 1918), and 169.254/16 (link-local).  Checked BEFORE the
/// dedup set, so a rejected sample leaves no trace — a later valid
/// observation of the same (app, ip) is still a first observation.  Shared
/// by ingest() and dedup_first_observation() (same TU), which keeps the
/// streaming and one-shot doors in lockstep by construction.
[[nodiscard]] constexpr bool is_admissible_sample(const p2p::PeerSample& sample) noexcept {
  const std::uint32_t ip = sample.ip.value();
  const std::uint32_t top = ip >> 24;
  if (top == 0 || top == 10 || top == 127 || top >= 224) return false;
  if ((ip >> 22) == 0x191u) return false;   // 100.64.0.0/10 (CGNAT)
  if ((ip >> 20) == 0xac1u) return false;   // 172.16.0.0/12 (RFC 1918)
  if ((ip >> 16) == 0xa9feu) return false;  // 169.254.0.0/16 (link-local)
  if ((ip >> 16) == 0xc0a8u) return false;  // 192.168.0.0/16 (RFC 1918)
  return static_cast<std::uint8_t>(sample.app) < p2p::kAllApps.size();
}

}  // namespace

std::vector<p2p::PeerSample> dedup_first_observation(
    std::span<const p2p::PeerSample> samples) {
  std::vector<p2p::PeerSample> out;
  out.reserve(samples.size());
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(samples.size());
  for (const auto& sample : samples) {
    // Same admission door as ingest(): the result must be exactly the
    // stream a StreamingDatasetBuilder admits, or the streaming-vs-one-shot
    // equivalence contract would break on hostile input.
    if (!is_admissible_sample(sample)) continue;
    if (seen.insert(sample_key(sample)).second) out.push_back(sample);
  }
  return out;
}

StreamingDatasetBuilder::StreamingDatasetBuilder(const geodb::GeoDatabase& primary,
                                                 const geodb::GeoDatabase& secondary,
                                                 const bgp::IpToAsMapper& mapper,
                                                 DatasetConfig config)
    : primary_(primary), secondary_(secondary), mapper_(mapper), config_(config) {}

void StreamingDatasetBuilder::ensure_memo_slots(std::size_t shards) {
  memos_.reserve(shards);
  while (memos_.size() < shards) {
    memos_.push_back(ShardMemos{
        geodb::LookupMemo{primary_, config_.lookup_memo_slots},
        geodb::LookupMemo{secondary_, config_.lookup_memo_slots}});
  }
}

void StreamingDatasetBuilder::ingest(std::span<const p2p::PeerSample> window) {
  const util::SerialSection owner{serial_};
  ingest_locked(window, config_.threads);
}

void StreamingDatasetBuilder::ingest(std::span<const p2p::PeerSample> window,
                                     std::size_t threads) {
  const util::SerialSection owner{serial_};
  ingest_locked(window, threads);
}

void StreamingDatasetBuilder::ingest_locked(std::span<const p2p::PeerSample> window,
                                            std::size_t threads) {
  // Cross-window first-observation dedup (longitudinal_crawl's union
  // semantics).  Serial and order-preserving: the admitted stream must be
  // independent of the shard count below.
  WindowStats window_stats;
  window_stats.offered = window.size();
  pending_.clear();
  pending_.reserve(window.size());
  for (const auto& sample : window) {
    if (!is_admissible_sample(sample)) {
      ++window_stats.rejected;
    } else if (seen_.insert(sample_key(sample)).second) {
      pending_.push_back(sample);
    } else {
      ++window_stats.duplicates;
    }
  }
  window_stats.admitted = pending_.size();
  window_stats.cumulative_unique = seen_.size();
  stats_.raw_samples += window_stats.admitted;
  stats_.rejected_samples += window_stats.rejected;

  // Stage 1 over the admitted window only, sharded exactly like the
  // one-shot build.  Shard slices are contiguous and folded in shard
  // order, so each AS's bucket extends in stream order — the ordered-merge
  // invariant, applied window by window.
  auto& pool = util::ThreadPool::shared();
  const std::size_t count = pending_.size();
  std::size_t ways = threads == 0 ? pool.worker_count() : threads;
  ways = std::min(std::max<std::size_t>(ways, 1), std::max<std::size_t>(count, 1));
  // Mirrors parallel_map_reduce's chunking rule so `lo / chunk` recovers
  // the shard index — each concurrent shard then owns one persistent memo
  // slot and the hot loop stays lock-free.
  const std::size_t chunk = count == 0 ? 1 : (count + ways - 1) / ways;
  ensure_memo_slots(ways);
  detail::ConditionCounters dropped;
  const std::span<const p2p::PeerSample> admitted{pending_};
  // Local references for the lambdas below: the thread-safety analysis
  // checks a lambda body as its own function, so guarded members reached
  // through the captured `this` would need the role re-claimed per shard.
  // Binding them here keeps the guarded accesses inside this (role-holding)
  // function; the lambdas see plain locals.  Safety is by disjointness, as
  // before: each shard lambda touches only its own memo slot, and the
  // reduce lambda runs on this thread only, in shard order.
  auto& shard_memos = memos_;
  const bgp::IpToAsMapper& mapper = mapper_;
  const DatasetConfig& config = config_;
  auto& by_as = by_as_;
  auto& touched = touched_;
  pool.parallel_map_reduce(
      0, count,
      [&](std::size_t lo, std::size_t hi) {
        const std::size_t shard = lo / chunk;
        EYEBALL_DCHECK(shard < shard_memos.size(),
                       "shard index must address a persistent memo slot");
        auto& memos = shard_memos[shard];
        return detail::condition_chunk(admitted, lo, hi, memos.primary,
                                       memos.secondary, mapper, config);
      },
      [&](detail::ConditionShard shard) {
        for (const auto& set : shard.by_as) touched.insert(net::value_of(set.asn));
        detail::merge_shard_ordered(std::move(shard), by_as, dropped);
      },
      ways);
  dropped.add_to(stats_);
  stats_.windows.push_back(window_stats);
}

TargetDataset StreamingDatasetBuilder::finalize() {
  const util::SerialSection owner{serial_};
  return finalize_locked(config_.threads);
}

TargetDataset StreamingDatasetBuilder::finalize(std::size_t threads) {
  const util::SerialSection owner{serial_};
  return finalize_locked(threads);
}

TargetDataset StreamingDatasetBuilder::finalize_locked(std::size_t threads) {
  DatasetStats stats = stats_;  // stage-1 counters + window snapshots
  std::vector<AsPeerSet*> buckets;
  buckets.reserve(by_as_.size());
  for (auto& [asn_value, set] : by_as_) buckets.push_back(&set);
  // Copies kept sets out; the live buckets stay intact for further ingests.
  auto kept = detail::filter_ases(buckets, config_, threads, stats,
                                  /*take_ownership=*/false);
  touched_.clear();
  return TargetDataset{std::move(kept), std::move(stats)};
}

std::vector<net::Asn> StreamingDatasetBuilder::touched_asns() const {
  const util::SerialSection owner{serial_};
  std::vector<std::uint32_t> values(touched_.begin(), touched_.end());
  std::sort(values.begin(), values.end());
  std::vector<net::Asn> out;
  out.reserve(values.size());
  for (const auto value : values) out.push_back(net::Asn{value});
  return out;
}

std::size_t StreamingDatasetBuilder::memo_hits() const noexcept {
  const util::SerialSection owner{serial_};
  std::size_t total = 0;
  for (const auto& memos : memos_) total += memos.primary.hits() + memos.secondary.hits();
  return total;
}

std::size_t StreamingDatasetBuilder::memo_misses() const noexcept {
  const util::SerialSection owner{serial_};
  std::size_t total = 0;
  for (const auto& memos : memos_) {
    total += memos.primary.misses() + memos.secondary.misses();
  }
  return total;
}

void StreamingDatasetBuilder::reset() {
  const util::SerialSection owner{serial_};
  by_as_.clear();
  seen_.clear();
  stats_ = DatasetStats{};
  touched_.clear();
  pending_.clear();
  pending_.shrink_to_fit();
  last_generation_ = 0;
  for (auto& memos : memos_) {
    memos.primary.reset();
    memos.secondary.reset();
  }
}

}  // namespace eyeball::core
