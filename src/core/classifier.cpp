#include "core/classifier.hpp"

#include <map>
#include <stdexcept>

namespace eyeball::core {
namespace {

/// Largest (count, key) entry of a tally.
template <typename Key>
std::pair<Key, std::size_t> dominant(const std::map<Key, std::size_t>& tally) {
  std::pair<Key, std::size_t> best{};
  for (const auto& [key, count] : tally) {
    if (count > best.second) best = {key, count};
  }
  return best;
}

}  // namespace

AsClassifier::AsClassifier(const gazetteer::Gazetteer& gazetteer, double majority_threshold)
    : gaz_(gazetteer), threshold_(majority_threshold) {
  if (threshold_ <= 0.5 || threshold_ > 1.0) {
    throw std::invalid_argument{"AsClassifier: threshold must be in (0.5, 1]"};
  }
}

Classification AsClassifier::classify(const AsPeerSet& peers) const {
  if (peers.peers.empty()) {
    throw std::invalid_argument{"AsClassifier::classify: empty peer set"};
  }

  std::map<gazetteer::CityId, std::size_t> by_city;
  std::map<std::pair<std::string, std::string>, std::size_t> by_region;
  std::map<std::string, std::size_t> by_country;
  std::map<gazetteer::Continent, std::size_t> by_continent;
  for (const auto& peer : peers.peers) {
    // Prefer the database-reported city (the paper aggregates the
    // databases' city/state/country fields); fall back to the nearest
    // gazetteer city for records that carry coordinates only.
    const auto city_id = peer.reported_city != gazetteer::kInvalidCity
                             ? peer.reported_city
                             : gaz_.nearest_city(peer.location);
    const auto& city = gaz_.city(city_id);
    ++by_city[city_id];
    ++by_region[{std::string{city.country_code}, std::string{city.region}}];
    ++by_country[std::string{city.country_code}];
    ++by_continent[city.continent];
  }

  const auto total = static_cast<double>(peers.peers.size());
  Classification out;

  const auto [top_city, city_count] = dominant(by_city);
  const auto [top_region, region_count] = dominant(by_region);
  const auto [top_country, country_count] = dominant(by_country);
  const auto [top_continent, continent_count] = dominant(by_continent);
  out.continent = top_continent;

  if (static_cast<double>(city_count) / total > threshold_) {
    out.level = topology::AsLevel::kCity;
    out.dominant_region = std::string{gaz_.city(top_city).name};
    out.dominant_share = static_cast<double>(city_count) / total;
  } else if (static_cast<double>(region_count) / total > threshold_) {
    out.level = topology::AsLevel::kState;
    out.dominant_region = top_region.second;
    out.dominant_share = static_cast<double>(region_count) / total;
  } else if (static_cast<double>(country_count) / total > threshold_) {
    out.level = topology::AsLevel::kCountry;
    out.dominant_region = top_country;
    out.dominant_share = static_cast<double>(country_count) / total;
  } else if (static_cast<double>(continent_count) / total > threshold_) {
    out.level = topology::AsLevel::kContinent;
    out.dominant_region = std::string{gazetteer::to_code(top_continent)};
    out.dominant_share = static_cast<double>(continent_count) / total;
  } else {
    out.level = topology::AsLevel::kGlobal;
    out.dominant_share = static_cast<double>(continent_count) / total;
  }
  return out;
}

}  // namespace eyeball::core
