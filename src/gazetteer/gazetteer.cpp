#include "gazetteer/gazetteer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "gazetteer/world_data.hpp"

namespace eyeball::gazetteer {

std::string_view to_string(Continent c) noexcept {
  switch (c) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kEurope: return "Europe";
    case Continent::kAsia: return "Asia";
    case Continent::kAfrica: return "Africa";
    case Continent::kOceania: return "Oceania";
  }
  return "Unknown";
}

std::string_view to_code(Continent c) noexcept {
  switch (c) {
    case Continent::kNorthAmerica: return "NA";
    case Continent::kSouthAmerica: return "SA";
    case Continent::kEurope: return "EU";
    case Continent::kAsia: return "AS";
    case Continent::kAfrica: return "AF";
    case Continent::kOceania: return "OC";
  }
  return "??";
}

double City::radius_km() const noexcept {
  // ~1.6 km per sqrt(10k people); floor 2 km, cap 30 km.
  const double r = 1.6 * std::sqrt(static_cast<double>(population) / 10000.0);
  return std::clamp(r, 2.0, 30.0);
}

Gazetteer Gazetteer::builtin() { return Gazetteer{builtin_cities_with_suburbs()}; }

Gazetteer::Gazetteer(std::vector<City> cities) : cities_(std::move(cities)) {
  if (cities_.empty()) throw std::invalid_argument{"Gazetteer: no cities"};
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    cities_[i].id = static_cast<CityId>(i);
    if (!geo::is_valid(cities_[i].location)) {
      throw std::invalid_argument{"Gazetteer: invalid city coordinates for " +
                                  std::string{cities_[i].name}};
    }
  }
  // Derive the country table from the built-in country list, keeping only
  // countries that actually appear, preserving first-seen order.
  std::unordered_map<std::string_view, bool> seen;
  for (const auto& city : cities_) {
    if (seen.emplace(city.country_code, true).second) {
      if (const Country* c = find_builtin_country(city.country_code)) {
        countries_.push_back(*c);
      } else {
        countries_.push_back({city.country_code, city.country_code, city.continent});
      }
    }
  }
  build_index();
}

void Gazetteer::build_index() {
  grid_.assign(static_cast<std::size_t>(kGridRows) * kGridCols, {});
  for (const auto& city : cities_) {
    grid_[cell_index(city.location.lat_deg, city.location.lon_deg)].members.push_back(
        city.id);
  }
}

std::size_t Gazetteer::cell_index(double lat, double lon) const noexcept {
  const int row = std::clamp(static_cast<int>((lat + 90.0) / 5.0), 0, kGridRows - 1);
  const int col = std::clamp(static_cast<int>((lon + 180.0) / 5.0), 0, kGridCols - 1);
  return static_cast<std::size_t>(row) * kGridCols + static_cast<std::size_t>(col);
}

const City& Gazetteer::city(CityId id) const {
  if (id >= cities_.size()) throw std::out_of_range{"Gazetteer::city: bad id"};
  return cities_[id];
}

std::optional<CityId> Gazetteer::find_by_name(std::string_view name,
                                              std::string_view country_code) const {
  for (const auto& c : cities_) {
    if (c.name == name && (country_code.empty() || c.country_code == country_code)) {
      return c.id;
    }
  }
  return std::nullopt;
}

CityId Gazetteer::nearest_city(const geo::GeoPoint& p) const {
  // Expand rings of grid cells around p until a candidate is found, then one
  // extra ring to guard against cell-boundary artifacts.
  const int row0 = std::clamp(static_cast<int>((p.lat_deg + 90.0) / 5.0), 0, kGridRows - 1);
  const int col0 = std::clamp(static_cast<int>((p.lon_deg + 180.0) / 5.0), 0, kGridCols - 1);

  CityId best = kInvalidCity;
  double best_dist = std::numeric_limits<double>::infinity();
  const int max_ring = std::max(kGridRows, kGridCols);
  for (int ring = 0; ring <= max_ring; ++ring) {
    for (int dr = -ring; dr <= ring; ++dr) {
      for (int dc = -ring; dc <= ring; ++dc) {
        if (std::max(std::abs(dr), std::abs(dc)) != ring) continue;  // ring shell only
        const int row = row0 + dr;
        if (row < 0 || row >= kGridRows) continue;
        int col = (col0 + dc) % kGridCols;
        if (col < 0) col += kGridCols;
        const auto& cell = grid_[static_cast<std::size_t>(row) * kGridCols +
                                 static_cast<std::size_t>(col)];
        for (CityId id : cell.members) {
          const double d = geo::distance_km(p, cities_[id].location);
          if (d < best_dist) {
            best_dist = d;
            best = id;
          }
        }
      }
    }
    if (best != kInvalidCity) {
      // Every cell of ring k+1 is at least `ring` whole cells away in one
      // axis.  Longitude cells are physically narrowest at the pole-most
      // latitude the next ring can reach, so that bounds the closest
      // possible undiscovered city conservatively.
      const double reach_lat =
          std::min(89.5, std::abs(p.lat_deg) + 5.0 * static_cast<double>(ring + 1));
      const double min_next_km = static_cast<double>(ring) * 5.0 *
                                 std::min(geo::kKmPerDegreeLat,
                                          geo::km_per_degree_lon(reach_lat));
      if (min_next_km > best_dist) break;
    }
  }
  return best;
}

std::vector<CityId> Gazetteer::cities_within(const geo::GeoPoint& p,
                                             double radius_km) const {
  std::vector<CityId> out;
  // Conservative cell window: 5 degrees of latitude is ~556 km.
  const int ring = 1 + static_cast<int>(radius_km / 500.0);
  const int row0 = std::clamp(static_cast<int>((p.lat_deg + 90.0) / 5.0), 0, kGridRows - 1);
  const int col0 = std::clamp(static_cast<int>((p.lon_deg + 180.0) / 5.0), 0, kGridCols - 1);
  for (int dr = -ring; dr <= ring; ++dr) {
    const int row = row0 + dr;
    if (row < 0 || row >= kGridRows) continue;
    for (int dc = -ring; dc <= ring; ++dc) {
      int col = (col0 + dc) % kGridCols;
      if (col < 0) col += kGridCols;
      const auto& cell =
          grid_[static_cast<std::size_t>(row) * kGridCols + static_cast<std::size_t>(col)];
      for (CityId id : cell.members) {
        if (geo::distance_km(p, cities_[id].location) <= radius_km) out.push_back(id);
      }
    }
  }
  return out;
}

std::optional<CityId> Gazetteer::largest_city_within(const geo::GeoPoint& p,
                                                     double radius_km) const {
  const auto candidates = cities_within(p, radius_km);
  if (candidates.empty()) return std::nullopt;
  return *std::max_element(candidates.begin(), candidates.end(),
                           [this](CityId a, CityId b) {
                             return cities_[a].population < cities_[b].population;
                           });
}

std::vector<CityId> Gazetteer::cities_in_country(std::string_view country_code) const {
  std::vector<CityId> out;
  for (const auto& c : cities_) {
    if (c.country_code == country_code) out.push_back(c.id);
  }
  return out;
}

std::vector<CityId> Gazetteer::cities_in_region(std::string_view country_code,
                                                std::string_view region) const {
  std::vector<CityId> out;
  for (const auto& c : cities_) {
    if (c.country_code == country_code && c.region == region) out.push_back(c.id);
  }
  return out;
}

std::vector<CityId> Gazetteer::cities_in_continent(Continent continent) const {
  std::vector<CityId> out;
  for (const auto& c : cities_) {
    if (c.continent == continent) out.push_back(c.id);
  }
  return out;
}

const Country* Gazetteer::find_country(std::string_view code) const noexcept {
  for (const auto& c : countries_) {
    if (c.code == code) return &c;
  }
  return nullptr;
}

std::uint64_t Gazetteer::country_population(std::string_view code) const {
  std::uint64_t total = 0;
  for (const auto& c : cities_) {
    if (c.country_code == code) total += c.population;
  }
  return total;
}

}  // namespace eyeball::gazetteer
