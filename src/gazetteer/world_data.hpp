// Built-in world table: ~500 real cities (name, admin-1 region, country,
// continent, coordinates, population) plus the country list.
//
// This is the library's substitute for the commercial geo databases and
// census data the paper relies on: coordinates are real (sub-0.1-degree
// accuracy) and populations are metro-scale estimates, which is all the
// PoP-to-city mapping and level classification need.  Italy is covered
// densely because the paper's Figure 1 (AS3269) and §6 case study (AS8234,
// RAI) are Italian.
#pragma once

#include <vector>

#include "gazetteer/types.hpp"

namespace eyeball::gazetteer {

/// A fresh copy of the built-in city table (ids unset; the Gazetteer
/// constructor assigns them).
[[nodiscard]] std::vector<City> builtin_cities();

/// The built-in table plus deterministic satellite towns around every large
/// metro (population >= 600k).  Real geography is a dense fabric of small
/// towns: a density peak almost anywhere maps to *some* town.  The paper's
/// peak-to-city mapping and its Figure 2 precision behaviour depend on
/// that, so Gazetteer::builtin() uses this table.
[[nodiscard]] std::vector<City> builtin_cities_with_suburbs();

/// Country metadata for a code, or nullptr if unknown.
[[nodiscard]] const Country* find_builtin_country(std::string_view code) noexcept;

}  // namespace eyeball::gazetteer
