// World-model value types: continents, countries, administrative regions and
// cities.  The gazetteer substitutes for the real-world geography (city
// coordinates, populations, zip codes) that the paper's PoP-to-city mapping
// and level classification depend on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "geo/point.hpp"

namespace eyeball::gazetteer {

enum class Continent : std::uint8_t {
  kNorthAmerica,
  kSouthAmerica,
  kEurope,
  kAsia,
  kAfrica,
  kOceania,
};

[[nodiscard]] std::string_view to_string(Continent c) noexcept;
/// Short code used in tables ("NA", "EU", "AS", ...).
[[nodiscard]] std::string_view to_code(Continent c) noexcept;

using CityId = std::uint32_t;
inline constexpr CityId kInvalidCity = 0xffffffffU;

struct Country {
  std::string_view code;  // ISO 3166-1 alpha-2
  std::string_view name;
  Continent continent;
};

struct City {
  CityId id = kInvalidCity;
  std::string_view name;
  std::string_view region;        // admin-1: state / province / region
  std::string_view country_code;  // ISO alpha-2
  Continent continent = Continent::kEurope;
  geo::GeoPoint location;
  std::uint64_t population = 0;
  /// True for generated satellite towns (the dense settlement fabric around
  /// metros).  They participate in proximity queries and PoP-to-city
  /// mapping, but ISP PoPs are only ever placed at real cities.
  bool is_satellite = false;

  /// Rough radius of the built-up area, used for user scattering and zip
  /// lattices.  Scales with sqrt(population): ~5 km for a 100k-town,
  /// ~22 km for a 10M-metropolis (paper: "average radius of a city is
  /// around 30-35km" refers to metro areas; we cap at 30 km).
  [[nodiscard]] double radius_km() const noexcept;
};

}  // namespace eyeball::gazetteer
