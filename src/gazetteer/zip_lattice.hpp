// Synthetic zip-code centroid lattices.
//
// The paper's geo databases resolve every IP to a zip-code centroid ("all
// users in a given zip code are mapped to the same coordinates").  To
// exercise that quantization, each city gets a deterministic set of zip
// centroids scattered over its built-up area; user placement and database
// lookups both snap to these points.
#pragma once

#include <cstdint>
#include <vector>

#include "gazetteer/types.hpp"
#include "geo/point.hpp"

namespace eyeball::gazetteer {

struct ZipLatticeConfig {
  /// One centroid per this many inhabitants (floor 3 centroids per city).
  std::uint64_t people_per_zip = 30000;
  std::uint64_t max_zips_per_city = 400;
  /// Scatter radius as a multiple of City::radius_km().
  double spread_factor = 1.0;
  /// Absolute cap on the scatter radius — a metro's commuter belt does not
  /// grow without bound with its population.
  double max_spread_km = 1e9;
  std::uint64_t seed = 0x5eedf00dULL;
};

/// Lattice used for placing *users* (ISP customers) around a PoP city:
/// finer and wider than the nominal city lattice, since a metro PoP's
/// customers live across the metro area and its satellite towns.  Shared by
/// the ground-truth locator (user placement) and the world table (satellite
/// towns sit on the outer points of this lattice — in the real world
/// every zip centroid is a named settlement).
[[nodiscard]] constexpr ZipLatticeConfig user_placement_config() noexcept {
  ZipLatticeConfig config;
  config.people_per_zip = 20000;
  config.spread_factor = 1.2;
  config.max_spread_km = 24.0;  // commuter-belt cap (Rayleigh tail ~60 km)
  return config;
}

/// Deterministic zip centroids for one city.  The same (city, config) always
/// yields the same lattice, independent of call order.
[[nodiscard]] std::vector<geo::GeoPoint> zip_centroids(const City& city,
                                                       const ZipLatticeConfig& config = {});

/// Snaps `p` to the nearest centroid of `city`'s lattice.
[[nodiscard]] geo::GeoPoint snap_to_zip(const City& city, const geo::GeoPoint& p,
                                        const ZipLatticeConfig& config = {});

}  // namespace eyeball::gazetteer
