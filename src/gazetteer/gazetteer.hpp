// In-memory world gazetteer: query cities by proximity, containment and
// administrative division.  Backs (a) placement of synthetic users,
// (b) the paper's "loose" PoP-to-city mapping (largest-population city
// within one kernel bandwidth), and (c) AS level classification.
#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "gazetteer/types.hpp"
#include "geo/point.hpp"

namespace eyeball::gazetteer {

class Gazetteer {
 public:
  /// Builds the gazetteer from the built-in world table (~540 real cities).
  [[nodiscard]] static Gazetteer builtin();

  /// Builds from caller-provided cities (ids are reassigned to indices).
  explicit Gazetteer(std::vector<City> cities);

  [[nodiscard]] std::span<const City> cities() const noexcept { return cities_; }
  [[nodiscard]] const City& city(CityId id) const;
  [[nodiscard]] std::optional<CityId> find_by_name(std::string_view name,
                                                   std::string_view country_code = {}) const;

  /// Nearest city to `p` (always exists for a non-empty gazetteer).
  [[nodiscard]] CityId nearest_city(const geo::GeoPoint& p) const;

  /// All cities with distance(city, p) <= radius_km, unordered.
  [[nodiscard]] std::vector<CityId> cities_within(const geo::GeoPoint& p,
                                                  double radius_km) const;

  /// The most populated city within `radius_km` of `p`, if any — the paper's
  /// §4.2 loose mapping rule.
  [[nodiscard]] std::optional<CityId> largest_city_within(const geo::GeoPoint& p,
                                                          double radius_km) const;

  [[nodiscard]] std::vector<CityId> cities_in_country(std::string_view country_code) const;
  [[nodiscard]] std::vector<CityId> cities_in_region(std::string_view country_code,
                                                     std::string_view region) const;
  [[nodiscard]] std::vector<CityId> cities_in_continent(Continent continent) const;

  [[nodiscard]] std::span<const Country> countries() const noexcept { return countries_; }
  [[nodiscard]] const Country* find_country(std::string_view code) const noexcept;

  /// Total population across all cities of a country (used for market-share
  /// weighting in the topology generator).
  [[nodiscard]] std::uint64_t country_population(std::string_view code) const;

 private:
  struct GridCell {
    std::vector<CityId> members;
  };

  void build_index();
  [[nodiscard]] std::size_t cell_index(double lat, double lon) const noexcept;

  std::vector<City> cities_;
  std::vector<Country> countries_;

  // Coarse uniform lat/lon grid for proximity queries.
  static constexpr int kGridRows = 36;  // 5 degrees per row
  static constexpr int kGridCols = 72;  // 5 degrees per column
  std::vector<GridCell> grid_;
};

}  // namespace eyeball::gazetteer
