#include "gazetteer/zip_lattice.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace eyeball::gazetteer {

std::vector<geo::GeoPoint> zip_centroids(const City& city, const ZipLatticeConfig& config) {
  const std::uint64_t wanted =
      std::clamp<std::uint64_t>(city.population / std::max<std::uint64_t>(1, config.people_per_zip),
                                3, config.max_zips_per_city);
  // Per-city stream: depends only on the city identity and the seed.
  util::Rng rng{util::mix64(config.seed,
                            util::mix64(util::hash_string(city.name),
                                        util::hash_string(city.country_code)))};
  const double spread = std::min(city.radius_km() * config.spread_factor,
                                 config.max_spread_km);
  std::vector<geo::GeoPoint> out;
  out.reserve(wanted);
  for (std::uint64_t i = 0; i < wanted; ++i) {
    // Rayleigh-distributed radius (2-D Gaussian scatter), capped at 2.5x.
    const double r = std::min(spread * std::sqrt(-2.0 * std::log1p(-rng.uniform())) * 0.7,
                              2.5 * spread);
    const double bearing = rng.uniform(0.0, 360.0);
    out.push_back(geo::destination(city.location, bearing, r));
  }
  return out;
}

geo::GeoPoint snap_to_zip(const City& city, const geo::GeoPoint& p,
                          const ZipLatticeConfig& config) {
  const auto lattice = zip_centroids(city, config);
  double best = std::numeric_limits<double>::infinity();
  geo::GeoPoint snapped = city.location;
  for (const auto& centroid : lattice) {
    const double d = geo::approx_distance_km(p, centroid);
    if (d < best) {
      best = d;
      snapped = centroid;
    }
  }
  return snapped;
}

}  // namespace eyeball::gazetteer
