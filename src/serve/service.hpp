// Concurrent query/serving layer over the streaming pipeline.
//
// EyeballService turns the library into a long-lived server: a single
// writer thread feeds crawl windows into an owned StreamingDatasetBuilder
// and publishes immutable ServingSnapshot epochs (finalized TargetDataset +
// per-AS analyses), while any number of reader threads answer point and
// batch queries against the snapshot current at their moment of arrival.
//
// Concurrency contract (pinned by tests/serving_test.cpp under the TSan
// gate):
//   - ONE writer.  ingest() / publish() / restore() and the builder
//     accessors must be called from a single thread (or externally
//     serialized).  The writer never blocks on readers.
//   - ANY number of readers.  snapshot() / query() / query_batch() /
//     stats() / epoch() are safe from any thread concurrently with the
//     writer, never block ingest, and never observe a torn epoch: every
//     answer is derived from exactly one published ServingSnapshot.
//
// The mechanism is epoch publication (RCU-style double buffering): the
// writer builds the next snapshot completely off to the side, then swings
// an atomically-published shared_ptr (see SnapshotCell).  Readers load the
// pointer once per query; the shared_ptr keeps their epoch alive for as
// long as they hold it, so a reader can keep answering from epoch N while
// the writer publishes N+1, N+2, ...  Nothing is ever mutated after
// publication.
//
// Publication is incremental: publish() captures the builder's
// touched_asns() BEFORE finalize() (finalize clears the set) and hands the
// previous epoch's analyses to EyeballPipeline::refresh_analyses, so only
// ASes whose buckets actually changed are re-analyzed — the published
// result is nevertheless identical to analyze_all from scratch (pinned by a
// differential test).
//
// Durability: when ServiceConfig::snapshot_dir is non-empty, every
// publish() also persists the builder state there via the crash-safe
// snapshot path (core/snapshot.hpp); restore() rebuilds a service from such
// a directory and publishes a first epoch from scratch.
//
// Operational resilience (pinned by tests/chaos_test.cpp):
//   - Durability writes are supervised: snapshot-save and artifact-emit run
//     under a deterministic retry-with-exponential-backoff policy
//     (ServiceConfig::durability_retry, timed by the injectable Clock seam)
//     and every attempt's typed Status is kept (last_save_retry() /
//     last_artifact_retry()).
//   - Publication is firewalled: an exception escaping finalize/analysis is
//     converted into a typed kInternal Status instead of unwinding into the
//     caller; the previous epoch keeps serving and the captured changed-ASN
//     work list carries over so the NEXT publish re-analyzes everything the
//     failed one would have.
//   - The service reports a three-state health summary (health()):
//     Healthy, DegradedDurability (serving + publishing fine, persistence
//     failing), ReadOnly (the last publish itself failed).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/artifact.hpp"
#include "core/pipeline.hpp"
#include "core/snapshot.hpp"
#include "core/streaming_dataset.hpp"
#include "util/annotations.hpp"
#include "util/clock.hpp"
#include "util/file.hpp"
#include "util/mutex.hpp"
#include "util/retry.hpp"
#include "util/status.hpp"

namespace eyeball::serve {

struct ServiceConfig {
  /// Concurrency for finalize() and the analysis refresh on the writer
  /// path; 0 = one chunk per hardware thread.
  std::size_t threads = 0;
  /// When non-empty, publish() persists the builder state to this directory
  /// after each epoch swing (crash-safe generations; see last_save_status()).
  std::string snapshot_dir;
  /// When non-empty, publish() also emits the published epoch as an EYBART1
  /// serving artifact at this path (crash-safe via atomic_write_file; see
  /// last_artifact_status()).  A replica restores from it with
  /// restore_from_artifact() — mmap + validate, no snapshot replay.
  std::string artifact_path;
  /// Filesystem seam for every durability and restore path; nullptr = the
  /// process-wide real filesystem.  Tests wire a FaultInjectingFileSystem
  /// here to drive the whole service lifecycle through deterministic fault
  /// schedules.
  util::FileSystem* filesystem = nullptr;
  /// Time seam for the durability retry policy; nullptr = the monotonic
  /// real clock (real backoff sleeps).  Tests wire a FakeClock here, making
  /// the retry schedule a pure, byte-reproducible function of the faults.
  util::Clock* clock = nullptr;
  /// Backoff schedule for supervised durability writes (snapshot save and
  /// artifact emit).  The defaults retry transient kIoError failures three
  /// times total; non-retriable verdicts (corruption, config skew) fail
  /// immediately.
  util::RetryOptions durability_retry;
  /// Test-only fault hook, invoked on the writer path between finalize()
  /// and analysis inside the publish exception firewall.  May throw — that
  /// is its purpose: it is the deterministic stand-in for an analysis or
  /// allocation failure mid-publish.  Leave empty in production.
  std::function<void()> publish_fault_hook;
};

/// The service's operational state, coarsened to what an operator acts on.
/// Order matters: higher is worse.
enum class ServiceHealth : std::uint8_t {
  /// Publishing and (if configured) persistence both succeed.
  kHealthy,
  /// Serving and publishing work, but the latest supervised durability
  /// write (snapshot save or artifact emit) failed after retries.  Queries
  /// are fresh; crash-recovery freshness is degraded.
  kDegradedDurability,
  /// The latest publish itself failed (exception firewall tripped).  The
  /// previous epoch keeps serving — reads work, the dataset no longer
  /// advances until a publish succeeds.
  kReadOnly,
};

[[nodiscard]] std::string_view to_string(ServiceHealth health) noexcept;

/// One coherent health observation: the state plus how the service has
/// moved between states and the most recent error that drove a transition
/// out of Healthy (sticky — kept for post-mortem after recovery).
struct HealthReport {
  ServiceHealth state = ServiceHealth::kHealthy;
  /// Total state CHANGES (entering the current state again is not one).
  std::uint64_t transitions = 0;
  /// Times the service ENTERED DegradedDurability / ReadOnly.
  std::uint64_t times_degraded = 0;
  std::uint64_t times_read_only = 0;
  /// The error behind the most recent transition away from Healthy; OK only
  /// if the service has never left Healthy.
  util::Status last_error;
};

class ServingSnapshot;

namespace detail {

/// The publication point: semantically a
/// std::atomic<std::shared_ptr<const ServingSnapshot>>, implemented
/// in-house because libstdc++ 12's _Sp_atomic guards its value pointer
/// with a spinlock whose reader-side unlock is relaxed — ThreadSanitizer
/// (correctly, under the formal memory model) reports the reader's plain
/// pointer read as racing the writer's swap.  A mutex held only for the
/// pointer copy/swap gives the same epoch-publication semantics with
/// sound ordering: the writer builds each epoch entirely outside the
/// lock, and the shared_ptr control block makes reclamation safe without
/// quiescence tracking.
class SnapshotCell {
 public:
  /// Reader side: pins the epoch current at the moment of the call.
  [[nodiscard]] std::shared_ptr<const ServingSnapshot> load() const {
    const util::MutexLock guard{mutex_};
    return snapshot_;
  }

  /// Writer side: swings the published pointer.  The previous epoch's
  /// (potentially large) destructor runs outside the lock, and only if no
  /// reader still pins it.
  void store(std::shared_ptr<const ServingSnapshot> next) {
    {
      const util::MutexLock guard{mutex_};
      snapshot_.swap(next);
    }
  }

 private:
  /// Guards only the pointer copy/swap; never held while an epoch is built
  /// or destroyed.
  mutable util::Mutex mutex_;
  std::shared_ptr<const ServingSnapshot> snapshot_ EYEBALL_GUARDED_BY(mutex_);
};

/// The health state machine behind EyeballService::health().  Internally
/// synchronized so readers may poll it concurrently with the writer's
/// transitions; the writer is the only mutator, so a report is always one
/// coherent (state, counters, error) observation.
class HealthTracker {
 public:
  /// Moves to `next`; counts a transition only on an actual change.  A
  /// non-OK `why` becomes the sticky last_error (an OK `why` on recovery
  /// leaves the previous error in place for post-mortem).
  void transition(ServiceHealth next, const util::Status& why) {
    const util::MutexLock guard{mutex_};
    if (next != state_) {
      ++transitions_;
      if (next == ServiceHealth::kDegradedDurability) ++times_degraded_;
      if (next == ServiceHealth::kReadOnly) ++times_read_only_;
      state_ = next;
    }
    if (!why.ok()) last_error_ = why;
  }

  [[nodiscard]] HealthReport report() const {
    const util::MutexLock guard{mutex_};
    HealthReport out;
    out.state = state_;
    out.transitions = transitions_;
    out.times_degraded = times_degraded_;
    out.times_read_only = times_read_only_;
    out.last_error = last_error_;
    return out;
  }

 private:
  mutable util::Mutex mutex_;
  ServiceHealth state_ EYEBALL_GUARDED_BY(mutex_) = ServiceHealth::kHealthy;
  std::uint64_t transitions_ EYEBALL_GUARDED_BY(mutex_) = 0;
  std::uint64_t times_degraded_ EYEBALL_GUARDED_BY(mutex_) = 0;
  std::uint64_t times_read_only_ EYEBALL_GUARDED_BY(mutex_) = 0;
  util::Status last_error_ EYEBALL_GUARDED_BY(mutex_);
};

}  // namespace detail

/// One immutable published epoch.  Everything here is frozen at publish
/// time; readers share it by shared_ptr and never see it change.
///
/// Two backings, one reader contract:
///   - in-memory: owns the finalized TargetDataset + analyses (the normal
///     publish() product).
///   - artifact-backed: owns only a shared ArtifactView over a mapped
///     EYBART1 image (the restore_from_artifact() product).  Lookups read
///     the image in place; an AS's full AsAnalysis is materialized lazily on
///     first request (std::call_once per AS, so concurrent readers get one
///     thaw and no race) and cached for the snapshot's lifetime.  Answers
///     are byte-identical to the epoch the artifact was written from —
///     pinned by tests/artifact_test.cpp.
class ServingSnapshot {
 public:
  ServingSnapshot(std::uint64_t epoch, core::TargetDataset dataset,
                  std::vector<core::AsAnalysis> analyses);
  /// Artifact-backed epoch over a validated view (see ArtifactView::open).
  ServingSnapshot(std::uint64_t epoch,
                  std::shared_ptr<const core::ArtifactView> artifact);

  /// 1 for the first published epoch, incremented per publish.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  /// True when this epoch answers from a mapped artifact image.
  [[nodiscard]] bool artifact_backed() const noexcept { return artifact_ != nullptr; }

  // ---- Backing-agnostic surface (what readers should use) ----

  /// Dataset-level stats of this epoch.
  [[nodiscard]] const core::DatasetStats& stats() const noexcept;
  /// Number of ASes served this epoch.
  [[nodiscard]] std::size_t as_count() const noexcept;
  /// ASN of the i-th served AS (dataset order).
  [[nodiscard]] net::Asn asn_at(std::size_t index) const noexcept;
  /// The i-th AS's analysis; stable address for the snapshot's lifetime.
  /// May thaw from the artifact on first call (allocates; thread-safe).
  [[nodiscard]] const core::AsAnalysis* analysis_at(std::size_t index) const;
  /// O(log n) point lookup; nullptr when the ASN is not served this epoch.
  [[nodiscard]] const core::AsAnalysis* find(net::Asn asn) const;

  // ---- In-memory-only surface (writer-path internals) ----

  /// The finalized dataset.  In-memory epochs only — an artifact-backed
  /// epoch has no TargetDataset (peers are materialized per AS on demand
  /// via artifact()->as_at(i).materialize_peers()).
  [[nodiscard]] const core::TargetDataset& dataset() const noexcept;
  /// Parallel to dataset().ases(): analyses()[i] describes ases()[i].
  /// In-memory epochs only.
  [[nodiscard]] std::span<const core::AsAnalysis> analyses() const noexcept;
  /// The backing view; nullptr for in-memory epochs.
  [[nodiscard]] const std::shared_ptr<const core::ArtifactView>& artifact()
      const noexcept {
    return artifact_;
  }

 private:
  std::uint64_t epoch_;
  /// Engaged iff this epoch is in-memory backed.
  std::optional<core::TargetDataset> dataset_;
  std::vector<core::AsAnalysis> analyses_;
  /// Non-null iff this epoch is artifact-backed.
  std::shared_ptr<const core::ArtifactView> artifact_;
  /// Lazy per-AS thaw state for the artifact backing (sized at construction,
  /// never resized — analysis_at hands out stable addresses into thawed_).
  mutable std::vector<std::once_flag> thaw_once_;
  mutable std::vector<std::unique_ptr<core::AsAnalysis>> thawed_;
};

/// A point answer pinned to the epoch it came from: `analysis` points into
/// `snapshot`, which the shared_ptr keeps alive across any number of
/// concurrent publishes.
struct AnalysisRef {
  std::shared_ptr<const ServingSnapshot> snapshot;
  /// nullptr when the ASN is not served (or nothing is published yet).
  const core::AsAnalysis* analysis = nullptr;

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return snapshot == nullptr ? 0 : snapshot->epoch();
  }
  [[nodiscard]] explicit operator bool() const noexcept { return analysis != nullptr; }
};

/// A batch answer: every entry comes from the SAME epoch (one atomic
/// snapshot load for the whole batch), so a batch can never straddle a
/// publish.  analyses[i] answers asns[i]; nullptr = not served.
struct BatchResult {
  std::shared_ptr<const ServingSnapshot> snapshot;
  std::vector<const core::AsAnalysis*> analyses;

  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return snapshot == nullptr ? 0 : snapshot->epoch();
  }
};

class EyeballService {
 public:
  /// The pipeline (and the databases/mapper/gazetteer behind it) must
  /// outlive the service.
  explicit EyeballService(const core::EyeballPipeline& pipeline, ServiceConfig config = {});

  // ---- Writer path (single thread) ----

  /// Feeds one crawl window into the builder.  Readers are unaffected until
  /// the next publish().
  void ingest(std::span<const p2p::PeerSample> window);

  /// Finalizes everything ingested so far, re-analyzes only the ASes
  /// touched since the previous publish (plus newcomers), and atomically
  /// publishes the result as the next epoch.  Returns the published
  /// snapshot — or nullptr when the exception firewall tripped: the typed
  /// failure is in last_publish_status(), health() reports ReadOnly, the
  /// previous epoch keeps serving, and the changed-ASN work list carries
  /// over so the next successful publish analyzes everything this one
  /// would have.
  ///
  /// With a configured snapshot_dir / artifact_path, also persists the
  /// builder state / emits the serving artifact under the supervised retry
  /// policy (failures are recorded in last_save_status() /
  /// last_artifact_status() and reflected by health(), never thrown —
  /// serving stays up when the disk misbehaves).
  std::shared_ptr<const ServingSnapshot> publish();

  /// Replaces the builder state with the newest loadable generation in
  /// `dir` (see StreamingDatasetBuilder::restore_snapshot) and publishes a
  /// fresh epoch analyzed from scratch.  On failure the service is
  /// untouched — the current epoch keeps serving.
  [[nodiscard]] util::Status restore(const std::string& dir,
                                     core::SnapshotRestoreInfo* info = nullptr);

  /// Publishes an artifact-backed epoch from the EYBART1 image at `path`:
  /// mmap + one validation walk, zero per-record parsing — the fast path
  /// for bringing a replica's serving surface up.  Refuses (typed) an image
  /// whose config fingerprint differs from this pipeline's, a damaged image
  /// (kCorruption) and an unreadable format (kVersionMismatch); on any
  /// failure the service is untouched and the current epoch keeps serving.
  ///
  /// Scope: this restores SERVING state only.  The builder is not touched —
  /// the artifact stores the published epoch, not ingestion state; use
  /// restore() (snapshot) to continue ingesting where a writer left off.
  [[nodiscard]] util::Status restore_from_artifact(const std::string& path);

  /// Outcome of the most recent durability write; OK when snapshot_dir is
  /// empty or the last save succeeded.  Writer-thread only.
  [[nodiscard]] const util::Status& last_save_status() const noexcept {
    const util::SerialSection writer{writer_serial_};
    return last_save_status_;
  }

  /// Outcome of the most recent artifact emission; OK when artifact_path is
  /// empty or the last write succeeded.  Writer-thread only.
  [[nodiscard]] const util::Status& last_artifact_status() const noexcept {
    const util::SerialSection writer{writer_serial_};
    return last_artifact_status_;
  }

  /// Outcome of the most recent publish(): OK, or the typed kInternal
  /// failure the exception firewall produced.  Writer-thread only.
  [[nodiscard]] const util::Status& last_publish_status() const noexcept {
    const util::SerialSection writer{writer_serial_};
    return last_publish_status_;
  }

  /// Full per-attempt history of the most recent supervised snapshot save
  /// (every attempt's Status + the backoff slept before it).  Empty before
  /// the first save.  Writer-thread only.
  [[nodiscard]] const util::RetryResult& last_save_retry() const noexcept {
    const util::SerialSection writer{writer_serial_};
    return last_save_retry_;
  }

  /// Same history for the most recent supervised artifact emit.
  [[nodiscard]] const util::RetryResult& last_artifact_retry() const noexcept {
    const util::SerialSection writer{writer_serial_};
    return last_artifact_retry_;
  }

  /// The owned builder, for writer-side introspection (stats, memo hit
  /// rates, windows_ingested).  Writer-thread only.
  [[nodiscard]] const core::StreamingDatasetBuilder& builder() const noexcept {
    const util::SerialSection writer{writer_serial_};
    return builder_;
  }

  // ---- Reader path (any thread, concurrent with the writer) ----

  /// The current epoch's snapshot, or nullptr before the first publish.
  /// Holding the returned shared_ptr pins that epoch: later publishes don't
  /// invalidate it.
  [[nodiscard]] std::shared_ptr<const ServingSnapshot> snapshot() const {
    return current_.load();
  }

  /// Epoch of the current snapshot; 0 before the first publish.
  [[nodiscard]] std::uint64_t epoch() const;

  /// Point query: the full analysis (classification, footprint, PoP list)
  /// of one ASN, pinned to a single epoch.
  [[nodiscard]] AnalysisRef query(net::Asn asn) const;

  /// Batch query: every answer from the same single epoch.
  [[nodiscard]] BatchResult query_batch(std::span<const net::Asn> asns) const;

  /// Dataset-level stats of the current epoch (copy, so the caller needs no
  /// lifetime care); nullopt before the first publish.
  struct StatsAnswer {
    std::uint64_t epoch = 0;
    core::DatasetStats stats;
  };
  [[nodiscard]] std::optional<StatsAnswer> stats() const;

  /// One coherent health observation (state machine: Healthy <->
  /// DegradedDurability <-> ReadOnly; see ServiceHealth).  Safe from any
  /// thread, concurrent with the writer.
  [[nodiscard]] HealthReport health() const { return health_.report(); }

 private:
  std::shared_ptr<const ServingSnapshot> publish_from(
      std::vector<net::Asn> changed, std::span<const core::AsAnalysis> previous)
      EYEBALL_REQUIRES(writer_serial_);

  /// The configured filesystem/clock seams, defaulted to the real ones.
  [[nodiscard]] util::FileSystem& filesystem() const EYEBALL_REQUIRES(writer_serial_) {
    return config_.filesystem != nullptr ? *config_.filesystem
                                         : util::local_filesystem();
  }
  [[nodiscard]] util::Clock& clock() const EYEBALL_REQUIRES(writer_serial_) {
    return config_.clock != nullptr ? *config_.clock : util::monotonic_clock();
  }

  /// The "single writer" role from the concurrency contract above, made
  /// checkable: every writer-path entry point claims it with a
  /// SerialSection (a no-op at runtime), and all writer-side state is
  /// guarded by it — so a refactor that reaches builder state from the
  /// reader path fails the EYEBALL_THREAD_SAFETY build.  `mutable` because
  /// the role is also claimed by const writer-side accessors.
  mutable util::Serial writer_serial_;

  const core::EyeballPipeline& pipeline_;
  ServiceConfig config_ EYEBALL_GUARDED_BY(writer_serial_);
  core::StreamingDatasetBuilder builder_ EYEBALL_GUARDED_BY(writer_serial_);
  util::Status last_save_status_ EYEBALL_GUARDED_BY(writer_serial_);
  util::Status last_artifact_status_ EYEBALL_GUARDED_BY(writer_serial_);
  util::Status last_publish_status_ EYEBALL_GUARDED_BY(writer_serial_);
  util::RetryResult last_save_retry_ EYEBALL_GUARDED_BY(writer_serial_);
  util::RetryResult last_artifact_retry_ EYEBALL_GUARDED_BY(writer_serial_);
  /// Changed-ASN work list rescued from a firewalled publish: finalize()
  /// clears the builder's touched set before analysis can fail, so without
  /// this carry-over a publish AFTER a failed one would silently skip
  /// re-analyzing the ASes the failed publish was about to cover.  Merged
  /// into the next publish's work list, cleared on success.
  std::vector<net::Asn> carryover_changed_ EYEBALL_GUARDED_BY(writer_serial_);
  /// The published epoch; see SnapshotCell for why this is not
  /// std::atomic<std::shared_ptr>.  Internally synchronized — safe from
  /// both paths, so deliberately NOT guarded by writer_serial_.
  detail::SnapshotCell current_;
  /// Internally synchronized (reader-path health() polls it live).
  detail::HealthTracker health_;
};

}  // namespace eyeball::serve
