#include "serve/service.hpp"

#include <utility>

#include "util/check.hpp"

namespace eyeball::serve {

ServingSnapshot::ServingSnapshot(std::uint64_t epoch, core::TargetDataset dataset,
                                 std::vector<core::AsAnalysis> analyses)
    : epoch_(epoch), dataset_(std::move(dataset)), analyses_(std::move(analyses)) {
  EYEBALL_DCHECK(analyses_.size() == dataset_.ases().size(),
                 "snapshot analyses must be parallel to the dataset's ASes");
}

const core::AsAnalysis* ServingSnapshot::find(net::Asn asn) const noexcept {
  const core::AsPeerSet* as = dataset_.find(asn);
  if (as == nullptr) return nullptr;
  // ases() and analyses_ are parallel vectors, so the dataset's index is
  // the analysis index.
  const auto index = static_cast<std::size_t>(as - dataset_.ases().data());
  return &analyses_[index];
}

EyeballService::EyeballService(const core::EyeballPipeline& pipeline, ServiceConfig config)
    : pipeline_(pipeline),
      config_(std::move(config)),
      builder_(pipeline.streaming_builder()) {}

void EyeballService::ingest(std::span<const p2p::PeerSample> window) {
  const util::SerialSection writer{writer_serial_};
  builder_.ingest(window);
}

std::shared_ptr<const ServingSnapshot> EyeballService::publish() {
  const util::SerialSection writer{writer_serial_};
  // Touched set must be read BEFORE finalize(): finalize clears it.
  std::vector<net::Asn> changed = builder_.touched_asns();
  // The previous epoch stays pinned by this local shared_ptr, so handing
  // its analyses span to refresh_analyses is safe even though readers may
  // concurrently drop their own references.
  const std::shared_ptr<const ServingSnapshot> previous = current_.load();
  auto next = publish_from(std::move(changed),
                           previous == nullptr
                               ? std::span<const core::AsAnalysis>{}
                               : previous->analyses());
  if (!config_.snapshot_dir.empty()) {
    // Durability is best-effort on the serving path: a failed save must not
    // take queries down, so the status is surfaced, not thrown.
    last_save_status_ = builder_.save_snapshot(config_.snapshot_dir);
  }
  return next;
}

util::Status EyeballService::restore(const std::string& dir,
                                     core::SnapshotRestoreInfo* info) {
  const util::SerialSection writer{writer_serial_};
  if (util::Status status = builder_.restore_snapshot(dir, info); !status.ok()) {
    return status;
  }
  // The restored touched-set is relative to the snapshot's own history, not
  // to whatever this service last published — republish from scratch (an
  // empty `previous` makes refresh_analyses re-analyze every AS).
  (void)publish_from({}, {});
  return util::Status{};
}

std::shared_ptr<const ServingSnapshot> EyeballService::publish_from(
    std::vector<net::Asn> changed, std::span<const core::AsAnalysis> previous) {
  core::TargetDataset dataset = builder_.finalize(config_.threads);
  std::vector<core::AsAnalysis> analyses =
      pipeline_.refresh_analyses(dataset, previous, changed);
  const std::uint64_t epoch = this->epoch() + 1;
  auto next = std::make_shared<const ServingSnapshot>(epoch, std::move(dataset),
                                                      std::move(analyses));
  // The store is the publication point: the snapshot is fully constructed
  // and never mutated again, so readers that load the pointer see a
  // complete epoch or the previous one — never a mix.
  current_.store(next);
  return next;
}

std::uint64_t EyeballService::epoch() const {
  const std::shared_ptr<const ServingSnapshot> snap = current_.load();
  return snap == nullptr ? 0 : snap->epoch();
}

AnalysisRef EyeballService::query(net::Asn asn) const {
  AnalysisRef ref;
  ref.snapshot = snapshot();
  if (ref.snapshot != nullptr) ref.analysis = ref.snapshot->find(asn);
  return ref;
}

BatchResult EyeballService::query_batch(std::span<const net::Asn> asns) const {
  BatchResult result;
  // One snapshot load for the whole batch: every answer is from this epoch.
  result.snapshot = snapshot();
  result.analyses.resize(asns.size(), nullptr);
  if (result.snapshot == nullptr) return result;
  for (std::size_t i = 0; i < asns.size(); ++i) {
    result.analyses[i] = result.snapshot->find(asns[i]);
  }
  return result;
}

std::optional<EyeballService::StatsAnswer> EyeballService::stats() const {
  const std::shared_ptr<const ServingSnapshot> snap = snapshot();
  if (snap == nullptr) return std::nullopt;
  return StatsAnswer{snap->epoch(), snap->dataset().stats()};
}

}  // namespace eyeball::serve
