#include "serve/service.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/check.hpp"

namespace eyeball::serve {

std::string_view to_string(ServiceHealth health) noexcept {
  switch (health) {
    case ServiceHealth::kHealthy:
      return "healthy";
    case ServiceHealth::kDegradedDurability:
      return "degraded-durability";
    case ServiceHealth::kReadOnly:
      return "read-only";
  }
  return "unknown";
}

ServingSnapshot::ServingSnapshot(std::uint64_t epoch, core::TargetDataset dataset,
                                 std::vector<core::AsAnalysis> analyses)
    : epoch_(epoch), dataset_(std::move(dataset)), analyses_(std::move(analyses)) {
  EYEBALL_DCHECK(analyses_.size() == dataset_->ases().size(),
                 "snapshot analyses must be parallel to the dataset's ASes");
}

ServingSnapshot::ServingSnapshot(std::uint64_t epoch,
                                 std::shared_ptr<const core::ArtifactView> artifact)
    : epoch_(epoch),
      artifact_(std::move(artifact)),
      thaw_once_(artifact_ == nullptr ? 0 : artifact_->as_count()),
      thawed_(artifact_ == nullptr ? 0 : artifact_->as_count()) {
  EYEBALL_DCHECK(artifact_ != nullptr && artifact_->valid(),
                 "artifact-backed snapshot needs an opened view");
}

const core::DatasetStats& ServingSnapshot::stats() const noexcept {
  return artifact_ != nullptr ? artifact_->stats() : dataset_->stats();
}

std::size_t ServingSnapshot::as_count() const noexcept {
  return artifact_ != nullptr ? artifact_->as_count() : dataset_->ases().size();
}

net::Asn ServingSnapshot::asn_at(std::size_t index) const noexcept {
  return artifact_ != nullptr ? artifact_->as_at(index).asn()
                              : dataset_->ases()[index].asn;
}

const core::AsAnalysis* ServingSnapshot::analysis_at(std::size_t index) const {
  if (artifact_ == nullptr) return &analyses_[index];
  // First request thaws the AS out of the mapped image; call_once makes the
  // thaw happen exactly once under concurrent readers, and the unique_ptr
  // slot (vector sized at construction, never resized) gives the answer a
  // stable address for the snapshot's lifetime.
  std::call_once(thaw_once_[index], [&] {
    thawed_[index] = std::make_unique<core::AsAnalysis>(
        artifact_->as_at(index).materialize());
  });
  return thawed_[index].get();
}

const core::AsAnalysis* ServingSnapshot::find(net::Asn asn) const {
  if (artifact_ != nullptr) {
    const std::optional<std::size_t> index = artifact_->find_index(asn);
    if (!index.has_value()) return nullptr;
    return analysis_at(*index);
  }
  const core::AsPeerSet* as = dataset_->find(asn);
  if (as == nullptr) return nullptr;
  // ases() and analyses_ are parallel vectors, so the dataset's index is
  // the analysis index.
  const auto index = static_cast<std::size_t>(as - dataset_->ases().data());
  return &analyses_[index];
}

const core::TargetDataset& ServingSnapshot::dataset() const noexcept {
  EYEBALL_DCHECK(dataset_.has_value(),
                 "dataset() is for in-memory epochs; artifact-backed epochs "
                 "materialize per AS via artifact()");
  return *dataset_;
}

std::span<const core::AsAnalysis> ServingSnapshot::analyses() const noexcept {
  EYEBALL_DCHECK(dataset_.has_value(),
                 "analyses() is for in-memory epochs; artifact-backed epochs "
                 "thaw per AS via analysis_at()");
  return analyses_;
}

EyeballService::EyeballService(const core::EyeballPipeline& pipeline, ServiceConfig config)
    : pipeline_(pipeline),
      config_(std::move(config)),
      builder_(pipeline.streaming_builder()) {}

void EyeballService::ingest(std::span<const p2p::PeerSample> window) {
  const util::SerialSection writer{writer_serial_};
  builder_.ingest(window);
}

std::shared_ptr<const ServingSnapshot> EyeballService::publish() {
  const util::SerialSection writer{writer_serial_};
  // Touched set must be read BEFORE finalize(): finalize clears it.  Merge
  // in the work list rescued from a previously firewalled publish — those
  // ASes changed, were never re-analyzed, and would otherwise be silently
  // served stale forever.
  std::vector<net::Asn> changed = builder_.touched_asns();
  if (!carryover_changed_.empty()) {
    changed.insert(changed.end(), carryover_changed_.begin(),
                   carryover_changed_.end());
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
  }
  // The previous epoch stays pinned by this local shared_ptr, so handing
  // its analyses span to refresh_analyses is safe even though readers may
  // concurrently drop their own references.  An artifact-backed previous
  // epoch has no in-memory analyses span to reuse — treat it as no
  // previous epoch (full re-analysis); the published result is identical
  // either way.
  const std::shared_ptr<const ServingSnapshot> previous = current_.load();

  // ---- Exception firewall.  finalize/analysis may throw (bad_alloc, a
  // bug surfacing as a logic_error); on a long-lived server that must
  // become a typed value, not an unwound writer thread.  The builder holds
  // no invariant across the publish boundary that a throw can break:
  // finalize() is non-destructive (touched-set clearing is repaired by the
  // carry-over below), so the service keeps ingesting and the previous
  // epoch keeps serving.
  std::shared_ptr<const ServingSnapshot> next;
  try {
    next = publish_from(changed,
                        (previous == nullptr || previous->artifact_backed())
                            ? std::span<const core::AsAnalysis>{}
                            : previous->analyses());
    last_publish_status_ = util::Status{};
  } catch (const std::exception& e) {
    last_publish_status_ = util::Status::internal(
        std::string{"publish firewall: "} + e.what());
  }
  // eyeball-lint: allow(swallowed-exception): the publish firewall — a non-std exception crossing here must still become a typed Status instead of unwinding the writer, and there is no type info to preserve
  catch (...) {
    last_publish_status_ =
        util::Status::internal("publish firewall: non-std exception");
  }
  if (next == nullptr) {
    carryover_changed_ = std::move(changed);
    health_.transition(ServiceHealth::kReadOnly, last_publish_status_);
    return nullptr;
  }
  carryover_changed_.clear();

  // ---- Supervised durability: retry transient failures with exponential
  // backoff; surface (never throw) the final verdicts.  A failed save must
  // not take queries down.
  const util::RetryPolicy policy{config_.durability_retry, clock()};
  util::FileSystem& fs = filesystem();
  util::Status durability;
  if (!config_.snapshot_dir.empty()) {
    core::StreamingDatasetBuilder& builder = builder_;
    const std::string dir = config_.snapshot_dir;
    last_save_retry_ = policy.run(
        [&builder, &fs, &dir] { return builder.save_snapshot(dir, fs, nullptr); });
    last_save_status_ = last_save_retry_.status;
    if (!last_save_status_.ok()) durability = last_save_status_;
  }
  if (!config_.artifact_path.empty()) {
    const std::string path = config_.artifact_path;
    const std::uint64_t fingerprint =
        core::SnapshotCodec::config_fingerprint(pipeline_.config().dataset);
    const ServingSnapshot& epoch = *next;
    last_artifact_retry_ = policy.run([&fs, &path, &epoch, fingerprint] {
      return core::ArtifactCodec::write(fs, path, epoch.dataset(),
                                        epoch.analyses(), epoch.epoch(),
                                        fingerprint);
    });
    last_artifact_status_ = last_artifact_retry_.status;
    if (!last_artifact_status_.ok()) durability = last_artifact_status_;
  }
  health_.transition(durability.ok() ? ServiceHealth::kHealthy
                                     : ServiceHealth::kDegradedDurability,
                     durability);
  return next;
}

util::Status EyeballService::restore(const std::string& dir,
                                     core::SnapshotRestoreInfo* info) {
  const util::SerialSection writer{writer_serial_};
  if (util::Status status = builder_.restore_snapshot(dir, filesystem(), info);
      !status.ok()) {
    // Health is deliberately unchanged: a failed restore leaves both the
    // serving surface and the builder exactly as they were.
    return status;
  }
  // The restored touched-set is relative to the snapshot's own history, not
  // to whatever this service last published — republish from scratch (an
  // empty `previous` makes refresh_analyses re-analyze every AS).  A stale
  // carry-over list from before the restore is superseded for the same
  // reason.
  carryover_changed_.clear();
  (void)publish_from({}, {});
  last_publish_status_ = util::Status{};
  health_.transition(ServiceHealth::kHealthy, util::Status{});
  return util::Status{};
}

util::Status EyeballService::restore_from_artifact(const std::string& path) {
  const util::SerialSection writer{writer_serial_};
  util::FileSystem& fs = filesystem();
  core::ArtifactView view;
  if (util::Status status = core::ArtifactView::open(path, fs, view); !status.ok()) {
    if (status.code() == util::StatusCode::kCorruption) {
      // A damaged image must not ambush every future restore: move it
      // aside with its verdict, like a corrupt snapshot generation.
      // Best-effort — the typed refusal below is the load-bearing part.
      static_cast<void>(util::quarantine_file(fs, path, status));
    }
    return status;
  }
  // Same refusal the snapshot codec makes: an artifact produced under a
  // different result-affecting configuration must not serve as if it were
  // this pipeline's output.
  const std::uint64_t expected =
      core::SnapshotCodec::config_fingerprint(pipeline_.config().dataset);
  if (view.config_fingerprint() != expected) {
    return util::Status::config_mismatch(
        "artifact '" + path + "' was produced under a different dataset "
        "configuration than this pipeline's");
  }
  auto artifact = std::make_shared<const core::ArtifactView>(std::move(view));
  auto next =
      std::make_shared<const ServingSnapshot>(this->epoch() + 1, std::move(artifact));
  current_.store(next);
  health_.transition(ServiceHealth::kHealthy, util::Status{});
  return util::Status{};
}

std::shared_ptr<const ServingSnapshot> EyeballService::publish_from(
    std::vector<net::Asn> changed, std::span<const core::AsAnalysis> previous) {
  core::TargetDataset dataset = builder_.finalize(config_.threads);
  // After finalize, before analysis: the window where a throw strands the
  // already-cleared touched set — exactly what the carry-over must rescue.
  if (config_.publish_fault_hook) config_.publish_fault_hook();
  std::vector<core::AsAnalysis> analyses =
      pipeline_.refresh_analyses(dataset, previous, changed);
  const std::uint64_t epoch = this->epoch() + 1;
  auto next = std::make_shared<const ServingSnapshot>(epoch, std::move(dataset),
                                                      std::move(analyses));
  // The store is the publication point: the snapshot is fully constructed
  // and never mutated again, so readers that load the pointer see a
  // complete epoch or the previous one — never a mix.
  current_.store(next);
  return next;
}

std::uint64_t EyeballService::epoch() const {
  const std::shared_ptr<const ServingSnapshot> snap = current_.load();
  return snap == nullptr ? 0 : snap->epoch();
}

AnalysisRef EyeballService::query(net::Asn asn) const {
  AnalysisRef ref;
  ref.snapshot = snapshot();
  if (ref.snapshot != nullptr) ref.analysis = ref.snapshot->find(asn);
  return ref;
}

BatchResult EyeballService::query_batch(std::span<const net::Asn> asns) const {
  BatchResult result;
  // One snapshot load for the whole batch: every answer is from this epoch.
  result.snapshot = snapshot();
  result.analyses.resize(asns.size(), nullptr);
  if (result.snapshot == nullptr) return result;
  for (std::size_t i = 0; i < asns.size(); ++i) {
    result.analyses[i] = result.snapshot->find(asns[i]);
  }
  return result;
}

std::optional<EyeballService::StatsAnswer> EyeballService::stats() const {
  const std::shared_ptr<const ServingSnapshot> snap = snapshot();
  if (snap == nullptr) return std::nullopt;
  return StatsAnswer{snap->epoch(), snap->stats()};
}

}  // namespace eyeball::serve
