#include "topology/generator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <string>

#include "topology/ip_allocator.hpp"
#include "util/rng.hpp"

namespace eyeball::topology {
namespace {

using gazetteer::CityId;
using gazetteer::Continent;
using gazetteer::Gazetteer;

int scaled_count(int count, double factor) {
  if (count == 0) return 0;
  return std::max(1, static_cast<int>(std::lround(count * factor)));
}

/// Drops generated satellite towns: ISP PoPs are placed at real cities.
std::vector<CityId> real_cities_only(const Gazetteer& gaz, std::vector<CityId> pool) {
  std::erase_if(pool, [&](CityId id) { return gaz.city(id).is_satellite; });
  return pool;
}

/// Weighted sample of `want` distinct cities, weight = population^0.85.
/// Satellite towns are excluded.
std::vector<CityId> sample_cities(const Gazetteer& gaz, std::vector<CityId> pool,
                                  std::size_t want, util::Rng& rng) {
  pool = real_cities_only(gaz, std::move(pool));
  std::vector<CityId> chosen;
  want = std::min(want, pool.size());
  chosen.reserve(want);
  while (chosen.size() < want && !pool.empty()) {
    std::vector<double> weights;
    weights.reserve(pool.size());
    for (const CityId id : pool) {
      weights.push_back(std::pow(static_cast<double>(gaz.city(id).population), 0.85));
    }
    const util::DiscreteSampler sampler{weights};
    const std::size_t pick = sampler.sample(rng);
    chosen.push_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return chosen;
}

/// Top `want` real (non-satellite) cities by population from `pool`.
std::vector<CityId> top_cities(const Gazetteer& gaz, std::vector<CityId> pool,
                               std::size_t want) {
  pool = real_cities_only(gaz, std::move(pool));
  std::sort(pool.begin(), pool.end(), [&](CityId a, CityId b) {
    return gaz.city(a).population > gaz.city(b).population;
  });
  if (pool.size() > want) pool.resize(want);
  return pool;
}

/// Countries of a continent ordered by total city population, descending.
std::vector<std::string> countries_by_population(const Gazetteer& gaz,
                                                 Continent continent) {
  std::map<std::string, std::uint64_t> totals;
  for (const auto& city : gaz.cities()) {
    if (city.continent == continent) {
      totals[std::string{city.country_code}] += city.population;
    }
  }
  std::vector<std::pair<std::string, std::uint64_t>> sorted(totals.begin(), totals.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> out;
  out.reserve(sorted.size());
  for (auto& [code, population] : sorted) out.push_back(code);
  return out;
}

class Generator {
 public:
  Generator(const Gazetteer& gaz, const EcosystemConfig& config)
      : gaz_(gaz), config_(config), rng_(config.seed) {}

  AsEcosystem run() {
    make_tier1s();
    make_transits();
    make_contents();
    make_eyeball_drafts();
    assign_customers_and_pops();
    make_relationships();
    make_ixps();
    return AsEcosystem{std::move(ases_), std::move(ixps_), std::move(relationships_)};
  }

 private:
  struct EyeballDraft {
    std::size_t as_index = 0;
    double weight = 1.0;
    std::vector<CityId> coverage;  // candidate service cities
  };

  static constexpr Continent kEyeballContinents[] = {
      Continent::kNorthAmerica, Continent::kEurope, Continent::kAsia};

  net::Asn next_asn() { return net::Asn{asn_cursor_++}; }

  AutonomousSystem& new_as(AsRole role, AsLevel level, std::string name,
                           std::string country, Continent continent) {
    AutonomousSystem as;
    as.asn = next_asn();
    as.role = role;
    as.level = level;
    as.name = std::move(name);
    as.country_code = std::move(country);
    as.continent = continent;
    ases_.push_back(std::move(as));
    return ases_.back();
  }

  /// Adds transit-only PoPs with one infrastructure /22 each.
  void add_infrastructure_pops(AutonomousSystem& as, const std::vector<CityId>& cities) {
    for (const CityId city : cities) {
      PopSite pop;
      pop.city = city;
      pop.transit_only = true;
      pop.prefixes.push_back(allocator_.allocate(22));
      as.pops.push_back(std::move(pop));
    }
  }

  void make_tier1s() {
    // Tier-1 backbones: PoPs at the world's largest cities.
    auto all_cities = std::vector<CityId>{};
    for (const auto& city : gaz_.cities()) all_cities.push_back(city.id);
    for (int i = 0; i < config_.tier1_count; ++i) {
      auto& as = new_as(AsRole::kTier1, AsLevel::kGlobal, "tier1-" + std::to_string(i + 1),
                        "", Continent::kNorthAmerica);
      auto rng = rng_.fork(net::value_of(as.asn));
      const auto pop_cities =
          sample_cities(gaz_, all_cities, 12 + rng.uniform_index(9), rng);
      add_infrastructure_pops(as, pop_cities);
      tier1s_.push_back(as.asn);
    }
  }

  void make_transits() {
    for (const Continent continent : kEyeballContinents) {
      const auto countries = countries_by_population(gaz_, continent);
      const auto country_count =
          std::min<std::size_t>(countries.size(),
                                static_cast<std::size_t>(config_.transit_countries_per_continent));
      for (std::size_t c = 0; c < country_count; ++c) {
        for (int t = 0; t < config_.transits_per_country; ++t) {
          auto& as = new_as(AsRole::kTransit, AsLevel::kCountry,
                            "transit-" + countries[c] + "-" + std::to_string(t + 1),
                            countries[c], continent);
          auto rng = rng_.fork(net::value_of(as.asn));
          auto pool = gaz_.cities_in_country(countries[c]);
          const std::size_t want = std::min<std::size_t>(pool.size(), 4 + rng.uniform_index(6));
          add_infrastructure_pops(as, top_cities(gaz_, std::move(pool), want));
          national_transits_[countries[c]].push_back(as.asn);
          continent_transit_pool_[continent].push_back(as.asn);
        }
      }
      for (int t = 0; t < config_.continent_transits; ++t) {
        auto& as = new_as(AsRole::kTransit, AsLevel::kContinent,
                          std::string{"transit-"} + std::string{to_code(continent)} + "-" +
                              std::to_string(t + 1),
                          "", continent);
        auto rng = rng_.fork(net::value_of(as.asn));
        add_infrastructure_pops(
            as, sample_cities(gaz_, gaz_.cities_in_continent(continent),
                              8 + rng.uniform_index(8), rng));
        continent_transits_[continent].push_back(as.asn);
        continent_transit_pool_[continent].push_back(as.asn);
      }
    }
  }

  void make_contents() {
    for (const Continent continent : kEyeballContinents) {
      for (int i = 0; i < config_.content_per_continent; ++i) {
        auto& as = new_as(AsRole::kContent, AsLevel::kCountry,
                          std::string{"content-"} + std::string{to_code(continent)} + "-" +
                              std::to_string(i + 1),
                          "", continent);
        auto rng = rng_.fork(net::value_of(as.asn));
        add_infrastructure_pops(
            as, sample_cities(gaz_, gaz_.cities_in_continent(continent),
                              1 + rng.uniform_index(4), rng));
      }
    }
  }

  const EyeballCounts& counts_for(Continent continent) const {
    switch (continent) {
      case Continent::kNorthAmerica: return config_.north_america;
      case Continent::kEurope: return config_.europe;
      default: return config_.asia;
    }
  }

  void make_eyeball_drafts() {
    for (const Continent continent : kEyeballContinents) {
      const auto& counts = counts_for(continent);
      const auto countries = countries_by_population(gaz_, continent);
      if (countries.empty()) {
        throw std::invalid_argument{"generate_ecosystem: continent has no cities"};
      }
      std::vector<double> country_weights;
      for (const auto& code : countries) {
        country_weights.push_back(static_cast<double>(gaz_.country_population(code)));
      }
      const util::DiscreteSampler country_sampler{country_weights};

      make_leveled_eyeballs(continent, AsLevel::kCity, counts.city, countries,
                            country_sampler);
      make_leveled_eyeballs(continent, AsLevel::kState, counts.state, countries,
                            country_sampler);
      make_leveled_eyeballs(continent, AsLevel::kCountry, counts.country, countries,
                            country_sampler);

      for (int i = 0; i < config_.continent_eyeballs_per_continent; ++i) {
        auto& as = new_as(AsRole::kEyeball, AsLevel::kContinent,
                          std::string{"eyeball-"} + std::string{to_code(continent)} + "-" +
                              std::to_string(i + 1),
                          "", continent);
        auto rng = rng_.fork(net::value_of(as.asn));
        EyeballDraft draft;
        draft.as_index = ases_.size() - 1;
        draft.weight = rng.pareto(1.0, 1.2);
        draft.coverage = sample_cities(gaz_, gaz_.cities_in_continent(continent),
                                       10 + rng.uniform_index(15), rng);
        drafts_.push_back(std::move(draft));
      }
    }
    for (int i = 0; i < config_.global_eyeballs; ++i) {
      auto& as = new_as(AsRole::kEyeball, AsLevel::kGlobal,
                        "eyeball-global-" + std::to_string(i + 1), "",
                        Continent::kNorthAmerica);
      auto rng = rng_.fork(net::value_of(as.asn));
      std::vector<CityId> all;
      for (const auto& city : gaz_.cities()) all.push_back(city.id);
      EyeballDraft draft;
      draft.as_index = ases_.size() - 1;
      draft.weight = rng.pareto(1.0, 1.2);
      draft.coverage = sample_cities(gaz_, all, 15 + rng.uniform_index(15), rng);
      drafts_.push_back(std::move(draft));
    }
  }

  void make_leveled_eyeballs(Continent continent, AsLevel level, int count,
                             const std::vector<std::string>& countries,
                             const util::DiscreteSampler& country_sampler) {
    for (int i = 0; i < count; ++i) {
      const std::string& country = countries[country_sampler.sample(rng_)];
      auto& as = new_as(AsRole::kEyeball, level,
                        "eyeball-" + country + "-" + std::string{to_string(level)} + "-" +
                            std::to_string(i + 1),
                        country, continent);
      auto rng = rng_.fork(net::value_of(as.asn));
      EyeballDraft draft;
      draft.as_index = ases_.size() - 1;
      draft.weight = rng.pareto(1.0, 1.1);

      auto country_cities = gaz_.cities_in_country(country);
      switch (level) {
        case AsLevel::kCity: {
          // One metro.  Weighted by population so big cities host more ISPs.
          draft.coverage = sample_cities(gaz_, country_cities, 1, rng);
          break;
        }
        case AsLevel::kState: {
          // A region: all cities of the admin-1 region of a sampled anchor
          // city.  Falls back to city-level when the region is a singleton.
          const auto anchor = sample_cities(gaz_, country_cities, 1, rng);
          const auto& anchor_city = gaz_.city(anchor.front());
          draft.coverage = gaz_.cities_in_region(country, anchor_city.region);
          ases_[draft.as_index].region = std::string{anchor_city.region};
          break;
        }
        default: {
          // Country-wide coverage.
          draft.coverage = std::move(country_cities);
          break;
        }
      }
      drafts_.push_back(std::move(draft));
    }
  }

  void assign_customers_and_pops() {
    // Normalize market weights per country so that the sum of customers of
    // eyeballs homed in a country matches its broadband population.
    std::map<std::string, double> weight_totals;
    for (const auto& draft : drafts_) {
      const auto& as = ases_[draft.as_index];
      if (!as.country_code.empty()) weight_totals[as.country_code] += draft.weight;
    }

    for (auto& draft : drafts_) {
      auto& as = ases_[draft.as_index];
      auto rng = rng_.fork(util::mix64(net::value_of(as.asn), 0xc05701e5ULL));

      std::uint64_t coverage_population = 0;
      for (const CityId id : draft.coverage) {
        coverage_population += gaz_.city(id).population;
      }
      double customers = 0.0;
      if (!as.country_code.empty()) {
        // Market share of the country's broadband users, restricted to the
        // AS's coverage area.
        const double share = draft.weight / weight_totals[as.country_code];
        const double country_broadband =
            static_cast<double>(gaz_.country_population(as.country_code)) *
            config_.broadband_penetration * config_.market_coverage;
        const double coverage_fraction =
            static_cast<double>(coverage_population) /
            std::max(1.0, static_cast<double>(gaz_.country_population(as.country_code)));
        customers = share * country_broadband *
                    std::min(1.0, coverage_fraction * 3.0);  // local ISPs punch above weight
      } else {
        // Continental/global eyeballs: a slice of their coverage population.
        customers = static_cast<double>(coverage_population) *
                    config_.broadband_penetration * rng.uniform(0.002, 0.02);
      }
      // Cap at 8 M customers: even the biggest real eyeball ASes serve a
      // few tens of millions of addresses, and the cap keeps small scaled
      // ecosystems (few ASes sharing a whole country) from draining the
      // IPv4 space.
      as.customers = std::clamp<std::uint64_t>(static_cast<std::uint64_t>(customers),
                                               config_.min_customers, 8000000);

      // Service PoPs: larger ASes light up more of their coverage.
      std::size_t want_pops = 1;
      if (as.level != AsLevel::kCity) {
        want_pops = std::clamp<std::size_t>(
            static_cast<std::size_t>(
                2 + std::lround(std::log2(static_cast<double>(as.customers) / 20000.0))),
            2, draft.coverage.size());
      }
      const auto pop_cities = sample_cities(gaz_, draft.coverage, want_pops, rng);

      // Customer share per PoP ~ population^0.85 with lognormal noise.
      std::vector<double> shares;
      shares.reserve(pop_cities.size());
      double total_share = 0.0;
      for (const CityId id : pop_cities) {
        const double s = std::pow(static_cast<double>(gaz_.city(id).population), 0.85) *
                         rng.lognormal(0.0, 0.4);
        shares.push_back(s);
        total_share += s;
      }
      for (std::size_t i = 0; i < pop_cities.size(); ++i) {
        PopSite pop;
        pop.city = pop_cities[i];
        pop.customer_share = shares[i] / total_share;
        const auto pop_customers = static_cast<std::uint64_t>(
            pop.customer_share * static_cast<double>(as.customers));
        // Address pool ~1.5x customers, announced as blocks of at most /12
        // (1 M addresses) — real ISPs announce many medium blocks, and the
        // cap keeps single allocations inside legal prefix lengths.
        std::uint64_t need = std::max<std::uint64_t>(256, pop_customers + pop_customers / 2);
        while (need > 0) {
          const int length = std::max(12, Ipv4SpaceAllocator::length_for(need));
          const auto block = allocator_.allocate(length);
          pop.prefixes.push_back(block);
          need -= std::min<std::uint64_t>(need, block.size());
        }
        as.pops.push_back(std::move(pop));
      }

      // Occasionally add a transit-only PoP away from the customer base
      // (connects to providers; invisible to user-based inference).
      if (rng.bernoulli(config_.transit_only_pop_prob)) {
        auto continent_cities = gaz_.cities_in_continent(as.continent);
        const auto hubs = top_cities(gaz_, std::move(continent_cities), 10);
        const CityId hub = hubs[rng.uniform_index(hubs.size())];
        const bool already_there =
            std::any_of(as.pops.begin(), as.pops.end(),
                        [&](const PopSite& p) { return p.city == hub; });
        if (!already_there) {
          PopSite pop;
          pop.city = hub;
          pop.transit_only = true;
          pop.prefixes.push_back(allocator_.allocate(24));
          as.pops.push_back(std::move(pop));
        }
      }
    }
  }

  void add_relationship(net::Asn customer, net::Asn provider, RelationshipType type,
                        std::optional<std::size_t> ixp = std::nullopt) {
    // Normalize peer pairs (lower ASN first).
    if (type == RelationshipType::kPeerPeer && net::value_of(provider) < net::value_of(customer)) {
      std::swap(customer, provider);
    }
    // At most one relationship per unordered AS pair: a pair that already
    // has a transit contract does not additionally peer.
    const std::uint32_t lo = std::min(net::value_of(customer), net::value_of(provider));
    const std::uint32_t hi = std::max(net::value_of(customer), net::value_of(provider));
    if (!edge_keys_.insert({lo, hi}).second) return;
    relationships_.push_back({customer, provider, type, ixp});
  }

  void make_relationships() {
    // Tier-1 full mesh (settlement-free, private interconnects).
    for (std::size_t i = 0; i < tier1s_.size(); ++i) {
      for (std::size_t j = i + 1; j < tier1s_.size(); ++j) {
        add_relationship(tier1s_[i], tier1s_[j], RelationshipType::kPeerPeer);
      }
    }

    for (auto& as : ases_) {
      auto rng = rng_.fork(util::mix64(net::value_of(as.asn), 0x9e11abe5ULL));
      switch (as.role) {
        case AsRole::kTier1:
          break;
        case AsRole::kTransit: {
          // 2-3 tier-1 providers.
          const std::size_t want = 2 + rng.uniform_index(2);
          for (std::size_t i = 0; i < want && i < tier1s_.size(); ++i) {
            add_relationship(as.asn, tier1s_[rng.uniform_index(tier1s_.size())],
                             RelationshipType::kCustomerProvider);
          }
          break;
        }
        case AsRole::kContent:
        case AsRole::kEyeball: {
          int providers = 1;
          while (providers < config_.max_providers &&
                 rng.bernoulli(config_.extra_provider_prob)) {
            ++providers;
          }
          for (int i = 0; i < providers; ++i) {
            const net::Asn provider = pick_provider(as, i, rng);
            add_relationship(as.asn, provider, RelationshipType::kCustomerProvider);
          }
          break;
        }
      }
    }
  }

  net::Asn pick_provider(const AutonomousSystem& as, int slot, util::Rng& rng) {
    const auto national = national_transits_.find(as.country_code);
    const bool has_national =
        national != national_transits_.end() && !national->second.empty();
    // First slot: prefer a national transit.
    if (slot == 0 && has_national) {
      return national->second[rng.uniform_index(national->second.size())];
    }
    const double roll = rng.uniform();
    if (roll < 0.35 && has_national) {
      return national->second[rng.uniform_index(national->second.size())];
    }
    const auto& continent_pool = continent_transit_pool_[as.continent];
    if (roll < 0.85 && !continent_pool.empty()) {
      return continent_pool[rng.uniform_index(continent_pool.size())];
    }
    return tier1s_[rng.uniform_index(tier1s_.size())];
  }

  void make_ixps() {
    // Place IXPs at big cities (denser in Europe).
    for (const auto& city : gaz_.cities()) {
      const bool europe = city.continent == Continent::kEurope;
      const std::uint64_t threshold =
          europe ? config_.ixp_min_population_europe : config_.ixp_min_population_other;
      if (city.population >= threshold) {
        Ixp ixp;
        ixp.name = std::string{city.name} + "-IX";
        ixp.city = city.id;
        ixps_.push_back(std::move(ixp));
      }
    }

    // Membership.
    for (const auto& as : ases_) {
      if (as.role == AsRole::kTier1) continue;  // tier-1s interconnect privately here
      auto rng = rng_.fork(util::mix64(net::value_of(as.asn), 0x1c9f00dULL));
      const bool europe = as.continent == Continent::kEurope;
      for (std::size_t i = 0; i < ixps_.size(); ++i) {
        const auto& ixp_city = gaz_.city(ixps_[i].city);
        const bool has_pop =
            std::any_of(as.pops.begin(), as.pops.end(), [&](const PopSite& p) {
              return p.city == ixps_[i].city ||
                     geo::distance_km(gaz_.city(p.city).location, ixp_city.location) < 60.0;
            });
        double join_prob = 0.0;
        switch (as.role) {
          case AsRole::kTransit:
            join_prob = has_pop ? config_.transit_ixp_join_prob : 0.01;
            break;
          case AsRole::kContent:
            join_prob = has_pop ? config_.content_ixp_join_prob : 0.02;
            break;
          default:
            if (has_pop) {
              join_prob = config_.eyeball_local_ixp_join_prob;
            } else if (ixp_city.continent == as.continent) {
              join_prob = europe ? config_.eyeball_remote_ixp_join_prob_europe
                                 : config_.eyeball_remote_ixp_join_prob_other;
            }
            break;
        }
        if (rng.bernoulli(join_prob)) ixps_[i].members.push_back(as.asn);
      }
    }

    // Pairwise peering at shared IXPs.
    for (std::size_t i = 0; i < ixps_.size(); ++i) {
      auto rng = rng_.fork(util::mix64(0xbee71e5ULL, i));
      const auto& members = ixps_[i].members;
      for (std::size_t a = 0; a < members.size(); ++a) {
        for (std::size_t b = a + 1; b < members.size(); ++b) {
          const auto& as_a = *find_as(members[a]);
          const auto& as_b = *find_as(members[b]);
          const int eyeballs = (as_a.role == AsRole::kEyeball ? 1 : 0) +
                               (as_b.role == AsRole::kEyeball ? 1 : 0);
          const double prob = eyeballs == 2   ? config_.ixp_peer_prob_eyeball_eyeball
                              : eyeballs == 1 ? config_.ixp_peer_prob_eyeball_other
                                              : config_.ixp_peer_prob_other_other;
          if (rng.bernoulli(prob)) {
            add_relationship(members[a], members[b], RelationshipType::kPeerPeer, i);
          }
        }
      }
    }
  }

  const AutonomousSystem* find_as(net::Asn asn) const {
    for (const auto& as : ases_) {
      if (as.asn == asn) return &as;
    }
    return nullptr;
  }

  const Gazetteer& gaz_;
  const EcosystemConfig& config_;
  util::Rng rng_;
  Ipv4SpaceAllocator allocator_;
  std::uint32_t asn_cursor_ = 3;

  std::vector<AutonomousSystem> ases_;
  std::vector<Ixp> ixps_;
  std::vector<AsRelationship> relationships_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> edge_keys_;

  std::vector<net::Asn> tier1s_;
  std::map<std::string, std::vector<net::Asn>> national_transits_;
  std::map<Continent, std::vector<net::Asn>> continent_transits_;
  std::map<Continent, std::vector<net::Asn>> continent_transit_pool_;
  std::vector<EyeballDraft> drafts_;
};

}  // namespace

EcosystemConfig EcosystemConfig::scaled(double factor) const {
  EcosystemConfig out = *this;
  const auto scale_counts = [factor](EyeballCounts& c) {
    c.city = scaled_count(c.city, factor);
    c.state = scaled_count(c.state, factor);
    c.country = scaled_count(c.country, factor);
  };
  scale_counts(out.north_america);
  scale_counts(out.europe);
  scale_counts(out.asia);
  out.continent_eyeballs_per_continent =
      scaled_count(continent_eyeballs_per_continent, factor);
  out.global_eyeballs = scaled_count(global_eyeballs, factor);
  out.tier1_count = std::max(3, scaled_count(tier1_count, factor));
  out.transit_countries_per_continent =
      std::max(2, scaled_count(transit_countries_per_continent, factor));
  out.continent_transits = std::max(1, scaled_count(continent_transits, factor));
  out.content_per_continent = scaled_count(content_per_continent, factor);
  return out;
}

AsEcosystem generate_ecosystem(const gazetteer::Gazetteer& gazetteer,
                               const EcosystemConfig& config) {
  return Generator{gazetteer, config}.run();
}

}  // namespace eyeball::topology
