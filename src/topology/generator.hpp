// Synthetic AS ecosystem generation.
//
// Produces a deterministic, internally consistent Internet-like world:
//   * tier-1 networks with global PoP footprints,
//   * national and continental transit networks,
//   * eyeball ASes whose counts per (continent, level) default to the
//     paper's Table 1 profile (scaled by `scale`),
//   * content/NREN networks,
//   * IXPs at large cities (denser in Europe, as observed in the paper),
//   * valley-free business relationships (customer-provider by tier,
//     peer-peer only between tier-1s or at shared IXPs, with occasional
//     remote peering — the phenomenon behind the paper's RAI case study),
//   * per-PoP IPv4 prefix allocations sized to customer counts.
//
// The generated ecosystem is the ground truth against which the inference
// pipeline (KDE footprints, PoP discovery, connectivity analysis) is
// validated.
#pragma once

#include <cstdint>

#include "gazetteer/gazetteer.hpp"
#include "topology/types.hpp"

namespace eyeball::topology {

struct EyeballCounts {
  int city = 0;
  int state = 0;
  int country = 0;
};

struct EcosystemConfig {
  std::uint64_t seed = 42;

  /// Eyeball AS counts per continent and designed level.  Defaults follow
  /// the paper's Table 1 (#ASes by level): NA 36/162/129, EU 60/76/292,
  /// AS 117/35/134 — 1041 city/state/country ASes; the paper's remaining
  /// 192 target ASes are continent-level or global.
  EyeballCounts north_america{36, 162, 129};
  EyeballCounts europe{60, 76, 292};
  EyeballCounts asia{117, 35, 134};
  int continent_eyeballs_per_continent = 3;
  int global_eyeballs = 2;

  int tier1_count = 12;
  /// National transit networks for each of the most populous countries.
  int transit_countries_per_continent = 8;
  int transits_per_country = 2;
  int continent_transits = 5;
  int content_per_continent = 4;

  /// Fraction of a country's city population with broadband service.
  double broadband_penetration = 0.35;
  /// Fraction of the broadband market captured by generated eyeballs.
  double market_coverage = 0.85;
  std::uint64_t min_customers = 30000;

  /// Probability that an eyeball AS keeps a transit-only PoP away from its
  /// customers (paper §5: a known cause of validation mismatch).
  double transit_only_pop_prob = 0.25;

  /// IXP placement: minimum city population, per continent class.
  std::uint64_t ixp_min_population_europe = 800000;
  std::uint64_t ixp_min_population_other = 2000000;

  double eyeball_local_ixp_join_prob = 0.35;
  /// Remote peering (joining an IXP in a city with no PoP) — higher in
  /// Europe, where the paper observes it.
  double eyeball_remote_ixp_join_prob_europe = 0.03;
  double eyeball_remote_ixp_join_prob_other = 0.02;
  double transit_ixp_join_prob = 0.8;
  double content_ixp_join_prob = 0.5;

  double ixp_peer_prob_eyeball_eyeball = 0.15;
  double ixp_peer_prob_eyeball_other = 0.4;
  double ixp_peer_prob_other_other = 0.6;

  /// P(one more provider) — repeated draws give the multi-homing degree.
  double extra_provider_prob = 0.45;
  int max_providers = 5;

  /// Returns a copy with all AS counts multiplied by `factor` (minimum 1
  /// per nonzero class) — used for small unit-test ecosystems.
  [[nodiscard]] EcosystemConfig scaled(double factor) const;
};

/// Generates the full ecosystem.  Deterministic in (gazetteer, config).
[[nodiscard]] AsEcosystem generate_ecosystem(const gazetteer::Gazetteer& gazetteer,
                                             const EcosystemConfig& config = {});

}  // namespace eyeball::topology
