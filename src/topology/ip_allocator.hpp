// Sequential IPv4 block allocator used by the ecosystem generator to hand
// out aligned CIDR blocks per PoP, mimicking an RIR allocating address space
// to ISPs.  Special-use ranges (0/8, 10/8, 100.64/10, 127/8, 169.254/16,
// 172.16/12, 192.168/16, multicast and above) are skipped, including when a
// coarse block would merely straddle one — the allocator's output is
// exactly the address space the streaming admission door admits.
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"

namespace eyeball::topology {

class Ipv4SpaceAllocator {
 public:
  /// Starts allocating from 1.0.0.0.
  Ipv4SpaceAllocator() = default;

  /// Smallest prefix length whose block holds at least `addresses` hosts.
  [[nodiscard]] static int length_for(std::uint64_t addresses) noexcept;

  /// Allocates the next aligned block of the given prefix length.
  /// Throws std::length_error when unicast space is exhausted.
  [[nodiscard]] net::Ipv4Prefix allocate(int prefix_length);

  /// Allocates a block with capacity for at least `addresses` hosts.
  [[nodiscard]] net::Ipv4Prefix allocate_for(std::uint64_t addresses);

  [[nodiscard]] std::uint64_t allocated_addresses() const noexcept { return allocated_; }

 private:
  [[nodiscard]] static bool is_reserved(std::uint32_t address) noexcept;

  std::uint64_t cursor_ = 0x01000000;  // 1.0.0.0
  std::uint64_t allocated_ = 0;
};

}  // namespace eyeball::topology
