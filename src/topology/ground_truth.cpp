#include "topology/ground_truth.hpp"

#include "util/rng.hpp"

namespace eyeball::topology {

GroundTruthLocator::GroundTruthLocator(const AsEcosystem& ecosystem,
                                       const gazetteer::Gazetteer& gazetteer,
                                       gazetteer::ZipLatticeConfig zip_config)
    : ecosystem_(ecosystem), gaz_(gazetteer), zip_config_(zip_config) {
  lattices_.resize(gaz_.cities().size());
  const auto ases = ecosystem_.ases();
  for (std::uint32_t a = 0; a < ases.size(); ++a) {
    const auto& as = ases[a];
    for (std::uint32_t p = 0; p < as.pops.size(); ++p) {
      const auto& pop = as.pops[p];
      for (const auto& prefix : pop.prefixes) {
        trie_.insert(prefix, PopRef{a, p});
      }
      if (lattices_[pop.city].empty()) {
        lattices_[pop.city] = gazetteer::zip_centroids(gaz_.city(pop.city), zip_config_);
      }
    }
  }
}

std::optional<IpGroundTruth> GroundTruthLocator::locate(net::Ipv4Address ip) const {
  const auto ref = trie_.longest_match(ip);
  if (!ref) return std::nullopt;
  const auto& as = ecosystem_.ases()[ref->as_index];
  const auto& pop = as.pops[ref->pop_index];
  const auto& lattice = lattices_[pop.city];
  // Deterministic zip assignment: hash of the address.
  std::uint64_t h = ip.value();
  const std::uint64_t zip = util::splitmix64(h) % lattice.size();
  return IpGroundTruth{as.asn, pop.city, pop.transit_only, lattice[zip]};
}

std::optional<net::Asn> GroundTruthLocator::origin(net::Ipv4Address ip) const {
  const auto ref = trie_.longest_match(ip);
  if (!ref) return std::nullopt;
  return ecosystem_.ases()[ref->as_index].asn;
}

}  // namespace eyeball::topology
