// Ground-truth IP geography.
//
// Every IP address allocated to an AS PoP has a deterministic "true"
// location: a zip centroid of the PoP's city, chosen by a hash of the IP.
// Both the synthetic geo databases (which report this location, possibly
// corrupted) and the P2P user generator (which samples IPs and carries
// their true location) consult this single source, so the whole pipeline is
// consistent end-to-end.
#pragma once

#include <cstdint>
#include <optional>

#include "gazetteer/gazetteer.hpp"
#include "gazetteer/zip_lattice.hpp"
#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "topology/types.hpp"

namespace eyeball::topology {

struct IpGroundTruth {
  net::Asn asn{};
  gazetteer::CityId city = gazetteer::kInvalidCity;
  bool transit_only = false;
  /// Zip-centroid location of the host.
  geo::GeoPoint location;
};

class GroundTruthLocator {
 public:
  /// Zip lattice used for *user placement*: wider than a city's nominal
  /// lattice, because an ISP PoP's customers live across the metro area and
  /// its satellite towns — geo databases name the metro city but pin the
  /// coordinates on outlying zip centroids.  This dispersion is what makes
  /// small kernel bandwidths produce one peak per zip cluster (paper §3.1)
  /// and is the mechanism behind Figure 2(b)'s precision-vs-bandwidth
  /// trend.
  [[nodiscard]] static gazetteer::ZipLatticeConfig default_zip_config() noexcept {
    return gazetteer::user_placement_config();
  }

  GroundTruthLocator(const AsEcosystem& ecosystem, const gazetteer::Gazetteer& gazetteer,
                     gazetteer::ZipLatticeConfig zip_config = default_zip_config());

  /// Ground truth for an IP, or nullopt if it is outside all allocations.
  [[nodiscard]] std::optional<IpGroundTruth> locate(net::Ipv4Address ip) const;

  /// Origin AS only (cheaper; used by the BGP mapper tests as an oracle).
  [[nodiscard]] std::optional<net::Asn> origin(net::Ipv4Address ip) const;

  [[nodiscard]] const gazetteer::Gazetteer& gazetteer() const noexcept { return gaz_; }
  [[nodiscard]] const AsEcosystem& ecosystem() const noexcept { return ecosystem_; }

 private:
  struct PopRef {
    std::uint32_t as_index;
    std::uint32_t pop_index;
  };

  const AsEcosystem& ecosystem_;
  const gazetteer::Gazetteer& gaz_;
  gazetteer::ZipLatticeConfig zip_config_;
  net::PrefixTrie<PopRef> trie_;
  /// Zip lattices cached per city (computed lazily would need sync; we
  /// precompute for every city that hosts at least one PoP).
  std::vector<std::vector<geo::GeoPoint>> lattices_;  // indexed by CityId
};

}  // namespace eyeball::topology
