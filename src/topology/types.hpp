// The synthetic AS ecosystem: autonomous systems with roles, geographic
// PoP footprints, prefix allocations, business relationships and IXP
// memberships.  This is the ground truth the rest of the library measures —
// the stand-in for the real Internet that the paper's pipeline observes
// only through P2P samples, geo databases and BGP tables.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "gazetteer/types.hpp"
#include "net/ipv4.hpp"

namespace eyeball::topology {

enum class AsRole : std::uint8_t {
  kTier1,    // global transit, default-free
  kTransit,  // regional/national transit
  kEyeball,  // sells connectivity to end users
  kContent,  // hosts content, few end users
};

/// Designed geographic scope of an AS (the generator's intent; the paper's
/// classifier infers this from samples and is validated against it).
enum class AsLevel : std::uint8_t {
  kCity,
  kState,
  kCountry,
  kContinent,
  kGlobal,
};

[[nodiscard]] std::string_view to_string(AsRole role) noexcept;
[[nodiscard]] std::string_view to_string(AsLevel level) noexcept;

/// One point of presence of an AS in a city.
struct PopSite {
  gazetteer::CityId city = gazetteer::kInvalidCity;
  /// Fraction of the AS's residential customers homed at this PoP.
  /// Zero for transit-only PoPs.
  double customer_share = 0.0;
  /// Address space announced from this PoP.
  std::vector<net::Ipv4Prefix> prefixes;
  /// True for PoPs used only to reach providers/peers (no end users) — the
  /// paper's §5 first cause of validation mismatch.
  bool transit_only = false;
};

struct AutonomousSystem {
  net::Asn asn{};
  std::string name;
  AsRole role = AsRole::kEyeball;
  AsLevel level = AsLevel::kCountry;
  /// Home country (ISO code); empty for global networks.
  std::string country_code;
  /// Home admin-1 region for state-level ASes; empty otherwise.
  std::string region;
  gazetteer::Continent continent = gazetteer::Continent::kEurope;
  std::vector<PopSite> pops;
  /// Residential broadband customers (0 for non-eyeballs).
  std::uint64_t customers = 0;

  [[nodiscard]] std::uint64_t address_count() const noexcept;
  /// PoPs that serve end users (customer_share > 0).
  [[nodiscard]] std::size_t service_pop_count() const noexcept;
};

struct Ixp {
  std::string name;
  gazetteer::CityId city = gazetteer::kInvalidCity;
  std::vector<net::Asn> members;

  [[nodiscard]] bool has_member(net::Asn asn) const noexcept;
};

enum class RelationshipType : std::uint8_t {
  kCustomerProvider,  // `customer` pays `provider`
  kPeerPeer,          // settlement-free
};

struct AsRelationship {
  net::Asn customer{};  // for kPeerPeer: the lower ASN of the pair
  net::Asn provider{};  // for kPeerPeer: the higher ASN of the pair
  RelationshipType type = RelationshipType::kCustomerProvider;
  /// For peerings established at an IXP: its index in AsEcosystem::ixps.
  std::optional<std::size_t> ixp_index;
};

/// The generated world.  Owns all ASes, IXPs and relationships and provides
/// indexed lookups.  Instances are immutable after construction.
class AsEcosystem {
 public:
  AsEcosystem(std::vector<AutonomousSystem> ases, std::vector<Ixp> ixps,
              std::vector<AsRelationship> relationships);

  [[nodiscard]] std::span<const AutonomousSystem> ases() const noexcept { return ases_; }
  [[nodiscard]] std::span<const Ixp> ixps() const noexcept { return ixps_; }
  [[nodiscard]] std::span<const AsRelationship> relationships() const noexcept {
    return relationships_;
  }

  [[nodiscard]] const AutonomousSystem* find(net::Asn asn) const noexcept;
  [[nodiscard]] const AutonomousSystem& at(net::Asn asn) const;

  [[nodiscard]] std::vector<net::Asn> providers_of(net::Asn asn) const;
  [[nodiscard]] std::vector<net::Asn> customers_of(net::Asn asn) const;
  [[nodiscard]] std::vector<net::Asn> peers_of(net::Asn asn) const;
  /// IXP indices where `asn` is a member.
  [[nodiscard]] std::vector<std::size_t> ixps_of(net::Asn asn) const;

  [[nodiscard]] std::vector<net::Asn> eyeballs() const;

  /// Total number of (AS, service PoP) pairs — a scale diagnostic.
  [[nodiscard]] std::size_t total_service_pops() const noexcept;

 private:
  std::vector<AutonomousSystem> ases_;
  std::vector<Ixp> ixps_;
  std::vector<AsRelationship> relationships_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
};

}  // namespace eyeball::topology
