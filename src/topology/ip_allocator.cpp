#include "topology/ip_allocator.hpp"

#include <stdexcept>

namespace eyeball::topology {

int Ipv4SpaceAllocator::length_for(std::uint64_t addresses) noexcept {
  int length = 32;
  std::uint64_t capacity = 1;
  while (length > 0 && capacity < addresses) {
    --length;
    capacity <<= 1;
  }
  return length;
}

namespace {

/// Special-use ranges an eyeball AS can never announce, as [lo, hi)
/// address intervals: the classic reserved /8s plus the finer-grained
/// RFC 1918 / link-local / CGNAT blocks.  Must stay the complement of the
/// streaming admission door (core/streaming_dataset.cpp's
/// is_admissible_sample): everything this allocator hands out is
/// admissible, everything it skips is rejected there.
struct AddressRange {
  std::uint64_t lo;
  std::uint64_t hi;
};
constexpr AddressRange kSpecialUse[] = {
    {0x00000000ULL, 0x01000000ULL},   // 0.0.0.0/8
    {0x0a000000ULL, 0x0b000000ULL},   // 10.0.0.0/8 (RFC 1918)
    {0x64400000ULL, 0x64800000ULL},   // 100.64.0.0/10 (CGNAT)
    {0x7f000000ULL, 0x80000000ULL},   // 127.0.0.0/8 (loopback)
    {0xa9fe0000ULL, 0xa9ff0000ULL},   // 169.254.0.0/16 (link-local)
    {0xac100000ULL, 0xac200000ULL},   // 172.16.0.0/12 (RFC 1918)
    {0xc0a80000ULL, 0xc0a90000ULL},   // 192.168.0.0/16 (RFC 1918)
    {0xe0000000ULL, 0x100000000ULL},  // 224.0.0.0+ (multicast + reserved)
};

/// End of the first special-use range overlapping [start, start + size), or
/// 0 when the whole block is allocatable.
[[nodiscard]] constexpr std::uint64_t overlapping_reserved_end(
    std::uint64_t start, std::uint64_t size) noexcept {
  for (const auto& range : kSpecialUse) {
    if (range.lo < start + size && range.hi > start) return range.hi;
  }
  return 0;
}

}  // namespace

bool Ipv4SpaceAllocator::is_reserved(std::uint32_t address) noexcept {
  return overlapping_reserved_end(address, 1) != 0;
}

net::Ipv4Prefix Ipv4SpaceAllocator::allocate(int prefix_length) {
  if (prefix_length < 8 || prefix_length > 32) {
    throw std::invalid_argument{"Ipv4SpaceAllocator: prefix length out of range"};
  }
  const std::uint64_t block = std::uint64_t{1} << (32 - prefix_length);
  for (;;) {
    // Align cursor up to the block size.
    const std::uint64_t start = (cursor_ + block - 1) & ~(block - 1);
    if (start + block > 0x100000000ULL) {
      throw std::length_error{"Ipv4SpaceAllocator: address space exhausted"};
    }
    // A coarse block can straddle a finer special-use range (e.g. a /12
    // containing 169.254.0.0/16) without starting inside it, so the test is
    // interval overlap, not membership of the first address.
    if (const std::uint64_t skip_to = overlapping_reserved_end(start, block)) {
      cursor_ = skip_to;
      continue;
    }
    cursor_ = start + block;
    allocated_ += block;
    return {net::Ipv4Address{static_cast<std::uint32_t>(start)}, prefix_length};
  }
}

net::Ipv4Prefix Ipv4SpaceAllocator::allocate_for(std::uint64_t addresses) {
  return allocate(length_for(addresses));
}

}  // namespace eyeball::topology
