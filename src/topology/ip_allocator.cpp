#include "topology/ip_allocator.hpp"

#include <stdexcept>

namespace eyeball::topology {

int Ipv4SpaceAllocator::length_for(std::uint64_t addresses) noexcept {
  int length = 32;
  std::uint64_t capacity = 1;
  while (length > 0 && capacity < addresses) {
    --length;
    capacity <<= 1;
  }
  return length;
}

bool Ipv4SpaceAllocator::is_reserved(std::uint32_t address) noexcept {
  const std::uint32_t top = address >> 24;
  return top == 0 || top == 10 || top == 127 || top >= 224;
}

net::Ipv4Prefix Ipv4SpaceAllocator::allocate(int prefix_length) {
  if (prefix_length < 8 || prefix_length > 32) {
    throw std::invalid_argument{"Ipv4SpaceAllocator: prefix length out of range"};
  }
  const std::uint64_t block = std::uint64_t{1} << (32 - prefix_length);
  for (;;) {
    // Align cursor up to the block size.
    std::uint64_t start = (cursor_ + block - 1) & ~(block - 1);
    if (start + block > 0x100000000ULL) {
      throw std::length_error{"Ipv4SpaceAllocator: address space exhausted"};
    }
    if (is_reserved(static_cast<std::uint32_t>(start))) {
      // Jump past the reserved /8.
      cursor_ = ((start >> 24) + 1) << 24;
      continue;
    }
    cursor_ = start + block;
    allocated_ += block;
    return {net::Ipv4Address{static_cast<std::uint32_t>(start)}, prefix_length};
  }
}

net::Ipv4Prefix Ipv4SpaceAllocator::allocate_for(std::uint64_t addresses) {
  return allocate(length_for(addresses));
}

}  // namespace eyeball::topology
