#include "topology/types.hpp"

#include <algorithm>
#include <stdexcept>

namespace eyeball::topology {

std::string_view to_string(AsRole role) noexcept {
  switch (role) {
    case AsRole::kTier1: return "tier1";
    case AsRole::kTransit: return "transit";
    case AsRole::kEyeball: return "eyeball";
    case AsRole::kContent: return "content";
  }
  return "unknown";
}

std::string_view to_string(AsLevel level) noexcept {
  switch (level) {
    case AsLevel::kCity: return "city";
    case AsLevel::kState: return "state";
    case AsLevel::kCountry: return "country";
    case AsLevel::kContinent: return "continent";
    case AsLevel::kGlobal: return "global";
  }
  return "unknown";
}

std::uint64_t AutonomousSystem::address_count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& pop : pops) {
    for (const auto& prefix : pop.prefixes) total += prefix.size();
  }
  return total;
}

std::size_t AutonomousSystem::service_pop_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(pops.begin(), pops.end(),
                    [](const PopSite& p) { return p.customer_share > 0.0; }));
}

bool Ixp::has_member(net::Asn asn) const noexcept {
  return std::find(members.begin(), members.end(), asn) != members.end();
}

AsEcosystem::AsEcosystem(std::vector<AutonomousSystem> ases, std::vector<Ixp> ixps,
                         std::vector<AsRelationship> relationships)
    : ases_(std::move(ases)),
      ixps_(std::move(ixps)),
      relationships_(std::move(relationships)) {
  index_.reserve(ases_.size());
  for (std::size_t i = 0; i < ases_.size(); ++i) {
    const auto [it, fresh] = index_.emplace(net::value_of(ases_[i].asn), i);
    if (!fresh) throw std::invalid_argument{"AsEcosystem: duplicate ASN"};
  }
  for (const auto& rel : relationships_) {
    if (find(rel.customer) == nullptr || find(rel.provider) == nullptr) {
      throw std::invalid_argument{"AsEcosystem: relationship references unknown AS"};
    }
  }
  for (const auto& ixp : ixps_) {
    for (const auto member : ixp.members) {
      if (find(member) == nullptr) {
        throw std::invalid_argument{"AsEcosystem: IXP member is unknown AS"};
      }
    }
  }
}

const AutonomousSystem* AsEcosystem::find(net::Asn asn) const noexcept {
  const auto it = index_.find(net::value_of(asn));
  return it == index_.end() ? nullptr : &ases_[it->second];
}

const AutonomousSystem& AsEcosystem::at(net::Asn asn) const {
  const auto* found = find(asn);
  if (found == nullptr) throw std::out_of_range{"AsEcosystem::at: unknown ASN"};
  return *found;
}

std::vector<net::Asn> AsEcosystem::providers_of(net::Asn asn) const {
  std::vector<net::Asn> out;
  for (const auto& rel : relationships_) {
    if (rel.type == RelationshipType::kCustomerProvider && rel.customer == asn) {
      out.push_back(rel.provider);
    }
  }
  return out;
}

std::vector<net::Asn> AsEcosystem::customers_of(net::Asn asn) const {
  std::vector<net::Asn> out;
  for (const auto& rel : relationships_) {
    if (rel.type == RelationshipType::kCustomerProvider && rel.provider == asn) {
      out.push_back(rel.customer);
    }
  }
  return out;
}

std::vector<net::Asn> AsEcosystem::peers_of(net::Asn asn) const {
  std::vector<net::Asn> out;
  for (const auto& rel : relationships_) {
    if (rel.type != RelationshipType::kPeerPeer) continue;
    if (rel.customer == asn) out.push_back(rel.provider);
    if (rel.provider == asn) out.push_back(rel.customer);
  }
  return out;
}

std::vector<std::size_t> AsEcosystem::ixps_of(net::Asn asn) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ixps_.size(); ++i) {
    if (ixps_[i].has_member(asn)) out.push_back(i);
  }
  return out;
}

std::vector<net::Asn> AsEcosystem::eyeballs() const {
  std::vector<net::Asn> out;
  for (const auto& as : ases_) {
    if (as.role == AsRole::kEyeball) out.push_back(as.asn);
  }
  return out;
}

std::size_t AsEcosystem::total_service_pops() const noexcept {
  std::size_t total = 0;
  for (const auto& as : ases_) total += as.service_pop_count();
  return total;
}

}  // namespace eyeball::topology
