// Geodesic primitives: points on the sphere, great-circle distance,
// destination points, bounding boxes, and the local km<->degree conversions
// the KDE grid relies on.
#pragma once

#include <cmath>
#include <numbers>
#include <span>
#include <string>

namespace eyeball::geo {

inline constexpr double kEarthRadiusKm = 6371.0088;  // IUGG mean radius
inline constexpr double kKmPerDegreeLat = kEarthRadiusKm * std::numbers::pi / 180.0;

[[nodiscard]] constexpr double to_radians(double degrees) noexcept {
  return degrees * std::numbers::pi / 180.0;
}
[[nodiscard]] constexpr double to_degrees(double radians) noexcept {
  return radians * 180.0 / std::numbers::pi;
}

/// A point on the Earth's surface.  Latitude in [-90, 90], longitude in
/// [-180, 180), both in degrees.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;

  friend bool operator==(const GeoPoint&, const GeoPoint&) = default;
};

/// True when latitude/longitude are within their legal ranges.
[[nodiscard]] bool is_valid(const GeoPoint& p) noexcept;

/// Normalizes longitude into [-180, 180) and clamps latitude to [-90, 90].
[[nodiscard]] GeoPoint normalized(GeoPoint p) noexcept;

/// Great-circle distance (haversine).  Accurate to ~0.5% (spherical model),
/// which is far below the 40 km kernel bandwidth this library operates at.
[[nodiscard]] double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Equirectangular approximation of distance; cheap, accurate for distances
/// small relative to the Earth radius.  Used in inner loops with a guard.
[[nodiscard]] double approx_distance_km(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Initial bearing from `a` to `b` in degrees clockwise from north, [0, 360).
[[nodiscard]] double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept;

/// Point reached travelling `distance_km` from `origin` along `bearing_deg`.
[[nodiscard]] GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                                   double distance_km) noexcept;

/// Kilometres spanned by one degree of longitude at the given latitude.
[[nodiscard]] double km_per_degree_lon(double lat_deg) noexcept;

/// Axis-aligned lat/lon box.  Longitude wrap-around is intentionally not
/// supported: every region this library analyses (an AS footprint) is far
/// from the antimeridian, and constructors enforce min <= max.
class BoundingBox {
 public:
  BoundingBox(double min_lat, double max_lat, double min_lon, double max_lon);

  /// Smallest box containing all points.  Throws on empty input.
  [[nodiscard]] static BoundingBox around(std::span<const GeoPoint> points);

  /// Box expanded by `margin_km` on every side (clamped to legal ranges).
  [[nodiscard]] BoundingBox expanded_km(double margin_km) const;

  [[nodiscard]] bool contains(const GeoPoint& p) const noexcept;
  [[nodiscard]] double min_lat() const noexcept { return min_lat_; }
  [[nodiscard]] double max_lat() const noexcept { return max_lat_; }
  [[nodiscard]] double min_lon() const noexcept { return min_lon_; }
  [[nodiscard]] double max_lon() const noexcept { return max_lon_; }
  [[nodiscard]] GeoPoint center() const noexcept;
  [[nodiscard]] double height_km() const noexcept;
  /// Width measured at the box's central latitude.
  [[nodiscard]] double width_km() const noexcept;

 private:
  double min_lat_;
  double max_lat_;
  double min_lon_;
  double max_lon_;
};

[[nodiscard]] std::string to_string(const GeoPoint& p);

}  // namespace eyeball::geo
