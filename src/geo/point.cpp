#include "geo/point.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/format.hpp"

namespace eyeball::geo {

bool is_valid(const GeoPoint& p) noexcept {
  return p.lat_deg >= -90.0 && p.lat_deg <= 90.0 && p.lon_deg >= -180.0 &&
         p.lon_deg < 180.0 && std::isfinite(p.lat_deg) && std::isfinite(p.lon_deg);
}

GeoPoint normalized(GeoPoint p) noexcept {
  p.lat_deg = std::clamp(p.lat_deg, -90.0, 90.0);
  double lon = std::fmod(p.lon_deg + 180.0, 360.0);
  if (lon < 0.0) lon += 360.0;
  p.lon_deg = lon - 180.0;
  return p;
}

double distance_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double phi1 = to_radians(a.lat_deg);
  const double phi2 = to_radians(b.lat_deg);
  const double dphi = to_radians(b.lat_deg - a.lat_deg);
  const double dlambda = to_radians(b.lon_deg - a.lon_deg);
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlambda = std::sin(dlambda / 2.0);
  const double h =
      sin_dphi * sin_dphi + std::cos(phi1) * std::cos(phi2) * sin_dlambda * sin_dlambda;
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double approx_distance_km(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double mean_lat = to_radians((a.lat_deg + b.lat_deg) / 2.0);
  const double dx = to_radians(b.lon_deg - a.lon_deg) * std::cos(mean_lat);
  const double dy = to_radians(b.lat_deg - a.lat_deg);
  return kEarthRadiusKm * std::sqrt(dx * dx + dy * dy);
}

double initial_bearing_deg(const GeoPoint& a, const GeoPoint& b) noexcept {
  const double phi1 = to_radians(a.lat_deg);
  const double phi2 = to_radians(b.lat_deg);
  const double dlambda = to_radians(b.lon_deg - a.lon_deg);
  const double y = std::sin(dlambda) * std::cos(phi2);
  const double x =
      std::cos(phi1) * std::sin(phi2) - std::sin(phi1) * std::cos(phi2) * std::cos(dlambda);
  double bearing = to_degrees(std::atan2(y, x));
  if (bearing < 0.0) bearing += 360.0;
  return bearing;
}

GeoPoint destination(const GeoPoint& origin, double bearing_deg,
                     double distance_km) noexcept {
  const double delta = distance_km / kEarthRadiusKm;
  const double theta = to_radians(bearing_deg);
  const double phi1 = to_radians(origin.lat_deg);
  const double lambda1 = to_radians(origin.lon_deg);
  const double sin_phi2 =
      std::sin(phi1) * std::cos(delta) + std::cos(phi1) * std::sin(delta) * std::cos(theta);
  const double phi2 = std::asin(std::clamp(sin_phi2, -1.0, 1.0));
  const double y = std::sin(theta) * std::sin(delta) * std::cos(phi1);
  const double x = std::cos(delta) - std::sin(phi1) * sin_phi2;
  const double lambda2 = lambda1 + std::atan2(y, x);
  return normalized({to_degrees(phi2), to_degrees(lambda2)});
}

double km_per_degree_lon(double lat_deg) noexcept {
  return kKmPerDegreeLat * std::cos(to_radians(lat_deg));
}

BoundingBox::BoundingBox(double min_lat, double max_lat, double min_lon, double max_lon)
    : min_lat_(min_lat), max_lat_(max_lat), min_lon_(min_lon), max_lon_(max_lon) {
  if (min_lat > max_lat || min_lon > max_lon) {
    throw std::invalid_argument{"BoundingBox: min exceeds max"};
  }
  if (min_lat < -90.0 || max_lat > 90.0 || min_lon < -180.0 || max_lon > 180.0) {
    throw std::invalid_argument{"BoundingBox: out of range"};
  }
}

BoundingBox BoundingBox::around(std::span<const GeoPoint> points) {
  if (points.empty()) throw std::invalid_argument{"BoundingBox::around: no points"};
  double min_lat = points[0].lat_deg;
  double max_lat = points[0].lat_deg;
  double min_lon = points[0].lon_deg;
  double max_lon = points[0].lon_deg;
  for (const auto& p : points) {
    min_lat = std::min(min_lat, p.lat_deg);
    max_lat = std::max(max_lat, p.lat_deg);
    min_lon = std::min(min_lon, p.lon_deg);
    max_lon = std::max(max_lon, p.lon_deg);
  }
  return {min_lat, max_lat, min_lon, max_lon};
}

BoundingBox BoundingBox::expanded_km(double margin_km) const {
  const double dlat = margin_km / kKmPerDegreeLat;
  // Use the latitude closest to the pole for a conservative lon margin.
  const double extreme_lat = std::max(std::abs(min_lat_), std::abs(max_lat_));
  const double lon_scale = std::max(1.0, km_per_degree_lon(std::min(extreme_lat, 85.0)));
  const double dlon = margin_km / lon_scale;
  return {std::max(-90.0, min_lat_ - dlat), std::min(90.0, max_lat_ + dlat),
          std::max(-180.0, min_lon_ - dlon), std::min(180.0, max_lon_ + dlon)};
}

bool BoundingBox::contains(const GeoPoint& p) const noexcept {
  return p.lat_deg >= min_lat_ && p.lat_deg <= max_lat_ && p.lon_deg >= min_lon_ &&
         p.lon_deg <= max_lon_;
}

GeoPoint BoundingBox::center() const noexcept {
  return {(min_lat_ + max_lat_) / 2.0, (min_lon_ + max_lon_) / 2.0};
}

double BoundingBox::height_km() const noexcept {
  return (max_lat_ - min_lat_) * kKmPerDegreeLat;
}

double BoundingBox::width_km() const noexcept {
  return (max_lon_ - min_lon_) * km_per_degree_lon((min_lat_ + max_lat_) / 2.0);
}

std::string to_string(const GeoPoint& p) {
  return "(" + util::fixed(p.lat_deg, 4) + ", " + util::fixed(p.lon_deg, 4) + ")";
}

}  // namespace eyeball::geo
