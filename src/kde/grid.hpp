// Equirectangular density grid.
//
// Rows run south -> north, columns west -> east.  Cell height is uniform in
// latitude; cell width is uniform in *degrees* of longitude, so its physical
// width shrinks toward the poles — the KDE convolution compensates with a
// per-row kernel width, and per-row cell areas are exposed for integration.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "geo/point.hpp"
#include "util/check.hpp"

namespace eyeball::kde {

class DensityGrid {
 public:
  /// Grid covering `box` with cells of roughly `cell_km` at the box's
  /// central latitude.  Throws if the box degenerates or the grid would
  /// exceed `max_cells`.
  DensityGrid(const geo::BoundingBox& box, double cell_km, std::size_t max_cells = 8000000);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t cell_count() const noexcept { return values_.size(); }
  [[nodiscard]] const geo::BoundingBox& box() const noexcept { return box_; }
  [[nodiscard]] double cell_km() const noexcept { return cell_km_; }

  [[nodiscard]] double value(std::size_t row, std::size_t col) const {
    EYEBALL_DCHECK(row < rows_ && col < cols_, "grid read out of bounds");
    return values_[row * cols_ + col];
  }
  [[nodiscard]] double& at(std::size_t row, std::size_t col) {
    EYEBALL_DCHECK(row < rows_ && col < cols_, "grid write out of bounds");
    return values_[row * cols_ + col];
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }
  [[nodiscard]] std::vector<double>& values() noexcept { return values_; }

  /// Geographic center of a cell.
  [[nodiscard]] geo::GeoPoint center_of(std::size_t row, std::size_t col) const noexcept;
  /// Cell containing `p`, or nullopt when outside the box.
  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>> cell_of(
      const geo::GeoPoint& p) const noexcept;

  /// Latitude of a row's center.
  [[nodiscard]] double row_lat(std::size_t row) const noexcept;
  /// Physical cell width at a row (km); height is constant.
  [[nodiscard]] double cell_width_km(std::size_t row) const noexcept;
  [[nodiscard]] double cell_height_km() const noexcept;
  [[nodiscard]] double cell_area_km2(std::size_t row) const noexcept;

  /// Maximum stored value and its cell, or nullopt for an all-zero grid.
  struct MaxCell {
    std::size_t row;
    std::size_t col;
    double value;
  };
  [[nodiscard]] std::optional<MaxCell> max_cell() const noexcept;

  /// Sum of value x cell area over the grid (integral of the density).
  [[nodiscard]] double integral() const noexcept;

 private:
  geo::BoundingBox box_;
  double cell_km_;
  double dlat_deg_;
  double dlon_deg_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> values_;
};

}  // namespace eyeball::kde
