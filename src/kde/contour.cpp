#include "kde/contour.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace eyeball::kde {

double Footprint::total_area_km2() const noexcept {
  double total = 0.0;
  for (const auto& p : partitions) total += p.area_km2;
  return total;
}

double Footprint::total_mass() const noexcept {
  double total = 0.0;
  for (const auto& p : partitions) total += p.mass;
  return total;
}

Footprint extract_footprint(const DensityGrid& grid, double level) {
  if (!(level > 0.0)) throw std::invalid_argument{"extract_footprint: level must be > 0"};

  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  const auto inside = [&](std::size_t r, std::size_t c) {
    return grid.value(r, c) >= level;
  };

  Footprint footprint;
  footprint.level = level;

  // Connected components (4-connectivity) of cells above the level.
  std::vector<char> visited(rows * cols, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (visited[r * cols + c] || !inside(r, c)) continue;
      FootprintPartition part;
      part.min_lat = part.max_lat = grid.center_of(r, c).lat_deg;
      part.min_lon = part.max_lon = grid.center_of(r, c).lon_deg;

      std::queue<std::pair<std::size_t, std::size_t>> frontier;
      frontier.push({r, c});
      visited[r * cols + c] = 1;
      while (!frontier.empty()) {
        const auto [cr, cc] = frontier.front();
        frontier.pop();
        const double v = grid.value(cr, cc);
        const geo::GeoPoint center = grid.center_of(cr, cc);
        ++part.cell_count;
        part.area_km2 += grid.cell_area_km2(cr);
        part.mass += v * grid.cell_area_km2(cr);
        if (v > part.peak_density) {
          part.peak_density = v;
          part.peak_location = center;
        }
        part.min_lat = std::min(part.min_lat, center.lat_deg);
        part.max_lat = std::max(part.max_lat, center.lat_deg);
        part.min_lon = std::min(part.min_lon, center.lon_deg);
        part.max_lon = std::max(part.max_lon, center.lon_deg);

        constexpr int kDr[] = {-1, 1, 0, 0};
        constexpr int kDc[] = {0, 0, -1, 1};
        for (int k = 0; k < 4; ++k) {
          const auto nr = static_cast<std::ptrdiff_t>(cr) + kDr[k];
          const auto nc = static_cast<std::ptrdiff_t>(cc) + kDc[k];
          if (nr < 0 || nr >= static_cast<std::ptrdiff_t>(rows) || nc < 0 ||
              nc >= static_cast<std::ptrdiff_t>(cols)) {
            continue;
          }
          const auto ur = static_cast<std::size_t>(nr);
          const auto uc = static_cast<std::size_t>(nc);
          if (!visited[ur * cols + uc] && inside(ur, uc)) {
            visited[ur * cols + uc] = 1;
            frontier.push({ur, uc});
          }
        }
      }
      footprint.partitions.push_back(part);
    }
  }
  std::sort(footprint.partitions.begin(), footprint.partitions.end(),
            [](const FootprintPartition& a, const FootprintPartition& b) {
              return a.mass > b.mass;
            });

  // Marching squares: one segment per boundary crossing, linear
  // interpolation along cell edges.  (Segments are unordered; consumers
  // that need closed rings can stitch them by endpoint.)
  const auto interpolate = [&](const geo::GeoPoint& a, double va, const geo::GeoPoint& b,
                               double vb) {
    const double t = (va == vb) ? 0.5 : (level - va) / (vb - va);
    return geo::GeoPoint{a.lat_deg + t * (b.lat_deg - a.lat_deg),
                         a.lon_deg + t * (b.lon_deg - a.lon_deg)};
  };
  for (std::size_t r = 0; r + 1 < rows; ++r) {
    for (std::size_t c = 0; c + 1 < cols; ++c) {
      // Corners: 0 = (r,c), 1 = (r,c+1), 2 = (r+1,c+1), 3 = (r+1,c).
      const double v0 = grid.value(r, c);
      const double v1 = grid.value(r, c + 1);
      const double v2 = grid.value(r + 1, c + 1);
      const double v3 = grid.value(r + 1, c);
      const int mask = (v0 >= level ? 1 : 0) | (v1 >= level ? 2 : 0) |
                       (v2 >= level ? 4 : 0) | (v3 >= level ? 8 : 0);
      if (mask == 0 || mask == 15) continue;
      const geo::GeoPoint p0 = grid.center_of(r, c);
      const geo::GeoPoint p1 = grid.center_of(r, c + 1);
      const geo::GeoPoint p2 = grid.center_of(r + 1, c + 1);
      const geo::GeoPoint p3 = grid.center_of(r + 1, c);
      const geo::GeoPoint bottom = interpolate(p0, v0, p1, v1);
      const geo::GeoPoint right = interpolate(p1, v1, p2, v2);
      const geo::GeoPoint top = interpolate(p3, v3, p2, v2);
      const geo::GeoPoint left = interpolate(p0, v0, p3, v3);
      const auto emit = [&](const geo::GeoPoint& a, const geo::GeoPoint& b) {
        footprint.boundary.push_back({a, b});
      };
      switch (mask) {
        case 1: case 14: emit(left, bottom); break;
        case 2: case 13: emit(bottom, right); break;
        case 3: case 12: emit(left, right); break;
        case 4: case 11: emit(right, top); break;
        case 6: case 9: emit(bottom, top); break;
        case 7: case 8: emit(left, top); break;
        case 5:  // saddle: two segments
          emit(left, bottom);
          emit(right, top);
          break;
        case 10:  // saddle
          emit(bottom, right);
          emit(left, top);
          break;
        default: break;
      }
    }
  }
  return footprint;
}

Footprint extract_footprint_relative(const DensityGrid& grid, double fraction) {
  if (!(fraction > 0.0) || fraction >= 1.0) {
    throw std::invalid_argument{"extract_footprint_relative: fraction in (0,1)"};
  }
  const auto max = grid.max_cell();
  if (!max) {
    Footprint empty;
    empty.level = 0.0;
    return empty;
  }
  return extract_footprint(grid, fraction * max->value);
}

}  // namespace eyeball::kde
