// Density-grid exporters: CSV (lat, lon, density) for plotting tools and
// binary PGM (grayscale image) for a quick visual — the closest stand-ins
// for the paper's 3-D surface renders of Figure 1.
#pragma once

#include <string>

#include "kde/contour.hpp"
#include "kde/grid.hpp"

namespace eyeball::kde {

/// "lat,lon,density" rows, one per cell with density above `min_density`
/// (0 exports everything).  Header included.
[[nodiscard]] std::string to_csv(const DensityGrid& grid, double min_density = 0.0);

/// Portable graymap (P2, ASCII) with densities scaled to 0..255 and row 0
/// at the northern edge.  `gamma` < 1 brightens low densities.
[[nodiscard]] std::string to_pgm(const DensityGrid& grid, double gamma = 0.5);

/// GeoJSON-style line segments of a footprint boundary (a FeatureCollection
/// of LineStrings, two points each).
[[nodiscard]] std::string boundary_to_geojson(const Footprint& footprint);

}  // namespace eyeball::kde
