#include "kde/export.hpp"

#include <algorithm>
#include <cmath>

#include "util/format.hpp"

namespace eyeball::kde {

std::string to_csv(const DensityGrid& grid, double min_density) {
  std::string out = "lat,lon,density\n";
  for (std::size_t r = 0; r < grid.rows(); ++r) {
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      const double v = grid.value(r, c);
      if (v <= min_density) continue;
      const auto center = grid.center_of(r, c);
      out += util::fixed(center.lat_deg, 4);
      out += ',';
      out += util::fixed(center.lon_deg, 4);
      out += ',';
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.6e", v);
      out += buffer;
      out += '\n';
    }
  }
  return out;
}

std::string to_pgm(const DensityGrid& grid, double gamma) {
  const auto max = grid.max_cell();
  const double scale = max ? 1.0 / max->value : 0.0;
  std::string out = "P2\n" + std::to_string(grid.cols()) + " " +
                    std::to_string(grid.rows()) + "\n255\n";
  for (std::size_t r = grid.rows(); r-- > 0;) {  // north at the top
    for (std::size_t c = 0; c < grid.cols(); ++c) {
      const double level = std::pow(std::clamp(grid.value(r, c) * scale, 0.0, 1.0), gamma);
      out += std::to_string(static_cast<int>(std::lround(level * 255.0)));
      out += c + 1 < grid.cols() ? ' ' : '\n';
    }
  }
  return out;
}

std::string boundary_to_geojson(const Footprint& footprint) {
  std::string out =
      R"({"type":"FeatureCollection","features":[)";
  bool first = true;
  for (const auto& segment : footprint.boundary) {
    if (!first) out += ',';
    first = false;
    out += R"({"type":"Feature","properties":{},"geometry":{"type":"LineString","coordinates":[[)";
    out += util::fixed(segment.a.lon_deg, 5) + "," + util::fixed(segment.a.lat_deg, 5);
    out += "],[";
    out += util::fixed(segment.b.lon_deg, 5) + "," + util::fixed(segment.b.lat_deg, 5);
    out += "]]}}";
  }
  out += "]}";
  return out;
}

}  // namespace eyeball::kde
