// Bivariate Gaussian kernel density estimation (the paper's §3 method).
//
// A Gaussian kernel of bandwidth sigma (km) is placed at every user
// location; the aggregated surface is the AS's user density.  The fast
// path bins points into a DensityGrid and exploits the kernel's
// separability: one horizontal pass with a per-row kernel width (cells
// shrink physically toward the poles) followed by one vertical pass.
// Kernels are truncated at `truncate_sigmas`.  An exact O(N x cells)
// evaluator backs the property tests.
//
// Units: the returned density integrates to ~1 over the grid (probability
// per km^2), so peak heights are comparable across ASes regardless of
// sample count — exactly what the paper's PoP density scores need.
#pragma once

#include <cstdint>
#include <span>

#include "geo/point.hpp"
#include "kde/grid.hpp"

namespace eyeball::kde {

struct KdeConfig {
  /// Kernel bandwidth (standard deviation of the Gaussian) in km.  The
  /// paper uses 40 km for city-level resolution and sweeps 10-80 km.
  double bandwidth_km = 40.0;
  /// Grid resolution; must resolve the kernel (cell <= bandwidth / 2).
  double cell_km = 5.0;
  /// Kernel support radius in standard deviations.
  double truncate_sigmas = 4.0;
  /// Upper bound on grid cells; the grid coarsens itself beyond this.
  std::size_t max_cells = 8000000;
  /// Convolution-pass concurrency: rows/columns are split into contiguous
  /// chunks executed on util::ThreadPool::shared().  1 = serial, 0 = one
  /// chunk per hardware thread.  Results are bit-identical across settings
  /// (each row/column keeps its serial reduction order).
  std::size_t threads = 1;
};

class KernelDensityEstimator {
 public:
  explicit KernelDensityEstimator(KdeConfig config);

  [[nodiscard]] const KdeConfig& config() const noexcept { return config_; }

  /// Fast binned+separable estimate over `box`.  Throws on empty input.
  [[nodiscard]] DensityGrid estimate(std::span<const geo::GeoPoint> points,
                                     const geo::BoundingBox& box) const;

  /// Bounding box around the points padded by the kernel support plus
  /// `extra_margin_km` — pass this to estimate() so no mass is clipped.
  [[nodiscard]] geo::BoundingBox padded_box(std::span<const geo::GeoPoint> points,
                                            double extra_margin_km = 20.0) const;

  /// Exact per-cell sum of Gaussians (no binning).  O(N x cells); reference
  /// implementation for correctness tests and the accuracy ablation bench.
  [[nodiscard]] DensityGrid estimate_exact(std::span<const geo::GeoPoint> points,
                                           const geo::BoundingBox& box) const;

 private:
  KdeConfig config_;
};

}  // namespace eyeball::kde
