// Local-maximum (peak) detection on a density grid — the paper's §4.1:
// candidate PoPs are the density peaks with D(i) > alpha * Dmax.
#pragma once

#include <vector>

#include "geo/point.hpp"
#include "kde/grid.hpp"

namespace eyeball::kde {

struct Peak {
  geo::GeoPoint location;
  /// Density at the peak (probability per km^2).
  double density = 0.0;
  /// density x 2*pi*sigma^2 — approximately the fraction of all users
  /// under this peak; reproduces the paper's "Milan (.130)" scale.
  double score = 0.0;
  std::size_t row = 0;
  std::size_t col = 0;
};

struct PeakConfig {
  /// Keep peaks with density > alpha * Dmax (paper: alpha = 0.01).
  double alpha = 0.01;
  /// Needed to compute Peak::score.
  double bandwidth_km = 40.0;
  /// Refine peak coordinates with a quadratic fit around the cell maximum.
  bool subcell_refinement = true;
};

/// All qualifying local maxima, sorted by density descending with exact
/// density ties broken by (row, col) ascending — a total order, so the
/// result is byte-identical across standard-library sort implementations.
/// Plateaus (flat connected regions that dominate their surroundings)
/// collapse to a single peak.  Empty result for an all-zero grid.
[[nodiscard]] std::vector<Peak> find_peaks(const DensityGrid& grid,
                                           const PeakConfig& config = {});

}  // namespace eyeball::kde
