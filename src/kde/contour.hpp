// Geo-footprint extraction: the paper's §3 "largest contour of the
// aggregate density represents the geo-footprint of the AS ... and may
// consist of one or multiple partitions".
//
// A footprint at a given density level is the set of grid cells with
// density >= level.  We report its connected partitions (area, mass,
// bounding box) and extract the boundary as marching-squares line segments
// for rendering.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/point.hpp"
#include "kde/grid.hpp"

namespace eyeball::kde {

struct FootprintPartition {
  std::size_t cell_count = 0;
  double area_km2 = 0.0;
  /// Integral of density over the partition (fraction of users inside).
  double mass = 0.0;
  double peak_density = 0.0;
  geo::GeoPoint peak_location;
  double min_lat = 0.0, max_lat = 0.0, min_lon = 0.0, max_lon = 0.0;
};

struct BoundarySegment {
  geo::GeoPoint a;
  geo::GeoPoint b;
};

struct Footprint {
  double level = 0.0;
  /// Partitions sorted by mass, descending.
  std::vector<FootprintPartition> partitions;
  std::vector<BoundarySegment> boundary;

  [[nodiscard]] double total_area_km2() const noexcept;
  [[nodiscard]] double total_mass() const noexcept;
};

/// Footprint at an absolute density level (probability per km^2).
[[nodiscard]] Footprint extract_footprint(const DensityGrid& grid, double level);

/// Footprint at level = fraction * Dmax (the usual way to pick the largest
/// meaningful contour); `fraction` in (0, 1).
[[nodiscard]] Footprint extract_footprint_relative(const DensityGrid& grid,
                                                   double fraction = 0.01);

}  // namespace eyeball::kde
