#include "kde/grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eyeball::kde {

DensityGrid::DensityGrid(const geo::BoundingBox& box, double cell_km,
                         std::size_t max_cells)
    : box_(box), cell_km_(cell_km) {
  if (!(cell_km > 0.0)) throw std::invalid_argument{"DensityGrid: cell_km must be > 0"};

  const double mid_lat = (box.min_lat() + box.max_lat()) / 2.0;
  const double lon_scale = std::max(1.0, geo::km_per_degree_lon(mid_lat));

  // Grow the cell size if the requested resolution would blow the budget.
  // The budget comparison happens in double, before any float->int cast: a
  // tiny cell_km can make want_rows*want_cols exceed SIZE_MAX, and casting
  // such a value to size_t is undefined behaviour.
  for (;;) {
    dlat_deg_ = cell_km_ / geo::kKmPerDegreeLat;
    dlon_deg_ = cell_km_ / lon_scale;
    const double want_rows =
        std::max(1.0, std::ceil((box.max_lat() - box.min_lat()) / dlat_deg_));
    const double want_cols =
        std::max(1.0, std::ceil((box.max_lon() - box.min_lon()) / dlon_deg_));
    if (want_rows * want_cols <= static_cast<double>(max_cells)) {
      rows_ = static_cast<std::size_t>(want_rows);
      cols_ = static_cast<std::size_t>(want_cols);
      break;
    }
    cell_km_ *= 1.5;
  }
  EYEBALL_DCHECK(rows_ * cols_ <= max_cells, "cell budget violated after coarsening");
  values_.assign(rows_ * cols_, 0.0);
}

geo::GeoPoint DensityGrid::center_of(std::size_t row, std::size_t col) const noexcept {
  EYEBALL_DCHECK(row < rows_ && col < cols_, "cell center queried out of bounds");
  return {box_.min_lat() + (static_cast<double>(row) + 0.5) * dlat_deg_,
          box_.min_lon() + (static_cast<double>(col) + 0.5) * dlon_deg_};
}

std::optional<std::pair<std::size_t, std::size_t>> DensityGrid::cell_of(
    const geo::GeoPoint& p) const noexcept {
  if (!box_.contains(p)) return std::nullopt;
  auto row = static_cast<std::size_t>((p.lat_deg - box_.min_lat()) / dlat_deg_);
  auto col = static_cast<std::size_t>((p.lon_deg - box_.min_lon()) / dlon_deg_);
  row = std::min(row, rows_ - 1);
  col = std::min(col, cols_ - 1);
  return std::make_pair(row, col);
}

double DensityGrid::row_lat(std::size_t row) const noexcept {
  EYEBALL_DCHECK(row < rows_, "row latitude queried out of bounds");
  return box_.min_lat() + (static_cast<double>(row) + 0.5) * dlat_deg_;
}

double DensityGrid::cell_width_km(std::size_t row) const noexcept {
  return dlon_deg_ * geo::km_per_degree_lon(row_lat(row));
}

double DensityGrid::cell_height_km() const noexcept {
  return dlat_deg_ * geo::kKmPerDegreeLat;
}

double DensityGrid::cell_area_km2(std::size_t row) const noexcept {
  return cell_width_km(row) * cell_height_km();
}

std::optional<DensityGrid::MaxCell> DensityGrid::max_cell() const noexcept {
  const auto it = std::max_element(values_.begin(), values_.end());
  if (it == values_.end() || *it <= 0.0) return std::nullopt;
  const auto index = static_cast<std::size_t>(it - values_.begin());
  return MaxCell{index / cols_, index % cols_, *it};
}

double DensityGrid::integral() const noexcept {
  double total = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double area = cell_area_km2(r);
    double row_sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) row_sum += value(r, c);
    total += row_sum * area;
  }
  return total;
}

}  // namespace eyeball::kde
