#include "kde/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "kde/convolve.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace eyeball::kde {
namespace {

/// Normalized, truncated 1-D Gaussian taps for a given sigma (in cells).
std::vector<double> make_kernel(double sigma_cells, double truncate_sigmas) {
  EYEBALL_DCHECK(sigma_cells > 0.0, "kernel sigma must be positive (NaN taps otherwise)");
  const auto radius = static_cast<std::size_t>(std::ceil(sigma_cells * truncate_sigmas));
  std::vector<double> taps(2 * radius + 1);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const double x = (static_cast<double>(i) - static_cast<double>(radius)) / sigma_cells;
    taps[i] = std::exp(-0.5 * x * x);
    sum += taps[i];
  }
  for (auto& t : taps) t /= sum;
  return taps;
}

/// Dense per-row kernel table: every distinct quantized kernel's taps live
/// back-to-back in one arena and `row_kernels` maps a grid row to its
/// (offset, tap-count) slice — no node-per-kernel allocations, no tree walk
/// per row, and the parallel passes read one flat const structure.
///
/// Concurrency contract: build-then-freeze.  build_row_kernels() fills the
/// arena on the calling thread; estimate() binds the result to a `const`
/// local BEFORE any parallel_for, so worker lambdas can only ever see an
/// immutable arena — the contract is enforced by the type system (no
/// non-const access exists inside the parallel region), which is why this
/// carries no capability annotation.  The mutable state of the passes
/// lives in `scratch_storage` (estimate()'s intermediate buffer), which
/// the workers share deliberately but write in disjoint row/column tiles.
struct KernelArena {
  struct Slice {
    std::size_t offset = 0;
    std::size_t taps = 0;
  };
  std::vector<double> arena;
  std::vector<Slice> row_kernels;  // indexed by grid row

  [[nodiscard]] const double* taps_of(std::size_t row) const noexcept {
    return arena.data() + row_kernels[row].offset;
  }
  [[nodiscard]] std::size_t tap_count(std::size_t row) const noexcept {
    return row_kernels[row].taps;
  }
};

/// Builds the quantized per-row kernel set (sigma quantized to 1/64 cell,
/// clamped to >= 1 step: a coarse grid can push sigma below half a step, and
/// a key of 0 would ask for a sigma-0 kernel whose taps are NaN).  Each
/// distinct key's taps are computed once into the arena.
KernelArena build_row_kernels(const DensityGrid& grid, double bandwidth_km,
                              double truncate_sigmas) {
  const std::size_t rows = grid.rows();
  std::vector<long> keys(rows);
  std::vector<long> unique;
  for (std::size_t r = 0; r < rows; ++r) {
    const double sigma_cells = bandwidth_km / std::max(1e-6, grid.cell_width_km(r));
    keys[r] = std::max(1L, std::lround(sigma_cells * 64.0));
    EYEBALL_DCHECK(keys[r] >= 1, "quantized kernel cache key must stay >= 1");
    unique.push_back(keys[r]);
  }
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  KernelArena out;
  std::vector<KernelArena::Slice> slices(unique.size());
  for (std::size_t k = 0; k < unique.size(); ++k) {
    const auto taps =
        make_kernel(static_cast<double>(unique[k]) / 64.0, truncate_sigmas);
    slices[k] = {out.arena.size(), taps.size()};
    out.arena.insert(out.arena.end(), taps.begin(), taps.end());
  }
  out.row_kernels.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto it = std::lower_bound(unique.begin(), unique.end(), keys[r]);
    out.row_kernels[r] =
        slices[static_cast<std::size_t>(std::distance(unique.begin(), it))];
  }
  return out;
}

}  // namespace

namespace detail {

/// Contiguous (stride-1) 1-D convolution with the edge-clipped prologue and
/// epilogue peeled off: the interior runs a branchless dot product the
/// compiler can unroll and vectorize.  Taps that fall outside the range are
/// dropped (edge mass is clipped; the caller pads the domain so real mass
/// never sits near the edge).  For every output cell the taps accumulate in
/// ascending index order — exactly the order of the pre-SoA scalar loop —
/// so results are bit-identical to the reference convolution
/// (tests/kde_simd_test.cpp pins this differentially).
void convolve_row(const double* src, double* dst, std::size_t n, const double* taps,
                  std::size_t tap_count) {
  const std::size_t radius = tap_count / 2;
  const auto sn = static_cast<std::ptrdiff_t>(n);
  const auto sradius = static_cast<std::ptrdiff_t>(radius);

  // The row is processed in blocks of kRowTile outputs sharing one tap loop
  // with independent accumulators: a single output's tap sum is a serial
  // dependence chain (one add per cycle at best, and un-vectorizable
  // without reassociation), while kRowTile interleaved chains pipeline and
  // vectorize as unit-stride loads.  Each accumulator still sums its taps
  // in ascending index order, so every variant below is bit-identical to
  // the one-output-at-a-time reference loop.
  constexpr std::size_t kRowTile = kConvolveTile;

  // Full tile of outputs [i0, i0+kRowTile) with edge clipping: each tap's
  // valid output sub-range is contiguous, so clipping clamps the inner
  // loop's bounds instead of branching per cell, and the body stays the
  // same vectorizable unit-stride accumulate as the interior tile.
  auto clipped_tile = [&](std::size_t i0) {
    double acc[kRowTile] = {};
    for (std::size_t k = 0; k < tap_count; ++k) {
      const auto shift =
          static_cast<std::ptrdiff_t>(i0 + k) - sradius;  // src index of j=0
      if (shift >= sn) break;  // later taps shift further right; none valid
      const std::size_t j_lo =
          shift < 0 ? static_cast<std::size_t>(-shift) : 0;
      const std::size_t j_hi =
          std::min(kRowTile, static_cast<std::size_t>(sn - shift));
      const double t = taps[k];
      const double* s = src + shift;
      for (std::size_t j = j_lo; j < j_hi; ++j) acc[j] += s[j] * t;
    }
    double* d = dst + i0;
    for (std::size_t j = 0; j < kRowTile; ++j) d[j] = acc[j];
  };

  // Scalar fallback for the final partial tile (and degenerate rows).
  auto clipped = [&](std::ptrdiff_t i) {
    double acc = 0.0;
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - sradius);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(sn - 1, i + sradius);
    for (std::ptrdiff_t j = lo; j <= hi; ++j) {
      acc += src[j] * taps[j - i + sradius];
    }
    dst[i] = acc;
  };

  const std::size_t interior_lo = std::min(radius, n);
  const std::size_t interior_hi = n > radius ? n - radius : interior_lo;
  std::size_t i = 0;
  // Leading clipped region, in full tiles (a tile may spill into the
  // interior; the clamped bounds make that exact, not just safe).
  for (; i + kRowTile <= n && i < interior_lo; i += kRowTile) clipped_tile(i);
  if (i >= interior_lo && i + kRowTile <= interior_hi) {
    // Interior: full support, no bounds checks in the inner loop.
    for (; i + kRowTile <= interior_hi; i += kRowTile) {
      double acc[kRowTile] = {};
      const double* s = src + (i - radius);
      for (std::size_t k = 0; k < tap_count; ++k) {
        const double t = taps[k];
        for (std::size_t j = 0; j < kRowTile; ++j) acc[j] += s[k + j] * t;
      }
      double* d = dst + i;
      for (std::size_t j = 0; j < kRowTile; ++j) d[j] = acc[j];
    }
  }
  // Trailing clipped region, in full tiles while they fit.
  for (; i + kRowTile <= n; i += kRowTile) clipped_tile(i);
  for (auto si = static_cast<std::ptrdiff_t>(i); si < sn; ++si) clipped(si);
}

/// Vertical (cross-row) convolution over a tile of `width <= kConvolveTile`
/// adjacent columns starting at `col`.  Instead of striding down one column
/// at a time (a cache-hostile `cols`-stride walk repeated per column), the
/// tap loop is outermost and each step reads `width` contiguous values from
/// one source row — unit-stride loads the compiler turns into SIMD —
/// accumulating all `width` columns at once.  Per output cell the taps
/// still accumulate in ascending row order, i.e. the exact summation order
/// of the reference column walk, so the pass stays bit-identical.
/// `Width` is a compile-time constant (kConvolveTile for full tiles, or the
/// runtime remainder funneled through the scalar-width overload below):
/// constant trip counts are what let the compiler fully unroll the
/// accumulator loops and keep `acc` in vector registers — a runtime bound
/// here costs ~2x (measured; the vectorizer falls back to a peeled loop
/// with in-memory accumulators).
template <std::size_t Width>
void convolve_columns_fixed(const double* src, double* dst, std::size_t rows,
                            std::size_t cols, std::size_t col, const double* taps,
                            std::size_t tap_count) {
  const std::size_t radius = tap_count / 2;
  const auto srows = static_cast<std::ptrdiff_t>(rows);
  const auto sradius = static_cast<std::ptrdiff_t>(radius);

  auto clipped_row = [&](std::ptrdiff_t i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - sradius);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(srows - 1, i + sradius);
    double acc[Width] = {};
    for (std::ptrdiff_t j = lo; j <= hi; ++j) {
      const double t = taps[j - i + sradius];
      const double* s = src + static_cast<std::size_t>(j) * cols + col;
      for (std::size_t c = 0; c < Width; ++c) acc[c] += s[c] * t;
    }
    double* d = dst + static_cast<std::size_t>(i) * cols + col;
    for (std::size_t c = 0; c < Width; ++c) d[c] = acc[c];
  };

  if (rows <= 2 * radius) {
    for (std::ptrdiff_t i = 0; i < srows; ++i) clipped_row(i);
    return;
  }
  for (std::ptrdiff_t i = 0; i < sradius; ++i) clipped_row(i);
  for (std::size_t i = radius; i < rows - radius; ++i) {
    const double* s = src + (i - radius) * cols + col;
    double acc[Width] = {};
    for (std::size_t k = 0; k < tap_count; ++k) {
      const double t = taps[k];
      for (std::size_t c = 0; c < Width; ++c) acc[c] += s[c] * t;
      s += cols;
    }
    double* d = dst + i * cols + col;
    for (std::size_t c = 0; c < Width; ++c) d[c] = acc[c];
  }
  for (std::ptrdiff_t i = srows - sradius; i < srows; ++i) clipped_row(i);
}

void convolve_columns_tile(const double* src, double* dst, std::size_t rows,
                           std::size_t cols, std::size_t col, std::size_t width,
                           const double* taps, std::size_t tap_count) {
  if (width == kConvolveTile) {
    convolve_columns_fixed<kConvolveTile>(src, dst, rows, cols, col, taps, tap_count);
    return;
  }
  // Remainder tile (grid edge): one column at a time.  Cache-hostile but
  // bounded by one tile's worth of columns per grid.
  for (std::size_t c = col; c < col + width; ++c) {
    convolve_columns_fixed<1>(src, dst, rows, cols, c, taps, tap_count);
  }
}

}  // namespace detail

KernelDensityEstimator::KernelDensityEstimator(KdeConfig config) : config_(config) {
  if (!(config_.bandwidth_km > 0.0)) {
    throw std::invalid_argument{"KernelDensityEstimator: bandwidth must be > 0"};
  }
  if (!(config_.cell_km > 0.0)) {
    throw std::invalid_argument{"KernelDensityEstimator: cell size must be > 0"};
  }
  if (config_.cell_km > config_.bandwidth_km / 2.0) {
    // Keep at least two cells per sigma so peaks are resolved.
    config_.cell_km = config_.bandwidth_km / 2.0;
  }
  if (!(config_.truncate_sigmas >= 1.0)) {
    throw std::invalid_argument{"KernelDensityEstimator: truncate_sigmas must be >= 1"};
  }
}

geo::BoundingBox KernelDensityEstimator::padded_box(std::span<const geo::GeoPoint> points,
                                                    double extra_margin_km) const {
  const auto raw = geo::BoundingBox::around(points);
  return raw.expanded_km(config_.bandwidth_km * config_.truncate_sigmas + extra_margin_km);
}

DensityGrid KernelDensityEstimator::estimate(std::span<const geo::GeoPoint> points,
                                             const geo::BoundingBox& box) const {
  if (points.empty()) {
    throw std::invalid_argument{"KernelDensityEstimator::estimate: no points"};
  }
  DensityGrid grid{box, config_.cell_km, config_.max_cells};

  // Bin.
  std::size_t used = 0;
  for (const auto& p : points) {
    if (const auto cell = grid.cell_of(p)) {
      grid.at(cell->first, cell->second) += 1.0;
      ++used;
    }
  }
  if (used == 0) {
    throw std::invalid_argument{"KernelDensityEstimator::estimate: no points inside box"};
  }

  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  // Intermediate buffer between the two passes, reused across calls (the
  // horizontal pass writes every cell before the vertical pass reads any,
  // so stale contents are unobservable).  thread_local rather than a member
  // keeps estimate() const and concurrent-caller-safe.  The named reference
  // matters: lambdas do not capture thread_local variables, so without it
  // each pool worker below would touch its own (empty) instance instead of
  // the caller's buffer (kde_simd_test crashes without this).
  thread_local std::vector<double> scratch_storage;
  std::vector<double>& scratch = scratch_storage;
  if (scratch.size() < grid.values().size()) scratch.resize(grid.values().size());

  auto& pool = util::ThreadPool::shared();
  const std::size_t ways =
      config_.threads == 0 ? pool.worker_count() : config_.threads;

  // Horizontal pass: per-row kernel width (cells shrink toward the poles).
  // The whole quantized kernel set is built up front into one flat arena so
  // the parallel region only reads const data — no locking.
  const KernelArena kernels =
      build_row_kernels(grid, config_.bandwidth_km, config_.truncate_sigmas);
  pool.parallel_for(
      0, rows,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          detail::convolve_row(grid.values().data() + r * cols,
                               scratch.data() + r * cols, cols, kernels.taps_of(r),
                               kernels.tap_count(r));
        }
      },
      ways);

  // Vertical pass: constant kernel width, tiled over column groups so every
  // load is unit-stride (see convolve_columns_tile).  Tiles are disjoint and
  // the chunk boundaries depend only on the tile count and `ways`, so the
  // pass stays bit-identical at any thread count.
  const auto vertical = make_kernel(
      config_.bandwidth_km / grid.cell_height_km(), config_.truncate_sigmas);
  const std::size_t tiles =
      (cols + detail::kConvolveTile - 1) / detail::kConvolveTile;
  pool.parallel_for(
      0, tiles,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t t = lo; t < hi; ++t) {
          const std::size_t col = t * detail::kConvolveTile;
          detail::convolve_columns_tile(
              scratch.data(), grid.values().data(), rows, cols, col,
              std::min(detail::kConvolveTile, cols - col), vertical.data(),
              vertical.size());
        }
      },
      ways);

  // Normalize: expected count per cell -> probability density per km^2.
  pool.parallel_for(
      0, rows,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const double scale =
              1.0 / (static_cast<double>(used) * grid.cell_area_km2(r));
          double* row = grid.values().data() + r * cols;
          for (std::size_t c = 0; c < cols; ++c) row[c] *= scale;
        }
      },
      ways);
  return grid;
}

DensityGrid KernelDensityEstimator::estimate_exact(std::span<const geo::GeoPoint> points,
                                                   const geo::BoundingBox& box) const {
  if (points.empty()) {
    throw std::invalid_argument{"KernelDensityEstimator::estimate_exact: no points"};
  }
  DensityGrid grid{box, config_.cell_km, config_.max_cells};
  const double sigma = config_.bandwidth_km;
  const double support = sigma * config_.truncate_sigmas;
  const double norm = 1.0 / (2.0 * std::numbers::pi * sigma * sigma *
                             static_cast<double>(points.size()));
  auto& pool = util::ThreadPool::shared();
  const std::size_t ways =
      config_.threads == 0 ? pool.worker_count() : config_.threads;
  pool.parallel_for(
      0, grid.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          for (std::size_t c = 0; c < grid.cols(); ++c) {
            const geo::GeoPoint center = grid.center_of(r, c);
            double acc = 0.0;
            for (const auto& p : points) {
              const double d = geo::approx_distance_km(center, p);
              if (d <= support) acc += std::exp(-0.5 * (d / sigma) * (d / sigma));
            }
            grid.at(r, c) = acc * norm;
          }
        }
      },
      ways);
  return grid;
}

}  // namespace eyeball::kde
