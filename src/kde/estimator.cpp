#include "kde/estimator.hpp"

#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace eyeball::kde {
namespace {

/// Normalized, truncated 1-D Gaussian taps for a given sigma (in cells).
std::vector<double> make_kernel(double sigma_cells, double truncate_sigmas) {
  EYEBALL_DCHECK(sigma_cells > 0.0, "kernel sigma must be positive (NaN taps otherwise)");
  const auto radius = static_cast<std::size_t>(std::ceil(sigma_cells * truncate_sigmas));
  std::vector<double> taps(2 * radius + 1);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    const double x = (static_cast<double>(i) - static_cast<double>(radius)) / sigma_cells;
    taps[i] = std::exp(-0.5 * x * x);
    sum += taps[i];
  }
  for (auto& t : taps) t /= sum;
  return taps;
}

/// 1-D convolution of `src` (stride `stride`, `n` elements) into `dst`.
/// Taps that fall outside the range are dropped (edge mass is clipped; the
/// caller pads the domain so real mass never sits near the edge).
void convolve(const double* src, double* dst, std::size_t n, std::size_t stride,
              const std::vector<double>& taps) {
  const auto radius = static_cast<std::ptrdiff_t>(taps.size() / 2);
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    double acc = 0.0;
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - radius);
    const std::ptrdiff_t hi =
        std::min<std::ptrdiff_t>(static_cast<std::ptrdiff_t>(n) - 1, i + radius);
    for (std::ptrdiff_t j = lo; j <= hi; ++j) {
      acc += src[static_cast<std::size_t>(j) * stride] *
             taps[static_cast<std::size_t>(j - i + radius)];
    }
    dst[static_cast<std::size_t>(i) * stride] = acc;
  }
}

}  // namespace

KernelDensityEstimator::KernelDensityEstimator(KdeConfig config) : config_(config) {
  if (!(config_.bandwidth_km > 0.0)) {
    throw std::invalid_argument{"KernelDensityEstimator: bandwidth must be > 0"};
  }
  if (!(config_.cell_km > 0.0)) {
    throw std::invalid_argument{"KernelDensityEstimator: cell size must be > 0"};
  }
  if (config_.cell_km > config_.bandwidth_km / 2.0) {
    // Keep at least two cells per sigma so peaks are resolved.
    config_.cell_km = config_.bandwidth_km / 2.0;
  }
  if (!(config_.truncate_sigmas >= 1.0)) {
    throw std::invalid_argument{"KernelDensityEstimator: truncate_sigmas must be >= 1"};
  }
}

geo::BoundingBox KernelDensityEstimator::padded_box(std::span<const geo::GeoPoint> points,
                                                    double extra_margin_km) const {
  const auto raw = geo::BoundingBox::around(points);
  return raw.expanded_km(config_.bandwidth_km * config_.truncate_sigmas + extra_margin_km);
}

DensityGrid KernelDensityEstimator::estimate(std::span<const geo::GeoPoint> points,
                                             const geo::BoundingBox& box) const {
  if (points.empty()) {
    throw std::invalid_argument{"KernelDensityEstimator::estimate: no points"};
  }
  DensityGrid grid{box, config_.cell_km, config_.max_cells};

  // Bin.
  std::size_t used = 0;
  for (const auto& p : points) {
    if (const auto cell = grid.cell_of(p)) {
      grid.at(cell->first, cell->second) += 1.0;
      ++used;
    }
  }
  if (used == 0) {
    throw std::invalid_argument{"KernelDensityEstimator::estimate: no points inside box"};
  }

  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  std::vector<double> scratch(grid.values().size(), 0.0);

  auto& pool = util::ThreadPool::shared();
  const std::size_t ways =
      config_.threads == 0 ? pool.worker_count() : config_.threads;

  // Horizontal pass: per-row kernel width (cells shrink toward the poles).
  // Kernels are cached on quantized sigma; the whole quantized set is built
  // up front so the parallel region only reads the cache — no locking.  The
  // key is clamped to >= 1: a coarse grid (max_cells coarsening) can push
  // sigma below half a quantization step, and an unclamped key of 0 would
  // ask for a sigma-0 kernel whose taps are NaN (0/0 in the exponent).
  std::map<long, std::vector<double>> kernel_cache;
  std::vector<const std::vector<double>*> row_kernels(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const double sigma_cells =
        config_.bandwidth_km / std::max(1e-6, grid.cell_width_km(r));
    const long key = std::max(1L, std::lround(sigma_cells * 64.0));
    EYEBALL_DCHECK(key >= 1, "quantized kernel cache key must stay >= 1");
    auto it = kernel_cache.find(key);
    if (it == kernel_cache.end()) {
      it = kernel_cache
               .emplace(key, make_kernel(static_cast<double>(key) / 64.0,
                                         config_.truncate_sigmas))
               .first;
    }
    row_kernels[r] = &it->second;
  }
  pool.parallel_for(
      0, rows,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          convolve(grid.values().data() + r * cols, scratch.data() + r * cols, cols,
                   1, *row_kernels[r]);
        }
      },
      ways);

  // Vertical pass: constant kernel width.
  const double sigma_rows = config_.bandwidth_km / grid.cell_height_km();
  const auto vertical = make_kernel(sigma_rows, config_.truncate_sigmas);
  pool.parallel_for(
      0, cols,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t c = lo; c < hi; ++c) {
          convolve(scratch.data() + c, grid.values().data() + c, rows, cols,
                   vertical);
        }
      },
      ways);

  // Normalize: expected count per cell -> probability density per km^2.
  pool.parallel_for(
      0, rows,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const double scale =
              1.0 / (static_cast<double>(used) * grid.cell_area_km2(r));
          for (std::size_t c = 0; c < cols; ++c) grid.at(r, c) *= scale;
        }
      },
      ways);
  return grid;
}

DensityGrid KernelDensityEstimator::estimate_exact(std::span<const geo::GeoPoint> points,
                                                   const geo::BoundingBox& box) const {
  if (points.empty()) {
    throw std::invalid_argument{"KernelDensityEstimator::estimate_exact: no points"};
  }
  DensityGrid grid{box, config_.cell_km, config_.max_cells};
  const double sigma = config_.bandwidth_km;
  const double support = sigma * config_.truncate_sigmas;
  const double norm = 1.0 / (2.0 * std::numbers::pi * sigma * sigma *
                             static_cast<double>(points.size()));
  auto& pool = util::ThreadPool::shared();
  const std::size_t ways =
      config_.threads == 0 ? pool.worker_count() : config_.threads;
  pool.parallel_for(
      0, grid.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          for (std::size_t c = 0; c < grid.cols(); ++c) {
            const geo::GeoPoint center = grid.center_of(r, c);
            double acc = 0.0;
            for (const auto& p : points) {
              const double d = geo::approx_distance_km(center, p);
              if (d <= support) acc += std::exp(-0.5 * (d / sigma) * (d / sigma));
            }
            grid.at(r, c) = acc * norm;
          }
        }
      },
      ways);
  return grid;
}

}  // namespace eyeball::kde
