// Internal: the register-tiled 1-D convolution kernels behind
// KernelDensityEstimator::estimate (see DESIGN.md "Data layout &
// vectorization").  Exposed in a header so tests/kde_simd_test.cpp can pin
// the tiled implementations bit-for-bit against a naive scalar reference —
// production code should go through the estimator, not call these.
//
// Both functions clip taps that fall outside the range (edge mass is
// dropped) and accumulate each output cell's taps in ascending index
// order, so their results are exactly those of the obvious scalar loop.
#pragma once

#include <cstddef>

namespace eyeball::kde::detail {

/// Number of adjacent columns the vertical pass processes per tile (and the
/// horizontal pass's output-tile width).  32 doubles of accumulators — four
/// cache lines, small enough to live in vector registers once the
/// constant-trip inner loops unroll.
inline constexpr std::size_t kConvolveTile = 32;

/// Contiguous (stride-1) convolution of `src[0..n)` into `dst[0..n)` with a
/// centered `tap_count`-tap kernel (radius = tap_count / 2).
void convolve_row(const double* src, double* dst, std::size_t n, const double* taps,
                  std::size_t tap_count);

/// Vertical (cross-row) convolution of a row-major `rows x cols` image over
/// the `width <= kConvolveTile` adjacent columns starting at `col`.
void convolve_columns_tile(const double* src, double* dst, std::size_t rows,
                           std::size_t cols, std::size_t col, std::size_t width,
                           const double* taps, std::size_t tap_count);

}  // namespace eyeball::kde::detail
