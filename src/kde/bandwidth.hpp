// Data-driven kernel bandwidth selection.
//
// The paper fixes 40 km for city-level resolution and discusses an
// AS-dependent rule tied to geo error (§3.1), citing Botev et al. for
// fully data-driven selection.  This header provides the classical
// reference rules so the fixed choice can be compared against statistics-
// driven ones (see the ablation bench):
//
//   * Silverman's rule of thumb (normal reference), per-axis in km.
//   * A capped "resolution-aware" variant that respects the paper's
//     city-level floor and geo-error ceiling.
#pragma once

#include <span>

#include "geo/point.hpp"

namespace eyeball::kde {

/// Silverman's normal-reference bandwidth for the 2-D sample, averaged over
/// the two axes (points projected to local km around their centroid):
///   h = sigma * n^(-1/6)
/// Throws std::invalid_argument on fewer than 2 points.
[[nodiscard]] double silverman_bandwidth_km(std::span<const geo::GeoPoint> points);

/// Silverman clamped to [floor_km, ceil_km] — the paper's constraints: at
/// least the desired resolution (40 km for city level), at most what the
/// geo error permits.
[[nodiscard]] double constrained_bandwidth_km(std::span<const geo::GeoPoint> points,
                                              double floor_km = 40.0,
                                              double ceil_km = 80.0);

}  // namespace eyeball::kde
