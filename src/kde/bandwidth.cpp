#include "kde/bandwidth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace eyeball::kde {

double silverman_bandwidth_km(std::span<const geo::GeoPoint> points) {
  if (points.size() < 2) {
    throw std::invalid_argument{"silverman_bandwidth_km: need at least 2 points"};
  }
  // Project to local km around the centroid (equirectangular).
  double mean_lat = 0.0;
  double mean_lon = 0.0;
  for (const auto& p : points) {
    mean_lat += p.lat_deg;
    mean_lon += p.lon_deg;
  }
  mean_lat /= static_cast<double>(points.size());
  mean_lon /= static_cast<double>(points.size());
  const double lon_scale = geo::km_per_degree_lon(mean_lat);

  double var_x = 0.0;
  double var_y = 0.0;
  for (const auto& p : points) {
    const double dx = (p.lon_deg - mean_lon) * lon_scale;
    const double dy = (p.lat_deg - mean_lat) * geo::kKmPerDegreeLat;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  const auto n = static_cast<double>(points.size());
  var_x /= n - 1.0;
  var_y /= n - 1.0;
  const double sigma = std::sqrt((var_x + var_y) / 2.0);
  // d = 2 normal-reference rule: h = sigma * n^(-1/(d+4)).
  return sigma * std::pow(n, -1.0 / 6.0);
}

double constrained_bandwidth_km(std::span<const geo::GeoPoint> points, double floor_km,
                                double ceil_km) {
  return std::clamp(silverman_bandwidth_km(points), floor_km, ceil_km);
}

}  // namespace eyeball::kde
