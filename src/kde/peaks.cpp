#include "kde/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <queue>

#include "util/check.hpp"

namespace eyeball::kde {
namespace {

/// Quadratic (3-point parabola) sub-cell offset of the extremum in one
/// dimension, clamped to half a cell.
double parabolic_offset(double left, double center, double right) noexcept {
  const double denom = left - 2.0 * center + right;
  if (std::abs(denom) < 1e-30) return 0.0;
  return std::clamp(0.5 * (left - right) / denom, -0.5, 0.5);
}

}  // namespace

std::vector<Peak> find_peaks(const DensityGrid& grid, const PeakConfig& config) {
  // Paper §4.1 keeps peaks with D > alpha * Dmax; alpha outside (0, 1] keeps
  // everything or nothing and signals a mis-wired caller, not a valid run.
  EYEBALL_DCHECK(config.alpha > 0.0 && config.alpha <= 1.0,
                 "peak threshold alpha must lie in (0, 1]");
  EYEBALL_DCHECK(config.bandwidth_km > 0.0, "peak score needs a positive bandwidth");
  const auto max = grid.max_cell();
  if (!max) return {};
  const double threshold = config.alpha * max->value;

  const std::size_t rows = grid.rows();
  const std::size_t cols = grid.cols();
  const auto is_candidate = [&](std::size_t r, std::size_t c) {
    const double v = grid.value(r, c);
    if (v <= 0.0 || v <= threshold) return false;
    // Local maximum: >= every 8-neighbour.
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        if (dr == 0 && dc == 0) continue;
        const auto nr = static_cast<std::ptrdiff_t>(r) + dr;
        const auto nc = static_cast<std::ptrdiff_t>(c) + dc;
        if (nr < 0 || nr >= static_cast<std::ptrdiff_t>(rows) || nc < 0 ||
            nc >= static_cast<std::ptrdiff_t>(cols)) {
          continue;
        }
        if (grid.value(static_cast<std::size_t>(nr), static_cast<std::size_t>(nc)) > v) {
          return false;
        }
      }
    }
    return true;
  };

  // Collect candidate cells and collapse plateaus: adjacent candidates with
  // (near-)equal value belong to one peak.
  std::vector<char> visited(rows * cols, 0);
  std::vector<Peak> peaks;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (visited[r * cols + c] || !is_candidate(r, c)) continue;

      // Flood over the connected plateau of candidates.
      std::queue<std::pair<std::size_t, std::size_t>> frontier;
      frontier.push({r, c});
      visited[r * cols + c] = 1;
      std::size_t best_r = r;
      std::size_t best_c = c;
      while (!frontier.empty()) {
        const auto [cr, cc] = frontier.front();
        frontier.pop();
        if (grid.value(cr, cc) > grid.value(best_r, best_c)) {
          best_r = cr;
          best_c = cc;
        }
        for (int dr = -1; dr <= 1; ++dr) {
          for (int dc = -1; dc <= 1; ++dc) {
            const auto nr = static_cast<std::ptrdiff_t>(cr) + dr;
            const auto nc = static_cast<std::ptrdiff_t>(cc) + dc;
            if (nr < 0 || nr >= static_cast<std::ptrdiff_t>(rows) || nc < 0 ||
                nc >= static_cast<std::ptrdiff_t>(cols)) {
              continue;
            }
            const auto ur = static_cast<std::size_t>(nr);
            const auto uc = static_cast<std::size_t>(nc);
            if (!visited[ur * cols + uc] && is_candidate(ur, uc)) {
              visited[ur * cols + uc] = 1;
              frontier.push({ur, uc});
            }
          }
        }
      }

      Peak peak;
      peak.row = best_r;
      peak.col = best_c;
      peak.density = grid.value(best_r, best_c);
      peak.score = peak.density * 2.0 * std::numbers::pi * config.bandwidth_km *
                   config.bandwidth_km;

      geo::GeoPoint location = grid.center_of(best_r, best_c);
      if (config.subcell_refinement && best_r > 0 && best_r + 1 < rows && best_c > 0 &&
          best_c + 1 < cols) {
        const double dx = parabolic_offset(grid.value(best_r, best_c - 1), peak.density,
                                           grid.value(best_r, best_c + 1));
        const double dy = parabolic_offset(grid.value(best_r - 1, best_c), peak.density,
                                           grid.value(best_r + 1, best_c));
        const geo::GeoPoint right = grid.center_of(best_r, best_c + 1);
        const geo::GeoPoint up = grid.center_of(best_r + 1, best_c);
        location.lon_deg += dx * (right.lon_deg - location.lon_deg);
        location.lat_deg += dy * (up.lat_deg - location.lat_deg);
      }
      peak.location = location;
      peaks.push_back(peak);
    }
  }

  // Total order: density descending, exact ties (plateaus collapsed to
  // different cells, symmetric grids) broken by grid position.  A
  // density-only comparator leaves equal-density peaks in
  // implementation-defined relative order — std::sort is not stable — which
  // breaks the byte-identical determinism contract across standard
  // libraries.
  std::sort(peaks.begin(), peaks.end(), [](const Peak& a, const Peak& b) {
    if (a.density != b.density) return a.density > b.density;
    if (a.row != b.row) return a.row < b.row;
    return a.col < b.col;
  });
  return peaks;
}

}  // namespace eyeball::kde
