// PoP matching (paper §5): a discovered PoP matches a reported PoP when
// their distance is below the city radius (40 km) — "matching PoPs at the
// city level".
#pragma once

#include <span>

#include "geo/point.hpp"

namespace eyeball::validate {

struct MatchStats {
  std::size_t reference_count = 0;
  std::size_t candidate_count = 0;
  /// Reference entries with at least one candidate within the radius.
  std::size_t reference_matched = 0;
  /// Candidate entries with at least one reference within the radius.
  std::size_t candidate_matched = 0;

  /// Paper Fig. 2(a): fraction of ground-truth PoPs found.
  [[nodiscard]] double reference_recall() const noexcept;
  /// Paper Fig. 2(b): fraction of discovered PoPs that are real.
  [[nodiscard]] double candidate_precision() const noexcept;
  /// True when every candidate matches (Fig. 2(b)'s "perfect match").
  [[nodiscard]] bool perfect_precision() const noexcept;
  /// True when candidates cover all references (superset in the DIMES
  /// comparison sense).
  [[nodiscard]] bool covers_reference() const noexcept;
};

[[nodiscard]] MatchStats match_pops(std::span<const geo::GeoPoint> reference,
                                    std::span<const geo::GeoPoint> candidates,
                                    double radius_km = 40.0);

}  // namespace eyeball::validate
