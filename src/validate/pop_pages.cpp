#include "validate/pop_pages.hpp"

#include <charconv>
#include <cmath>

#include "util/format.hpp"
#include "util/rng.hpp"

namespace eyeball::validate {
namespace {

const char* kind_label(PublishedPop::Kind kind) {
  switch (kind) {
    case PublishedPop::Kind::kService: return "core PoP";
    case PublishedPop::Kind::kTransitOnly: return "interconnection site";
    case PublishedPop::Kind::kAccessPoint: return "access point";
  }
  return "site";
}

/// Extracts the first "number, number"-like coordinate pair from a line.
/// Accepts "(45.46, 9.19)", "45.4642 | 9.1900", "45.46N 9.19E".
std::optional<geo::GeoPoint> extract_coordinates(std::string_view line) {
  std::vector<double> numbers;
  std::vector<char> suffixes;
  for (std::size_t i = 0; i < line.size() && numbers.size() < 4; ++i) {
    const char c = line[i];
    if ((c >= '0' && c <= '9') || (c == '-' && i + 1 < line.size() &&
                                   line[i + 1] >= '0' && line[i + 1] <= '9')) {
      double value = 0.0;
      const auto* begin = line.data() + i;
      const auto* end = line.data() + line.size();
      const auto [ptr, ec] = std::from_chars(begin, end, value);
      if (ec == std::errc{}) {
        // Only consider decimals (coordinates); skip bare integers like
        // postal codes unless they carry an N/E/S/W suffix.
        const bool has_dot =
            std::string_view{begin, static_cast<std::size_t>(ptr - begin)}.find('.') !=
            std::string_view::npos;
        const char suffix = ptr != end ? *ptr : ' ';
        if (has_dot || suffix == 'N' || suffix == 'S' || suffix == 'E' || suffix == 'W') {
          numbers.push_back(value);
          suffixes.push_back(suffix);
        }
        i = static_cast<std::size_t>(ptr - line.data()) - 1;
      }
    }
  }
  if (numbers.size() < 2) return std::nullopt;
  double lat = numbers[0];
  double lon = numbers[1];
  if (suffixes[0] == 'S') lat = -lat;
  if (suffixes[1] == 'W') lon = -lon;
  const geo::GeoPoint point{lat, lon};
  if (!geo::is_valid(point)) return std::nullopt;
  return point;
}

/// City name heuristics per format; empty when none found.
std::string extract_name(std::string_view line) {
  // Bullet: "* Name (..." — take between "* " and " (".
  if (line.starts_with("* ")) {
    const auto paren = line.find(" (");
    if (paren != std::string_view::npos) {
      return std::string{line.substr(2, paren - 2)};
    }
  }
  // Table: "| Name | ..." — first cell.
  if (line.starts_with("| ")) {
    const auto bar = line.find(" |", 2);
    if (bar != std::string_view::npos) {
      return std::string{line.substr(2, bar - 2)};
    }
  }
  return {};
}

}  // namespace

std::string render_pop_page(const ReferenceEntry& entry,
                            const gazetteer::Gazetteer& gaz, PageFormat format) {
  std::string out;
  switch (format) {
    case PageFormat::kBulletList: {
      out += "Network points of presence\n==========================\n";
      for (const auto& pop : entry.pops) {
        out += "* ";
        out += std::string{gaz.city(pop.city).name};
        out += " (" + util::fixed(pop.location.lat_deg, 4) + ", " +
               util::fixed(pop.location.lon_deg, 4) + ") - ";
        out += kind_label(pop.kind);
        out += '\n';
      }
      break;
    }
    case PageFormat::kTable: {
      out += "| City | Region | Latitude | Longitude |\n";
      out += "|------|--------|----------|-----------|\n";
      for (const auto& pop : entry.pops) {
        const auto& city = gaz.city(pop.city);
        out += "| " + std::string{city.name} + " | " + std::string{city.region} +
               " | " + util::fixed(pop.location.lat_deg, 4) + " | " +
               util::fixed(pop.location.lon_deg, 4) + " |\n";
      }
      break;
    }
    case PageFormat::kProse: {
      out += "Our backbone is present in ";
      for (std::size_t i = 0; i < entry.pops.size(); ++i) {
        const auto& pop = entry.pops[i];
        if (i > 0) out += i + 1 == entry.pops.size() ? " and " : ", ";
        out += std::string{gaz.city(pop.city).name};
        const double lat = pop.location.lat_deg;
        const double lon = pop.location.lon_deg;
        out += " (" + util::fixed(std::abs(lat), 2) + (lat >= 0 ? "N" : "S") + " " +
               util::fixed(std::abs(lon), 2) + (lon >= 0 ? "E" : "W") + ")";
      }
      out += ".\n";
      break;
    }
  }
  return out;
}

std::optional<std::vector<ScrapedPop>> scrape_pop_page(std::string_view page) {
  std::vector<ScrapedPop> out;

  // Line-oriented formats first: only bullet ("* ") and table ("| ") lines
  // are one-PoP-per-line; anything else is left to the prose pass.
  std::string_view rest = page;
  while (!rest.empty()) {
    const auto newline = rest.find('\n');
    std::string_view line = newline == std::string_view::npos ? rest : rest.substr(0, newline);
    rest.remove_prefix(newline == std::string_view::npos ? rest.size() : newline + 1);
    if (!(line.starts_with("* ") || line.starts_with("| "))) continue;
    if (line.find("Latitude") != std::string_view::npos ||
        line.find("---") != std::string_view::npos) {
      continue;
    }
    const auto coordinates = extract_coordinates(line);
    if (!coordinates) continue;
    ScrapedPop pop;
    pop.location = *coordinates;
    pop.city_name = extract_name(line);
    out.push_back(std::move(pop));
  }

  // Prose fallback: split on "(...)" groups.
  if (out.empty()) {
    std::string_view text = page;
    std::size_t cursor = 0;
    while ((cursor = text.find('(')) != std::string_view::npos) {
      const auto close = text.find(')', cursor);
      if (close == std::string_view::npos) break;
      const auto coordinates = extract_coordinates(text.substr(cursor, close - cursor));
      if (coordinates) {
        // Name: the word(s) before the parenthesis.
        std::string_view before = text.substr(0, cursor);
        const auto comma = before.find_last_of(",.");
        std::string name{before.substr(comma == std::string_view::npos ? 0 : comma + 1)};
        while (!name.empty() && (name.front() == ' ')) name.erase(0, 1);
        while (!name.empty() && (name.back() == ' ')) name.pop_back();
        // Drop leading prose like "Our backbone is present in".
        const auto in_pos = name.rfind(" in ");
        if (in_pos != std::string::npos) name.erase(0, in_pos + 4);
        if (name.starts_with("and ")) name.erase(0, 4);
        out.push_back({std::move(name), *coordinates});
      }
      text.remove_prefix(close + 1);
    }
  }

  if (out.empty()) return std::nullopt;
  return out;
}

std::vector<std::vector<geo::GeoPoint>> scrape_reference_dataset(
    const std::vector<ReferenceEntry>& reference, const gazetteer::Gazetteer& gazetteer) {
  std::vector<std::vector<geo::GeoPoint>> out;
  out.reserve(reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Rotate through formats, like heterogeneous real pages.
    const auto format = static_cast<PageFormat>(i % 3);
    const auto page = render_pop_page(reference[i], gazetteer, format);
    std::vector<geo::GeoPoint> locations;
    if (const auto scraped = scrape_pop_page(page)) {
      for (const auto& pop : *scraped) locations.push_back(pop.location);
    }
    out.push_back(std::move(locations));
  }
  return out;
}

}  // namespace eyeball::validate
