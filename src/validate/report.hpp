// Validation experiment driver (paper §5 / Figure 2).
//
// For each kernel bandwidth in the sweep, runs the PoP inference over every
// reference AS that survived dataset conditioning and matches the inferred
// PoPs against the published lists.  Produces the per-AS recall (Fig. 2a)
// and precision (Fig. 2b) samples plus the scalar summaries the paper
// quotes (average PoPs per AS, perfect-match fraction).
#pragma once

#include <vector>

#include "core/pipeline.hpp"
#include "validate/dimes.hpp"
#include "validate/matching.hpp"
#include "validate/reference.hpp"

namespace eyeball::validate {

struct BandwidthValidation {
  double bandwidth_km = 0.0;
  /// Per-AS fraction of ground-truth PoPs matched (Fig. 2a CDF samples).
  std::vector<double> reference_recall;
  /// Per-AS fraction of inferred PoPs that match ground truth (Fig. 2b).
  std::vector<double> candidate_precision;
  double avg_pops_per_as = 0.0;
  double perfect_precision_fraction = 0.0;
  std::size_t as_count = 0;
};

struct ValidationReport {
  std::vector<BandwidthValidation> sweeps;
  double avg_reference_pops_per_as = 0.0;
  std::size_t reference_as_count = 0;
};

[[nodiscard]] ValidationReport validate_against_reference(
    const core::EyeballPipeline& pipeline, const core::TargetDataset& dataset,
    const std::vector<ReferenceEntry>& reference, const std::vector<double>& bandwidths,
    double match_radius_km = 40.0);

struct DimesComparison {
  std::size_t common_as_count = 0;
  double kde_avg_pops = 0.0;
  double dimes_avg_pops = 0.0;
  /// Fraction of common ASes whose KDE PoPs cover every DIMES PoP
  /// (paper: "for 80% of eyeball ASes our identified PoPs are a clear
  /// superset of reported PoPs").
  double superset_fraction = 0.0;
};

[[nodiscard]] DimesComparison compare_with_dimes(const core::EyeballPipeline& pipeline,
                                                 const core::TargetDataset& dataset,
                                                 const std::vector<DimesEntry>& dimes,
                                                 double bandwidth_km = 40.0,
                                                 double match_radius_km = 40.0);

}  // namespace eyeball::validate
