#include "validate/matching.hpp"

namespace eyeball::validate {

double MatchStats::reference_recall() const noexcept {
  return reference_count == 0
             ? 0.0
             : static_cast<double>(reference_matched) / static_cast<double>(reference_count);
}

double MatchStats::candidate_precision() const noexcept {
  return candidate_count == 0
             ? 0.0
             : static_cast<double>(candidate_matched) / static_cast<double>(candidate_count);
}

bool MatchStats::perfect_precision() const noexcept {
  return candidate_count > 0 && candidate_matched == candidate_count;
}

bool MatchStats::covers_reference() const noexcept {
  return reference_matched == reference_count;
}

MatchStats match_pops(std::span<const geo::GeoPoint> reference,
                      std::span<const geo::GeoPoint> candidates, double radius_km) {
  MatchStats stats;
  stats.reference_count = reference.size();
  stats.candidate_count = candidates.size();
  for (const auto& ref : reference) {
    for (const auto& cand : candidates) {
      if (geo::distance_km(ref, cand) <= radius_km) {
        ++stats.reference_matched;
        break;
      }
    }
  }
  for (const auto& cand : candidates) {
    for (const auto& ref : reference) {
      if (geo::distance_km(ref, cand) <= radius_km) {
        ++stats.candidate_matched;
        break;
      }
    }
  }
  return stats;
}

}  // namespace eyeball::validate
