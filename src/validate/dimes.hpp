// DIMES-style traceroute PoP discovery simulator (paper §5 comparison).
//
// Traceroute-based PoP geolocation sees an AS only where probe paths enter
// or traverse it, so it discovers few PoPs per AS (the paper reports 1.54
// on average vs 7.14 for the KDE method) and is biased toward the largest,
// best-connected sites.  The simulator models that: each AS's PoPs are
// discovered with probability increasing in customer share and IXP/transit
// visibility, calibrated so the average lands near the paper's 1.5.
#pragma once

#include <cstdint>
#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "geo/point.hpp"
#include "topology/types.hpp"

namespace eyeball::validate {

struct DimesConfig {
  /// Discovery probability of the AS's largest PoP.
  double top_pop_prob = 0.85;
  /// Multiplicative decay per rank of smaller PoPs.
  double rank_decay = 0.35;
  /// Transit-only PoPs are where providers hand off traffic — traceroute
  /// actually sees them well.
  double transit_pop_prob = 0.5;
  std::uint64_t seed = 0xd13e5;
};

struct DimesEntry {
  net::Asn asn{};
  std::vector<geo::GeoPoint> pops;
};

/// Discovered-PoP lists for every eyeball AS (entries with zero discovered
/// PoPs are kept: in the real DIMES dataset many ASes have no PoP at all).
[[nodiscard]] std::vector<DimesEntry> simulate_dimes(
    const topology::AsEcosystem& ecosystem, const gazetteer::Gazetteer& gazetteer,
    const DimesConfig& config = {});

}  // namespace eyeball::validate
