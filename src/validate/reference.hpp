// Reference ("ground truth") PoP dataset.
//
// The paper validates against PoP lists that 45 ISPs publish on their
// websites, noting three defects it later observes: transit-only PoPs away
// from customers, access points listed as PoPs, and obsolete/missing
// entries.  The registry reproduces exactly that: it starts from the
// generator's true PoP set and perturbs it with a publication-noise model.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "geo/point.hpp"
#include "topology/types.hpp"

namespace eyeball::validate {

struct PublishedPop {
  geo::GeoPoint location;
  gazetteer::CityId city = gazetteer::kInvalidCity;
  /// Why this entry exists (kept for diagnostics; matching ignores it).
  enum class Kind : std::uint8_t {
    kService,      // a real customer-serving PoP
    kTransitOnly,  // interconnection site with no end users
    kAccessPoint,  // access/aggregation point the ISP lists as a "PoP"
  } kind = Kind::kService;
};

struct ReferenceEntry {
  net::Asn asn{};
  std::vector<PublishedPop> pops;

  [[nodiscard]] std::vector<geo::GeoPoint> locations() const;
};

struct PublicationNoise {
  /// Probability that a true service PoP is absent from the published list
  /// (obsolete page, unlisted site).
  double omit_prob = 0.12;
  /// Published lists include interconnection-only PoPs.
  bool include_transit_only = true;
  /// Expected number of access-point entries listed per service PoP,
  /// scaled by the PoP's customer share (big metros list many).  Tuned so
  /// the reference lists average tens of entries per AS, like the paper's
  /// 43.7 reported PoPs per reference AS.
  double access_points_per_pop = 4.0;
  /// Access points scatter this far (km) around the PoP city.
  double access_point_radius_km = 35.0;
  std::uint64_t seed = 0x90f7;
};

/// Builds the reference dataset: the `count` largest state-/country-level
/// eyeball ASes (the paper found published lists for 45 of 672 searched),
/// each with a noise-perturbed published PoP list.
[[nodiscard]] std::vector<ReferenceEntry> build_reference_dataset(
    const topology::AsEcosystem& ecosystem, const gazetteer::Gazetteer& gazetteer,
    std::size_t count = 45, const PublicationNoise& noise = {});

/// The clean (noise-free) true service-PoP locations of an AS — used by
/// oracle tests.
[[nodiscard]] std::vector<geo::GeoPoint> true_service_pops(
    const topology::AutonomousSystem& as, const gazetteer::Gazetteer& gazetteer);

}  // namespace eyeball::validate
