#include "validate/reference.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace eyeball::validate {

std::vector<geo::GeoPoint> ReferenceEntry::locations() const {
  std::vector<geo::GeoPoint> out;
  out.reserve(pops.size());
  for (const auto& pop : pops) out.push_back(pop.location);
  return out;
}

std::vector<ReferenceEntry> build_reference_dataset(
    const topology::AsEcosystem& ecosystem, const gazetteer::Gazetteer& gazetteer,
    std::size_t count, const PublicationNoise& noise) {
  // Candidates: state- and country-level eyeballs, largest (by PoP count,
  // then customers) first — big ISPs are the ones that publish PoP pages.
  std::vector<const topology::AutonomousSystem*> candidates;
  for (const auto& as : ecosystem.ases()) {
    if (as.role != topology::AsRole::kEyeball) continue;
    if (as.level == topology::AsLevel::kState || as.level == topology::AsLevel::kCountry ||
        as.level == topology::AsLevel::kContinent) {
      candidates.push_back(&as);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto* a, const auto* b) {
              if (a->pops.size() != b->pops.size()) return a->pops.size() > b->pops.size();
              return a->customers > b->customers;
            });
  if (candidates.size() > count) candidates.resize(count);

  std::vector<ReferenceEntry> out;
  out.reserve(candidates.size());
  for (const auto* as : candidates) {
    util::Rng rng{util::mix64(noise.seed, net::value_of(as->asn))};
    ReferenceEntry entry;
    entry.asn = as->asn;
    for (const auto& pop : as->pops) {
      const auto& city = gazetteer.city(pop.city);
      if (pop.transit_only) {
        if (noise.include_transit_only) {
          entry.pops.push_back({city.location, pop.city, PublishedPop::Kind::kTransitOnly});
        }
        continue;
      }
      if (rng.bernoulli(noise.omit_prob)) continue;  // obsolete / unlisted
      entry.pops.push_back({city.location, pop.city, PublishedPop::Kind::kService});

      // Access points: aggregation sites around the metro that the ISP's
      // page lists alongside true PoPs.
      const double expected =
          noise.access_points_per_pop * std::min(1.0, pop.customer_share * 4.0);
      const std::uint64_t extras = rng.poisson(expected);
      for (std::uint64_t i = 0; i < extras; ++i) {
        const auto location =
            geo::destination(city.location, rng.uniform(0.0, 360.0),
                             rng.uniform(2.0, noise.access_point_radius_km));
        entry.pops.push_back({location, pop.city, PublishedPop::Kind::kAccessPoint});
      }
    }
    if (!entry.pops.empty()) out.push_back(std::move(entry));
  }
  return out;
}

std::vector<geo::GeoPoint> true_service_pops(const topology::AutonomousSystem& as,
                                             const gazetteer::Gazetteer& gazetteer) {
  std::vector<geo::GeoPoint> out;
  for (const auto& pop : as.pops) {
    if (!pop.transit_only) out.push_back(gazetteer.city(pop.city).location);
  }
  return out;
}

}  // namespace eyeball::validate
