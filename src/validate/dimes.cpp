#include "validate/dimes.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace eyeball::validate {

std::vector<DimesEntry> simulate_dimes(const topology::AsEcosystem& ecosystem,
                                       const gazetteer::Gazetteer& gazetteer,
                                       const DimesConfig& config) {
  std::vector<DimesEntry> out;
  for (const auto& as : ecosystem.ases()) {
    if (as.role != topology::AsRole::kEyeball) continue;
    util::Rng rng{util::mix64(config.seed, net::value_of(as.asn))};

    DimesEntry entry;
    entry.asn = as.asn;

    // Service PoPs sorted by customer share: discovery decays with rank.
    std::vector<const topology::PopSite*> service;
    for (const auto& pop : as.pops) {
      if (pop.transit_only) {
        if (rng.bernoulli(config.transit_pop_prob)) {
          entry.pops.push_back(gazetteer.city(pop.city).location);
        }
      } else {
        service.push_back(&pop);
      }
    }
    std::sort(service.begin(), service.end(), [](const auto* a, const auto* b) {
      return a->customer_share > b->customer_share;
    });
    double probability = config.top_pop_prob;
    for (const auto* pop : service) {
      if (rng.bernoulli(probability)) {
        entry.pops.push_back(gazetteer.city(pop->city).location);
      }
      probability *= config.rank_decay;
    }
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace eyeball::validate
