#include "validate/report.hpp"

namespace eyeball::validate {

ValidationReport validate_against_reference(const core::EyeballPipeline& pipeline,
                                            const core::TargetDataset& dataset,
                                            const std::vector<ReferenceEntry>& reference,
                                            const std::vector<double>& bandwidths,
                                            double match_radius_km) {
  ValidationReport report;

  // Reference ASes that survived dataset conditioning.
  std::vector<const ReferenceEntry*> usable;
  std::size_t reference_pop_total = 0;
  for (const auto& entry : reference) {
    if (dataset.find(entry.asn) != nullptr) {
      usable.push_back(&entry);
      reference_pop_total += entry.pops.size();
    }
  }
  report.reference_as_count = usable.size();
  report.avg_reference_pops_per_as =
      usable.empty() ? 0.0
                     : static_cast<double>(reference_pop_total) /
                           static_cast<double>(usable.size());

  for (const double bandwidth : bandwidths) {
    BandwidthValidation sweep;
    sweep.bandwidth_km = bandwidth;
    std::size_t inferred_pop_total = 0;
    std::size_t perfect = 0;
    for (const auto* entry : usable) {
      const auto* peers = dataset.find(entry->asn);
      const auto pops = pipeline.pop_footprint(*peers, bandwidth);
      const auto inferred = pops.pop_locations(pipeline.gazetteer());
      inferred_pop_total += inferred.size();

      const auto stats = match_pops(entry->locations(), inferred, match_radius_km);
      sweep.reference_recall.push_back(stats.reference_recall());
      sweep.candidate_precision.push_back(stats.candidate_precision());
      if (stats.perfect_precision()) ++perfect;
    }
    sweep.as_count = usable.size();
    sweep.avg_pops_per_as =
        usable.empty() ? 0.0
                       : static_cast<double>(inferred_pop_total) /
                             static_cast<double>(usable.size());
    sweep.perfect_precision_fraction =
        usable.empty() ? 0.0
                       : static_cast<double>(perfect) / static_cast<double>(usable.size());
    report.sweeps.push_back(std::move(sweep));
  }
  return report;
}

DimesComparison compare_with_dimes(const core::EyeballPipeline& pipeline,
                                   const core::TargetDataset& dataset,
                                   const std::vector<DimesEntry>& dimes,
                                   double bandwidth_km, double match_radius_km) {
  DimesComparison out;
  std::size_t kde_total = 0;
  std::size_t dimes_total = 0;
  std::size_t supersets = 0;
  for (const auto& entry : dimes) {
    if (entry.pops.empty()) continue;  // AS invisible to traceroute
    const auto* peers = dataset.find(entry.asn);
    if (peers == nullptr) continue;  // AS not in our conditioned dataset
    ++out.common_as_count;
    const auto pops = pipeline.pop_footprint(*peers, bandwidth_km);
    const auto inferred = pops.pop_locations(pipeline.gazetteer());
    kde_total += inferred.size();
    dimes_total += entry.pops.size();
    const auto stats = match_pops(entry.pops, inferred, match_radius_km);
    if (stats.covers_reference()) ++supersets;
  }
  if (out.common_as_count > 0) {
    out.kde_avg_pops = static_cast<double>(kde_total) /
                       static_cast<double>(out.common_as_count);
    out.dimes_avg_pops = static_cast<double>(dimes_total) /
                         static_cast<double>(out.common_as_count);
    out.superset_fraction = static_cast<double>(supersets) /
                            static_cast<double>(out.common_as_count);
  }
  return out;
}

}  // namespace eyeball::validate
