// Published PoP pages: generation and scraping.
//
// The paper's reference dataset came from manually scraping ISP web pages,
// noting that "many ISPs do not post this information online or do not use
// a consistent terminology or approach for listing these PoPs".  This
// module closes that loop: it renders a ReferenceEntry into one of several
// page formats an ISP might use, and provides a tolerant scraper that
// parses any of them back into PoP locations — so the reference pipeline
// can be exercised end-to-end through its textual form.
//
// Formats:
//   kBulletList   "* Milan (45.46, 9.19) - core PoP"
//   kTable        "| Milan | Lombardy | 45.4642 | 9.1900 |"
//   kProse        "Our network is present in Milan (45.46N 9.19E), ..."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "validate/reference.hpp"

namespace eyeball::validate {

enum class PageFormat : std::uint8_t {
  kBulletList,
  kTable,
  kProse,
};

/// Renders the published PoP list of one AS as a web page body in the given
/// format.  Deterministic.
[[nodiscard]] std::string render_pop_page(const ReferenceEntry& entry,
                                          const gazetteer::Gazetteer& gazetteer,
                                          PageFormat format);

struct ScrapedPop {
  std::string city_name;
  geo::GeoPoint location;
};

/// Tolerant scraper: detects the format and extracts (name, coordinates)
/// pairs.  Unparseable lines are skipped (never throws on page content);
/// returns nullopt only when the text contains no recognizable PoP at all.
[[nodiscard]] std::optional<std::vector<ScrapedPop>> scrape_pop_page(std::string_view page);

/// Round-trip helper: renders and re-scrapes every entry, returning the
/// scraped locations per AS (used to feed the validation harness through
/// the textual channel).
[[nodiscard]] std::vector<std::vector<geo::GeoPoint>> scrape_reference_dataset(
    const std::vector<ReferenceEntry>& reference, const gazetteer::Gazetteer& gazetteer);

}  // namespace eyeball::validate
