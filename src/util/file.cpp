#include "util/file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

// This translation unit is the checked I/O layer: the only place in the
// library where raw fwrite/fread/rename/fsync may appear (the unchecked-io
// lint exempts src/util/file.*).  Every raw call here is wrapped so its
// result becomes a Status.

namespace eyeball::util {

namespace {

namespace stdfs = std::filesystem;

[[nodiscard]] std::string errno_message(const char* op, const std::string& path) {
  std::string out{op};
  out += " '";
  out += path;
  out += "': ";
  out += std::strerror(errno);
  return out;
}

[[nodiscard]] Status errno_status(const char* op, const std::string& path) {
  if (errno == ENOENT) return Status::not_found(errno_message(op, path));
  return Status::io_error(errno_message(op, path));
}

class LocalWritableFile final : public WritableFile {
 public:
  LocalWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~LocalWritableFile() override {
    if (file_ != nullptr) {
      // Error path abandoning the handle; the data is about to be discarded,
      // so a failed close has nothing further to report.
      static_cast<void>(std::fclose(file_));
    }
  }

  Status append(std::span<const std::byte> data) override {
    if (file_ == nullptr) return Status::io_error("append on closed file");
    if (data.empty()) return Status{};
    const std::size_t written =
        std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) return errno_status("write", path_);
    return Status{};
  }

  Status sync() override {
    if (file_ == nullptr) return Status::io_error("sync on closed file");
    if (std::fflush(file_) != 0) return errno_status("flush", path_);
    if (::fsync(::fileno(file_)) != 0) return errno_status("fsync", path_);
    return Status{};
  }

  Status close() override {
    if (file_ == nullptr) return Status{};  // idempotent
    std::FILE* file = std::exchange(file_, nullptr);
    if (std::fclose(file) != 0) return errno_status("close", path_);
    return Status{};
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class LocalFileSystem final : public FileSystem {
 public:
  Status open_for_write(const std::string& path,
                        std::unique_ptr<WritableFile>& out) override {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (file == nullptr) return errno_status("open", path);
    out = std::make_unique<LocalWritableFile>(file, path);
    return Status{};
  }

  Status read_file(const std::string& path,
                   std::vector<std::byte>& out) override {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) return errno_status("open", path);
    out.clear();
    std::array<std::byte, 1 << 16> chunk;
    for (;;) {
      const std::size_t got = std::fread(chunk.data(), 1, chunk.size(), file);
      out.insert(out.end(), chunk.begin(), chunk.begin() + static_cast<std::ptrdiff_t>(got));
      if (got < chunk.size()) {
        if (std::ferror(file) != 0) {
          const Status status = errno_status("read", path);
          static_cast<void>(std::fclose(file));
          return status;
        }
        break;  // clean EOF
      }
    }
    if (std::fclose(file) != 0) return errno_status("close", path);
    return Status{};
  }

  Status rename_file(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return errno_status("rename", from);
    }
    return Status{};
  }

  Status remove_file(const std::string& path) override {
    if (std::remove(path.c_str()) != 0) return errno_status("remove", path);
    return Status{};
  }

  Status sync_dir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return errno_status("open dir", path);
    if (::fsync(fd) != 0) {
      const Status status = errno_status("fsync dir", path);
      static_cast<void>(::close(fd));
      return status;
    }
    if (::close(fd) != 0) return errno_status("close dir", path);
    return Status{};
  }

  Status create_directories(const std::string& path) override {
    std::error_code ec;
    stdfs::create_directories(stdfs::path{path}, ec);
    if (ec) {
      return Status::io_error("create_directories '" + path + "': " + ec.message());
    }
    return Status{};
  }

  Status map_read_only(const std::string& path, MappedFile& out) override {
    return map_file_read_only(path, out);
  }

  Status list_dir(const std::string& path,
                  std::vector<std::string>& names) override {
    names.clear();
    std::error_code ec;
    stdfs::directory_iterator it{stdfs::path{path}, ec};
    if (ec) {
      if (ec == std::errc::no_such_file_or_directory) {
        return Status::not_found("list_dir '" + path + "': " + ec.message());
      }
      return Status::io_error("list_dir '" + path + "': " + ec.message());
    }
    for (const stdfs::directory_entry& entry : it) {
      std::error_code type_ec;
      if (entry.is_regular_file(type_ec) && !type_ec) {
        names.push_back(entry.path().filename().string());
      }
    }
    std::sort(names.begin(), names.end());
    return Status{};
  }
};

/// Applies one FileFault to the byte stream appended through it.  `offset`
/// is the logical position in the concatenation of all append() payloads.
class FaultInjectingWritableFile final : public WritableFile {
 public:
  FaultInjectingWritableFile(std::unique_ptr<WritableFile> base,
                             FileFault fault, bool* fired)
      : base_(std::move(base)), fault_(fault), fired_(fired) {}

  Status append(std::span<const std::byte> data) override {
    if (dead_) return Status::io_error("injected: file dead after short write");
    const std::uint64_t begin = offset_;
    const std::uint64_t end = begin + data.size();
    offset_ = end;

    switch (fault_.kind) {
      case FileFault::Kind::kShortWrite:
        if (end > fault_.offset) {
          // Persist the prefix that "made it", then report failure.
          const auto keep = static_cast<std::size_t>(
              fault_.offset > begin ? fault_.offset - begin : 0);
          if (keep > 0) {
            const Status status = base_->append(data.first(keep));
            if (!status.ok()) return status;
          }
          *fired_ = true;
          dead_ = true;
          return Status::io_error("injected short write");
        }
        break;
      case FileFault::Kind::kBitFlip:
        if (fault_.offset >= begin && fault_.offset < end) {
          std::vector<std::byte> copy{data.begin(), data.end()};
          const auto at = static_cast<std::size_t>(fault_.offset - begin);
          copy[at] ^= static_cast<std::byte>(1U << (fault_.bit & 7U));
          *fired_ = true;
          return base_->append(copy);  // silent: success reported
        }
        break;
      case FileFault::Kind::kTruncate:
        if (silent_drop_) return Status{};  // tail silently discarded
        if (end > fault_.offset) {
          const auto keep = static_cast<std::size_t>(
              fault_.offset > begin ? fault_.offset - begin : 0);
          *fired_ = true;
          silent_drop_ = true;
          if (keep > 0) return base_->append(data.first(keep));
          return Status{};  // silent: success reported
        }
        break;
      case FileFault::Kind::kNoSpace:
        if (device_full_ || end > fault_.offset) {
          // The prefix that fit persists once; after that the device stays
          // full — every further append re-fails with the SAME typed error
          // (what a retrying writer sees from a genuinely full disk).
          if (!device_full_) {
            const auto keep = static_cast<std::size_t>(
                fault_.offset > begin ? fault_.offset - begin : 0);
            if (keep > 0) {
              const Status status = base_->append(data.first(keep));
              if (!status.ok()) return status;
            }
            device_full_ = true;
          }
          *fired_ = true;
          return Status::io_error("injected: no space left on device");
        }
        break;
      case FileFault::Kind::kFailedSync:
      case FileFault::Kind::kNone:
        break;
    }
    return base_->append(data);
  }

  Status sync() override {
    if (dead_) return Status::io_error("injected: file dead after short write");
    if (fault_.kind == FileFault::Kind::kFailedSync) {
      // The data reached the kernel; only the durability guarantee is lost.
      static_cast<void>(base_->sync());
      *fired_ = true;
      return Status::io_error("injected fsync failure");
    }
    return base_->sync();
  }

  Status close() override { return base_->close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FileFault fault_;
  bool* fired_;
  std::uint64_t offset_ = 0;
  bool dead_ = false;
  bool silent_drop_ = false;
  bool device_full_ = false;
};

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    mapped_ = std::exchange(other.mapped_, nullptr);
    size_ = std::exchange(other.size_, 0);
    owned_ = std::move(other.owned_);
    other.owned_.clear();
  }
  return *this;
}

void MappedFile::reset() noexcept {
  if (mapped_ != nullptr) {
    // Teardown of a read-only private mapping cannot meaningfully fail in a
    // way the caller could act on; mirror fclose-on-error-path handling.
    static_cast<void>(::munmap(mapped_, size_));
  }
  mapped_ = nullptr;
  size_ = 0;
  owned_.clear();
}

Status map_file_read_only(const std::string& path, MappedFile& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_status("open", path);
  struct ::stat info{};
  if (::fstat(fd, &info) != 0) {
    const Status status = errno_status("stat", path);
    static_cast<void>(::close(fd));
    return status;
  }
  const auto size = static_cast<std::size_t>(info.st_size);
  MappedFile file;
  if (size > 0) {
    // MAP_PRIVATE read-only: this view must never observe or cause writes;
    // page-cache pages stay shared with every other mapper of the file.
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = errno_status("mmap", path);
      static_cast<void>(::close(fd));
      return status;
    }
    file.mapped_ = addr;
    file.size_ = size;
  }
  // The mapping outlives the descriptor (POSIX: munmap, not close, ends it).
  if (::close(fd) != 0) return errno_status("close", path);
  out = std::move(file);
  return Status{};
}

Status FileSystem::map_read_only(const std::string& path, MappedFile& out) {
  std::vector<std::byte> buffer;
  if (Status status = read_file(path, buffer); !status.ok()) return status;
  out = MappedFile::from_buffer(std::move(buffer));
  return Status{};
}

FileSystem& local_filesystem() {
  static LocalFileSystem fs;
  return fs;
}

Status atomic_write_file(FileSystem& fs, const std::string& path,
                         std::span<const std::byte> bytes) {
  if (path.empty()) return Status::invalid_argument("empty path");
  const std::string tmp = path + ".tmp";

  // Reclaim a stale tmp from a previous crashed or fault-interrupted
  // writer.  open_for_write truncates, so the stale bytes could not leak
  // into THIS write anyway — the reclaim matters for the failure paths: if
  // the open below is refused (transient error, permissions), the poisoned
  // tmp must not linger where a later inspection — or a rename issued by
  // anything else — could mistake it for this writer's output.  A missing
  // tmp is the normal case; a refused removal is neutralized by the
  // truncating open anyway, so neither outcome is worth reporting.
  static_cast<void>(fs.remove_file(tmp));

  std::unique_ptr<WritableFile> file;
  Status status = fs.open_for_write(tmp, file);
  if (!status.ok()) return status;

  status = file->append(bytes);
  if (status.ok()) status = file->sync();
  if (status.ok()) status = file->close();
  if (!status.ok()) {
    static_cast<void>(file->close());
    static_cast<void>(fs.remove_file(tmp));
    return status;
  }

  status = fs.rename_file(tmp, path);
  if (!status.ok()) {
    static_cast<void>(fs.remove_file(tmp));
    return status;
  }

  // Make the rename itself durable: fsync the containing directory.
  const stdfs::path parent = stdfs::path{path}.parent_path();
  return fs.sync_dir(parent.empty() ? std::string{"."} : parent.string());
}

std::string_view to_string(FileFault::Kind kind) noexcept {
  switch (kind) {
    case FileFault::Kind::kNone:
      return "none";
    case FileFault::Kind::kShortWrite:
      return "short-write";
    case FileFault::Kind::kFailedSync:
      return "failed-fsync";
    case FileFault::Kind::kBitFlip:
      return "bit-flip";
    case FileFault::Kind::kTruncate:
      return "truncate";
    case FileFault::Kind::kNoSpace:
      return "no-space";
  }
  return "unknown";
}

Status quarantine_file(FileSystem& fs, const std::string& path, const Status& why) {
  if (path.empty()) return Status::invalid_argument("quarantine_file: empty path");
  const std::string aside = path + std::string{kQuarantineSuffix};
  if (Status status = fs.rename_file(path, aside); !status.ok()) {
    return status.with_context("quarantine_file");
  }
  // The evidence is safe; now record WHY it was condemned.  Best-effort:
  // the sidecar is context for a human post-mortem, and a failure to write
  // it must not turn a successful quarantine into a reported failure.
  const std::string reason = why.to_string() + "\n";
  std::vector<std::byte> bytes(reason.size());
  std::memcpy(bytes.data(), reason.data(), reason.size());
  static_cast<void>(atomic_write_file(fs, aside + ".reason", bytes));
  return Status{};
}

Status FaultInjectingFileSystem::open_for_write(
    const std::string& path, std::unique_ptr<WritableFile>& out) {
  if (transient_open_failures_ > 0) {
    --transient_open_failures_;
    fault_fired_ = true;
    return Status::io_error("injected transient open failure");
  }
  std::unique_ptr<WritableFile> base_file;
  const Status status = base_.open_for_write(path, base_file);
  if (!status.ok()) return status;
  if (armed_.kind == FileFault::Kind::kNone) {
    out = std::move(base_file);
    return Status{};
  }
  const FileFault fault = std::exchange(armed_, FileFault{});
  out = std::make_unique<FaultInjectingWritableFile>(std::move(base_file),
                                                     fault, &fault_fired_);
  return Status{};
}

Status FaultInjectingFileSystem::read_file(const std::string& path,
                                           std::vector<std::byte>& out) {
  return base_.read_file(path, out);
}

Status FaultInjectingFileSystem::rename_file(const std::string& from,
                                             const std::string& to) {
  if (fail_rename_) {
    fail_rename_ = false;
    fault_fired_ = true;
    if (keep_tmp_on_failed_rename_) {
      // Shield the source file from the caller's best-effort cleanup so it
      // survives as on-disk debris (see fail_next_rename_leaving_tmp).
      keep_tmp_on_failed_rename_ = false;
      protected_tmp_ = from;
    }
    return Status::io_error("injected rename failure");
  }
  if (transient_rename_failures_ > 0) {
    --transient_rename_failures_;
    fault_fired_ = true;
    return Status::io_error("injected transient rename failure");
  }
  return base_.rename_file(from, to);
}

Status FaultInjectingFileSystem::remove_file(const std::string& path) {
  if (!protected_tmp_.empty() && path == protected_tmp_) {
    protected_tmp_.clear();
    return Status::io_error("injected remove failure (tmp left behind)");
  }
  return base_.remove_file(path);
}

Status FaultInjectingFileSystem::sync_dir(const std::string& path) {
  return base_.sync_dir(path);
}

Status FaultInjectingFileSystem::create_directories(const std::string& path) {
  return base_.create_directories(path);
}

Status FaultInjectingFileSystem::list_dir(const std::string& path,
                                          std::vector<std::string>& names) {
  return base_.list_dir(path, names);
}

Status FaultInjectingFileSystem::map_read_only(const std::string& path,
                                               MappedFile& out) {
  return base_.map_read_only(path, out);
}

}  // namespace eyeball::util
