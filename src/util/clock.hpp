// util::Clock — the time seam for operational resilience code.
//
// Retry/backoff policies need two things from time: a monotonic "now" and a
// way to wait.  Calling std::this_thread::sleep_for directly would make
// every retry schedule untestable (a 3-attempt exponential backoff is
// seconds of wall time) and non-deterministic (the chaos harness must
// replay byte-identical schedules across runs).  Clock virtualizes both:
// production code takes a Clock& and the tests hand it a FakeClock whose
// time advances only when something sleeps — the recorded sleep log IS the
// backoff schedule, comparable bit-for-bit across runs and seeds.
//
// This is deliberately NOT a wall-clock API: there is no epoch, no
// calendar, no time zone.  Durations are all the resilience layer needs,
// and a monotonic source is immune to NTP steps mid-backoff.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace eyeball::util {

/// Monotonic time + waiting, as an injectable seam.  Implementations must
/// be safe to share across threads.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary fixed origin; never decreases.
  [[nodiscard]] virtual std::chrono::nanoseconds now() = 0;

  /// Blocks the calling thread for (at least) `duration`.  Non-positive
  /// durations return immediately.
  virtual void sleep_for(std::chrono::nanoseconds duration) = 0;
};

/// The process-wide steady_clock-backed Clock (real sleeps).
[[nodiscard]] Clock& monotonic_clock();

/// A deterministic Clock for tests: time starts at zero and advances ONLY
/// via sleep_for/advance, so a retry schedule driven by it is a pure
/// function of the code under test.  Every sleep is recorded in order —
/// `sleeps()` is the backoff schedule, byte-comparable across runs.
///
/// Thread-safe (the chaos harness shares one across writer and checker).
class FakeClock final : public Clock {
 public:
  [[nodiscard]] std::chrono::nanoseconds now() override {
    const MutexLock guard{mutex_};
    return now_;
  }

  void sleep_for(std::chrono::nanoseconds duration) override {
    if (duration <= std::chrono::nanoseconds::zero()) return;
    const MutexLock guard{mutex_};
    now_ += duration;
    sleeps_.push_back(duration);
  }

  /// Moves time forward without recording a sleep (models external delay).
  void advance(std::chrono::nanoseconds duration) {
    const MutexLock guard{mutex_};
    if (duration > std::chrono::nanoseconds::zero()) now_ += duration;
  }

  /// Every sleep_for duration observed, in call order — the reproducible
  /// backoff schedule the chaos harness asserts on.
  [[nodiscard]] std::vector<std::chrono::nanoseconds> sleeps() const {
    const MutexLock guard{mutex_};
    return sleeps_;
  }

  /// Clears the recorded schedule (time keeps its current value).
  void clear_sleeps() {
    const MutexLock guard{mutex_};
    sleeps_.clear();
  }

 private:
  mutable Mutex mutex_;
  std::chrono::nanoseconds now_ EYEBALL_GUARDED_BY(mutex_){0};
  std::vector<std::chrono::nanoseconds> sleeps_ EYEBALL_GUARDED_BY(mutex_);
};

}  // namespace eyeball::util
