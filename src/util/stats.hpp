// Summary statistics and empirical distributions used by the evaluation
// harness (CDFs in Figure 2, percentile-based geo-error rules in §3.1).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace eyeball::util {

/// Streaming accumulator for mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `q` in [0, 100].  Throws std::invalid_argument on empty input.
[[nodiscard]] double percentile(std::span<const double> values, double q);

/// Same statistic, but sorts `values` in place instead of copying —
/// the allocation-free variant for hot loops that already own a scratch
/// buffer (the dataset build's per-AS p90 filter).  Returns exactly what
/// `percentile` returns on the same sample.
[[nodiscard]] double percentile_in_place(std::span<double> values, double q);

[[nodiscard]] double mean(std::span<const double> values);
[[nodiscard]] double median(std::span<const double> values);

/// Empirical CDF over a finite sample.  Supports evaluation at arbitrary x
/// and extraction of evenly spaced (x, F(x)) points for plotting/printing.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> values);

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const noexcept;
  /// Inverse CDF (quantile), q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const noexcept { return sorted_; }

  struct Point {
    double x;
    double cumulative_fraction;
  };
  /// Evenly spaced CDF trace over [lo, hi] with `steps` points.
  [[nodiscard]] std::vector<Point> trace(double lo, double hi, std::size_t steps) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi).  Out-of-range samples are counted
/// in dedicated underflow/overflow tallies rather than being folded into
/// the edge bins (which would inflate the tails of the validation CDFs).
/// Used by density diagnostics and the bias ablation.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  [[nodiscard]] double count(std::size_t bin) const;
  /// Everything ever added, including out-of-range weight.
  [[nodiscard]] double total() const noexcept { return total_; }
  /// Weight of samples below lo (NaN counts here too — it fits no bin).
  [[nodiscard]] double underflow() const noexcept { return underflow_; }
  /// Weight of samples at or above hi.
  [[nodiscard]] double overflow() const noexcept { return overflow_; }
  /// Weight that actually landed in a bin.
  [[nodiscard]] double in_range() const noexcept {
    return total_ - underflow_ - overflow_;
  }

 private:
  double lo_;
  double hi_;
  double width_ = 0.0;
  double total_ = 0.0;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  std::vector<double> counts_;
};

}  // namespace eyeball::util
