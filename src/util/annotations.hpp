// Clang thread-safety (capability) annotations — the compile-time half of
// the repo's concurrency contract.
//
// Every locking and ownership rule in this tree ("single-writer ingest",
// "immutable published epochs", "per-shard private arenas") used to live in
// DESIGN.md prose and in TSan runs that exercise one schedule.  These macros
// let the code state the same rules in a form Clang's -Wthread-safety
// analysis can check on EVERY schedule, at compile time:
//
//   * a type that serializes access declares itself a capability
//     (EYEBALL_CAPABILITY — see util::Mutex / util::Serial in mutex.hpp),
//   * data names the capability that guards it (EYEBALL_GUARDED_BY),
//   * functions name the capabilities they need (EYEBALL_REQUIRES), take
//     (EYEBALL_ACQUIRE), give up (EYEBALL_RELEASE), or must not hold
//     (EYEBALL_EXCLUDES).
//
// The `EYEBALL_THREAD_SAFETY=ON` CMake mode turns violations into build
// errors (-Werror=thread-safety-analysis); tools/check.sh runs it as the
// `thread-safety` stage whenever clang++ is installed.  Off Clang every
// macro expands to nothing, so GCC builds are unaffected.
//
// See DESIGN.md §9 for the capability map: which capability guards what,
// and which functions require or exclude it.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define EYEBALL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EYEBALL_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (a lock, or a phantom role such as
/// "the single writer").  `x` names it in diagnostics, e.g. "mutex".
#define EYEBALL_CAPABILITY(x) EYEBALL_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class whose constructor acquires and destructor
/// releases a capability (util::MutexLock, util::SerialSection).
#define EYEBALL_SCOPED_CAPABILITY EYEBALL_THREAD_ANNOTATION(scoped_lockable)

/// Data member: may only be touched while holding `x`.
#define EYEBALL_GUARDED_BY(x) EYEBALL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointed-to data may only be touched while holding
/// `x` (the pointer itself is unguarded).
#define EYEBALL_PT_GUARDED_BY(x) EYEBALL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function: callable only while holding every listed capability
/// exclusively (shared-ly for the _SHARED form).
#define EYEBALL_REQUIRES(...) \
  EYEBALL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EYEBALL_REQUIRES_SHARED(...) \
  EYEBALL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function: acquires the listed capabilities (exclusively / shared-ly) and
/// holds them on return.
#define EYEBALL_ACQUIRE(...) \
  EYEBALL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define EYEBALL_ACQUIRE_SHARED(...) \
  EYEBALL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function: releases the listed capabilities (the bare form releases
/// whatever mode was held — the right spelling for scoped-lock destructors).
#define EYEBALL_RELEASE(...) \
  EYEBALL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define EYEBALL_RELEASE_SHARED(...) \
  EYEBALL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function: attempts acquisition; holds the capability iff it returned
/// `result` (usually `true`).
#define EYEBALL_TRY_ACQUIRE(...) \
  EYEBALL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function: must be entered with the listed capabilities NOT held
/// (deadlock guard for self-locking public entry points).
#define EYEBALL_EXCLUDES(...) EYEBALL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function: returns a reference to the capability guarding its class, so
/// callers can lock through an accessor.
#define EYEBALL_RETURN_CAPABILITY(x) EYEBALL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's body is not analyzed.  Reserve it for code
/// that is correct for reasons the analysis cannot see (e.g. the snapshot
/// codec, whose caller owns the builder exclusively by documented contract)
/// and say why at the use site.
#define EYEBALL_NO_THREAD_SAFETY_ANALYSIS \
  EYEBALL_THREAD_ANNOTATION(no_thread_safety_analysis)
