// Capability-annotated synchronization wrappers.
//
// The standard library's lock types carry no thread-safety attributes, so
// Clang's analysis cannot reason about them.  These thin wrappers add the
// annotations (and nothing else): each holds exactly one std:: primitive,
// every method is a single forwarded call, and off Clang the attributes
// vanish so the wrappers compile to the std:: types they wrap.
//
// Two kinds of capability live here:
//
//   * Real locks — Mutex / SharedMutex with their scoped guards.  Use these
//     wherever a std::mutex / std::shared_mutex would go; the analysis then
//     enforces every EYEBALL_GUARDED_BY on data they protect.
//   * The phantom `Serial` capability — zero state, no-op acquire/release.
//     It encodes a ROLE ("the single writer", "the owning shard") rather
//     than a lock: data guarded by a Serial can only be touched from
//     functions that opened a SerialSection or are marked
//     EYEBALL_REQUIRES on it.  The compiler enforces the single-writer
//     discipline while the optimizer deletes the section entirely, so hot
//     paths (per-shard memos, ingest) pay nothing.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/annotations.hpp"

namespace eyeball::util {

/// A std::mutex that the thread-safety analysis understands.
class EYEBALL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() EYEBALL_ACQUIRE() { raw_.lock(); }
  void unlock() EYEBALL_RELEASE() { raw_.unlock(); }

  /// The wrapped primitive, for interop that needs the std:: type itself.
  [[nodiscard]] std::mutex& native() { return raw_; }

 private:
  std::mutex raw_;
};

/// A std::shared_mutex that the analysis understands: exclusive for
/// writers, shared for readers.
class EYEBALL_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() EYEBALL_ACQUIRE() { raw_.lock(); }
  void unlock() EYEBALL_RELEASE() { raw_.unlock(); }
  void lock_shared() EYEBALL_ACQUIRE_SHARED() { raw_.lock_shared(); }
  void unlock_shared() EYEBALL_RELEASE_SHARED() { raw_.unlock_shared(); }

 private:
  std::shared_mutex raw_;
};

/// Scoped exclusive lock over Mutex (the std::lock_guard shape).  Also
/// satisfies Cpp17BasicLockable, so it can be handed to
/// std::condition_variable_any::wait — the lock()/unlock() the wait
/// performs internally are re-entries the analysis cannot see, hence the
/// escape hatch on those two methods only.
class EYEBALL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) EYEBALL_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() EYEBALL_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable for condition_variable_any.  From the analysis's point of
  // view the capability is held for the whole scope; the wait's transient
  // release/reacquire is invisible, which is exactly the contract a
  // condition wait gives the caller anyway (the predicate is rechecked
  // under the lock).
  void lock() EYEBALL_NO_THREAD_SAFETY_ANALYSIS { mutex_.lock(); }
  void unlock() EYEBALL_NO_THREAD_SAFETY_ANALYSIS { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

/// Scoped shared (reader) lock over SharedMutex.
class EYEBALL_SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex& mutex) EYEBALL_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared();
  }
  ~SharedReaderLock() EYEBALL_RELEASE() { mutex_.unlock_shared(); }
  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// Scoped exclusive (writer) lock over SharedMutex.
class EYEBALL_SCOPED_CAPABILITY SharedWriterLock {
 public:
  explicit SharedWriterLock(SharedMutex& mutex) EYEBALL_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~SharedWriterLock() EYEBALL_RELEASE() { mutex_.unlock(); }
  SharedWriterLock(const SharedWriterLock&) = delete;
  SharedWriterLock& operator=(const SharedWriterLock&) = delete;

 private:
  SharedMutex& mutex_;
};

/// A phantom capability: a role, not a lock.  Acquire/release are no-ops
/// that the optimizer deletes; the value is purely what the analysis
/// enforces — data marked EYEBALL_GUARDED_BY(serial) is only reachable
/// from code that holds the role via SerialSection or EYEBALL_REQUIRES.
///
/// This is how the tree encodes "externally synchronized": the builder's
/// ingest state, the service's writer path and each shard's LookupMemo are
/// guarded by a Serial, so a refactor that reaches that state from an
/// unmarked code path (say, a reader-side query touching builder state)
/// fails the EYEBALL_THREAD_SAFETY build instead of becoming a data race.
class EYEBALL_CAPABILITY("role") Serial {
 public:
  Serial() = default;
  // Copy/move are allowed (unlike a real lock): a Serial carries no state,
  // and the copy is simply the new object's own role — this keeps types
  // that embed one (e.g. LookupMemo, stored in vectors) copyable.
  Serial(const Serial&) = default;
  Serial& operator=(const Serial&) = default;

  void acquire() EYEBALL_ACQUIRE() {}
  void release() EYEBALL_RELEASE() {}
};

/// Scoped claim of a Serial role.  Compiles to nothing; exists so the
/// analysis can see where the role is held.
class EYEBALL_SCOPED_CAPABILITY SerialSection {
 public:
  explicit SerialSection(Serial& serial) EYEBALL_ACQUIRE(serial)
      : serial_(serial) {
    serial_.acquire();
  }
  ~SerialSection() EYEBALL_RELEASE() { serial_.release(); }
  SerialSection(const SerialSection&) = delete;
  SerialSection& operator=(const SerialSection&) = delete;

 private:
  Serial& serial_;
};

}  // namespace eyeball::util
