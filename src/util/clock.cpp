#include "util/clock.hpp"

#include <thread>

namespace eyeball::util {

namespace {

class MonotonicClock final : public Clock {
 public:
  [[nodiscard]] std::chrono::nanoseconds now() override {
    return std::chrono::steady_clock::now().time_since_epoch();
  }

  void sleep_for(std::chrono::nanoseconds duration) override {
    if (duration <= std::chrono::nanoseconds::zero()) return;
    std::this_thread::sleep_for(duration);
  }
};

}  // namespace

Clock& monotonic_clock() {
  static MonotonicClock clock;
  return clock;
}

}  // namespace eyeball::util
