// Fixed-size worker pool for the per-AS and per-row fan-out in the hot
// paths (pipeline analysis, KDE convolution passes).
//
// Deliberately simple — no work stealing, no task priorities: a mutex-
// protected queue, `submit` returning a std::future, a blocking
// `parallel_for` that splits an index range into contiguous chunks, and a
// `parallel_map_reduce` that additionally gives each chunk a private state
// and folds the states back in chunk order (the shard-then-merge shape the
// dataset build uses).  Each chunk writes disjoint output and the chunk
// boundaries depend only on the range and the requested concurrency, so
// parallel results are bit-identical to the serial ones as long as each
// index's computation is independent.
//
// Nesting: a `parallel_for` issued from inside a worker thread runs inline
// on that worker (no re-submission), which both avoids deadlocking a pool
// that is already saturated with the outer loop's chunks and keeps the
// outer fan-out the only level of parallelism.
#pragma once

#include <condition_variable>
#include <cstddef>

#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/mutex.hpp"
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

namespace eyeball::util {

class ThreadPool {
 public:
  /// `worker_count` == 0 means one worker per hardware thread.
  explicit ThreadPool(std::size_t worker_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// Enqueues `task` and returns a future for its result.  Exceptions thrown
  /// by the task surface from future::get().
  template <typename F>
  [[nodiscard]] auto submit(F&& task) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using Result = std::invoke_result_t<std::decay_t<F>>;
    auto packaged =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    enqueue([packaged] { (*packaged)(); });
    return future;
  }

  /// Runs `body(chunk_begin, chunk_end)` over [begin, end) split into at most
  /// `max_concurrency` contiguous chunks (0 = one per worker), blocking until
  /// every chunk finished.  Runs inline when the effective concurrency is 1,
  /// the range is empty, or the caller is itself a pool worker.  The first
  /// exception thrown by any chunk is rethrown.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t max_concurrency = 0);

  /// Map/reduce over [begin, end): the range is split into the same
  /// deterministic contiguous chunks as `parallel_for`, each chunk runs
  /// `map(chunk_lo, chunk_hi)` on the pool into a private `State` (no shared
  /// mutable data), and the caller then folds the states with
  /// `reduce(state)` strictly in chunk order.  Because chunks are contiguous
  /// and reduction is ordered, any reduce that concatenates or accumulates
  /// per-index results reproduces the serial left-to-right fold exactly, at
  /// any concurrency.  Runs inline (one chunk) when the effective
  /// concurrency is 1, the range is empty, or the caller is a pool worker.
  /// The first exception thrown by a map chunk is rethrown after all chunks
  /// finished; reduce runs on the calling thread only.
  template <typename Map, typename Reduce>
  void parallel_map_reduce(std::size_t begin, std::size_t end, const Map& map,
                           const Reduce& reduce, std::size_t max_concurrency = 0) {
    using State = std::invoke_result_t<const Map&, std::size_t, std::size_t>;
    if (begin >= end) return;
    const std::size_t count = end - begin;
    // Same machine-independent chunking rule as parallel_for: the requested
    // concurrency alone (clamped by the range) decides the chunk boundaries,
    // so the reduce sees identical shard slices on any pool size.
    std::size_t ways = max_concurrency == 0 ? worker_count() : max_concurrency;
    ways = std::min(ways, count);
    if (ways <= 1 || on_worker_thread()) {
      reduce(map(begin, end));
      return;
    }

    const std::size_t chunk = (count + ways - 1) / ways;
    EYEBALL_DCHECK(chunk > 0, "map/reduce chunking degenerated to empty shards");
    std::vector<std::future<State>> futures;
    futures.reserve(ways);
    [[maybe_unused]] std::size_t previous_hi = begin;
    for (std::size_t w = 0; w < ways; ++w) {
      const std::size_t lo = begin + w * chunk;
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + chunk);
      // The ordered reduce below is only byte-identical to the serial fold
      // if shards tile [begin, end) contiguously, in order, with no overlap.
      EYEBALL_DCHECK(lo == previous_hi && lo < hi && hi <= end,
                     "shards must tile the range contiguously and in order");
      previous_hi = hi;
      futures.push_back(submit([&map, lo, hi] { return map(lo, hi); }));
    }
    EYEBALL_DCHECK(previous_hi == end, "shards must cover the whole range");

    // Drain every chunk before rethrowing so no worker still touches the
    // caller's captures when an exception unwinds.
    std::exception_ptr first_error;
    for (auto& future : futures) {
      try {
        reduce(future.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  /// True when called from one of any ThreadPool's worker threads.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Process-wide pool with one worker per hardware thread, created on first
  /// use.  Callers cap their share with parallel_for's `max_concurrency`.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void enqueue(std::function<void()> task) EYEBALL_EXCLUDES(mutex_);
  void worker_loop() EYEBALL_EXCLUDES(mutex_);

  /// Guards the task queue and the shutdown flag; workers and submitters
  /// meet only here.  Never held while a task runs.
  Mutex mutex_;
  // condition_variable_any, not condition_variable: the wait takes our
  // annotated MutexLock directly, so the queue accesses around it stay
  // visible to the thread-safety analysis.
  std::condition_variable_any wake_;
  std::deque<std::function<void()>> queue_ EYEBALL_GUARDED_BY(mutex_);
  // Written by the constructor only (before any concurrency exists), then
  // read-only until the destructor joins — no capability needed.
  std::vector<std::thread> workers_;
  bool stopping_ EYEBALL_GUARDED_BY(mutex_) = false;
};

}  // namespace eyeball::util
