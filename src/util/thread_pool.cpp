#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace eyeball::util {
namespace {

// Worker-nesting guard.  thread_local, so each thread reads and writes only
// its own copy — inherently race-free, no capability needed.
thread_local bool t_on_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t worker_count) {
  if (worker_count == 0) {
    worker_count = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(worker_count);
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock{mutex_};
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    const MutexLock lock{mutex_};
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock{mutex_};
      // Explicit predicate re-check loop instead of the predicate-lambda
      // overload: the lambda would be analyzed as a separate function with
      // no lock held, tripping -Wthread-safety on the guarded reads.  This
      // spelling keeps every queue_/stopping_ access visibly under `lock`.
      while (!stopping_ && queue_.empty()) wake_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t, std::size_t)>& body,
                              std::size_t max_concurrency) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  // The chunk count honors the *requested* concurrency, clamped only by the
  // range — not by the pool size — so chunk boundaries (and anything that
  // merges per-chunk state in order) are machine-independent.  Requesting
  // more chunks than workers just queues them.
  std::size_t ways = max_concurrency == 0 ? worker_count() : max_concurrency;
  ways = std::min(ways, count);
  if (ways <= 1 || on_worker_thread()) {
    body(begin, end);
    return;
  }

  const std::size_t chunk = (count + ways - 1) / ways;
  EYEBALL_DCHECK(chunk > 0, "parallel_for chunking degenerated to empty chunks");
  std::vector<std::future<void>> futures;
  futures.reserve(ways);
  [[maybe_unused]] std::size_t previous_hi = begin;
  for (std::size_t w = 0; w < ways; ++w) {
    const std::size_t lo = begin + w * chunk;
    if (lo >= end) break;
    const std::size_t hi = std::min(end, lo + chunk);
    EYEBALL_DCHECK(lo == previous_hi && lo < hi && hi <= end,
                   "chunks must tile the range contiguously and in order");
    previous_hi = hi;
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  EYEBALL_DCHECK(previous_hi == end, "chunks must cover the whole range");

  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace eyeball::util
