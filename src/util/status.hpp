// util::Status — the error taxonomy threaded through the I/O layer.
//
// Everything above the persistence layer in this library treats bad *input*
// as an exception and bad *logic* as an EYEBALL_DCHECK.  Disk I/O fits
// neither: failures are expected at runtime (torn writes, corrupt rows,
// version skew across binaries — the longitudinal-geo literature documents
// all of them in the wild), must not abort a long-lived process, and the
// CALLER decides the policy (fall back to an older snapshot generation,
// refuse to load, rebuild from scratch).  Status makes those outcomes typed
// values: every checked I/O and codec entry point returns one, and the code
// distinguishes "the disk said no" from "the bytes are lying" from "these
// bytes are fine but belong to a different configuration".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>

namespace eyeball::util {

enum class StatusCode : std::uint8_t {
  kOk,
  /// The caller asked for something malformed (bad path, empty payload).
  kInvalidArgument,
  /// The named file / snapshot generation does not exist.
  kNotFound,
  /// The operating system failed the operation (write, fsync, rename, read).
  kIoError,
  /// The bytes exist but fail validation: bad magic, checksum mismatch,
  /// truncation, out-of-bounds section, impossible field value.
  kCorruption,
  /// A well-formed artifact written by an incompatible format version.
  kVersionMismatch,
  /// A well-formed artifact whose recorded configuration differs from the
  /// live one — loading it would silently change results, so we refuse.
  kConfigMismatch,
  /// Something that was promised not to fail did: an exception (analysis
  /// error, allocation failure) crossed the publish firewall and was
  /// converted into a typed value instead of unwinding a serving thread.
  /// Not retriable — the same inputs would fail the same way.
  kInternal,
};

[[nodiscard]] std::string_view to_string(StatusCode code) noexcept;

/// A (code, message) pair.  Default-constructed == OK; error states are made
/// through the named factories so call sites read as the taxonomy:
/// `return Status::corruption("section 3 CRC mismatch");`
///
/// The class itself is [[nodiscard]]: EVERY function returning a Status by
/// value warns when the result is ignored, without each signature opting
/// in.  A deliberate discard must say so — `static_cast<void>(...)` plus a
/// comment on why the failure is tolerable (see save_snapshot's best-effort
/// prune).  tools/eyeball_lint.py's `unchecked-status` rule backs this up
/// for statement-position calls in configurations the compiler didn't see.
class [[nodiscard]] Status {
 public:
  Status() = default;

  [[nodiscard]] static Status invalid_argument(std::string message) {
    return Status{StatusCode::kInvalidArgument, std::move(message)};
  }
  [[nodiscard]] static Status not_found(std::string message) {
    return Status{StatusCode::kNotFound, std::move(message)};
  }
  [[nodiscard]] static Status io_error(std::string message) {
    return Status{StatusCode::kIoError, std::move(message)};
  }
  [[nodiscard]] static Status corruption(std::string message) {
    return Status{StatusCode::kCorruption, std::move(message)};
  }
  [[nodiscard]] static Status version_mismatch(std::string message) {
    return Status{StatusCode::kVersionMismatch, std::move(message)};
  }
  [[nodiscard]] static Status config_mismatch(std::string message) {
    return Status{StatusCode::kConfigMismatch, std::move(message)};
  }
  [[nodiscard]] static Status internal(std::string message) {
    return Status{StatusCode::kInternal, std::move(message)};
  }

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "CORRUPTION: section 3 CRC mismatch".
  [[nodiscard]] std::string to_string() const;

  /// Returns a copy with `detail` appended to the message — used when a
  /// layer adds context ("generation 7: " + inner failure) without losing
  /// the inner code.
  [[nodiscard]] Status with_context(std::string_view context) const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Streams Status::to_string (what gtest prints on EXPECT failure).
std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace eyeball::util
