#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace eyeball::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double combined = n1 + n2;
  mean_ += delta * n2 / combined;
  m2_ += other.m2_ + delta * delta * n1 * n2 / combined;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  return percentile_in_place(sorted, q);
}

double percentile_in_place(std::span<double> values, double q) {
  if (values.empty()) throw std::invalid_argument{"percentile: empty sample"};
  // The negated comparison also rejects NaN: a NaN q would sail through
  // `q < 0 || q > 100`, poison `rank`, and hit the float->int cast below
  // (undefined behaviour for NaN).
  if (!(q >= 0.0 && q <= 100.0)) {
    throw std::invalid_argument{"percentile: q outside [0,100]"};
  }
  std::sort(values.begin(), values.end());
  const double rank = q / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  EYEBALL_DCHECK(lo < values.size(), "percentile rank landed outside the sample");
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument{"mean: empty sample"};
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

EmpiricalCdf::EmpiricalCdf(std::vector<double> values) : sorted_(std::move(values)) {
  if (sorted_.empty()) throw std::invalid_argument{"EmpiricalCdf: empty sample"};
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) throw std::invalid_argument{"EmpiricalCdf::quantile"};
  return percentile(sorted_, q * 100.0);
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::trace(double lo, double hi,
                                                     std::size_t steps) const {
  if (steps < 2) throw std::invalid_argument{"EmpiricalCdf::trace: steps < 2"};
  std::vector<Point> points;
  points.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps - 1);
    points.push_back({x, at(x)});
  }
  return points;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  // Validate before deriving width_ so the member never holds a 0-division
  // artifact (bins == 0) or a NaN (inverted/NaN bounds), even transiently.
  if (bins == 0) throw std::invalid_argument{"Histogram: bins must be positive"};
  if (!(hi > lo)) throw std::invalid_argument{"Histogram: hi must exceed lo"};
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) noexcept {
  total_ += weight;
  // The negated comparison routes NaN to underflow instead of feeding it to
  // the float->int cast (undefined behaviour for NaN).
  if (!(x >= lo_)) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  // x just below hi_ can round into bin == size() through the division.
  bin = std::min(bin, counts_.size() - 1);
  EYEBALL_DCHECK(bin < counts_.size(), "histogram bin index out of range");
  counts_[bin] += weight;
}

double Histogram::bin_low(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::bin_low"};
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin) + width_; }

double Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range{"Histogram::count"};
  return counts_[bin];
}

}  // namespace eyeball::util
