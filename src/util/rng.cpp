#include "util/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace eyeball::util {

std::uint64_t Rng::poisson(double lambda) noexcept {
  // Knuth for small lambda, normal approximation for large.
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  const double draw = normal(lambda, std::sqrt(lambda));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument{"ZipfSampler: n must be positive"};
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range{"ZipfSampler::pmf"};
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument{"DiscreteSampler: weights must be non-empty"};
  }
  cdf_.resize(weights.size());
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument{"DiscreteSampler: negative weight"};
    }
    total += weights[i];
    cdf_[i] = total;
  }
  if (total <= 0.0) {
    throw std::invalid_argument{"DiscreteSampler: all weights are zero"};
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double DiscreteSampler::probability(std::size_t index) const {
  if (index >= cdf_.size()) throw std::out_of_range{"DiscreteSampler::probability"};
  return index == 0 ? cdf_[0] : cdf_[index] - cdf_[index - 1];
}

}  // namespace eyeball::util
