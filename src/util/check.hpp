// EYEBALL_DCHECK — the contract layer behind the determinism invariants.
//
// A DCHECK states a precondition or invariant that the surrounding code is
// entitled to assume (grid indices in range, trie prefixes canonical, shard
// chunks monotonically ordered, memo tables power-of-two sized).  Violations
// are programming errors, not input errors: input validation keeps throwing
// exceptions; DCHECK failures print the condition and abort.
//
// Cost model: DCHECKs are active in Debug builds and in every sanitized
// build (EYEBALL_SANITIZE != ""), and compile to nothing in optimized
// Release/RelWithDebInfo builds — the condition expression is not even
// evaluated, so a DCHECK may freely call O(n) helpers like std::is_sorted.
// `tools/check.sh` runs the full suite with sanitizers on, so every DCHECK
// is exercised by CI even though the fast build elides them.
#pragma once

#include <cstdio>
#include <cstdlib>

// CMake passes EYEBALL_DCHECK_ENABLED=1 for sanitized builds; otherwise the
// build type decides (Debug has no NDEBUG -> enabled).
#ifndef EYEBALL_DCHECK_ENABLED
#ifdef NDEBUG
#define EYEBALL_DCHECK_ENABLED 0
#else
#define EYEBALL_DCHECK_ENABLED 1
#endif
#endif

namespace eyeball::util {

/// True when EYEBALL_DCHECK expands to a real check in this build.  Tests
/// use this to assert death only in configurations where death can happen.
[[nodiscard]] constexpr bool dchecks_enabled() noexcept {
  return EYEBALL_DCHECK_ENABLED != 0;
}

namespace detail {

[[noreturn]] inline void dcheck_fail(const char* expr, const char* msg,
                                     const char* file, int line) noexcept {
  std::fprintf(stderr, "EYEBALL_DCHECK failed: (%s) — %s [%s:%d]\n", expr, msg,
               file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace eyeball::util

#if EYEBALL_DCHECK_ENABLED
#define EYEBALL_DCHECK(cond, msg)                                              \
  do {                                                                         \
    if (!(cond)) {                                                             \
      ::eyeball::util::detail::dcheck_fail(#cond, (msg), __FILE__, __LINE__);  \
    }                                                                          \
  } while (false)
#else
#define EYEBALL_DCHECK(cond, msg) static_cast<void>(0)
#endif
