#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace eyeball::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument{"TextTable: empty header"};
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument{"TextTable: row width does not match header"};
  }
  rows_.push_back({std::move(cells), rule_pending_});
  rule_pending_ = false;
}

void TextTable::add_rule() { rule_pending_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto horizontal_rule = [&] {
    std::string rule = "+";
    for (std::size_t w : widths) {
      rule += std::string(w + 2, '-');
      rule += '+';
    }
    rule += '\n';
    return rule;
  }();

  const auto render_cells = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += ' ';
      line += cells[c];
      line += std::string(widths[c] - cells[c].size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out = horizontal_rule;
  out += render_cells(header_);
  out += horizontal_rule;
  for (const auto& row : rows_) {
    if (row.rule_before) out += horizontal_rule;
    out += render_cells(row.cells);
  }
  out += horizontal_rule;
  return out;
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  if (width_ < 10 || height_ < 4) throw std::invalid_argument{"AsciiChart: too small"};
}

void AsciiChart::add_series(std::string label, std::vector<double> xs,
                            std::vector<double> ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument{"AsciiChart: xs/ys mismatch or empty"};
  }
  static constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@'};
  const char glyph = kGlyphs[series_.size() % std::size(kGlyphs)];
  series_.push_back({std::move(label), std::move(xs), std::move(ys), glyph});
}

std::string AsciiChart::render() const {
  if (series_.empty()) return "(empty chart)\n";

  double min_x = std::numeric_limits<double>::infinity();
  double max_x = -min_x;
  double min_y = std::numeric_limits<double>::infinity();
  double max_y = -min_y;
  for (const auto& s : series_) {
    for (double x : s.xs) {
      min_x = std::min(min_x, x);
      max_x = std::max(max_x, x);
    }
    for (double y : s.ys) {
      min_y = std::min(min_y, y);
      max_y = std::max(max_y, y);
    }
  }
  if (max_x == min_x) max_x = min_x + 1.0;
  if (max_y == min_y) max_y = min_y + 1.0;

  std::vector<std::string> canvas(height_, std::string(width_, ' '));
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      const double fx = (s.xs[i] - min_x) / (max_x - min_x);
      const double fy = (s.ys[i] - min_y) / (max_y - min_y);
      const auto col = static_cast<std::size_t>(std::lround(fx * static_cast<double>(width_ - 1)));
      const auto row_from_bottom =
          static_cast<std::size_t>(std::lround(fy * static_cast<double>(height_ - 1)));
      canvas[height_ - 1 - row_from_bottom][col] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!y_label_.empty()) os << y_label_ << '\n';
  for (std::size_t r = 0; r < height_; ++r) {
    const double y = max_y - (max_y - min_y) * static_cast<double>(r) /
                                 static_cast<double>(height_ - 1);
    os << std::string(8 - std::min<std::size_t>(8, std::to_string(static_cast<int>(y)).size()),
                      ' ')
       << static_cast<int>(std::lround(y)) << " |" << canvas[r] << '\n';
  }
  os << std::string(9, ' ') << '+' << std::string(width_, '-') << '\n';
  os << std::string(10, ' ') << static_cast<int>(std::lround(min_x))
     << std::string(width_ > 12 ? width_ - 12 : 1, ' ') << static_cast<int>(std::lround(max_x))
     << '\n';
  if (!x_label_.empty()) os << std::string(10, ' ') << x_label_ << '\n';
  for (const auto& s : series_) os << "    " << s.glyph << " = " << s.label << '\n';
  return os.str();
}

}  // namespace eyeball::util
