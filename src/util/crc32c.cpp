#include "util/crc32c.hpp"

#include <array>
#include <cstdint>
#include <cstddef>

// crc32c_fast: the bulk-checksum path.  One implementation per mechanism,
// selected once per process:
//
//   - SSE4.2 `crc32` instruction (x86-64 with the feature bit set —
//     runtime-checked, so the same binary runs on hosts without it).  The
//     instruction has a 3-cycle dependent latency, so a single chain tops
//     out near 8 bytes / 3 cycles; large buffers are therefore split into
//     THREE independent lanes whose chains pipeline to ~8 bytes/cycle, and
//     the three partial CRCs are recombined exactly (see below).  That
//     pushes the artifact open path to the machine's memory bandwidth
//     rather than the instruction's latency.
//   - The portable table fallback from the header.
//
// Recombination: the CRC register update is GF(2)-linear, so processing a
// block B from register r satisfies f(r, B) = f(0, B) ^ Z^|B|(r), where Z
// is the linear operator "advance the register over one zero byte".  The
// lane results combine as Z^(|B|+|C|)(a) ^ Z^|C|(b) ^ c.  Z's matrix
// powers Z^(2^k) are built at compile time from the same constexpr table
// the portable implementation uses — no magic constants to drift, and the
// equality crc32c_fast == crc32c over arbitrary splits is pinned by
// file_test.
//
// The intrinsics are spelled as GCC/Clang builtins under a function-level
// `target("sse4.2")` attribute rather than compiling the whole TU with
// -msse4.2: only those functions may execute the instruction, and only
// after the cpuid check, so the library keeps running on any x86-64.

namespace eyeball::util {

namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EYEBALL_CRC32C_HW 1

// ---- GF(2) machinery for lane recombination -------------------------------

/// 32x32 bit-matrix over GF(2), stored as the images of the unit vectors.
using Gf2Mat = std::array<std::uint32_t, 32>;

[[nodiscard]] constexpr std::uint32_t gf2_apply(const Gf2Mat& m,
                                                std::uint32_t v) noexcept {
  std::uint32_t out = 0;
  for (int j = 0; j < 32; ++j) {
    if (((v >> j) & 1U) != 0) out ^= m[j];
  }
  return out;
}

[[nodiscard]] constexpr Gf2Mat gf2_compose(const Gf2Mat& a, const Gf2Mat& b) noexcept {
  Gf2Mat out{};
  for (int j = 0; j < 32; ++j) out[j] = gf2_apply(a, b[j]);
  return out;
}

/// Z^(2^k) for k in [0, 64): Z advances the raw CRC register across one
/// zero byte, reg -> (reg >> 8) ^ table[reg & 0xff] — linear because the
/// table itself is (table[a^b] == table[a]^table[b]).
constexpr std::array<Gf2Mat, 64> kZeroBytePowers = [] {
  std::array<Gf2Mat, 64> powers{};
  for (int j = 0; j < 32; ++j) {
    const auto reg = std::uint32_t{1} << j;
    powers[0][j] = (reg >> 8) ^ detail::kCrc32cTable[reg & 0xffU];
  }
  for (int k = 1; k < 64; ++k) {
    powers[k] = gf2_compose(powers[k - 1], powers[k - 1]);
  }
  return powers;
}();

/// Advances the raw register across `n` zero bytes in O(log n).
[[nodiscard]] std::uint32_t shift_zero_bytes(std::uint32_t reg,
                                             std::uint64_t n) noexcept {
  for (int k = 0; n != 0; ++k, n >>= 1) {
    if ((n & 1U) != 0) reg = gf2_apply(kZeroBytePowers[static_cast<std::size_t>(k)], reg);
  }
  return reg;
}

// ---- hardware lanes --------------------------------------------------------

/// Raw register update (no pre/post inversion) over an arbitrary block.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_raw_hw(
    std::uint32_t reg, const std::byte* p, std::size_t n) noexcept {
  std::uint64_t crc = reg;
  while (n >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, sizeof word);
    crc = __builtin_ia32_crc32di(crc, word);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(static_cast<std::uint32_t>(crc),
                                 static_cast<std::uint8_t>(*p));
    ++p;
    --n;
  }
  return static_cast<std::uint32_t>(crc);
}

/// Three independent raw chains over equal `words`-long lanes; the chains
/// carry no dependency on each other, so the crc32 unit pipelines them.
__attribute__((target("sse4.2"))) void crc32c_raw_hw3(
    const std::byte* a, const std::byte* b, const std::byte* c, std::size_t words,
    std::uint32_t& ra, std::uint32_t& rb, std::uint32_t& rc) noexcept {
  std::uint64_t x = ra;
  std::uint64_t y = rb;
  std::uint64_t z = rc;
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t wa;
    std::uint64_t wb;
    std::uint64_t wc;
    __builtin_memcpy(&wa, a + i * 8, 8);
    __builtin_memcpy(&wb, b + i * 8, 8);
    __builtin_memcpy(&wc, c + i * 8, 8);
    x = __builtin_ia32_crc32di(x, wa);
    y = __builtin_ia32_crc32di(y, wb);
    z = __builtin_ia32_crc32di(z, wc);
  }
  ra = static_cast<std::uint32_t>(x);
  rb = static_cast<std::uint32_t>(y);
  rc = static_cast<std::uint32_t>(z);
}

/// Below this, lane setup + recombination costs more than the latency it
/// hides; the single chain is already load-bound there.
constexpr std::size_t kThreeLaneThreshold = 768;

std::uint32_t crc32c_sse42(std::span<const std::byte> data,
                           std::uint32_t seed) noexcept {
  std::uint32_t reg = ~seed;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  if (n >= kThreeLaneThreshold) {
    // Equal 8-byte-multiple lanes; whatever is left past the third lane is
    // folded in by the sequential tail below.
    const std::size_t lane = (n / 3) & ~std::size_t{7};
    std::uint32_t ra = reg;
    std::uint32_t rb = 0;
    std::uint32_t rc = 0;
    crc32c_raw_hw3(p, p + lane, p + 2 * lane, lane / 8, ra, rb, rc);
    reg = shift_zero_bytes(ra, 2 * lane) ^ shift_zero_bytes(rb, lane) ^ rc;
    p += 3 * lane;
    n -= 3 * lane;
  }
  reg = crc32c_raw_hw(reg, p, n);
  return ~reg;
}

[[nodiscard]] bool host_has_sse42() noexcept {
  return __builtin_cpu_supports("sse4.2") != 0;
}
#endif  // __x86_64__

}  // namespace

std::uint32_t crc32c_fast(std::span<const std::byte> data,
                          std::uint32_t seed) noexcept {
#if defined(EYEBALL_CRC32C_HW)
  // Dispatch decided once; the static init is thread-safe and the branch
  // predicts perfectly afterwards.
  static const bool use_hw = host_has_sse42();
  if (use_hw) return crc32c_sse42(data, seed);
#endif
  return crc32c(data, seed);
}

}  // namespace eyeball::util
