#include "util/format.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eyeball::util {

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", digits, value);
  return buffer;
}

std::string with_commas(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  if (negative) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string in_thousands(long long value) {
  return std::to_string((value + 500) / 1000);
}

std::string percent(double fraction, int digits) {
  return fixed(fraction * 100.0, digits) + "%";
}

}  // namespace eyeball::util
