#include "util/status.hpp"

#include <ostream>

namespace eyeball::util {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kVersionMismatch:
      return "VERSION_MISMATCH";
    case StatusCode::kConfigMismatch:
      return "CONFIG_MISMATCH";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{util::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::with_context(std::string_view context) const {
  Status out = *this;
  if (out.ok()) return out;
  std::string combined{context};
  combined += ": ";
  combined += out.message_;
  out.message_ = std::move(combined);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.to_string();
}

}  // namespace eyeball::util
