// Small numeric-formatting helpers shared by the bench binaries.
#pragma once

#include <string>

namespace eyeball::util {

/// Fixed-point decimal with `digits` fraction digits ("0.130").
[[nodiscard]] std::string fixed(double value, int digits);

/// Integer with thousands separators ("18,004").
[[nodiscard]] std::string with_commas(long long value);

/// Count scaled to thousands, rounded ("18004" users -> "18" at scale 1000).
[[nodiscard]] std::string in_thousands(long long value);

/// Percentage with one fraction digit ("41.0%").
[[nodiscard]] std::string percent(double fraction, int digits = 1);

}  // namespace eyeball::util
