// util::RetryPolicy — deterministic retry with exponential backoff for the
// durability path.
//
// A transient disk error (ENOSPC while a log rotates away, a NFS hiccup, a
// USB-backed volume re-enumerating) used to stop snapshot persistence until
// the next publish happened to succeed; the serving layer now drives every
// durability write through a RetryPolicy instead.  Three properties the
// chaos harness pins:
//
//   1. Deterministic schedule.  backoff_for(options, k) is a pure function
//      — initial * multiplier^k, saturated at max_backoff, no jitter — so
//      under a FakeClock the recorded sleep log is byte-reproducible across
//      runs and seeds.  (Jitter matters for fleets stampeding a shared
//      service; a local disk does not care, and reproducibility is worth
//      more to this codebase than decorrelation.)
//   2. Typed per-attempt history.  RetryResult keeps every attempt's
//      Status, not just the last: a post-mortem can tell "failed twice on
//      ENOSPC then the rename was refused" from "three identical fsync
//      failures" without re-running anything.
//   3. Retry only what retrying can fix.  kIoError is the transient class
//      (the OS said no; it may say yes next time).  Corruption, version or
//      config mismatch, invalid argument, not-found: deterministic verdicts
//      about the bytes or the request — retried attempts would re-fail
//      identically, so the policy stops on them immediately.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace eyeball::util {

/// The shape of an exponential-backoff schedule.  All fields are plain
/// values so configs stay aggregate-initializable and comparable.
struct RetryOptions {
  /// Total tries including the first (1 = no retry).
  std::size_t max_attempts = 3;
  /// Wait before the second attempt.
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds{10};
  /// Growth factor per further attempt (>= 1.0).
  double multiplier = 2.0;
  /// Ceiling the schedule saturates at.
  std::chrono::nanoseconds max_backoff = std::chrono::seconds{1};
};

/// One attempt's outcome: the typed Status it produced and the backoff the
/// policy slept BEFORE it ran (zero for the first attempt).
struct RetryAttempt {
  Status status;
  std::chrono::nanoseconds backoff_before{0};
};

/// The full, typed history of one retried operation.  [[nodiscard]] for the
/// same reason Status is: dropping it on the floor silently forgets that
/// durability failed.
struct [[nodiscard]] RetryResult {
  /// The final attempt's Status (OK iff the operation eventually succeeded).
  Status status;
  /// Every attempt in order; size() in [1, max_attempts].
  std::vector<RetryAttempt> attempts;

  [[nodiscard]] bool ok() const noexcept { return status.ok(); }
  [[nodiscard]] std::size_t attempts_made() const noexcept { return attempts.size(); }
};

/// Runs Status-returning operations under a deterministic
/// retry-with-exponential-backoff schedule.  Stateless between run() calls;
/// safe to share across threads (the Clock it holds must be too).
class RetryPolicy {
 public:
  /// `clock` must outlive the policy.
  explicit RetryPolicy(RetryOptions options, Clock& clock) noexcept
      : options_(options), clock_(clock) {}

  /// True when a failed attempt with this code is worth re-trying (see the
  /// header comment: only the OS-transient class is).
  [[nodiscard]] static bool retriable(StatusCode code) noexcept {
    return code == StatusCode::kIoError;
  }

  /// Backoff slept before attempt `attempt` (0-based; attempt 0 never
  /// waits).  Pure: initial * multiplier^(attempt-1), saturated at
  /// max_backoff, computed by iterated saturating steps so the schedule is
  /// identical however it is replayed.
  [[nodiscard]] static std::chrono::nanoseconds backoff_for(const RetryOptions& options,
                                                            std::size_t attempt) noexcept;

  /// Runs `op` up to max_attempts times, sleeping the schedule between
  /// failed attempts.  Stops early on success or on a non-retriable code.
  /// The returned history always holds at least one attempt.
  RetryResult run(const std::function<Status()>& op) const;

  [[nodiscard]] const RetryOptions& options() const noexcept { return options_; }

 private:
  RetryOptions options_;
  Clock& clock_;
};

}  // namespace eyeball::util
