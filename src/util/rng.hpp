// Deterministic pseudo-random number generation for all stochastic
// components of the library.
//
// Every generator in this project is seeded explicitly so that every
// experiment (table/figure reproduction) is exactly reproducible.  We use
// xoshiro256** (public-domain, Blackman & Vigna) seeded through splitmix64,
// rather than std::mt19937, because its output sequence is identical across
// standard-library implementations and it is cheap to fork into independent
// streams.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <span>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace eyeball::util {

/// splitmix64 step: used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values (for deriving per-entity seeds).
/// Two chained splitmix64 rounds so nearby (a, b) pairs do not collide.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a;
  const std::uint64_t first = splitmix64(s);
  s = b ^ first;
  return splitmix64(s);
}

/// FNV-1a hash of a string, for deriving seeds from names.
[[nodiscard]] constexpr std::uint64_t hash_string(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xe7e8a1d5f0c4b3a2ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent generator (for per-AS / per-city streams).
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept {
    return Rng{mix64((*this)(), salt)};
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).  n must be > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept {
    EYEBALL_DCHECK(n > 0, "uniform_index over an empty range divides by zero");
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached spare).
  [[nodiscard]] double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  [[nodiscard]] double exponential(double rate) noexcept {
    return -std::log1p(-uniform()) / rate;
  }

  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto (Lomax-style with scale xm, shape alpha): xm / U^{1/alpha}.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept {
    return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
  }

  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Zipf(s) sampler over ranks {0, .., n-1} using precomputed CDF inversion.
/// Used for market-share and swarm-popularity distributions.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  /// Probability mass of rank k.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1.
};

/// Sampler over arbitrary non-negative weights (alias-free CDF inversion;
/// O(log n) per draw, fine for our sizes).
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double probability(std::size_t index) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace eyeball::util
