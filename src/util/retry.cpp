#include "util/retry.hpp"

#include <utility>

#include "util/check.hpp"

namespace eyeball::util {

std::chrono::nanoseconds RetryPolicy::backoff_for(const RetryOptions& options,
                                                  std::size_t attempt) noexcept {
  if (attempt == 0) return std::chrono::nanoseconds::zero();
  // Iterated saturating growth rather than pow(): every intermediate value
  // is clamped, so the k-th backoff is the same whether the schedule is
  // computed attempt by attempt or queried directly — and a large
  // `attempt` cannot overflow through an unclamped exponent.
  std::chrono::nanoseconds backoff = options.initial_backoff;
  if (backoff < std::chrono::nanoseconds::zero()) backoff = std::chrono::nanoseconds::zero();
  if (backoff > options.max_backoff) backoff = options.max_backoff;
  const double factor = options.multiplier < 1.0 ? 1.0 : options.multiplier;
  for (std::size_t step = 1; step < attempt; ++step) {
    if (backoff >= options.max_backoff) return options.max_backoff;
    const double grown = static_cast<double>(backoff.count()) * factor;
    if (grown >= static_cast<double>(options.max_backoff.count())) {
      return options.max_backoff;
    }
    backoff = std::chrono::nanoseconds{static_cast<std::int64_t>(grown)};
  }
  return backoff;
}

RetryResult RetryPolicy::run(const std::function<Status()>& op) const {
  EYEBALL_DCHECK(op != nullptr, "RetryPolicy::run needs an operation");
  const std::size_t attempts = options_.max_attempts == 0 ? 1 : options_.max_attempts;
  RetryResult result;
  result.attempts.reserve(attempts);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    const std::chrono::nanoseconds backoff = backoff_for(options_, attempt);
    if (attempt > 0) clock_.sleep_for(backoff);
    Status status = op();
    const bool stop = status.ok() || !retriable(status.code()) || attempt + 1 == attempts;
    result.attempts.push_back(RetryAttempt{status, backoff});
    if (stop) {
      result.status = std::move(status);
      return result;
    }
  }
  // Unreachable: the loop always returns on its last attempt.
  EYEBALL_DCHECK(false, "retry loop fell through");
  return result;
}

}  // namespace eyeball::util
