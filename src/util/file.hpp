// The checked I/O layer: every filesystem interaction in this library goes
// through these interfaces, and every operation reports a util::Status —
// the repo lint (`unchecked-io`) flags raw fwrite/fread/rename/fsync calls
// anywhere else, so an ignored error cannot creep in outside this file.
//
// Two things justify the indirection over plain <cstdio>:
//
//   1. Crash safety is a protocol, not a call.  `atomic_write_file` is the
//      one blessed way to publish bytes: write to `<path>.tmp`, fsync the
//      file, atomically rename over `path`, then fsync the parent directory
//      so the rename itself is durable.  A crash at any point leaves either
//      the old file or the new one — never a half-written hybrid (the tmp
//      may survive as garbage; writers ignore or reclaim it).
//
//   2. Faults must be injectable.  FileSystem is a seam:
//      `FaultInjectingFileSystem` wraps the real one and deterministically
//      injects the failure classes a longitudinal study meets in practice —
//      short writes, failed fsyncs, silent bit flips, torn-off tails — at a
//      chosen byte offset, so tests can prove the snapshot layer never
//      loads silently-wrong state (see tests/snapshot_fault_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace eyeball::util {

/// An append-only output file.  Lifecycle: append* -> sync -> close; every
/// step can fail and the caller must check (the lint enforces it upstream).
/// Destruction without close() abandons the handle best-effort — correct
/// for error paths that are about to delete the file anyway.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  [[nodiscard]] virtual Status append(std::span<const std::byte> data) = 0;
  /// Flushes user-space buffers AND asks the kernel to reach stable storage
  /// (fsync).  A successful close() without sync() is durable only as far
  /// as the page cache — callers publishing data must sync first.
  [[nodiscard]] virtual Status sync() = 0;
  [[nodiscard]] virtual Status close() = 0;
};

/// A read-only view of a whole file, held open for the lifetime of the
/// object.  The real filesystem backs it with mmap(2), so N processes (or N
/// ArtifactView epochs in one process) share the same physical pages and
/// nothing is copied up front; fakes and fault injectors may back it with an
/// owned heap buffer instead — the reader-facing contract is only `bytes()`
/// staying valid and immutable until destruction.
///
/// Move-only.  A default-constructed MappedFile is empty (bytes().empty()).
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { reset(); }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    if (mapped_ != nullptr) return {static_cast<const std::byte*>(mapped_), size_};
    return {owned_.data(), owned_.size()};
  }

  /// Unmaps / frees the backing storage; bytes() becomes empty.
  void reset() noexcept;

  /// Wraps an owned heap buffer (no mmap).  Used by the default
  /// FileSystem::map_read_only (fakes read the whole file) and by tests
  /// that build in-memory files.
  [[nodiscard]] static MappedFile from_buffer(std::vector<std::byte> buffer) {
    MappedFile file;
    file.owned_ = std::move(buffer);
    return file;
  }

 private:
  /// The one raw-mmap entry point, defined in file.cpp (the checked-I/O TU).
  friend Status map_file_read_only(const std::string& path, MappedFile& out);

  void* mapped_ = nullptr;  // non-null => mmap-backed
  std::size_t size_ = 0;
  std::vector<std::byte> owned_;  // heap-backed fallback (fakes, empty files)
};

/// mmaps `path` read-only (MAP_PRIVATE) into `out`, replacing its previous
/// contents.  Empty files succeed with an empty mapping.  Typed failures:
/// kNotFound for a missing path, kIoError for open/stat/map failures.
/// Prefer FileSystem::map_read_only, which routes through the seam so fault
/// injectors and fakes stay in the loop.
[[nodiscard]] Status map_file_read_only(const std::string& path, MappedFile& out);

/// Minimal filesystem surface the persistence layer needs.  Paths are plain
/// strings (UTF-8, '/'-separated) so fakes don't need std::filesystem.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Truncate-creates `path` for writing.
  [[nodiscard]] virtual Status open_for_write(const std::string& path,
                                              std::unique_ptr<WritableFile>& out) = 0;
  /// Reads the whole file into `out` (replacing its contents).
  [[nodiscard]] virtual Status read_file(const std::string& path,
                                         std::vector<std::byte>& out) = 0;
  /// POSIX rename semantics: atomic replace of `to` within one filesystem.
  [[nodiscard]] virtual Status rename_file(const std::string& from,
                                           const std::string& to) = 0;
  [[nodiscard]] virtual Status remove_file(const std::string& path) = 0;
  /// fsyncs a directory so a preceding rename/create/remove in it is
  /// durable (without this, a crash can roll the rename back).
  [[nodiscard]] virtual Status sync_dir(const std::string& path) = 0;
  [[nodiscard]] virtual Status create_directories(const std::string& path) = 0;
  /// Names (not paths) of regular files directly inside `path`, sorted.
  [[nodiscard]] virtual Status list_dir(const std::string& path,
                                        std::vector<std::string>& names) = 0;

  /// Read-only mapping of the whole file.  The default implementation reads
  /// the file into an owned buffer through read_file() — correct for any
  /// FileSystem, and what fakes/fault injectors inherit; the real
  /// filesystem overrides it with mmap so opening a multi-GB artifact costs
  /// page-table setup, not a copy.  `out` is replaced on success and
  /// untouched on failure.
  [[nodiscard]] virtual Status map_read_only(const std::string& path, MappedFile& out);
};

/// The process-wide real filesystem (stdio + POSIX fsync underneath).
[[nodiscard]] FileSystem& local_filesystem();

/// Crash-safe publish of `bytes` at `path` via the tmp/fsync/rename/dir-sync
/// protocol described in the header comment.  On failure the tmp file is
/// removed best-effort and `path` is untouched.  A stale `<path>.tmp` left
/// behind by a crashed or fault-interrupted previous writer is reclaimed
/// (removed) before the new write begins, so a poisoned tmp can neither
/// mask this publish nor survive it as garbage.
[[nodiscard]] Status atomic_write_file(FileSystem& fs, const std::string& path,
                                       std::span<const std::byte> bytes);

/// Appended to a file's name when it is quarantined (see quarantine_file).
inline constexpr std::string_view kQuarantineSuffix = ".quarantined";

/// Moves a file that failed validation ASIDE instead of deleting it:
/// `path` is renamed to `path + kQuarantineSuffix` and the typed error that
/// condemned it is recorded next to it in `path + ".quarantined.reason"`
/// (best-effort — the rename is the load-bearing step; losing the sidecar
/// costs context, not correctness).  Two properties this buys the restore
/// path: fallback never re-trips on the same corpse (the quarantined name
/// no longer parses as a loadable generation/artifact), and post-mortems
/// keep the evidence a delete would have destroyed.  Re-quarantining the
/// same path overwrites the previous corpse — it IS the same corpse.
[[nodiscard]] Status quarantine_file(FileSystem& fs, const std::string& path,
                                     const Status& why);

/// One injected fault, addressed by byte offset within the stream appended
/// to a single file.  The four kinds split along two axes — does the writer
/// SEE the failure, and does the tail of the data survive:
///
///   kind          writer sees   on-disk effect
///   kShortWrite   error         bytes [0, offset) persist, rest lost
///   kFailedSync   error         all bytes persist, durability unreported
///   kBitFlip      nothing       bit `bit` of byte `offset` inverted
///   kTruncate     nothing       bytes [offset, end) silently dropped
///   kNoSpace      error         bytes [0, offset) persist; EVERY further
///                               append is refused (ENOSPC: the device is
///                               full and stays full for this file)
///
/// The silent kinds model torn writes and media corruption that fsync
/// cannot report; only restore-time validation can catch them.  kNoSpace
/// differs from kShortWrite in persistence of the error: a short write
/// kills the file (subsequent appends report "file dead"), while ENOSPC
/// keeps refusing with the same typed error on every retry of the append —
/// the shape a real full disk presents to a retry loop.
struct FileFault {
  enum class Kind : std::uint8_t {
    kNone,
    kShortWrite,
    kFailedSync,
    kBitFlip,
    kTruncate,
    kNoSpace,
  };

  Kind kind = Kind::kNone;
  std::uint64_t offset = 0;
  /// Bit index within the byte, for kBitFlip.
  std::uint32_t bit = 0;
};

[[nodiscard]] std::string_view to_string(FileFault::Kind kind) noexcept;

/// A FileSystem decorator that injects one armed fault into the next file
/// opened for writing (and, optionally, fails the next rename).  Reads and
/// everything unarmed pass straight through, so a test drives the real save
/// path against the real disk with exactly one deterministic failure.
class FaultInjectingFileSystem final : public FileSystem {
 public:
  explicit FaultInjectingFileSystem(FileSystem& base) : base_(base) {}

  /// Arms `fault` for the next open_for_write.  Replaces any armed fault.
  void arm(FileFault fault) noexcept {
    armed_ = fault;
    fault_fired_ = false;
  }
  /// The next rename_file call fails with kIoError (models a crash between
  /// writing the tmp file and publishing it).
  void fail_next_rename() noexcept { fail_rename_ = true; }
  /// Like fail_next_rename(), but ALSO fails the very next remove_file of
  /// the rename's source path — so atomic_write_file's best-effort cleanup
  /// cannot collect the tmp and it survives on disk, exactly the debris a
  /// crash between "rename refused" and "tmp unlinked" leaves behind.  The
  /// next writer to the same path must reclaim it (pinned by file_test).
  void fail_next_rename_leaving_tmp() noexcept {
    fail_rename_ = true;
    keep_tmp_on_failed_rename_ = true;
  }
  /// The next `count` open_for_write calls fail with kIoError, then the
  /// write path recovers — the transient-then-recovering error class a
  /// retry-with-backoff policy exists for.
  void arm_transient_open_failures(std::size_t count) noexcept {
    transient_open_failures_ = count;
  }
  /// Same transient class on the publish step: the next `count` rename_file
  /// calls fail with kIoError, then renames succeed again.
  void arm_transient_rename_failures(std::size_t count) noexcept {
    transient_rename_failures_ = count;
  }
  /// True once an armed fault has actually triggered (offset reached, sync
  /// failed, open/rename refused) — lets tests assert the fault wasn't a
  /// no-op.
  [[nodiscard]] bool fault_fired() const noexcept { return fault_fired_; }

  /// The storm passes: clears every armed fault and transient counter so
  /// subsequent operations pass straight through.  fault_fired() keeps its
  /// value — it reports history, not armament.
  void disarm_all() noexcept {
    armed_ = FileFault{};
    fail_rename_ = false;
    keep_tmp_on_failed_rename_ = false;
    transient_open_failures_ = 0;
    transient_rename_failures_ = 0;
    protected_tmp_.clear();
  }

  [[nodiscard]] Status open_for_write(const std::string& path,
                                      std::unique_ptr<WritableFile>& out) override;
  [[nodiscard]] Status read_file(const std::string& path,
                                 std::vector<std::byte>& out) override;
  [[nodiscard]] Status rename_file(const std::string& from,
                                   const std::string& to) override;
  [[nodiscard]] Status remove_file(const std::string& path) override;
  [[nodiscard]] Status sync_dir(const std::string& path) override;
  [[nodiscard]] Status create_directories(const std::string& path) override;
  [[nodiscard]] Status list_dir(const std::string& path,
                                std::vector<std::string>& names) override;
  /// Reads pass straight through (faults target the write path); the base
  /// keeps its mmap fast path.
  [[nodiscard]] Status map_read_only(const std::string& path, MappedFile& out) override;

 private:
  FileSystem& base_;
  FileFault armed_{};
  bool fail_rename_ = false;
  bool keep_tmp_on_failed_rename_ = false;
  std::size_t transient_open_failures_ = 0;
  std::size_t transient_rename_failures_ = 0;
  /// Source path of a rename failed via fail_next_rename_leaving_tmp();
  /// the next remove_file of exactly this path is refused once.
  std::string protected_tmp_;
  bool fault_fired_ = false;
};

}  // namespace eyeball::util
