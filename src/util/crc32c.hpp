// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every snapshot section and the whole-file footer.
//
// Castagnoli rather than the zlib polynomial because its error-detection
// properties are strictly better at these block sizes and it is the de
// facto storage-format choice (iSCSI, ext4, LevelDB table files), so the
// on-disk format stays recognizable to standard tooling.  Table-driven,
// one byte at a time: snapshot encode/decode is dominated by memory
// traffic, not the checksum, and a constexpr table keeps the header
// freestanding (no global init order, safe from any thread).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace eyeball::util {

namespace detail {

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc32c_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1U) != 0 ? (crc >> 1) ^ 0x82f63b78U : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

/// CRC32C of `data`.  `seed` chains blocks: crc32c(b, crc32c(a)) equals
/// crc32c of a followed by b, so callers can checksum streamed writes
/// without buffering.  crc32c of "123456789" is 0xE3069283 (the published
/// check value, pinned by util_test).
[[nodiscard]] constexpr std::uint32_t crc32c(std::span<const std::byte> data,
                                             std::uint32_t seed = 0) noexcept {
  std::uint32_t crc = ~seed;
  for (const std::byte b : data) {
    crc = detail::kCrc32cTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xffU] ^
          (crc >> 8);
  }
  return ~crc;
}

/// Same polynomial, same results, built for bulk: uses the SSE4.2 CRC32
/// instruction when the host supports it (runtime dispatch; ~an order of
/// magnitude past the byte-at-a-time table) and falls back to the table
/// otherwise.  The artifact open path (core/artifact.hpp) checksums every
/// section of a memory-mapped file once before the first query, so the
/// checksum IS the hot loop there — unlike the snapshot codec, whose
/// decode cost dwarfs it.  Equality with crc32c() over arbitrary inputs is
/// pinned by util_test.
[[nodiscard]] std::uint32_t crc32c_fast(std::span<const std::byte> data,
                                        std::uint32_t seed = 0) noexcept;

}  // namespace eyeball::util
