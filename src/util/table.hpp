// Plain-text table rendering for the reproduction harness: every bench
// binary prints the same rows/columns the paper's tables and figures report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace eyeball::util {

/// Column-aligned ASCII table.  Cells are strings; numeric formatting is the
/// caller's job (see format.hpp).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Inserts a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string render() const;
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool rule_pending_ = false;
};

/// Renders an ASCII line plot of one or more (x, y) series; used to print
/// CDF figures (Figure 2a/2b) in the terminal.
class AsciiChart {
 public:
  AsciiChart(std::size_t width, std::size_t height);

  void add_series(std::string label, std::vector<double> xs, std::vector<double> ys);
  void set_x_label(std::string label) { x_label_ = std::move(label); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  [[nodiscard]] std::string render() const;

 private:
  struct Series {
    std::string label;
    std::vector<double> xs;
    std::vector<double> ys;
    char glyph;
  };
  std::size_t width_;
  std::size_t height_;
  std::string x_label_;
  std::string y_label_;
  std::vector<Series> series_;
};

}  // namespace eyeball::util
