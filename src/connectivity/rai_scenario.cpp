#include "connectivity/rai_scenario.hpp"

#include <stdexcept>

#include "topology/ip_allocator.hpp"

namespace eyeball::connectivity {
namespace {

using gazetteer::CityId;
using topology::AsLevel;
using topology::AsRole;
using topology::AutonomousSystem;
using topology::PopSite;
using topology::RelationshipType;

CityId require_city(const gazetteer::Gazetteer& gaz, std::string_view name,
                    std::string_view country = "IT") {
  const auto id = gaz.find_by_name(name, country);
  if (!id) {
    throw std::invalid_argument{"build_rai_scenario: gazetteer lacks " + std::string{name}};
  }
  return *id;
}

}  // namespace

RaiScenario build_rai_scenario(const gazetteer::Gazetteer& gaz) {
  topology::Ipv4SpaceAllocator allocator;
  std::vector<AutonomousSystem> ases;
  std::vector<topology::Ixp> ixps;
  std::vector<topology::AsRelationship> rels;

  const CityId rome = require_city(gaz, "Rome");
  const CityId milan = require_city(gaz, "Milan");
  const CityId turin = require_city(gaz, "Turin");
  const CityId naples = require_city(gaz, "Naples");
  const CityId florence = require_city(gaz, "Florence");
  const CityId bologna = require_city(gaz, "Bologna");

  const auto add_as = [&](std::uint32_t asn, std::string name, AsRole role, AsLevel level,
                          std::string country, gazetteer::Continent continent,
                          std::uint64_t customers,
                          std::vector<std::pair<CityId, double>> pops,
                          std::vector<CityId> transit_pops = {}) {
    AutonomousSystem as;
    as.asn = net::Asn{asn};
    as.name = std::move(name);
    as.role = role;
    as.level = level;
    as.country_code = std::move(country);
    as.continent = continent;
    as.customers = customers;
    for (const auto& [city, share] : pops) {
      PopSite pop;
      pop.city = city;
      pop.customer_share = share;
      const auto need = std::max<std::uint64_t>(
          1024, static_cast<std::uint64_t>(share * static_cast<double>(customers) * 2));
      pop.prefixes.push_back(allocator.allocate_for(need));
      as.pops.push_back(std::move(pop));
    }
    for (const CityId city : transit_pops) {
      PopSite pop;
      pop.city = city;
      pop.transit_only = true;
      pop.prefixes.push_back(allocator.allocate(24));
      as.pops.push_back(std::move(pop));
    }
    ases.push_back(std::move(as));
    return net::Asn{asn};
  };

  constexpr auto kEU = gazetteer::Continent::kEurope;

  RaiScenario scenario{topology::AsEcosystem{{}, {}, {}}};

  // Tier-1 backbones.
  scenario.tier1_a = add_as(3356, "tier1-alpha", AsRole::kTier1, AsLevel::kGlobal, "", kEU,
                            0, {}, {milan, require_city(gaz, "Genoa")});
  scenario.tier1_b = add_as(1239, "tier1-beta", AsRole::kTier1, AsLevel::kGlobal, "", kEU,
                            0, {}, {rome, milan});

  // The five upstream providers of RAI.
  scenario.infostrada =
      add_as(1267, "Infostrada", AsRole::kEyeball, AsLevel::kCountry, "IT", kEU,
             RaiScenario::kInfostradaUsers,
             {{milan, 0.30}, {rome, 0.25}, {turin, 0.15}, {naples, 0.12},
              {florence, 0.10}, {bologna, 0.08}});
  scenario.fastweb =
      add_as(12874, "Fastweb", AsRole::kEyeball, AsLevel::kCountry, "IT", kEU, 900000,
             {{milan, 0.45}, {rome, 0.30}, {naples, 0.25}});
  scenario.easynet = add_as(4589, "Easynet", AsRole::kTransit, AsLevel::kGlobal, "", kEU,
                            0, {}, {milan, rome, require_city(gaz, "Venice")});
  scenario.colt = add_as(8220, "Colt", AsRole::kTransit, AsLevel::kGlobal, "", kEU, 0, {},
                         {milan, rome, turin});
  scenario.bt_italia = add_as(8968, "BT-Italia", AsRole::kTransit, AsLevel::kCountry,
                              "IT", kEU, 0, {}, {rome, milan, naples});

  // RAI itself: a Rome-only city-level eyeball.
  scenario.rai = add_as(8234, "RAI", AsRole::kEyeball, AsLevel::kCity, "IT", kEU,
                        RaiScenario::kRaiUsers, {{rome, 1.0}});

  // RAI's peers at MIX.
  scenario.garr = add_as(137, "GARR", AsRole::kContent, AsLevel::kCountry, "IT", kEU, 0,
                         {}, {rome, milan, bologna});
  scenario.asdasd = add_as(34695, "ASDASD", AsRole::kTransit, AsLevel::kCountry, "IT",
                           kEU, 0, {}, {milan, turin});
  scenario.itgate = add_as(12779, "ITGate", AsRole::kTransit, AsLevel::kCountry, "IT",
                           kEU, 0, {}, {milan});

  // External vantage point for the traceroute validation.
  scenario.vantage =
      add_as(3320, "vantage-DE", AsRole::kEyeball, AsLevel::kCountry, "DE", kEU, 500000,
             {{require_city(gaz, "Berlin", "DE"), 1.0}});

  // IXPs.
  {
    topology::Ixp namex;
    namex.name = "NaMEX";
    namex.city = rome;
    namex.members = {scenario.garr, scenario.bt_italia, scenario.fastweb,
                     scenario.infostrada};
    topology::Ixp mix;
    mix.name = "MIX";
    mix.city = milan;
    mix.members = {scenario.rai,    scenario.garr,       scenario.asdasd,
                   scenario.itgate, scenario.infostrada, scenario.colt};
    scenario.namex_index = 0;
    scenario.mix_index = 1;
    ixps.push_back(std::move(namex));
    ixps.push_back(std::move(mix));
  }

  const auto c2p = [&](net::Asn customer, net::Asn provider) {
    rels.push_back({customer, provider, RelationshipType::kCustomerProvider, {}});
  };
  const auto p2p_at = [&](net::Asn a, net::Asn b, std::size_t ixp) {
    rels.push_back({a, b, RelationshipType::kPeerPeer, ixp});
  };

  // RAI's five upstreams (the paper's surprising finding).
  c2p(scenario.rai, scenario.infostrada);
  c2p(scenario.rai, scenario.fastweb);
  c2p(scenario.rai, scenario.easynet);
  c2p(scenario.rai, scenario.colt);
  c2p(scenario.rai, scenario.bt_italia);

  // Remote peering at MIX (not at the local NaMEX).
  p2p_at(scenario.rai, scenario.garr, scenario.mix_index);
  p2p_at(scenario.rai, scenario.asdasd, scenario.mix_index);
  p2p_at(scenario.rai, scenario.itgate, scenario.mix_index);

  // Upstream structure of the rest of the scenario.
  c2p(scenario.infostrada, scenario.tier1_a);
  c2p(scenario.fastweb, scenario.tier1_a);
  c2p(scenario.bt_italia, scenario.tier1_b);
  c2p(scenario.garr, scenario.tier1_b);
  c2p(scenario.asdasd, scenario.tier1_a);
  c2p(scenario.itgate, scenario.tier1_a);
  c2p(scenario.vantage, scenario.tier1_b);
  c2p(scenario.easynet, scenario.tier1_a);
  c2p(scenario.colt, scenario.tier1_b);
  rels.push_back({scenario.tier1_a, scenario.tier1_b, RelationshipType::kPeerPeer, {}});

  // Other peerings at the two IXPs, as real members would.
  p2p_at(scenario.garr, scenario.fastweb, scenario.namex_index);
  p2p_at(scenario.infostrada, scenario.colt, scenario.mix_index);

  scenario.ecosystem =
      topology::AsEcosystem{std::move(ases), std::move(ixps), std::move(rels)};
  return scenario;
}

}  // namespace eyeball::connectivity
