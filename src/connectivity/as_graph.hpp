// AS-level connectivity graph with Gao-Rexford (valley-free) routing.
//
// Built from an ecosystem's relationship list; supports neighbour queries,
// customer-cone computation, and shortest valley-free paths with the
// standard route preference (customer > peer > provider).  This is the
// machinery behind the §6 case study and the traceroute simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/ipv4.hpp"
#include "topology/types.hpp"

namespace eyeball::connectivity {

enum class RouteClass : std::uint8_t {
  kCustomer,  // learned from a customer (best)
  kPeer,      // learned from a peer
  kProvider,  // learned from a provider (worst)
};

struct Route {
  RouteClass route_class = RouteClass::kCustomer;
  /// Full AS path, source first, destination last.
  std::vector<net::Asn> path;
};

class AsGraph {
 public:
  explicit AsGraph(const topology::AsEcosystem& ecosystem);

  [[nodiscard]] std::span<const net::Asn> providers(net::Asn asn) const;
  [[nodiscard]] std::span<const net::Asn> customers(net::Asn asn) const;
  [[nodiscard]] std::span<const net::Asn> peers(net::Asn asn) const;

  [[nodiscard]] std::size_t as_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::vector<net::Asn> all_ases() const;

  /// Number of ASes in the customer cone of `asn` (including itself).
  [[nodiscard]] std::size_t customer_cone_size(net::Asn asn) const;

  /// Best valley-free route from `src` to `dst` under customer > peer >
  /// provider preference with shortest-path tie-breaking, or nullopt when
  /// unreachable.  `src == dst` yields a single-hop route.
  [[nodiscard]] std::optional<Route> best_route(net::Asn src, net::Asn dst) const;

  /// True when some valley-free path connects the two ASes.
  [[nodiscard]] bool reachable(net::Asn src, net::Asn dst) const {
    return best_route(src, dst).has_value();
  }

 private:
  struct Node {
    net::Asn asn{};
    std::vector<net::Asn> providers;
    std::vector<net::Asn> customers;
    std::vector<net::Asn> peers;
  };

  [[nodiscard]] const Node& node(net::Asn asn) const;
  [[nodiscard]] std::size_t index(net::Asn asn) const;

  /// down_dist[i]: hops from AS i down its customer cone to dst (SIZE_MAX
  /// when dst is not in i's cone).  Parent links for path recovery.
  void down_distances(std::size_t dst, std::vector<std::uint32_t>& dist,
                      std::vector<std::uint32_t>& parent) const;

  std::vector<Node> nodes_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
};

}  // namespace eyeball::connectivity
