#include "connectivity/as_graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace eyeball::connectivity {
namespace {
constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();
}

AsGraph::AsGraph(const topology::AsEcosystem& ecosystem) {
  nodes_.reserve(ecosystem.ases().size());
  for (const auto& as : ecosystem.ases()) {
    index_.emplace(net::value_of(as.asn), nodes_.size());
    nodes_.push_back(Node{as.asn, {}, {}, {}});
  }
  for (const auto& rel : ecosystem.relationships()) {
    auto& a = nodes_[index(rel.customer)];
    auto& b = nodes_[index(rel.provider)];
    if (rel.type == topology::RelationshipType::kCustomerProvider) {
      a.providers.push_back(rel.provider);
      b.customers.push_back(rel.customer);
    } else {
      a.peers.push_back(rel.provider);
      b.peers.push_back(rel.customer);
    }
  }
}

std::size_t AsGraph::index(net::Asn asn) const {
  const auto it = index_.find(net::value_of(asn));
  if (it == index_.end()) throw std::out_of_range{"AsGraph: unknown ASN"};
  return it->second;
}

const AsGraph::Node& AsGraph::node(net::Asn asn) const { return nodes_[index(asn)]; }

std::span<const net::Asn> AsGraph::providers(net::Asn asn) const {
  return node(asn).providers;
}
std::span<const net::Asn> AsGraph::customers(net::Asn asn) const {
  return node(asn).customers;
}
std::span<const net::Asn> AsGraph::peers(net::Asn asn) const { return node(asn).peers; }

std::vector<net::Asn> AsGraph::all_ases() const {
  std::vector<net::Asn> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.asn);
  return out;
}

std::size_t AsGraph::customer_cone_size(net::Asn asn) const {
  std::vector<char> seen(nodes_.size(), 0);
  std::queue<std::size_t> frontier;
  const std::size_t start = index(asn);
  frontier.push(start);
  seen[start] = 1;
  std::size_t count = 0;
  while (!frontier.empty()) {
    const std::size_t current = frontier.front();
    frontier.pop();
    ++count;
    for (const auto customer : nodes_[current].customers) {
      const std::size_t ci = index(customer);
      if (!seen[ci]) {
        seen[ci] = 1;
        frontier.push(ci);
      }
    }
  }
  return count;
}

void AsGraph::down_distances(std::size_t dst, std::vector<std::uint32_t>& dist,
                             std::vector<std::uint32_t>& parent) const {
  dist.assign(nodes_.size(), kUnreachable);
  parent.assign(nodes_.size(), kUnreachable);
  std::queue<std::size_t> frontier;
  dist[dst] = 0;
  frontier.push(dst);
  while (!frontier.empty()) {
    const std::size_t current = frontier.front();
    frontier.pop();
    // Every provider of `current` can reach dst one hop further down.
    for (const auto provider : nodes_[current].providers) {
      const std::size_t pi = index(provider);
      if (dist[pi] == kUnreachable) {
        dist[pi] = dist[current] + 1;
        parent[pi] = static_cast<std::uint32_t>(current);
        frontier.push(pi);
      }
    }
  }
}

std::optional<Route> AsGraph::best_route(net::Asn src, net::Asn dst) const {
  const std::size_t s = index(src);
  const std::size_t d = index(dst);
  if (s == d) return Route{RouteClass::kCustomer, {src}};

  std::vector<std::uint32_t> down_dist;
  std::vector<std::uint32_t> down_parent;
  down_distances(d, down_dist, down_parent);

  // Upward BFS from src (customer -> provider edges only).
  std::vector<std::uint32_t> up_dist(nodes_.size(), kUnreachable);
  std::vector<std::uint32_t> up_parent(nodes_.size(), kUnreachable);
  std::queue<std::size_t> frontier;
  up_dist[s] = 0;
  frontier.push(s);
  while (!frontier.empty()) {
    const std::size_t current = frontier.front();
    frontier.pop();
    for (const auto provider : nodes_[current].providers) {
      const std::size_t pi = index(provider);
      if (up_dist[pi] == kUnreachable) {
        up_dist[pi] = up_dist[current] + 1;
        up_parent[pi] = static_cast<std::uint32_t>(current);
        frontier.push(pi);
      }
    }
  }

  // Best (class, length) over all apex choices: a valley-free path is
  // src -(up)*-> apex [-peer-> pivot] -(down)*-> dst.
  struct Candidate {
    RouteClass route_class;
    std::uint32_t length;
    std::size_t apex;
    std::size_t pivot;  // == apex when no peer hop
  };
  std::optional<Candidate> best;
  const auto consider = [&](Candidate candidate) {
    if (!best || std::make_pair(static_cast<int>(candidate.route_class), candidate.length) <
                     std::make_pair(static_cast<int>(best->route_class), best->length)) {
      best = candidate;
    }
  };

  for (std::size_t x = 0; x < nodes_.size(); ++x) {
    if (up_dist[x] == kUnreachable) continue;
    const RouteClass up_class =
        up_dist[x] == 0 ? RouteClass::kCustomer : RouteClass::kProvider;
    if (down_dist[x] != kUnreachable && (up_dist[x] > 0 || down_dist[x] > 0)) {
      consider({up_class, up_dist[x] + down_dist[x], x, x});
    }
    for (const auto peer : nodes_[x].peers) {
      const std::size_t pi = index(peer);
      if (down_dist[pi] == kUnreachable) continue;
      const RouteClass route_class =
          up_dist[x] == 0 ? RouteClass::kPeer : RouteClass::kProvider;
      consider({route_class, up_dist[x] + 1 + down_dist[pi], x, pi});
    }
  }
  if (!best) return std::nullopt;

  // Reconstruct: src..apex (upward), optional peer hop, pivot..dst (down).
  std::vector<net::Asn> up_leg;
  for (std::size_t x = best->apex;; x = up_parent[x]) {
    up_leg.push_back(nodes_[x].asn);
    if (x == s) break;
  }
  std::reverse(up_leg.begin(), up_leg.end());

  Route route;
  route.route_class = best->route_class;
  route.path = std::move(up_leg);
  std::size_t x = best->pivot;
  if (best->pivot != best->apex) route.path.push_back(nodes_[x].asn);
  while (x != d) {
    x = down_parent[x];
    route.path.push_back(nodes_[x].asn);
  }
  return route;
}

}  // namespace eyeball::connectivity
