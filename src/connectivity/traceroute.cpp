#include "connectivity/traceroute.hpp"

namespace eyeball::connectivity {

std::optional<TracerouteResult> TracerouteSimulator::trace(net::Asn src,
                                                           net::Ipv4Address target) const {
  const auto origin = rib_->origin(target);
  if (!origin) return std::nullopt;
  auto route = graph_->best_route(src, *origin);
  if (!route) return std::nullopt;
  return TracerouteResult{*origin, std::move(*route)};
}

std::string TracerouteSimulator::format_path(const Route& route) {
  std::string out;
  for (std::size_t i = 0; i < route.path.size(); ++i) {
    if (i > 0) out += " ";
    out += net::to_string(route.path[i]);
  }
  return out;
}

}  // namespace eyeball::connectivity
