// Expected-vs-actual connectivity analysis of an eyeball AS (paper §6).
//
// From the AS's geographic footprint one would *expect* a simple picture —
// a city-level eyeball with one or two regional upstreams, peering (if at
// all) at its local IXP.  The analyzer derives that expectation, extracts
// the *actual* connectivity from the relationship/IXP data, and lists the
// deviations (rich multi-homing, global-reach providers, remote peering,
// absence from the local IXP).
#pragma once

#include <string>
#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "topology/types.hpp"

namespace eyeball::connectivity {

struct UpstreamInfo {
  net::Asn asn{};
  std::string name;
  topology::AsLevel level = topology::AsLevel::kCountry;
  bool global_reach = false;
};

struct IxpPresence {
  std::string name;
  gazetteer::CityId city = gazetteer::kInvalidCity;
  /// Within 60 km of one of the AS's PoPs.
  bool local = false;
  std::vector<net::Asn> peers_there;
};

struct CaseStudyReport {
  net::Asn asn{};
  std::string name;
  topology::AsLevel level = topology::AsLevel::kCity;
  /// City of the AS's largest service PoP.
  gazetteer::CityId home_city = gazetteer::kInvalidCity;

  std::vector<UpstreamInfo> upstreams;
  std::vector<IxpPresence> memberships;
  /// Local IXPs (in/near the home city) the AS is *not* a member of.
  std::vector<std::string> skipped_local_ixps;

  /// The naive geography-derived expectation.
  std::size_t expected_max_upstreams = 2;
  /// Deviations from the expectation, human-readable.
  std::vector<std::string> surprises;
};

/// Analyzes one eyeball AS of the ecosystem.
[[nodiscard]] CaseStudyReport analyze_connectivity(
    const topology::AsEcosystem& ecosystem, const gazetteer::Gazetteer& gazetteer,
    net::Asn asn, double local_radius_km = 60.0);

}  // namespace eyeball::connectivity
