#include "connectivity/predictor.hpp"

#include <algorithm>
#include <map>

namespace eyeball::connectivity {

ConnectivityPredictor::ConnectivityPredictor(const topology::AsEcosystem& ecosystem,
                                             const gazetteer::Gazetteer& gazetteer,
                                             double local_radius_km)
    : eco_(ecosystem), gaz_(gazetteer), local_radius_km_(local_radius_km) {}

ConnectivityPrediction ConnectivityPredictor::predict(
    const core::PopFootprint& footprint) const {
  ConnectivityPrediction out;

  // Providers: transit (and tier-1) ASes with PoPs near footprint cities,
  // weighted by the footprint density they cover.
  std::map<std::uint32_t, double> overlap;
  for (const auto& as : eco_.ases()) {
    if (as.role != topology::AsRole::kTransit && as.role != topology::AsRole::kTier1) {
      continue;
    }
    double weight = 0.0;
    for (const auto& entry : footprint.pops) {
      const auto& entry_city = gaz_.city(entry.city);
      for (const auto& pop : as.pops) {
        if (geo::distance_km(gaz_.city(pop.city).location, entry_city.location) <=
            local_radius_km_) {
          weight += entry.score;
          break;
        }
      }
    }
    if (weight > 0.0) overlap[net::value_of(as.asn)] = weight;
  }
  for (const auto& [asn, weight] : overlap) {
    out.providers.push_back({net::Asn{asn}, weight});
  }
  std::sort(out.providers.begin(), out.providers.end(),
            [](const PredictedProvider& a, const PredictedProvider& b) {
              return a.overlap > b.overlap;
            });

  // IXPs near the footprint, ranked by the density of the nearby PoPs.
  for (std::size_t i = 0; i < eco_.ixps().size(); ++i) {
    const auto& ixp_city = gaz_.city(eco_.ixps()[i].city);
    double density = 0.0;
    for (const auto& entry : footprint.pops) {
      if (geo::distance_km(gaz_.city(entry.city).location, ixp_city.location) <=
          local_radius_km_) {
        density += entry.score;
      }
    }
    if (density > 0.0) out.ixps.push_back({i, density});
  }
  std::sort(out.ixps.begin(), out.ixps.end(),
            [](const PredictedIxp& a, const PredictedIxp& b) {
              return a.local_density > b.local_density;
            });
  return out;
}

PredictionScore ConnectivityPredictor::score(
    net::Asn asn, const ConnectivityPrediction& prediction) const {
  PredictionScore out;

  const auto actual_providers = eco_.providers_of(asn);
  if (!actual_providers.empty()) {
    std::size_t hit = 0;
    std::size_t hit_top2 = 0;
    for (const auto provider : actual_providers) {
      const auto found = std::find_if(
          prediction.providers.begin(), prediction.providers.end(),
          [&](const PredictedProvider& p) { return p.asn == provider; });
      if (found != prediction.providers.end()) {
        ++hit;
        if (found - prediction.providers.begin() < 2) ++hit_top2;
      } else {
        ++out.unpredictable_providers;
      }
    }
    out.provider_recall =
        static_cast<double>(hit) / static_cast<double>(actual_providers.size());
    out.provider_recall_top2 =
        static_cast<double>(hit_top2) / static_cast<double>(actual_providers.size());
  }

  const auto memberships = eco_.ixps_of(asn);
  if (!memberships.empty()) {
    std::size_t hit = 0;
    for (const auto index : memberships) {
      const bool predicted = std::any_of(
          prediction.ixps.begin(), prediction.ixps.end(),
          [&](const PredictedIxp& p) { return p.ixp_index == index; });
      if (predicted) {
        ++hit;
      } else {
        ++out.unpredictable_ixps;
      }
    }
    out.ixp_recall = static_cast<double>(hit) / static_cast<double>(memberships.size());
  }
  return out;
}

}  // namespace eyeball::connectivity
