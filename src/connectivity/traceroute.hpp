// AS-level traceroute simulation.
//
// The paper validates its case-study connectivity claims "by performing a
// set of selective traceroute experiments".  The simulator resolves a
// target IP to its origin AS through the RIB and reports the AS-level path
// a packet would take under valley-free, customer-preferred routing.
#pragma once

#include <optional>
#include <string>

#include "bgp/rib.hpp"
#include "connectivity/as_graph.hpp"

namespace eyeball::connectivity {

struct TracerouteResult {
  net::Asn origin{};
  Route route;
};

class TracerouteSimulator {
 public:
  TracerouteSimulator(const AsGraph& graph, const bgp::RibSnapshot& rib)
      : graph_(&graph), rib_(&rib) {}

  /// AS path from `src` to the AS originating `target`, or nullopt when the
  /// target is unrouted or unreachable.
  [[nodiscard]] std::optional<TracerouteResult> trace(net::Asn src,
                                                      net::Ipv4Address target) const;

  /// AS path between two ASes directly.
  [[nodiscard]] std::optional<Route> trace_as(net::Asn src, net::Asn dst) const {
    return graph_->best_route(src, dst);
  }

  /// "AS3 AS7 AS12" rendering of a path.
  [[nodiscard]] static std::string format_path(const Route& route);

 private:
  const AsGraph* graph_;
  const bgp::RibSnapshot* rib_;
};

}  // namespace eyeball::connectivity
