// Aggregate IXP peering statistics (paper §1/§6: "even simple eyeball ASes
// tend to peer very actively at local and remote IXPs, especially in
// Europe, and also maintain rich upstream connectivity").
//
// Quantifies that claim over a whole ecosystem: per-continent membership
// counts, the local/remote split of eyeball memberships, peering degree by
// AS level, and upstream multi-homing distributions.
#pragma once

#include <map>
#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "topology/types.hpp"

namespace eyeball::connectivity {

struct IxpSummary {
  std::string name;
  gazetteer::CityId city = gazetteer::kInvalidCity;
  gazetteer::Continent continent = gazetteer::Continent::kEurope;
  std::size_t members = 0;
  std::size_t eyeball_members = 0;
  std::size_t peerings = 0;
};

struct ContinentPeeringProfile {
  gazetteer::Continent continent = gazetteer::Continent::kEurope;
  std::size_t ixps = 0;
  std::size_t eyeballs = 0;
  /// Eyeball IXP memberships at an IXP within 60 km of one of the AS's PoPs.
  std::size_t local_memberships = 0;
  /// Memberships without a nearby PoP — remote peering.
  std::size_t remote_memberships = 0;
  double avg_peers_per_eyeball = 0.0;
  double avg_providers_per_eyeball = 0.0;
  /// Fraction of eyeballs with more than 2 upstream providers.
  double multihomed_fraction = 0.0;
};

struct PeeringReport {
  std::vector<IxpSummary> ixps;                       // sorted by members desc
  std::vector<ContinentPeeringProfile> continents;    // NA, EU, AS order
};

[[nodiscard]] PeeringReport analyze_peering(const topology::AsEcosystem& ecosystem,
                                            const gazetteer::Gazetteer& gazetteer,
                                            double local_radius_km = 60.0);

}  // namespace eyeball::connectivity
