// Hand-built Italian mini-ecosystem reproducing the paper's §6 case study.
//
// AS8234 (RAI — Radiotelevisione Italiana): a Rome-only, city-level eyeball
// AS with 3,000 P2P users, which turns out to have
//   * five upstream providers — Infostrada (AS1267) and Fastweb (Italy-wide
//     ISPs), Easynet and Colt (global reach), and BT-Italia (legacy ISP) —
//   * no presence at the local Rome IXP (NaMEX),
//   * membership at the Milan IXP (MIX) where it peers with GARR (academic
//     network, also present at NaMEX), ASDASD and ITGate (not at NaMEX).
// The scenario also carries tier-1s and an external vantage AS so the
// traceroute validation of §6 can be replayed.
#pragma once

#include "gazetteer/gazetteer.hpp"
#include "topology/types.hpp"

namespace eyeball::connectivity {

struct RaiScenario {
  topology::AsEcosystem ecosystem;

  net::Asn rai{};         // AS8234, eyeball, Rome
  net::Asn infostrada{};  // AS1267, eyeball ISP, Italy-wide (1.47M P2P users)
  net::Asn fastweb{};     // Italy-wide ISP
  net::Asn easynet{};     // global service provider
  net::Asn colt{};        // global service provider
  net::Asn bt_italia{};   // legacy ISP
  net::Asn garr{};        // academic & research network
  net::Asn asdasd{};      // Italian network provider
  net::Asn itgate{};      // Italian Internet service company
  net::Asn vantage{};     // external European eyeball used as traceroute source
  net::Asn tier1_a{};
  net::Asn tier1_b{};

  std::size_t namex_index = 0;  // Rome IXP
  std::size_t mix_index = 0;    // Milan IXP

  /// Number of P2P users the crawl observes for RAI (paper: 3,000, all
  /// geo-mapped to Rome).
  static constexpr std::uint64_t kRaiUsers = 3000;
  static constexpr std::uint64_t kInfostradaUsers = 1470000;
};

/// Builds the scenario on top of the given gazetteer (must contain Rome and
/// Milan, i.e. the built-in world table).
[[nodiscard]] RaiScenario build_rai_scenario(const gazetteer::Gazetteer& gazetteer);

}  // namespace eyeball::connectivity
