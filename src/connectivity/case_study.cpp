#include "connectivity/case_study.hpp"

#include <algorithm>

namespace eyeball::connectivity {

CaseStudyReport analyze_connectivity(const topology::AsEcosystem& ecosystem,
                                     const gazetteer::Gazetteer& gaz, net::Asn asn,
                                     double local_radius_km) {
  const auto& as = ecosystem.at(asn);
  CaseStudyReport report;
  report.asn = asn;
  report.name = as.name;
  report.level = as.level;

  // Home city: largest service PoP.
  const topology::PopSite* main_pop = nullptr;
  for (const auto& pop : as.pops) {
    if (!pop.transit_only &&
        (main_pop == nullptr || pop.customer_share > main_pop->customer_share)) {
      main_pop = &pop;
    }
  }
  if (main_pop != nullptr) report.home_city = main_pop->city;

  // Expectation from geography: city-level -> 1-2 regional upstreams;
  // broader ASes may reasonably multi-home more.
  switch (as.level) {
    case topology::AsLevel::kCity: report.expected_max_upstreams = 2; break;
    case topology::AsLevel::kState: report.expected_max_upstreams = 2; break;
    case topology::AsLevel::kCountry: report.expected_max_upstreams = 3; break;
    default: report.expected_max_upstreams = 4; break;
  }

  for (const auto provider : ecosystem.providers_of(asn)) {
    const auto& p = ecosystem.at(provider);
    report.upstreams.push_back(UpstreamInfo{
        provider, p.name, p.level, p.level == topology::AsLevel::kGlobal});
  }

  const auto near_pop = [&](gazetteer::CityId city) {
    return std::any_of(as.pops.begin(), as.pops.end(), [&](const topology::PopSite& pop) {
      return geo::distance_km(gaz.city(pop.city).location, gaz.city(city).location) <=
             local_radius_km;
    });
  };

  for (std::size_t i = 0; i < ecosystem.ixps().size(); ++i) {
    const auto& ixp = ecosystem.ixps()[i];
    const bool member = ixp.has_member(asn);
    const bool local = near_pop(ixp.city);
    if (member) {
      IxpPresence presence;
      presence.name = ixp.name;
      presence.city = ixp.city;
      presence.local = local;
      for (const auto& rel : ecosystem.relationships()) {
        if (rel.type != topology::RelationshipType::kPeerPeer) continue;
        if (!rel.ixp_index || *rel.ixp_index != i) continue;
        if (rel.customer == asn) presence.peers_there.push_back(rel.provider);
        if (rel.provider == asn) presence.peers_there.push_back(rel.customer);
      }
      report.memberships.push_back(std::move(presence));
    } else if (local) {
      report.skipped_local_ixps.push_back(ixp.name);
    }
  }

  // Deviations from the naive geography-based expectation.
  if (report.upstreams.size() > report.expected_max_upstreams) {
    report.surprises.push_back(
        "rich upstream connectivity: " + std::to_string(report.upstreams.size()) +
        " providers where <=" + std::to_string(report.expected_max_upstreams) +
        " were expected");
  }
  const auto global_upstreams = static_cast<std::size_t>(
      std::count_if(report.upstreams.begin(), report.upstreams.end(),
                    [](const UpstreamInfo& u) { return u.global_reach; }));
  if (global_upstreams > 0 && as.level == topology::AsLevel::kCity) {
    report.surprises.push_back("city-level AS buys transit from " +
                               std::to_string(global_upstreams) +
                               " provider(s) with global reach");
  }
  for (const auto& membership : report.memberships) {
    if (!membership.local && !membership.peers_there.empty()) {
      report.surprises.push_back("remote peering at " + membership.name + " with " +
                                 std::to_string(membership.peers_there.size()) +
                                 " AS(es) despite no nearby PoP");
    }
  }
  if (!report.skipped_local_ixps.empty() && !report.memberships.empty()) {
    report.surprises.push_back(
        "absent from local IXP(s) (" + report.skipped_local_ixps.front() +
        ") while peering elsewhere");
  }
  return report;
}

}  // namespace eyeball::connectivity
