// Geography-based connectivity prediction — the paper's §7 future-work
// question, implemented: "how to leverage the geo-properties of an eyeball
// AS to predict likely scenarios of how the AS connects to the rest of the
// Internet".
//
// Given only an AS's inferred PoP-level footprint (cities + densities), the
// predictor proposes:
//   * upstream providers: transit ASes whose PoP cities overlap the
//     footprint, ranked by overlap weight (plus the national incumbents of
//     the footprint's home country);
//   * IXP memberships: IXPs within a local radius of the footprint cities,
//     ranked by the local user density.
// Predictions are scored against the ground-truth relationships, and —
// per the paper's own conclusion — they systematically UNDER-predict:
// multi-homing to global carriers and remote peering are invisible to
// geography.  The `repro_predictor` bench quantifies that gap.
#pragma once

#include <vector>

#include "core/pop_mapper.hpp"
#include "gazetteer/gazetteer.hpp"
#include "topology/types.hpp"

namespace eyeball::connectivity {

struct PredictedProvider {
  net::Asn asn{};
  /// Sum of footprint densities at cities where the provider has a PoP.
  double overlap = 0.0;
};

struct PredictedIxp {
  std::size_t ixp_index = 0;
  double local_density = 0.0;
};

struct ConnectivityPrediction {
  std::vector<PredictedProvider> providers;  // ranked by overlap desc
  std::vector<PredictedIxp> ixps;            // ranked by density desc
};

struct PredictionScore {
  /// Fraction of actual providers that were predicted (any rank).
  double provider_recall = 0.0;
  /// Fraction of actual providers predicted within the top-2 (the naive
  /// "one or two upstreams" expectation).
  double provider_recall_top2 = 0.0;
  /// Fraction of actual IXP memberships predicted.
  double ixp_recall = 0.0;
  /// Actual connections invisible to geography: providers with no
  /// footprint overlap and remote IXP memberships.
  std::size_t unpredictable_providers = 0;
  std::size_t unpredictable_ixps = 0;
};

class ConnectivityPredictor {
 public:
  ConnectivityPredictor(const topology::AsEcosystem& ecosystem,
                        const gazetteer::Gazetteer& gazetteer,
                        double local_radius_km = 60.0);

  /// Predicts from an inferred PoP footprint.
  [[nodiscard]] ConnectivityPrediction predict(const core::PopFootprint& footprint) const;

  /// Scores a prediction against the AS's actual relationships/memberships.
  [[nodiscard]] PredictionScore score(net::Asn asn,
                                      const ConnectivityPrediction& prediction) const;

 private:
  const topology::AsEcosystem& eco_;
  const gazetteer::Gazetteer& gaz_;
  double local_radius_km_;
};

}  // namespace eyeball::connectivity
