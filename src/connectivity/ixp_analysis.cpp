#include "connectivity/ixp_analysis.hpp"

#include <algorithm>

namespace eyeball::connectivity {

PeeringReport analyze_peering(const topology::AsEcosystem& eco,
                              const gazetteer::Gazetteer& gaz, double local_radius_km) {
  PeeringReport report;

  // Per-IXP summaries.
  std::vector<std::size_t> peerings_per_ixp(eco.ixps().size(), 0);
  for (const auto& rel : eco.relationships()) {
    if (rel.type == topology::RelationshipType::kPeerPeer && rel.ixp_index) {
      ++peerings_per_ixp[*rel.ixp_index];
    }
  }
  for (std::size_t i = 0; i < eco.ixps().size(); ++i) {
    const auto& ixp = eco.ixps()[i];
    IxpSummary summary;
    summary.name = ixp.name;
    summary.city = ixp.city;
    summary.continent = gaz.city(ixp.city).continent;
    summary.members = ixp.members.size();
    summary.eyeball_members = static_cast<std::size_t>(
        std::count_if(ixp.members.begin(), ixp.members.end(), [&](net::Asn member) {
          return eco.at(member).role == topology::AsRole::kEyeball;
        }));
    summary.peerings = peerings_per_ixp[i];
    report.ixps.push_back(std::move(summary));
  }
  std::sort(report.ixps.begin(), report.ixps.end(),
            [](const IxpSummary& a, const IxpSummary& b) { return a.members > b.members; });

  // Per-continent eyeball profiles.
  using gazetteer::Continent;
  for (const Continent continent :
       {Continent::kNorthAmerica, Continent::kEurope, Continent::kAsia}) {
    ContinentPeeringProfile profile;
    profile.continent = continent;
    for (const auto& summary : report.ixps) {
      if (summary.continent == continent) ++profile.ixps;
    }

    std::size_t peer_edges = 0;
    std::size_t provider_edges = 0;
    std::size_t multihomed = 0;
    for (const auto& as : eco.ases()) {
      if (as.role != topology::AsRole::kEyeball || as.continent != continent) continue;
      ++profile.eyeballs;
      peer_edges += eco.peers_of(as.asn).size();
      const auto providers = eco.providers_of(as.asn).size();
      provider_edges += providers;
      if (providers > 2) ++multihomed;

      for (const auto ixp_index : eco.ixps_of(as.asn)) {
        const auto& ixp_city = gaz.city(eco.ixps()[ixp_index].city);
        const bool local =
            std::any_of(as.pops.begin(), as.pops.end(), [&](const topology::PopSite& pop) {
              return geo::distance_km(gaz.city(pop.city).location, ixp_city.location) <=
                     local_radius_km;
            });
        if (local) {
          ++profile.local_memberships;
        } else {
          ++profile.remote_memberships;
        }
      }
    }
    if (profile.eyeballs > 0) {
      profile.avg_peers_per_eyeball =
          static_cast<double>(peer_edges) / static_cast<double>(profile.eyeballs);
      profile.avg_providers_per_eyeball =
          static_cast<double>(provider_edges) / static_cast<double>(profile.eyeballs);
      profile.multihomed_fraction =
          static_cast<double>(multihomed) / static_cast<double>(profile.eyeballs);
    }
    report.continents.push_back(profile);
  }
  return report;
}

}  // namespace eyeball::connectivity
