// Synthetic geo-IP database with a configurable error mixture.
//
// Lookups start from the ground-truth zip centroid of the IP and corrupt it
// with one of four outcomes, drawn deterministically per (database, IP):
//   * exact        — the true zip centroid (quantization error only),
//   * wrong zip    — another zip centroid of the same city,
//   * wrong city   — a zip centroid of a different city in the same country,
//   * far          — a zip centroid of a random city anywhere.
// Two instances with different seeds model two independent vendors, so the
// inter-database distance behaves like the paper's geo-error estimate.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "geodb/geo_database.hpp"
#include "topology/ground_truth.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace eyeball::geodb {

struct ErrorModel {
  double exact = 0.78;
  double wrong_zip = 0.14;
  double wrong_city = 0.06;
  double far = 0.02;
  /// Probability of having no city-level record at all.
  double missing = 0.025;
  /// Vendors build on shared registry/WHOIS data, so some mistakes are
  /// *correlated*: with this probability an entire /20 is mapped by BOTH
  /// databases to the same wrong city (keyed by the block, not the vendor),
  /// which defeats the inter-database error estimate — the error mode that
  /// produces spurious PoP peaks at fine kernel bandwidths.
  double correlated_block_error = 0.006;

  /// Model with no corruption (for oracle tests).
  [[nodiscard]] static ErrorModel perfect() noexcept {
    return {1.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  }
};

class SyntheticGeoDatabase final : public GeoDatabase {
 public:
  SyntheticGeoDatabase(std::string name, const topology::GroundTruthLocator& truth,
                       ErrorModel model, std::uint64_t seed);

  [[nodiscard]] std::optional<GeoRecord> lookup(net::Ipv4Address ip) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] const ErrorModel& error_model() const noexcept { return model_; }

 private:
  [[nodiscard]] GeoRecord record_for(gazetteer::CityId city,
                                     const geo::GeoPoint& location) const;
  [[nodiscard]] GeoRecord correlated_record(std::uint32_t block) const;

  std::string name_;
  const topology::GroundTruthLocator& truth_;
  ErrorModel model_;
  std::uint64_t seed_;
  std::vector<gazetteer::CityId> all_cities_;
  /// Zip lattices precomputed per city (indexed by CityId) so lookups never
  /// regenerate them.
  std::vector<std::vector<geo::GeoPoint>> lattices_;
  /// City candidate pool per country, in gazetteer country order.
  std::vector<std::vector<gazetteer::CityId>> country_cities_;
  std::vector<std::size_t> country_index_of_city_;
  /// The correlated-block record is a pure function of the /20 block (see
  /// lookup), yet computing it runs the gazetteer's nearest-city scan — by
  /// far the most expensive step of any lookup.  Every IP of a correlated
  /// block repeats that scan verbatim, so the record is memoized per block.
  /// Guarded for the GeoDatabase concurrent-lookup contract: hits take a
  /// shared lock on a branch only ~0.6% of lookups reach, so the hot path
  /// stays effectively lock-free.
  mutable util::SharedMutex correlated_mutex_;
  mutable std::unordered_map<std::uint32_t, GeoRecord> correlated_cache_
      EYEBALL_GUARDED_BY(correlated_mutex_);
};

}  // namespace eyeball::geodb
