#include "geodb/synthetic_db.hpp"

#include <cmath>
#include <stdexcept>

#include "gazetteer/zip_lattice.hpp"
#include "util/rng.hpp"

namespace eyeball::geodb {

std::optional<double> geo_error_km(const GeoDatabase& primary, const GeoDatabase& secondary,
                                   net::Ipv4Address ip) {
  const auto a = primary.lookup(ip);
  if (!a) return std::nullopt;
  const auto b = secondary.lookup(ip);
  if (!b) return std::nullopt;
  return geo::distance_km(a->location, b->location);
}

SyntheticGeoDatabase::SyntheticGeoDatabase(std::string name,
                                           const topology::GroundTruthLocator& truth,
                                           ErrorModel model, std::uint64_t seed)
    : name_(std::move(name)), truth_(truth), model_(model), seed_(seed) {
  const double total =
      model_.exact + model_.wrong_zip + model_.wrong_city + model_.far;
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument{"SyntheticGeoDatabase: outcome mixture must sum to 1"};
  }
  if (model_.missing < 0.0 || model_.missing > 1.0) {
    throw std::invalid_argument{"SyntheticGeoDatabase: bad missing probability"};
  }

  const auto& gaz = truth_.gazetteer();
  lattices_.resize(gaz.cities().size());
  country_index_of_city_.resize(gaz.cities().size());
  country_cities_.resize(gaz.countries().size());
  for (const auto& city : gaz.cities()) {
    all_cities_.push_back(city.id);
    lattices_[city.id] = gazetteer::zip_centroids(city);
    for (std::size_t i = 0; i < gaz.countries().size(); ++i) {
      if (gaz.countries()[i].code == city.country_code) {
        country_index_of_city_[city.id] = i;
        country_cities_[i].push_back(city.id);
        break;
      }
    }
  }
}

GeoRecord SyntheticGeoDatabase::record_for(gazetteer::CityId city,
                                           const geo::GeoPoint& location) const {
  const auto& c = truth_.gazetteer().city(city);
  return GeoRecord{c.name, c.region, c.country_code, location, city};
}

GeoRecord SyntheticGeoDatabase::correlated_record(std::uint32_t block) const {
  // Replays the block stream from scratch: the bernoulli that routed the
  // caller here is drawn (and discarded) again so the draws below see the
  // exact state the pre-memoization code saw.
  util::Rng block_rng{util::mix64(0xb10cf00dULL, block)};
  (void)block_rng.bernoulli(model_.correlated_block_error);
  const gazetteer::CityId anchor =
      all_cities_[block_rng.uniform_index(all_cities_.size())];
  const auto& anchor_city = truth_.gazetteer().city(anchor);
  const geo::GeoPoint bogus =
      geo::destination(anchor_city.location, block_rng.uniform(0.0, 360.0),
                       block_rng.uniform(40.0, 160.0));
  // Vendors disagree by a small per-vendor offset (below the filter).
  util::Rng vendor_rng{util::mix64(seed_, block)};
  const geo::GeoPoint reported =
      geo::destination(bogus, vendor_rng.uniform(0.0, 360.0),
                       vendor_rng.uniform(0.0, 15.0));
  const auto nearest = truth_.gazetteer().nearest_city(reported);
  const auto& named = truth_.gazetteer().city(nearest);
  return GeoRecord{named.name, named.region, named.country_code, reported, nearest};
}

std::optional<GeoRecord> SyntheticGeoDatabase::lookup(net::Ipv4Address ip) const {
  const auto truth = truth_.locate(ip);
  if (!truth) return std::nullopt;

  // Correlated block error first: keyed by the /20 only, NOT the vendor
  // seed, so both databases make the same mistake and the inter-database
  // error proxy cannot catch it.  The bogus location is an arbitrary
  // coordinate (vendors fall back to country centroids and registry
  // addresses, not real city centers), so such clusters usually have no
  // large city nearby — the exact artifact the paper's alpha / "no city"
  // rule is designed to filter (Sec. 4.2).
  util::Rng block_rng{util::mix64(0xb10cf00dULL, ip.value() >> 12)};
  if (block_rng.bernoulli(model_.correlated_block_error)) {
    const std::uint32_t block = ip.value() >> 12;
    {
      const util::SharedReaderLock lock{correlated_mutex_};
      if (const auto it = correlated_cache_.find(block); it != correlated_cache_.end()) {
        return it->second;
      }
    }
    GeoRecord record = correlated_record(block);
    const util::SharedWriterLock lock{correlated_mutex_};
    return correlated_cache_.emplace(block, record).first->second;
  }

  // One deterministic stream per (database, IP): repeated lookups agree.
  util::Rng rng{util::mix64(seed_, ip.value())};
  if (rng.bernoulli(model_.missing)) return std::nullopt;

  const double roll = rng.uniform();
  if (roll < model_.exact) {
    return record_for(truth->city, truth->location);
  }
  if (roll < model_.exact + model_.wrong_zip) {
    // Another zip centroid of the same city.
    const auto& lattice = lattices_[truth->city];
    return record_for(truth->city, lattice[rng.uniform_index(lattice.size())]);
  }
  if (roll < model_.exact + model_.wrong_zip + model_.wrong_city) {
    // A different city in the same country.  Uniform choice keeps the
    // error's tail heavy, like real vendor mistakes.
    const auto& candidates = country_cities_[country_index_of_city_[truth->city]];
    gazetteer::CityId other = candidates[rng.uniform_index(candidates.size())];
    if (candidates.size() > 1) {
      while (other == truth->city) {
        other = candidates[rng.uniform_index(candidates.size())];
      }
    }
    const auto& lattice = lattices_[other];
    return record_for(other, lattice[rng.uniform_index(lattice.size())]);
  }
  // Far miss: any city in the world.
  const gazetteer::CityId other = all_cities_[rng.uniform_index(all_cities_.size())];
  const auto& lattice = lattices_[other];
  return record_for(other, lattice[rng.uniform_index(lattice.size())]);
}

}  // namespace eyeball::geodb
