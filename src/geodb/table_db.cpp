#include "geodb/table_db.hpp"

#include <charconv>
#include <stdexcept>

#include "util/format.hpp"

namespace eyeball::geodb {
namespace {

std::invalid_argument parse_error(std::size_t line, const char* what) {
  return std::invalid_argument{"TableGeoDatabase: " + std::string{what} + " on line " +
                               std::to_string(line)};
}

std::optional<double> parse_double(std::string_view text) {
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) return std::nullopt;
  return out;
}

/// Splits `line` into exactly `n` '|'-separated fields.
bool split_fields(std::string_view line, std::string_view* fields, std::size_t n) {
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto bar = line.find('|');
    if (bar == std::string_view::npos) return false;
    fields[i] = line.substr(0, bar);
    line.remove_prefix(bar + 1);
  }
  if (line.find('|') != std::string_view::npos) return false;
  fields[n - 1] = line;
  return true;
}

}  // namespace

TableGeoDatabase::TableGeoDatabase(std::string name, std::vector<Row> rows,
                                   const gazetteer::Gazetteer* gazetteer)
    : name_(std::move(name)), rows_(std::move(rows)) {
  city_ids_.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!geo::is_valid(rows_[i].location)) {
      throw std::invalid_argument{"TableGeoDatabase: invalid coordinates for " +
                                  rows_[i].prefix.to_string()};
    }
    trie_.insert(rows_[i].prefix, i);
    gazetteer::CityId id = gazetteer::kInvalidCity;
    if (gazetteer != nullptr) {
      if (const auto found =
              gazetteer->find_by_name(rows_[i].city, rows_[i].country_code)) {
        id = *found;
      }
    }
    city_ids_.push_back(id);
  }
}

TableGeoDatabase TableGeoDatabase::parse(std::string name, std::string_view text,
                                         const gazetteer::Gazetteer* gazetteer) {
  std::vector<Row> rows;
  std::size_t line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const auto newline = text.find('\n');
    std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text.remove_prefix(newline == std::string_view::npos ? text.size() : newline + 1);
    if (line.empty() || line.front() == '#') continue;

    std::string_view fields[6];
    if (!split_fields(line, fields, 6)) throw parse_error(line_number, "wrong field count");
    const auto prefix = net::Ipv4Prefix::parse(fields[0]);
    if (!prefix) throw parse_error(line_number, "bad prefix");
    const auto lat = parse_double(fields[1]);
    const auto lon = parse_double(fields[2]);
    if (!lat || !lon) throw parse_error(line_number, "bad coordinates");
    if (fields[5].size() != 2) throw parse_error(line_number, "bad country code");

    Row row;
    row.prefix = *prefix;
    row.location = {*lat, *lon};
    row.city = std::string{fields[3]};
    row.region = std::string{fields[4]};
    row.country_code = std::string{fields[5]};
    rows.push_back(std::move(row));
  }
  return TableGeoDatabase{std::move(name), std::move(rows), gazetteer};
}

std::optional<GeoRecord> TableGeoDatabase::lookup(net::Ipv4Address ip) const {
  const auto index = trie_.longest_match(ip);
  if (!index) return std::nullopt;
  const Row& row = rows_[*index];
  return GeoRecord{row.city, row.region, row.country_code, row.location,
                   city_ids_[*index]};
}

std::string TableGeoDatabase::dump() const {
  std::string out;
  for (const auto& row : rows_) {
    out += row.prefix.to_string();
    out += '|';
    out += util::fixed(row.location.lat_deg, 4);
    out += '|';
    out += util::fixed(row.location.lon_deg, 4);
    out += '|';
    out += row.city;
    out += '|';
    out += row.region;
    out += '|';
    out += row.country_code;
    out += '\n';
  }
  return out;
}

std::string TableGeoDatabase::export_database(
    const GeoDatabase& source, const std::vector<net::Ipv4Prefix>& prefixes) {
  std::string out;
  out += "# exported from ";
  out += source.name();
  out += '\n';
  for (const auto& prefix : prefixes) {
    const auto record = source.lookup(prefix.first());
    if (!record) continue;
    out += prefix.to_string();
    out += '|';
    out += util::fixed(record->location.lat_deg, 4);
    out += '|';
    out += util::fixed(record->location.lon_deg, 4);
    out += '|';
    out += std::string{record->city};
    out += '|';
    out += std::string{record->region};
    out += '|';
    out += std::string{record->country_code};
    out += '\n';
  }
  return out;
}

}  // namespace eyeball::geodb
