// Table-backed geo database: the adapter a downstream user needs to plug a
// real vendor dump (MaxMind/IP2Location CSV exports) into the pipeline.
//
// Format, one record per line:
//   prefix|lat|lon|city|region|country_code
// e.g.
//   151.38.0.0/16|45.4642|9.1900|Milan|Lombardy|IT
//
// Lookups are longest-prefix matches; unknown space has no record, exactly
// like a vendor database with partial coverage.  `dump` serializes any
// GeoDatabase over a prefix list into this format, so a synthetic database
// can be exported, stored, and reloaded (tested round-trip).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "geodb/geo_database.hpp"
#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"

namespace eyeball::geodb {

class TableGeoDatabase final : public GeoDatabase {
 public:
  struct Row {
    net::Ipv4Prefix prefix;
    geo::GeoPoint location;
    std::string city;
    std::string region;
    std::string country_code;
  };

  /// Builds from parsed rows.  Later rows overwrite earlier ones for the
  /// same prefix (vendor updates append).
  TableGeoDatabase(std::string name, std::vector<Row> rows,
                   const gazetteer::Gazetteer* gazetteer = nullptr);

  /// Parses the text format; throws std::invalid_argument with a line
  /// number on malformed input.  If `gazetteer` is given, records are
  /// linked to gazetteer cities by (name, country) so the classifier can
  /// use them.
  [[nodiscard]] static TableGeoDatabase parse(std::string name, std::string_view text,
                                              const gazetteer::Gazetteer* gazetteer = nullptr);

  [[nodiscard]] std::optional<GeoRecord> lookup(net::Ipv4Address ip) const override;
  [[nodiscard]] std::string_view name() const noexcept override { return name_; }

  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }

  /// Serializes one row per line in the parseable format.
  [[nodiscard]] std::string dump() const;

  /// Exports another database's answers over `prefixes` into table text
  /// (sampling the first address of each prefix).
  [[nodiscard]] static std::string export_database(
      const GeoDatabase& source, const std::vector<net::Ipv4Prefix>& prefixes);

 private:
  std::string name_;
  std::vector<Row> rows_;
  std::vector<gazetteer::CityId> city_ids_;  // parallel to rows_
  net::PrefixTrie<std::size_t> trie_;        // prefix -> row index
};

}  // namespace eyeball::geodb
