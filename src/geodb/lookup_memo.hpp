// Per-thread geo-lookup memo.
//
// Crawl samples carry heavy IP repetition (dynamic-IP churn re-observes the
// same hosts across snapshots, and dense PoPs are sampled many times), so
// the dataset build's two `GeoDatabase::lookup` calls per sample often re-do
// work.  LookupMemo is a small direct-mapped cache over one database,
// keyed by the exact IP: because `lookup` is required to be deterministic
// per IP (see GeoDatabase), a hit returns byte-identical answers and the
// memo is invisible to results at any size, including 0 (disabled).
//
// The memo itself is intentionally NOT thread-safe: each dataset-build
// shard owns private memos, so the hot path stays lock-free.
//
// Lifetime: a memo may outlive one build — the streaming dataset builder
// keeps per-shard memos across ingest() windows so cross-window IP
// repetition (dynamic-address churn re-observes hosts) keeps paying off.
// reset() drops the cached records and counters without reallocating, for
// callers that restart a longitudinal study on the same databases.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "geodb/geo_database.hpp"
#include "net/ipv4.hpp"
#include "util/check.hpp"

namespace eyeball::geodb {

class LookupMemo {
 public:
  /// `slots` == 0 disables memoization (every lookup hits the database).
  /// Other values are rounded up to a power of two for cheap indexing.
  explicit LookupMemo(const GeoDatabase& db, std::size_t slots)
      : db_(&db) {
    if (slots == 0) return;
    std::size_t rounded = 1;
    while (rounded < slots) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
    // The `h & mask_` slot index below is only uniform (and in range) when
    // the table size stays a power of two.
    EYEBALL_DCHECK((slots_.size() & mask_) == 0 && slots_.size() == mask_ + 1,
                   "memo table size must be a power of two");
  }

  [[nodiscard]] std::optional<GeoRecord> lookup(net::Ipv4Address ip) {
    if (slots_.empty()) return db_->lookup(ip);
    // Mix the high bits down so IPs from one allocation block spread over
    // the table instead of fighting for one slot.
    std::uint32_t h = ip.value();
    h ^= h >> 16;
    h *= 0x45d9f3bu;
    h ^= h >> 16;
    Slot& slot = slots_[h & mask_];
    if (slot.used && slot.ip == ip) {
      ++hits_;
      return slot.record;
    }
    ++misses_;
    slot.used = true;
    slot.ip = ip;
    slot.record = db_->lookup(ip);
    return slot.record;
  }

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }
  /// Hits as a fraction of all lookups (0.0 before the first lookup).
  [[nodiscard]] double hit_rate() const noexcept {
    const std::size_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  /// Actual slot count after power-of-two rounding; 0 when disabled.
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Forgets every cached record and zeroes the hit/miss counters; the
  /// table keeps its size (no reallocation).  Like construction, this is
  /// invisible to lookup results.
  void reset() noexcept {
    for (Slot& slot : slots_) slot.used = false;
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Slot {
    net::Ipv4Address ip;
    std::optional<GeoRecord> record;
    bool used = false;
  };

  const GeoDatabase* db_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace eyeball::geodb
