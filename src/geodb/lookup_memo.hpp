// Per-thread geo-lookup memo.
//
// Crawl samples carry heavy IP repetition (dynamic-IP churn re-observes the
// same hosts across snapshots, and dense PoPs are sampled many times), so
// the dataset build's two `GeoDatabase::lookup` calls per sample often re-do
// work.  LookupMemo is a small direct-mapped cache over one database,
// keyed by the exact IP: because `lookup` is required to be deterministic
// per IP (see GeoDatabase), a hit returns byte-identical answers and the
// memo is invisible to results at any size, including 0 (disabled).
//
// The memo itself is intentionally NOT thread-safe: each dataset-build
// shard owns private memos, so the hot path stays lock-free.  That
// single-owner contract is encoded as a phantom `owner_` role (see
// util::Serial): every method claims it for its duration — free at
// runtime — so under EYEBALL_THREAD_SAFETY the cache state is unreachable
// except through code that visibly holds the role.
//
// Lifetime: a memo may outlive one build — the streaming dataset builder
// keeps per-shard memos across ingest() windows so cross-window IP
// repetition (dynamic-address churn re-observes hosts) keeps paying off.
// reset() drops the cached records and counters without reallocating, for
// callers that restart a longitudinal study on the same databases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "geodb/geo_database.hpp"
#include "net/ipv4.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/mutex.hpp"

namespace eyeball::geodb {

class LookupMemo {
 public:
  /// `slots` == 0 disables memoization (every lookup hits the database).
  /// Other values are rounded up to a power of two for cheap indexing.
  explicit LookupMemo(const GeoDatabase& db, std::size_t slots)
      : db_(&db) {
    if (slots == 0) return;
    std::size_t rounded = 1;
    while (rounded < slots) rounded <<= 1;
    // SoA layout: the probed keys live in their own dense array (8 bytes a
    // slot, so even a big memo's key table stays cache-resident) while the
    // fat records sit in a parallel array touched only on a hit or a fill.
    keys_.assign(rounded, kEmptyKey);
    records_.resize(rounded);
    pending_.assign(rounded, -1);
    mask_ = rounded - 1;
    // The `h & mask_` slot index below is only uniform (and in range) when
    // the table size stays a power of two.
    EYEBALL_DCHECK((keys_.size() & mask_) == 0 && keys_.size() == mask_ + 1,
                   "memo table size must be a power of two");
  }

  [[nodiscard]] std::optional<GeoRecord> lookup(net::Ipv4Address ip) {
    const util::SerialSection owner{owner_};
    if (keys_.empty()) return db_->lookup(ip);
    const std::size_t s = slot_index(ip);
    if (keys_[s] == key_of(ip)) {
      ++hits_;
      return records_[s];
    }
    ++misses_;
    keys_[s] = key_of(ip);
    records_[s] = db_->lookup(ip);
    return records_[s];
  }

  /// Batched lookup: `out[i] = lookup(ips[i])`, with the database misses
  /// collected and resolved through one GeoDatabase::lookup_batch call so a
  /// batching database amortizes per-call costs.  Counters, slot contents
  /// and results are exactly those of the scalar loop: probes run in batch
  /// order against live slot metadata (a miss claims its slot immediately,
  /// so a later probe of the same IP in the same batch hits, and a
  /// colliding IP evicts — just like serial), and deferred records resolve
  /// in miss order, leaving each slot with its last claimant's record.
  void lookup_batch(std::span<const net::Ipv4Address> ips,
                    std::span<std::optional<GeoRecord>> out) {
    const util::SerialSection owner{owner_};
    if (keys_.empty()) {
      db_->lookup_batch(ips, out);
      return;
    }
    miss_ips_.clear();
    miss_slots_.clear();
    miss_out_.clear();
    alias_out_.clear();
    for (std::size_t i = 0; i < ips.size(); ++i) {
      const std::size_t s = slot_index(ips[i]);
      if (keys_[s] == key_of(ips[i])) {
        ++hits_;
        if (pending_[s] >= 0) {
          // Hit on a slot claimed earlier in this batch: the record is not
          // computed yet; resolve the alias after the database batch.
          alias_out_.emplace_back(i, static_cast<std::size_t>(pending_[s]));
        } else {
          out[i] = records_[s];
        }
        continue;
      }
      ++misses_;
      keys_[s] = key_of(ips[i]);
      pending_[s] = static_cast<std::int32_t>(miss_ips_.size());
      miss_ips_.push_back(ips[i]);
      miss_slots_.push_back(s);
      miss_out_.push_back(i);
    }
    if (miss_ips_.size() == ips.size()) {
      // Every probe missed (the common case for crawl batches, whose IPs
      // are mostly unique): resolve the database batch straight into `out`
      // and back-fill the memo from there, skipping the intermediate
      // record buffer — one fewer record copy per lookup.
      db_->lookup_batch(ips, out);
      for (std::size_t m = 0; m < miss_slots_.size(); ++m) {
        const std::size_t s = miss_slots_[m];
        // In miss order, so a slot contested within the batch keeps its
        // last claimant's record — the state the serial loop leaves behind.
        records_[s] = out[m];
        pending_[s] = -1;
      }
      return;
    }
    miss_records_.resize(miss_ips_.size());
    db_->lookup_batch(miss_ips_, miss_records_);
    for (std::size_t m = 0; m < miss_ips_.size(); ++m) {
      const std::size_t s = miss_slots_[m];
      records_[s] = miss_records_[m];
      pending_[s] = -1;
      out[miss_out_[m]] = miss_records_[m];
    }
    for (const auto& [i, m] : alias_out_) out[i] = miss_records_[m];
  }

  [[nodiscard]] std::size_t hits() const noexcept {
    const util::SerialSection owner{owner_};
    return hits_;
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    const util::SerialSection owner{owner_};
    return misses_;
  }
  /// Hits as a fraction of all lookups (0.0 before the first lookup).
  [[nodiscard]] double hit_rate() const noexcept {
    const util::SerialSection owner{owner_};
    const std::size_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  /// Actual slot count after power-of-two rounding; 0 when disabled.
  [[nodiscard]] std::size_t capacity() const noexcept {
    const util::SerialSection owner{owner_};
    return keys_.size();
  }

  /// Forgets every cached record and zeroes the hit/miss counters; the
  /// table keeps its size (no reallocation).  Like construction, this is
  /// invisible to lookup results.
  void reset() noexcept {
    const util::SerialSection owner{owner_};
    for (auto& key : keys_) key = kEmptyKey;
    hits_ = 0;
    misses_ = 0;
  }

 private:
  /// An IPv4 value widened past 32 bits so no real IP collides with the
  /// empty-slot marker.
  static constexpr std::uint64_t kEmptyKey = 0;
  [[nodiscard]] static constexpr std::uint64_t key_of(net::Ipv4Address ip) noexcept {
    return static_cast<std::uint64_t>(ip.value()) + 1;
  }

  [[nodiscard]] std::size_t slot_index(net::Ipv4Address ip) const noexcept
      EYEBALL_REQUIRES(owner_) {
    // Mix the high bits down so IPs from one allocation block spread over
    // the table instead of fighting for one slot.
    std::uint32_t h = ip.value();
    h ^= h >> 16;
    h *= 0x45d9f3bu;
    h ^= h >> 16;
    return h & mask_;
  }

  /// The "owning shard" role: phantom, so holding it costs nothing — but
  /// every guarded member below is unreachable without it.  `mutable`
  /// because const readers (counters) claim it too.
  mutable util::Serial owner_;

  const GeoDatabase* db_;
  std::vector<std::uint64_t> keys_ EYEBALL_GUARDED_BY(owner_);
  std::vector<std::optional<GeoRecord>> records_ EYEBALL_GUARDED_BY(owner_);
  /// Per-slot index into the in-flight batch's miss list, -1 outside a
  /// lookup_batch call.
  std::vector<std::int32_t> pending_ EYEBALL_GUARDED_BY(owner_);
  std::size_t mask_ EYEBALL_GUARDED_BY(owner_) = 0;
  std::size_t hits_ EYEBALL_GUARDED_BY(owner_) = 0;
  std::size_t misses_ EYEBALL_GUARDED_BY(owner_) = 0;
  // lookup_batch scratch, reused across batches (the memo is single-owner
  // by contract, so plain members are safe).
  std::vector<net::Ipv4Address> miss_ips_ EYEBALL_GUARDED_BY(owner_);
  std::vector<std::size_t> miss_slots_ EYEBALL_GUARDED_BY(owner_);
  std::vector<std::size_t> miss_out_ EYEBALL_GUARDED_BY(owner_);
  std::vector<std::optional<GeoRecord>> miss_records_ EYEBALL_GUARDED_BY(owner_);
  std::vector<std::pair<std::size_t, std::size_t>> alias_out_ EYEBALL_GUARDED_BY(owner_);
};

}  // namespace eyeball::geodb
