// IP geo-location database interface.
//
// The paper consumes two independent commercial databases (MaxMind GeoIP
// City and IP2Location DB-15), each mapping an IP to a
// (city, state, country, longitude, latitude) record at zip-code
// resolution, and uses the distance between their answers as a per-IP
// error estimate.  This interface reproduces that contract.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "gazetteer/types.hpp"
#include "geo/point.hpp"
#include "net/ipv4.hpp"

namespace eyeball::geodb {

struct GeoRecord {
  std::string_view city;
  std::string_view region;
  std::string_view country_code;
  /// Zip-centroid coordinates (the paper: "the resolution of the provided
  /// coordinates is zip codes in each city").
  geo::GeoPoint location;
  /// Gazetteer id of the city the name fields refer to.  The level
  /// classifier aggregates on this, mirroring the paper's use of the
  /// databases' (city, state, country) fields rather than re-deriving
  /// geography from raw coordinates.
  gazetteer::CityId city_id = gazetteer::kInvalidCity;
};

class GeoDatabase {
 public:
  virtual ~GeoDatabase() = default;

  /// City-level record for `ip`, or nullopt when the database has no
  /// city-level entry (the paper drops ~2.4 M peers for this reason).
  ///
  /// Thread-safety contract: implementations must be safe for concurrent
  /// `lookup` calls from multiple threads on the same const instance, and
  /// repeated lookups of the same IP must return the same record — the
  /// sharded dataset build fans lookups out over a thread pool and may
  /// memoize per worker (see LookupMemo).  Both shipped implementations
  /// satisfy this: lookups read only immutable state (tries, tables,
  /// per-IP-seeded RNG streams).
  [[nodiscard]] virtual std::optional<GeoRecord> lookup(net::Ipv4Address ip) const = 0;

  /// Batched lookup: `out[i] = lookup(ips[i])` for every i.  The base
  /// implementation is exactly that loop; implementations may override to
  /// amortize per-call costs over the batch, but results must stay
  /// element-for-element identical to the scalar path (the conditioning
  /// arenas fan whole sample blocks through this and the byte-identity
  /// tests compare against per-IP lookups).  Same thread-safety contract as
  /// lookup().  `out.size()` must be >= `ips.size()`.
  virtual void lookup_batch(std::span<const net::Ipv4Address> ips,
                            std::span<std::optional<GeoRecord>> out) const {
    for (std::size_t i = 0; i < ips.size(); ++i) out[i] = lookup(ips[i]);
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

/// Distance between two databases' answers for one IP — the paper's §2
/// first-order error proxy.  nullopt when either database has no record.
[[nodiscard]] std::optional<double> geo_error_km(const GeoDatabase& primary,
                                                 const GeoDatabase& secondary,
                                                 net::Ipv4Address ip);

}  // namespace eyeball::geodb
