#include "bgp/rib.hpp"

#include <algorithm>
#include <charconv>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace eyeball::bgp {

RibSnapshot::RibSnapshot(std::vector<RibEntry> entries) : entries_(std::move(entries)) {
  for (const auto& entry : entries_) {
    if (entry.as_path.empty()) {
      throw std::invalid_argument{"RibSnapshot: empty AS path"};
    }
  }
  build_trie();
}

void RibSnapshot::build_trie() {
  for (const auto& entry : entries_) {
    trie_.insert(entry.prefix, entry.origin());
  }
}

RibSnapshot RibSnapshot::from_ecosystem(const topology::AsEcosystem& ecosystem,
                                        std::uint64_t seed) {
  util::Rng rng{seed};

  // First-provider map (deterministic) and the tier-1 set.
  std::map<std::uint32_t, net::Asn> first_provider;
  std::vector<net::Asn> tier1s;
  for (const auto& as : ecosystem.ases()) {
    if (as.role == topology::AsRole::kTier1) tier1s.push_back(as.asn);
  }
  for (const auto& rel : ecosystem.relationships()) {
    if (rel.type == topology::RelationshipType::kCustomerProvider) {
      first_provider.emplace(net::value_of(rel.customer), rel.provider);
    }
  }
  if (tier1s.empty()) throw std::invalid_argument{"from_ecosystem: no tier-1 ASes"};
  const net::Asn collector_upstream = tier1s[rng.uniform_index(tier1s.size())];

  std::vector<RibEntry> entries;
  for (const auto& as : ecosystem.ases()) {
    // Provider chain: origin -> ... -> tier-1 (or stuck, then treat top as
    // peerless and still announce).
    std::vector<net::Asn> chain{as.asn};
    net::Asn cursor = as.asn;
    for (int hops = 0; hops < 16; ++hops) {
      if (ecosystem.at(cursor).role == topology::AsRole::kTier1) break;
      const auto it = first_provider.find(net::value_of(cursor));
      if (it == first_provider.end()) break;
      cursor = it->second;
      chain.push_back(cursor);
    }
    // Collector path: collector's tier-1, then down the chain to the origin.
    std::vector<net::Asn> path;
    if (chain.back() != collector_upstream) path.push_back(collector_upstream);
    path.insert(path.end(), chain.rbegin(), chain.rend());

    for (const auto& pop : as.pops) {
      for (const auto& prefix : pop.prefixes) {
        entries.push_back(RibEntry{prefix, path});
      }
    }
  }
  return RibSnapshot{std::move(entries)};
}

std::optional<net::Asn> RibSnapshot::origin(net::Ipv4Address ip) const {
  return trie_.longest_match(ip);
}

std::string RibSnapshot::dump() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += entry.prefix.to_string();
    out += '|';
    for (std::size_t i = 0; i < entry.as_path.size(); ++i) {
      if (i > 0) out += ' ';
      out += std::to_string(net::value_of(entry.as_path[i]));
    }
    out += '\n';
  }
  return out;
}

RibSnapshot RibSnapshot::parse(std::string_view text) {
  std::vector<RibEntry> entries;
  std::size_t line_number = 0;
  while (!text.empty()) {
    ++line_number;
    const auto newline = text.find('\n');
    std::string_view line =
        newline == std::string_view::npos ? text : text.substr(0, newline);
    text.remove_prefix(newline == std::string_view::npos ? text.size() : newline + 1);
    if (line.empty()) continue;

    const auto bar = line.find('|');
    if (bar == std::string_view::npos) {
      throw std::invalid_argument{"RibSnapshot::parse: missing '|' on line " +
                                  std::to_string(line_number)};
    }
    const auto prefix = net::Ipv4Prefix::parse(line.substr(0, bar));
    if (!prefix) {
      throw std::invalid_argument{"RibSnapshot::parse: bad prefix on line " +
                                  std::to_string(line_number)};
    }
    RibEntry entry;
    entry.prefix = *prefix;
    std::string_view rest = line.substr(bar + 1);
    while (!rest.empty()) {
      while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
      if (rest.empty()) break;
      std::uint32_t asn = 0;
      const auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), asn);
      if (ec != std::errc{} || ptr == rest.data()) {
        throw std::invalid_argument{"RibSnapshot::parse: bad ASN on line " +
                                    std::to_string(line_number)};
      }
      rest.remove_prefix(static_cast<std::size_t>(ptr - rest.data()));
      entry.as_path.push_back(net::Asn{asn});
    }
    if (entry.as_path.empty()) {
      throw std::invalid_argument{"RibSnapshot::parse: empty AS path on line " +
                                  std::to_string(line_number)};
    }
    entries.push_back(std::move(entry));
  }
  return RibSnapshot{std::move(entries)};
}

}  // namespace eyeball::bgp
