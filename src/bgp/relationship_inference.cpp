#include "bgp/relationship_inference.hpp"

#include <algorithm>
#include <set>

namespace eyeball::bgp {
namespace {

using EdgeKey = std::pair<std::uint32_t, std::uint32_t>;

EdgeKey make_key(net::Asn a, net::Asn b) {
  auto key = std::make_pair(net::value_of(a), net::value_of(b));
  if (key.first > key.second) std::swap(key.first, key.second);
  return key;
}

struct Votes {
  std::size_t first_is_customer = 0;  // votes for key.first -> key.second C2P
  std::size_t second_is_customer = 0;
  std::size_t peer = 0;

  [[nodiscard]] std::size_t total() const {
    return first_is_customer + second_is_customer + peer;
  }
};

}  // namespace

std::map<std::uint32_t, std::size_t> RelationshipInferencer::degrees(
    const RibSnapshot& rib) {
  std::map<std::uint32_t, std::set<std::uint32_t>> neighbours;
  for (const auto& entry : rib.entries()) {
    for (std::size_t i = 1; i < entry.as_path.size(); ++i) {
      const auto a = net::value_of(entry.as_path[i - 1]);
      const auto b = net::value_of(entry.as_path[i]);
      if (a == b) continue;
      neighbours[a].insert(b);
      neighbours[b].insert(a);
    }
  }
  std::map<std::uint32_t, std::size_t> out;
  for (const auto& [asn, set] : neighbours) out[asn] = set.size();
  return out;
}

std::vector<InferredEdge> RelationshipInferencer::infer(const RibSnapshot& rib) const {
  const auto degree = degrees(rib);
  const auto degree_of = [&](net::Asn asn) {
    const auto it = degree.find(net::value_of(asn));
    return it == degree.end() ? std::size_t{0} : it->second;
  };

  std::map<EdgeKey, Votes> votes;
  for (const auto& entry : rib.entries()) {
    const auto& path = entry.as_path;
    if (path.size() < 2) continue;

    // Gao: the highest-degree AS on the path is the top; edges before it
    // go "up" (customer -> provider), edges after it go "down".
    std::size_t top = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      if (degree_of(path[i]) > degree_of(path[top])) top = i;
    }
    for (std::size_t i = 1; i < path.size(); ++i) {
      const net::Asn from = path[i - 1];
      const net::Asn to = path[i];
      if (from == to) continue;
      const auto key = make_key(from, to);
      auto& vote = votes[key];

      // Adjacent to the top with comparable degrees: likely a peering.
      const bool adjacent_to_top = (i == top) || (i - 1 == top);
      const double ratio =
          static_cast<double>(std::min(degree_of(from), degree_of(to))) /
          static_cast<double>(std::max<std::size_t>(1, std::max(degree_of(from),
                                                                degree_of(to))));
      if (adjacent_to_top && ratio >= config_.peer_degree_ratio) {
        ++vote.peer;
        continue;
      }
      if (i <= top) {
        // Uphill: `from` is a customer of `to`.
        if (net::value_of(from) == key.first) {
          ++vote.first_is_customer;
        } else {
          ++vote.second_is_customer;
        }
      } else {
        // Downhill: `to` is a customer of `from`.
        if (net::value_of(to) == key.first) {
          ++vote.first_is_customer;
        } else {
          ++vote.second_is_customer;
        }
      }
    }
  }

  std::vector<InferredEdge> out;
  out.reserve(votes.size());
  for (const auto& [key, vote] : votes) {
    if (vote.total() < config_.min_observations) continue;
    InferredEdge edge;
    edge.a = net::Asn{key.first};
    edge.b = net::Asn{key.second};
    // Majority decision; conflicting up/down votes indicate a peering.
    const std::size_t conflict = std::min(vote.first_is_customer, vote.second_is_customer);
    const std::size_t peer_votes = vote.peer + 2 * conflict;
    if (peer_votes >= vote.first_is_customer || peer_votes >= vote.second_is_customer) {
      if (vote.first_is_customer > vote.second_is_customer + vote.peer) {
        edge.relationship = InferredRelationship::kCustomerProvider;
        edge.confidence = static_cast<double>(vote.first_is_customer) /
                          static_cast<double>(vote.total());
      } else if (vote.second_is_customer > vote.first_is_customer + vote.peer) {
        edge.relationship = InferredRelationship::kProviderCustomer;
        edge.confidence = static_cast<double>(vote.second_is_customer) /
                          static_cast<double>(vote.total());
      } else {
        edge.relationship = InferredRelationship::kPeerPeer;
        edge.confidence = static_cast<double>(std::max(vote.peer, conflict)) /
                          static_cast<double>(vote.total());
      }
    } else if (vote.first_is_customer >= vote.second_is_customer) {
      edge.relationship = InferredRelationship::kCustomerProvider;
      edge.confidence = static_cast<double>(vote.first_is_customer) /
                        static_cast<double>(vote.total());
    } else {
      edge.relationship = InferredRelationship::kProviderCustomer;
      edge.confidence = static_cast<double>(vote.second_is_customer) /
                        static_cast<double>(vote.total());
    }
    out.push_back(edge);
  }
  return out;
}

}  // namespace eyeball::bgp
