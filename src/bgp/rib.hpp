// BGP RIB substrate.
//
// The paper groups users by AS with "archived BGP tables from the
// routeviews database".  We reproduce that pipeline stage: a RIB snapshot
// is derived from the ecosystem's prefix allocations with AS paths
// synthesized along valley-free provider chains toward a collector, can be
// serialized to / parsed from a RouteViews-style text dump, and backs a
// Patricia-trie IP -> origin-AS mapper.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.hpp"
#include "net/prefix_trie.hpp"
#include "topology/types.hpp"

namespace eyeball::bgp {

struct RibEntry {
  net::Ipv4Prefix prefix;
  /// AS path as seen by the collector; front() is the collector-adjacent
  /// AS, back() is the origin.
  std::vector<net::Asn> as_path;

  [[nodiscard]] net::Asn origin() const { return as_path.back(); }
};

class RibSnapshot {
 public:
  explicit RibSnapshot(std::vector<RibEntry> entries);

  /// Builds the collector view of `ecosystem`: one entry per announced
  /// prefix, AS path following the origin's first-provider chain up to a
  /// tier-1 and across to the collector's tier-1.
  [[nodiscard]] static RibSnapshot from_ecosystem(const topology::AsEcosystem& ecosystem,
                                                  std::uint64_t seed = 7);

  [[nodiscard]] std::span<const RibEntry> entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Longest-prefix-match origin lookup.
  [[nodiscard]] std::optional<net::Asn> origin(net::Ipv4Address ip) const;

  /// RouteViews-like text dump: one "prefix|asn asn ... asn" line per entry.
  [[nodiscard]] std::string dump() const;
  /// Parses a dump; throws std::invalid_argument on malformed lines.
  [[nodiscard]] static RibSnapshot parse(std::string_view text);

 private:
  void build_trie();

  std::vector<RibEntry> entries_;
  net::PrefixTrie<net::Asn> trie_;
};

/// Thin facade over a RIB for the pipeline's grouping step.
class IpToAsMapper {
 public:
  explicit IpToAsMapper(const RibSnapshot& rib) : rib_(&rib) {}

  [[nodiscard]] std::optional<net::Asn> map(net::Ipv4Address ip) const {
    return rib_->origin(ip);
  }

 private:
  const RibSnapshot* rib_;
};

}  // namespace eyeball::bgp
