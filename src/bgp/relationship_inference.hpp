// AS business-relationship inference from BGP paths (the CAIDA-style
// substrate the paper consumes in §6: "for customer-provider relationships
// we rely on the CAIDA AS relationships data set").
//
// Implements the classic Gao (2001) degree-based heuristic: in every
// observed AS path the highest-degree AS is assumed to be the "top"; edges
// on the way up are customer->provider, edges on the way down are
// provider->customer, and edges voted both ways (or adjacent to the top
// with similar degrees) become peer-peer.  The inference is validated
// against the generator's ground-truth relationships in the test suite and
// benchmarked in `repro_ablations`.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "bgp/rib.hpp"
#include "net/ipv4.hpp"

namespace eyeball::bgp {

enum class InferredRelationship : std::uint8_t {
  kCustomerProvider,  // first AS is a customer of the second
  kProviderCustomer,  // first AS is a provider of the second
  kPeerPeer,
};

struct InferredEdge {
  net::Asn a{};
  net::Asn b{};
  InferredRelationship relationship = InferredRelationship::kPeerPeer;
  /// Fraction of votes agreeing with the decision (1.0 = unanimous).
  double confidence = 0.0;
};

struct InferenceConfig {
  /// Degree ratio under which a top-adjacent edge is called a peering
  /// (Gao's R parameter).
  double peer_degree_ratio = 0.85;
  /// Minimum number of path observations for an edge to be classified.
  std::size_t min_observations = 1;
};

class RelationshipInferencer {
 public:
  explicit RelationshipInferencer(InferenceConfig config = {}) : config_(config) {}

  /// Infers relationships for every adjacent AS pair appearing in the
  /// snapshot's paths.
  [[nodiscard]] std::vector<InferredEdge> infer(const RibSnapshot& rib) const;

  /// Node degree (distinct neighbours) observed in the snapshot's paths.
  [[nodiscard]] static std::map<std::uint32_t, std::size_t> degrees(const RibSnapshot& rib);

 private:
  InferenceConfig config_;
};

}  // namespace eyeball::bgp
