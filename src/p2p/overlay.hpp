// P2P overlay models and structural crawlers.
//
// The paper's samples come from crawling three real overlays: the Kad DHT,
// the Gnutella ultrapeer topology and BitTorrent swarms.  The plain
// `Crawler` samples users at calibrated rates; this module builds the
// overlays themselves and crawls them the way the measurement community
// does, so the coverage and *structural bias* of each crawl emerge from
// mechanism instead of being assumed:
//
//   * KadNetwork     — nodes own 64-bit DHT ids; an id-space sweep finds
//                      nearly every online node (Kad crawls are close to
//                      exhaustive, hence the paper's 89.1M unique IPs).
//   * GnutellaNetwork— ultrapeer/leaf two-tier random graph; a BFS crawl
//                      from bootstrap nodes covers the reachable component
//                      only, and leaves hide behind offline ultrapeers.
//   * SwarmNetwork   — torrents with Zipf-distributed popularity; a
//                      tracker-scrape crawl of the top-N swarms misses
//                      users who only join unpopular torrents.
//
// All overlays draw their member populations from the same ecosystem
// ground truth as the rate-based crawler, so the two sampling paths are
// directly comparable (see `repro_overlay_bias`).
#pragma once

#include <cstdint>
#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "net/ipv4.hpp"
#include "p2p/app.hpp"
#include "p2p/crawler.hpp"
#include "topology/types.hpp"

namespace eyeball::p2p {

/// One participant of an overlay.
struct OverlayNode {
  net::Ipv4Address ip;
  /// DHT identifier (Kad); hash-derived, uniform over the id space.
  std::uint64_t node_id = 0;
  /// Online during the crawl window?  Offline nodes can be *referenced*
  /// by neighbours but never answer queries themselves.
  bool online = true;
};

struct OverlayPopulationConfig {
  std::uint64_t seed = 2009;
  /// Fraction of an AS's customers using the application (on top of the
  /// PenetrationModel's regional rates).
  PenetrationModel penetration{};
  /// Probability that a member is online during the crawl.
  double online_prob = 0.75;
};

/// The true member population of one application over an ecosystem:
/// deterministic IPs drawn per (AS, PoP) at the penetration-model rates.
class OverlayPopulation {
 public:
  OverlayPopulation(const topology::AsEcosystem& ecosystem, App app,
                    const OverlayPopulationConfig& config);

  [[nodiscard]] App app() const noexcept { return app_; }
  [[nodiscard]] const std::vector<OverlayNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t online_count() const noexcept { return online_count_; }

 private:
  App app_;
  std::vector<OverlayNode> nodes_;
  std::size_t online_count_ = 0;
};

struct CrawlStats {
  std::size_t queries = 0;
  std::size_t discovered = 0;      // unique IPs observed (incl. offline refs)
  std::size_t online_reached = 0;  // online nodes that answered
};

/// Kad-style DHT: every node knows the k closest ids to a set of targets
/// spread over its routing zones.  The crawler sweeps the id space with
/// FIND_NODE queries.
class KadNetwork {
 public:
  KadNetwork(const OverlayPopulation& population, std::uint64_t seed,
             int bucket_size = 8);

  /// Sweeps the id space with `zones` query targets; each query returns the
  /// `bucket_size` closest online nodes to the target, which are then asked
  /// for their own neighbourhoods (one iteration, as real crawlers do).
  [[nodiscard]] std::vector<PeerSample> crawl(std::size_t zones, CrawlStats* stats = nullptr) const;

 private:
  /// Nodes sorted by node_id for O(log n) closest-id queries.
  [[nodiscard]] std::vector<std::size_t> closest(std::uint64_t target, int count,
                                                 bool online_only) const;

  const OverlayPopulation* population_;
  std::vector<std::size_t> by_id_;  // indices into population nodes, sorted by id
  int bucket_size_;
};

/// Gnutella-style two-tier overlay: a fraction of online nodes are
/// ultrapeers forming a random graph; leaves attach to a few ultrapeers.
/// Crawling is a BFS over ultrapeers that also reports their leaves.
class GnutellaNetwork {
 public:
  GnutellaNetwork(const OverlayPopulation& population, std::uint64_t seed,
                  double ultrapeer_fraction = 0.15, int ultrapeer_degree = 10,
                  int leaf_attachments = 3);

  [[nodiscard]] std::vector<PeerSample> crawl(std::size_t bootstrap_count,
                                              CrawlStats* stats = nullptr) const;

  [[nodiscard]] std::size_t ultrapeer_count() const noexcept { return ultrapeers_.size(); }

 private:
  const OverlayPopulation* population_;
  std::vector<std::size_t> ultrapeers_;               // indices into population
  std::vector<std::vector<std::uint32_t>> up_edges_;  // ultrapeer adjacency (up index)
  std::vector<std::vector<std::uint32_t>> leaves_;    // leaves per ultrapeer (pop index)
  std::uint64_t seed_;
};

/// BitTorrent-style swarms: torrent popularity is Zipf; each member joins
/// 1..j swarms weighted by popularity.  Crawling scrapes the top-N swarms
/// and samples up to `peers_per_scrape` members from each.
class SwarmNetwork {
 public:
  SwarmNetwork(const OverlayPopulation& population, std::uint64_t seed,
               std::size_t torrent_count = 2000, double popularity_exponent = 1.1,
               int max_swarms_per_member = 4);

  [[nodiscard]] std::vector<PeerSample> crawl(std::size_t top_torrents,
                                              std::size_t peers_per_scrape,
                                              CrawlStats* stats = nullptr) const;

  [[nodiscard]] std::size_t torrent_count() const noexcept { return swarms_.size(); }

 private:
  const OverlayPopulation* population_;
  std::vector<std::vector<std::uint32_t>> swarms_;  // member indices per torrent,
                                                    // sorted by popularity desc
  std::uint64_t seed_;
};

}  // namespace eyeball::p2p
