// P2P crawler simulation.
//
// For every eyeball AS and every application, the crawler observes a
// Poisson-distributed number of unique peer IPs drawn from the AS's
// per-PoP address pools, proportional to customers x penetration x
// coverage.  Sampling bias (the paper's §4.3) can be injected per
// (AS, PoP): "mild" bias scales a PoP's observation rate down, a
// "blackout" suppresses it entirely.
#pragma once

#include <cstdint>
#include <vector>

#include "gazetteer/gazetteer.hpp"
#include "net/ipv4.hpp"
#include "p2p/app.hpp"
#include "topology/types.hpp"

namespace eyeball::p2p {

struct PeerSample {
  net::Ipv4Address ip;
  App app = App::kKad;

  friend bool operator==(const PeerSample&, const PeerSample&) = default;
};

struct BiasConfig {
  /// Probability that a (AS, PoP) pair is under-sampled (rate x U[0.1, 0.6]).
  double mild_bias_prob = 0.0;
  /// Probability that a (AS, PoP) pair produces no samples at all.
  double blackout_prob = 0.0;
};

struct CrawlerConfig {
  std::uint64_t seed = 2009;
  /// Fraction of active peers the crawl observes; the main knob for scaling
  /// the synthetic dataset up or down.
  double coverage = 1.0;
  PenetrationModel penetration;
  BiasConfig bias;
};

struct CrawlResult {
  /// Unique per application (the paper counts unique IPs per crawler); the
  /// same IP can appear under two applications.  Sorted by (app, ip).
  std::vector<PeerSample> samples;

  [[nodiscard]] std::size_t count_for(App app) const noexcept;
};

class Crawler {
 public:
  Crawler(const topology::AsEcosystem& ecosystem, const gazetteer::Gazetteer& gazetteer,
          CrawlerConfig config);

  /// Crawls every eyeball AS.
  [[nodiscard]] CrawlResult crawl() const;

  /// Samples for a single AS (used by focused experiments and tests).
  [[nodiscard]] std::vector<PeerSample> crawl_as(const topology::AutonomousSystem& as) const;

 private:
  void sample_as_into(const topology::AutonomousSystem& as,
                      std::vector<PeerSample>& out) const;

  const topology::AsEcosystem& ecosystem_;
  const gazetteer::Gazetteer& gaz_;
  CrawlerConfig config_;
};

}  // namespace eyeball::p2p
