#include "p2p/crawler.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace eyeball::p2p {

std::size_t CrawlResult::count_for(App app) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(samples.begin(), samples.end(),
                    [app](const PeerSample& s) { return s.app == app; }));
}

Crawler::Crawler(const topology::AsEcosystem& ecosystem,
                 const gazetteer::Gazetteer& gazetteer, CrawlerConfig config)
    : ecosystem_(ecosystem), gaz_(gazetteer), config_(std::move(config)) {}

void Crawler::sample_as_into(const topology::AutonomousSystem& as,
                             std::vector<PeerSample>& out) const {
  if (as.role != topology::AsRole::kEyeball) return;

  for (const App app : kAllApps) {
    const double rate =
        config_.penetration.rate(app, as.continent, as.country_code, config_.seed) *
        config_.coverage;
    if (rate <= 0.0) continue;

    for (std::size_t p = 0; p < as.pops.size(); ++p) {
      const auto& pop = as.pops[p];
      if (pop.customer_share <= 0.0 || pop.prefixes.empty()) continue;

      // Bias draw is per (AS, PoP) and applies to all apps alike — the
      // paper's scenario of P2P being under-represented in a location.
      util::Rng bias_rng{util::mix64(util::mix64(config_.seed, 0xb1a5ULL),
                                     util::mix64(net::value_of(as.asn), p))};
      double bias_factor = 1.0;
      if (bias_rng.bernoulli(config_.bias.blackout_prob)) {
        bias_factor = 0.0;
      } else if (bias_rng.bernoulli(config_.bias.mild_bias_prob)) {
        bias_factor = bias_rng.uniform(0.1, 0.6);
      }
      if (bias_factor <= 0.0) continue;

      const double expected = static_cast<double>(as.customers) * pop.customer_share *
                              rate * bias_factor;

      util::Rng rng{util::mix64(
          util::mix64(config_.seed, static_cast<std::uint64_t>(app)),
          util::mix64(net::value_of(as.asn), p))};
      const std::uint64_t count = rng.poisson(expected);

      // Prefix choice weighted by size, then a uniform host address.
      std::vector<double> weights;
      weights.reserve(pop.prefixes.size());
      for (const auto& prefix : pop.prefixes) {
        weights.push_back(static_cast<double>(prefix.size()));
      }
      const util::DiscreteSampler prefix_sampler{weights};
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto& prefix = pop.prefixes[prefix_sampler.sample(rng)];
        const std::uint64_t offset = rng.uniform_index(prefix.size());
        out.push_back(PeerSample{
            net::Ipv4Address{static_cast<std::uint32_t>(prefix.address().value() + offset)},
            app});
      }
    }
  }
}

std::vector<PeerSample> Crawler::crawl_as(const topology::AutonomousSystem& as) const {
  std::vector<PeerSample> out;
  sample_as_into(as, out);
  std::sort(out.begin(), out.end(), [](const PeerSample& a, const PeerSample& b) {
    return a.app != b.app ? a.app < b.app : a.ip < b.ip;
  });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

CrawlResult Crawler::crawl() const {
  CrawlResult result;
  for (const auto& as : ecosystem_.ases()) {
    sample_as_into(as, result.samples);
  }
  // Unique peers per application (crawlers deduplicate observations).
  std::sort(result.samples.begin(), result.samples.end(),
            [](const PeerSample& a, const PeerSample& b) {
              return a.app != b.app ? a.app < b.app : a.ip < b.ip;
            });
  result.samples.erase(std::unique(result.samples.begin(), result.samples.end()),
                       result.samples.end());
  return result;
}

}  // namespace eyeball::p2p
