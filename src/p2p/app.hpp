// P2P application models.
//
// The paper samples end users by crawling Kad, BitTorrent and Gnutella.
// Penetration of each application differs sharply by region (Table 1:
// Gnutella dominates North America, Kad dominates Europe and Asia); the
// penetration model reproduces those ratios and adds per-country noise.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "gazetteer/types.hpp"

namespace eyeball::p2p {

enum class App : std::uint8_t {
  kKad,
  kBitTorrent,
  kGnutella,
};

inline constexpr std::array<App, 3> kAllApps{App::kKad, App::kBitTorrent, App::kGnutella};

[[nodiscard]] std::string_view to_string(App app) noexcept;

/// Fraction of a region's broadband users observable in a 6-month crawl of
/// one application.
class PenetrationModel {
 public:
  /// Defaults tuned so that per-continent sample ratios match the paper's
  /// Table 1 (NA Kad:Gnu:BT = 1218:8984:1761, EU = 18004:2519:2529,
  /// AS = 17865:1606:1016).
  PenetrationModel() = default;

  struct Rates {
    double kad;
    double bittorrent;
    double gnutella;
  };

  void set_rates(gazetteer::Continent continent, Rates rates);
  [[nodiscard]] double base_rate(App app, gazetteer::Continent continent) const noexcept;

  /// Base rate x deterministic per-(app, country) lognormal noise.
  [[nodiscard]] double rate(App app, gazetteer::Continent continent,
                            std::string_view country_code, std::uint64_t seed) const;

 private:
  Rates north_america_{0.008, 0.012, 0.060};
  Rates europe_{0.095, 0.0134, 0.0133};
  Rates asia_{0.060, 0.0034, 0.0054};
  Rates other_{0.030, 0.0080, 0.0100};
};

}  // namespace eyeball::p2p
