// Longitudinal crawling with dynamic-IP churn.
//
// The paper crawled for six months (Jan-Jun 2009) and collected 89.1 M
// *unique IP addresses* — far more than the concurrent user population,
// because residential IPs are reassigned over time: the same subscriber
// appears under several addresses across crawl windows.  This module
// models that: each (AS, PoP) address pool is leased to its customers per
// time window (a deterministic permutation keyed by the window), users are
// online per-window, and a longitudinal crawl is the union of the window
// crawls.  Unique-IP counts therefore grow with the window count while the
// underlying user population stays fixed — and the per-IP geography stays
// consistent, since a reassigned address still belongs to the same PoP
// pool (the property that makes the paper's method robust to churn).
#pragma once

#include <cstdint>
#include <vector>

#include "p2p/crawler.hpp"
#include "topology/types.hpp"

namespace eyeball::p2p {

struct ChurnConfig {
  std::uint64_t seed = 2009;
  /// Number of crawl windows (the paper's six monthly crawls).
  int windows = 6;
  /// Probability a subscriber keeps the same address across consecutive
  /// windows (DHCP lease survival).
  double lease_survival = 0.6;
  /// Probability a subscriber is active (observable) in a given window.
  double online_per_window = 0.55;
};

struct LongitudinalResult {
  /// Union of all windows, unique per (app, ip), sorted by (app, ip).
  std::vector<PeerSample> samples;
  /// Raw per-window observations in window order, duplicates preserved —
  /// the same (app, ip) recurs within and across windows exactly as a
  /// crawler would re-observe it.  Feed these window by window to
  /// core::StreamingDatasetBuilder::ingest (whose first-observation dedup
  /// reproduces the union semantics of `samples`) instead of rebuilding
  /// the conditioned dataset from the merged vector per snapshot.
  std::vector<std::vector<PeerSample>> windows;
  /// Unique IPs observed after each window (cumulative).
  std::vector<std::size_t> cumulative_unique;
  /// Number of underlying users observed at least once.
  std::size_t distinct_users = 0;
};

/// Runs `windows` crawls of the ecosystem and merges them.  `coverage` and
/// `penetration` follow CrawlerConfig semantics per window.
[[nodiscard]] LongitudinalResult longitudinal_crawl(
    const topology::AsEcosystem& ecosystem, const gazetteer::Gazetteer& gazetteer,
    const CrawlerConfig& crawl_config, const ChurnConfig& churn);

}  // namespace eyeball::p2p
