#include "p2p/overlay.hpp"

#include <algorithm>
#include <queue>
#include <set>

#include "util/rng.hpp"

namespace eyeball::p2p {
namespace {

/// Flag set over population indices: O(1) insert, one linear pass to list.
class DiscoverySet {
 public:
  explicit DiscoverySet(std::size_t size) : flags_(size, 0) {}

  void insert(std::size_t index) {
    if (!flags_[index]) {
      flags_[index] = 1;
      ++count_;
    }
  }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool contains(std::size_t index) const { return flags_[index] != 0; }

  /// (app, ip)-sorted sample list (population nodes are already ip-sorted).
  [[nodiscard]] std::vector<PeerSample> to_samples(
      const OverlayPopulation& population) const {
    std::vector<PeerSample> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < flags_.size(); ++i) {
      if (flags_[i]) out.push_back(PeerSample{population.nodes()[i].ip, population.app()});
    }
    return out;
  }

 private:
  std::vector<char> flags_;
  std::size_t count_ = 0;
};

}  // namespace

OverlayPopulation::OverlayPopulation(const topology::AsEcosystem& ecosystem, App app,
                                     const OverlayPopulationConfig& config)
    : app_(app) {
  for (const auto& as : ecosystem.ases()) {
    if (as.role != topology::AsRole::kEyeball) continue;
    const double rate =
        config.penetration.rate(app, as.continent, as.country_code, config.seed);
    for (std::size_t p = 0; p < as.pops.size(); ++p) {
      const auto& pop = as.pops[p];
      if (pop.customer_share <= 0.0 || pop.prefixes.empty()) continue;
      util::Rng rng{util::mix64(util::mix64(config.seed, static_cast<std::uint64_t>(app)),
                                util::mix64(net::value_of(as.asn), p))};
      const double expected =
          static_cast<double>(as.customers) * pop.customer_share * rate;
      const std::uint64_t count = rng.poisson(expected);

      std::vector<double> weights;
      for (const auto& prefix : pop.prefixes) {
        weights.push_back(static_cast<double>(prefix.size()));
      }
      const util::DiscreteSampler prefix_sampler{weights};
      for (std::uint64_t i = 0; i < count; ++i) {
        const auto& prefix = pop.prefixes[prefix_sampler.sample(rng)];
        OverlayNode node;
        node.ip = net::Ipv4Address{
            static_cast<std::uint32_t>(prefix.address().value() +
                                       rng.uniform_index(prefix.size()))};
        node.node_id = util::mix64(0xd47a1d5ULL, node.ip.value());
        node.online = rng.bernoulli(config.online_prob);
        nodes_.push_back(node);
      }
    }
  }
  // Unique members (the same IP drawn twice is one user).
  std::sort(nodes_.begin(), nodes_.end(),
            [](const OverlayNode& a, const OverlayNode& b) { return a.ip < b.ip; });
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end(),
                           [](const OverlayNode& a, const OverlayNode& b) {
                             return a.ip == b.ip;
                           }),
               nodes_.end());
  online_count_ = static_cast<std::size_t>(
      std::count_if(nodes_.begin(), nodes_.end(),
                    [](const OverlayNode& n) { return n.online; }));
}

// ---- Kad ----

KadNetwork::KadNetwork(const OverlayPopulation& population, std::uint64_t /*seed*/,
                       int bucket_size)
    : population_(&population), bucket_size_(bucket_size) {
  by_id_.resize(population.nodes().size());
  for (std::size_t i = 0; i < by_id_.size(); ++i) by_id_[i] = i;
  std::sort(by_id_.begin(), by_id_.end(), [&](std::size_t a, std::size_t b) {
    return population.nodes()[a].node_id < population.nodes()[b].node_id;
  });
}

std::vector<std::size_t> KadNetwork::closest(std::uint64_t target, int count,
                                             bool online_only) const {
  // Binary search, then expand left/right picking the nearer id.
  std::vector<std::size_t> out;
  if (by_id_.empty()) return out;
  const auto& nodes = population_->nodes();
  auto it = std::lower_bound(by_id_.begin(), by_id_.end(), target,
                             [&](std::size_t index, std::uint64_t value) {
                               return nodes[index].node_id < value;
                             });
  auto left = it;
  auto right = it;
  while (static_cast<int>(out.size()) < count && (left != by_id_.begin() || right != by_id_.end())) {
    const std::uint64_t left_gap =
        left == by_id_.begin() ? ~std::uint64_t{0}
                               : target - nodes[*std::prev(left)].node_id;
    const std::uint64_t right_gap =
        right == by_id_.end() ? ~std::uint64_t{0} : nodes[*right].node_id - target;
    if (left_gap < right_gap) {
      --left;
      if (!online_only || nodes[*left].online) out.push_back(*left);
    } else {
      if (!online_only || nodes[*right].online) out.push_back(*right);
      ++right;
    }
  }
  return out;
}

std::vector<PeerSample> KadNetwork::crawl(std::size_t zones, CrawlStats* stats) const {
  DiscoverySet discovered{population_->nodes().size()};
  CrawlStats local;
  const auto& nodes = population_->nodes();
  // Sweep evenly spaced targets.  Each FIND_NODE returns the closest online
  // nodes; those answer with *their* neighbourhood (online or not — routing
  // tables reference offline contacts too).
  for (std::size_t z = 0; z < zones; ++z) {
    const std::uint64_t target =
        zones <= 1 ? 0 : static_cast<std::uint64_t>(z) * (~std::uint64_t{0} / zones);
    ++local.queries;
    for (const std::size_t responder : closest(target, bucket_size_, true)) {
      discovered.insert(responder);
      ++local.online_reached;
      for (const std::size_t contact :
           closest(nodes[responder].node_id, bucket_size_, false)) {
        discovered.insert(contact);
      }
    }
  }
  local.discovered = discovered.size();
  if (stats != nullptr) *stats = local;
  return discovered.to_samples(*population_);
}

// ---- Gnutella ----

GnutellaNetwork::GnutellaNetwork(const OverlayPopulation& population, std::uint64_t seed,
                                 double ultrapeer_fraction, int ultrapeer_degree,
                                 int leaf_attachments)
    : population_(&population), seed_(seed) {
  util::Rng rng{seed};
  const auto& nodes = population.nodes();
  std::vector<std::size_t> online_leaves;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].online) continue;
    if (rng.bernoulli(ultrapeer_fraction)) {
      ultrapeers_.push_back(i);
    } else {
      online_leaves.push_back(i);
    }
  }
  up_edges_.resize(ultrapeers_.size());
  leaves_.resize(ultrapeers_.size());
  if (ultrapeers_.empty()) return;

  // Random ultrapeer graph: each ultrapeer opens `ultrapeer_degree`
  // connections to uniformly chosen others.
  for (std::size_t u = 0; u < ultrapeers_.size(); ++u) {
    for (int d = 0; d < ultrapeer_degree; ++d) {
      const auto v = static_cast<std::uint32_t>(rng.uniform_index(ultrapeers_.size()));
      if (v == u) continue;
      up_edges_[u].push_back(v);
      up_edges_[v].push_back(static_cast<std::uint32_t>(u));
    }
  }
  // Leaves attach to a few ultrapeers.
  for (const std::size_t leaf : online_leaves) {
    for (int a = 0; a < leaf_attachments; ++a) {
      leaves_[rng.uniform_index(ultrapeers_.size())].push_back(
          static_cast<std::uint32_t>(leaf));
    }
  }
}

std::vector<PeerSample> GnutellaNetwork::crawl(std::size_t bootstrap_count,
                                               CrawlStats* stats) const {
  DiscoverySet discovered{population_->nodes().size()};
  CrawlStats local;
  if (ultrapeers_.empty()) {
    if (stats != nullptr) *stats = local;
    return {};
  }
  util::Rng rng{util::mix64(seed_, 0xc4a71ULL)};
  std::vector<char> visited(ultrapeers_.size(), 0);
  std::queue<std::uint32_t> frontier;
  for (std::size_t b = 0; b < bootstrap_count; ++b) {
    const auto start = static_cast<std::uint32_t>(rng.uniform_index(ultrapeers_.size()));
    if (!visited[start]) {
      visited[start] = 1;
      frontier.push(start);
    }
  }
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    ++local.queries;
    ++local.online_reached;
    discovered.insert(ultrapeers_[u]);
    for (const std::uint32_t leaf : leaves_[u]) discovered.insert(leaf);
    for (const std::uint32_t v : up_edges_[u]) {
      if (!visited[v]) {
        visited[v] = 1;
        frontier.push(v);
      }
    }
  }
  local.discovered = discovered.size();
  if (stats != nullptr) *stats = local;
  return discovered.to_samples(*population_);
}

// ---- BitTorrent ----

SwarmNetwork::SwarmNetwork(const OverlayPopulation& population, std::uint64_t seed,
                           std::size_t torrent_count, double popularity_exponent,
                           int max_swarms_per_member)
    : population_(&population), seed_(seed) {
  if (torrent_count == 0) return;
  swarms_.resize(torrent_count);
  util::Rng rng{seed};
  const util::ZipfSampler popularity{torrent_count, popularity_exponent};
  const auto& nodes = population.nodes();
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].online) continue;
    const auto joined = 1 + rng.uniform_index(static_cast<std::uint64_t>(max_swarms_per_member));
    for (std::uint64_t j = 0; j < joined; ++j) {
      swarms_[popularity.sample(rng)].push_back(i);
    }
  }
}

std::vector<PeerSample> SwarmNetwork::crawl(std::size_t top_torrents,
                                            std::size_t peers_per_scrape,
                                            CrawlStats* stats) const {
  // Rank torrents by swarm size (the crawler scrapes what is popular).
  std::vector<std::size_t> order(swarms_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return swarms_[a].size() > swarms_[b].size();
  });

  DiscoverySet discovered{population_->nodes().size()};
  CrawlStats local;
  util::Rng rng{util::mix64(seed_, 0x70aa57ULL)};
  for (std::size_t t = 0; t < std::min(top_torrents, order.size()); ++t) {
    const auto& swarm = swarms_[order[t]];
    if (swarm.empty()) continue;
    ++local.queries;
    // Tracker responses cap the peer list; sample without replacement.
    if (swarm.size() <= peers_per_scrape) {
      for (const std::uint32_t member : swarm) discovered.insert(member);
    } else {
      std::set<std::size_t> picks;
      while (picks.size() < peers_per_scrape) {
        picks.insert(rng.uniform_index(swarm.size()));
      }
      for (const std::size_t pick : picks) discovered.insert(swarm[pick]);
    }
  }
  local.discovered = discovered.size();
  local.online_reached = discovered.size();
  if (stats != nullptr) *stats = local;
  return discovered.to_samples(*population_);
}

}  // namespace eyeball::p2p
