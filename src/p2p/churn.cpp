#include "p2p/churn.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/rng.hpp"

namespace eyeball::p2p {
namespace {

/// Lease epoch of user `user` at window `window`: starts at 0 and advances
/// whenever the lease does not survive a window boundary.  Deterministic in
/// (seed, user, window) and monotone in `window`.
int lease_epoch(std::uint64_t seed, std::uint64_t user, int window,
                double lease_survival) {
  int epoch = 0;
  for (int w = 1; w <= window; ++w) {
    const std::uint64_t draw = util::mix64(util::mix64(seed, user), w);
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u >= lease_survival) ++epoch;
  }
  return epoch;
}

}  // namespace

LongitudinalResult longitudinal_crawl(const topology::AsEcosystem& ecosystem,
                                      const gazetteer::Gazetteer& /*gazetteer*/,
                                      const CrawlerConfig& crawl_config,
                                      const ChurnConfig& churn) {
  LongitudinalResult result;
  std::vector<std::vector<PeerSample>> per_window(churn.windows);
  std::unordered_set<std::uint64_t> users_seen;

  for (const auto& as : ecosystem.ases()) {
    if (as.role != topology::AsRole::kEyeball) continue;
    for (const App app : kAllApps) {
      const double rate = crawl_config.penetration.rate(app, as.continent,
                                                        as.country_code, crawl_config.seed) *
                          crawl_config.coverage;
      if (rate <= 0.0) continue;
      for (std::size_t p = 0; p < as.pops.size(); ++p) {
        const auto& pop = as.pops[p];
        if (pop.customer_share <= 0.0 || pop.prefixes.empty()) continue;
        // The application's user base at this PoP is a FIXED subset of the
        // customers; each window observes the members who are online.  The
        // same user therefore recurs across windows — under a fresh address
        // whenever the lease rolled — which is what inflates unique-IP
        // counts beyond the user population.
        const auto active_users = static_cast<std::uint64_t>(std::max(
            1.0, pop.customer_share * static_cast<double>(as.customers) * rate));
        const double expected =
            static_cast<double>(active_users) * churn.online_per_window;

        // Address pool: all announced space of the PoP, flattened.
        std::uint64_t pool_size = 0;
        for (const auto& prefix : pop.prefixes) pool_size += prefix.size();

        const std::uint64_t pop_key =
            util::mix64(util::mix64(churn.seed, static_cast<std::uint64_t>(app)),
                        util::mix64(net::value_of(as.asn), p));
        util::Rng rng{pop_key};
        for (int w = 0; w < churn.windows; ++w) {
          const std::uint64_t observed = rng.poisson(expected);
          for (std::uint64_t i = 0; i < observed; ++i) {
            const std::uint64_t user = rng.uniform_index(active_users);
            users_seen.insert(util::mix64(pop_key, user));
            const int epoch =
                lease_epoch(util::mix64(churn.seed, pop_key), user, w,
                            churn.lease_survival);
            // Address for (user, epoch): deterministic slot in the pool.
            std::uint64_t slot =
                util::mix64(util::mix64(pop_key, user),
                            static_cast<std::uint64_t>(epoch)) %
                pool_size;
            net::Ipv4Address ip{};
            for (const auto& prefix : pop.prefixes) {
              if (slot < prefix.size()) {
                ip = net::Ipv4Address{
                    static_cast<std::uint32_t>(prefix.address().value() + slot)};
                break;
              }
              slot -= prefix.size();
            }
            per_window[w].push_back(PeerSample{ip, app});
          }
        }
      }
    }
  }
  result.distinct_users = users_seen.size();

  // Merge windows in order, tracking cumulative unique (app, ip) pairs.
  std::unordered_set<std::uint64_t> unique_keys;
  for (int w = 0; w < churn.windows; ++w) {
    for (const auto& sample : per_window[w]) {
      const std::uint64_t key =
          util::mix64(static_cast<std::uint64_t>(sample.app), sample.ip.value());
      if (unique_keys.insert(key).second) {
        result.samples.push_back(sample);
      }
    }
    result.cumulative_unique.push_back(unique_keys.size());
  }
  std::sort(result.samples.begin(), result.samples.end(),
            [](const PeerSample& a, const PeerSample& b) {
              return a.app != b.app ? a.app < b.app : a.ip < b.ip;
            });
  result.windows = std::move(per_window);
  return result;
}

}  // namespace eyeball::p2p
