#include "p2p/app.hpp"

#include "util/rng.hpp"

namespace eyeball::p2p {

std::string_view to_string(App app) noexcept {
  switch (app) {
    case App::kKad: return "Kad";
    case App::kBitTorrent: return "BitTorrent";
    case App::kGnutella: return "Gnutella";
  }
  return "unknown";
}

void PenetrationModel::set_rates(gazetteer::Continent continent, Rates rates) {
  switch (continent) {
    case gazetteer::Continent::kNorthAmerica: north_america_ = rates; break;
    case gazetteer::Continent::kEurope: europe_ = rates; break;
    case gazetteer::Continent::kAsia: asia_ = rates; break;
    default: other_ = rates; break;
  }
}

double PenetrationModel::base_rate(App app, gazetteer::Continent continent) const noexcept {
  const Rates* rates = &other_;
  switch (continent) {
    case gazetteer::Continent::kNorthAmerica: rates = &north_america_; break;
    case gazetteer::Continent::kEurope: rates = &europe_; break;
    case gazetteer::Continent::kAsia: rates = &asia_; break;
    default: break;
  }
  switch (app) {
    case App::kKad: return rates->kad;
    case App::kBitTorrent: return rates->bittorrent;
    case App::kGnutella: return rates->gnutella;
  }
  return 0.0;
}

double PenetrationModel::rate(App app, gazetteer::Continent continent,
                              std::string_view country_code, std::uint64_t seed) const {
  util::Rng rng{util::mix64(util::mix64(seed, static_cast<std::uint64_t>(app)),
                            util::hash_string(country_code))};
  return base_rate(app, continent) * rng.lognormal(0.0, 0.35);
}

}  // namespace eyeball::p2p
