file(REMOVE_RECURSE
  "CMakeFiles/bm_pipeline.dir/bm_pipeline.cpp.o"
  "CMakeFiles/bm_pipeline.dir/bm_pipeline.cpp.o.d"
  "bm_pipeline"
  "bm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
