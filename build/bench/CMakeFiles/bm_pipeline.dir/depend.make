# Empty dependencies file for bm_pipeline.
# This may be replaced when dependencies are built.
