
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/repro_predictor.cpp" "bench/CMakeFiles/repro_predictor.dir/repro_predictor.cpp.o" "gcc" "bench/CMakeFiles/repro_predictor.dir/repro_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/connectivity/CMakeFiles/eyeball_connectivity.dir/DependInfo.cmake"
  "/root/repo/build/src/validate/CMakeFiles/eyeball_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/eyeball_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kde/CMakeFiles/eyeball_kde.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/eyeball_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/eyeball_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/geodb/CMakeFiles/eyeball_geodb.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/eyeball_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eyeball_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eyeball_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eyeball_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
