file(REMOVE_RECURSE
  "CMakeFiles/repro_predictor.dir/repro_predictor.cpp.o"
  "CMakeFiles/repro_predictor.dir/repro_predictor.cpp.o.d"
  "repro_predictor"
  "repro_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
