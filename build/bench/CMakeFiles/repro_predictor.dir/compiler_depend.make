# Empty compiler generated dependencies file for repro_predictor.
# This may be replaced when dependencies are built.
