file(REMOVE_RECURSE
  "CMakeFiles/repro_dimes.dir/repro_dimes.cpp.o"
  "CMakeFiles/repro_dimes.dir/repro_dimes.cpp.o.d"
  "repro_dimes"
  "repro_dimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_dimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
