# Empty dependencies file for repro_dimes.
# This may be replaced when dependencies are built.
