file(REMOVE_RECURSE
  "CMakeFiles/repro_churn.dir/repro_churn.cpp.o"
  "CMakeFiles/repro_churn.dir/repro_churn.cpp.o.d"
  "repro_churn"
  "repro_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
