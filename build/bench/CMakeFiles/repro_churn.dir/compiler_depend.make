# Empty compiler generated dependencies file for repro_churn.
# This may be replaced when dependencies are built.
