file(REMOVE_RECURSE
  "CMakeFiles/repro_fig2_validation.dir/repro_fig2_validation.cpp.o"
  "CMakeFiles/repro_fig2_validation.dir/repro_fig2_validation.cpp.o.d"
  "repro_fig2_validation"
  "repro_fig2_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig2_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
