# Empty dependencies file for repro_fig2_validation.
# This may be replaced when dependencies are built.
