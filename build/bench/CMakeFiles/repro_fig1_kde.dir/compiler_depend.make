# Empty compiler generated dependencies file for repro_fig1_kde.
# This may be replaced when dependencies are built.
