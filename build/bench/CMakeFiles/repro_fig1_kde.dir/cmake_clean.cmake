file(REMOVE_RECURSE
  "CMakeFiles/repro_fig1_kde.dir/repro_fig1_kde.cpp.o"
  "CMakeFiles/repro_fig1_kde.dir/repro_fig1_kde.cpp.o.d"
  "repro_fig1_kde"
  "repro_fig1_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_fig1_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
