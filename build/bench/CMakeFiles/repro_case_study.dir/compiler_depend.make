# Empty compiler generated dependencies file for repro_case_study.
# This may be replaced when dependencies are built.
