file(REMOVE_RECURSE
  "CMakeFiles/repro_case_study.dir/repro_case_study.cpp.o"
  "CMakeFiles/repro_case_study.dir/repro_case_study.cpp.o.d"
  "repro_case_study"
  "repro_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
