file(REMOVE_RECURSE
  "CMakeFiles/bm_kde.dir/bm_kde.cpp.o"
  "CMakeFiles/bm_kde.dir/bm_kde.cpp.o.d"
  "bm_kde"
  "bm_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
