# Empty dependencies file for bm_kde.
# This may be replaced when dependencies are built.
