# Empty dependencies file for bm_prefix_trie.
# This may be replaced when dependencies are built.
