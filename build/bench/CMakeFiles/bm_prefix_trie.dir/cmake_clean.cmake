file(REMOVE_RECURSE
  "CMakeFiles/bm_prefix_trie.dir/bm_prefix_trie.cpp.o"
  "CMakeFiles/bm_prefix_trie.dir/bm_prefix_trie.cpp.o.d"
  "bm_prefix_trie"
  "bm_prefix_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_prefix_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
