file(REMOVE_RECURSE
  "CMakeFiles/repro_bias_ablation.dir/repro_bias_ablation.cpp.o"
  "CMakeFiles/repro_bias_ablation.dir/repro_bias_ablation.cpp.o.d"
  "repro_bias_ablation"
  "repro_bias_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_bias_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
