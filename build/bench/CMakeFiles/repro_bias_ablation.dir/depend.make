# Empty dependencies file for repro_bias_ablation.
# This may be replaced when dependencies are built.
