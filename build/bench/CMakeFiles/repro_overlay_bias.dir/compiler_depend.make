# Empty compiler generated dependencies file for repro_overlay_bias.
# This may be replaced when dependencies are built.
