file(REMOVE_RECURSE
  "CMakeFiles/repro_overlay_bias.dir/repro_overlay_bias.cpp.o"
  "CMakeFiles/repro_overlay_bias.dir/repro_overlay_bias.cpp.o.d"
  "repro_overlay_bias"
  "repro_overlay_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_overlay_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
