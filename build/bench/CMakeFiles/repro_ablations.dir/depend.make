# Empty dependencies file for repro_ablations.
# This may be replaced when dependencies are built.
