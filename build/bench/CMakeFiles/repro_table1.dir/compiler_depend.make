# Empty compiler generated dependencies file for repro_table1.
# This may be replaced when dependencies are built.
