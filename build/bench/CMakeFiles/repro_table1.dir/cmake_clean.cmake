file(REMOVE_RECURSE
  "CMakeFiles/repro_table1.dir/repro_table1.cpp.o"
  "CMakeFiles/repro_table1.dir/repro_table1.cpp.o.d"
  "repro_table1"
  "repro_table1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
