# Empty compiler generated dependencies file for repro_ixp_peering.
# This may be replaced when dependencies are built.
