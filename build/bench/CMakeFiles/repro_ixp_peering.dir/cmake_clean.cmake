file(REMOVE_RECURSE
  "CMakeFiles/repro_ixp_peering.dir/repro_ixp_peering.cpp.o"
  "CMakeFiles/repro_ixp_peering.dir/repro_ixp_peering.cpp.o.d"
  "repro_ixp_peering"
  "repro_ixp_peering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ixp_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
