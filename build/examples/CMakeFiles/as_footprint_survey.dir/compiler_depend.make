# Empty compiler generated dependencies file for as_footprint_survey.
# This may be replaced when dependencies are built.
