file(REMOVE_RECURSE
  "CMakeFiles/as_footprint_survey.dir/as_footprint_survey.cpp.o"
  "CMakeFiles/as_footprint_survey.dir/as_footprint_survey.cpp.o.d"
  "as_footprint_survey"
  "as_footprint_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/as_footprint_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
