# Empty compiler generated dependencies file for pop_validation.
# This may be replaced when dependencies are built.
