file(REMOVE_RECURSE
  "CMakeFiles/pop_validation.dir/pop_validation.cpp.o"
  "CMakeFiles/pop_validation.dir/pop_validation.cpp.o.d"
  "pop_validation"
  "pop_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
