# Empty dependencies file for export_density.
# This may be replaced when dependencies are built.
