file(REMOVE_RECURSE
  "CMakeFiles/export_density.dir/export_density.cpp.o"
  "CMakeFiles/export_density.dir/export_density.cpp.o.d"
  "export_density"
  "export_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
