# Empty dependencies file for multi_resolution.
# This may be replaced when dependencies are built.
