file(REMOVE_RECURSE
  "CMakeFiles/multi_resolution.dir/multi_resolution.cpp.o"
  "CMakeFiles/multi_resolution.dir/multi_resolution.cpp.o.d"
  "multi_resolution"
  "multi_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
