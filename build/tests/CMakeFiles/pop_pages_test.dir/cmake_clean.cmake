file(REMOVE_RECURSE
  "CMakeFiles/pop_pages_test.dir/pop_pages_test.cpp.o"
  "CMakeFiles/pop_pages_test.dir/pop_pages_test.cpp.o.d"
  "pop_pages_test"
  "pop_pages_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_pages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
