# Empty dependencies file for pop_pages_test.
# This may be replaced when dependencies are built.
