file(REMOVE_RECURSE
  "CMakeFiles/futurework_test.dir/futurework_test.cpp.o"
  "CMakeFiles/futurework_test.dir/futurework_test.cpp.o.d"
  "futurework_test"
  "futurework_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
