# Empty dependencies file for geodb_test.
# This may be replaced when dependencies are built.
