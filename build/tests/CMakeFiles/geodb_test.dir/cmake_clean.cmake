file(REMOVE_RECURSE
  "CMakeFiles/geodb_test.dir/geodb_test.cpp.o"
  "CMakeFiles/geodb_test.dir/geodb_test.cpp.o.d"
  "geodb_test"
  "geodb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geodb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
