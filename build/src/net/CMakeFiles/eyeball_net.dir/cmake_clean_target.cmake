file(REMOVE_RECURSE
  "libeyeball_net.a"
)
