file(REMOVE_RECURSE
  "CMakeFiles/eyeball_net.dir/ipv4.cpp.o"
  "CMakeFiles/eyeball_net.dir/ipv4.cpp.o.d"
  "libeyeball_net.a"
  "libeyeball_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
