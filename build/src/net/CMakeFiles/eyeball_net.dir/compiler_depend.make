# Empty compiler generated dependencies file for eyeball_net.
# This may be replaced when dependencies are built.
