file(REMOVE_RECURSE
  "libeyeball_geo.a"
)
