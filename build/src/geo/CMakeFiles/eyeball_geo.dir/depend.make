# Empty dependencies file for eyeball_geo.
# This may be replaced when dependencies are built.
