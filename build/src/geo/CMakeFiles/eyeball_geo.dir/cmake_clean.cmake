file(REMOVE_RECURSE
  "CMakeFiles/eyeball_geo.dir/point.cpp.o"
  "CMakeFiles/eyeball_geo.dir/point.cpp.o.d"
  "libeyeball_geo.a"
  "libeyeball_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
