file(REMOVE_RECURSE
  "libeyeball_geodb.a"
)
