file(REMOVE_RECURSE
  "CMakeFiles/eyeball_geodb.dir/synthetic_db.cpp.o"
  "CMakeFiles/eyeball_geodb.dir/synthetic_db.cpp.o.d"
  "CMakeFiles/eyeball_geodb.dir/table_db.cpp.o"
  "CMakeFiles/eyeball_geodb.dir/table_db.cpp.o.d"
  "libeyeball_geodb.a"
  "libeyeball_geodb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_geodb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
