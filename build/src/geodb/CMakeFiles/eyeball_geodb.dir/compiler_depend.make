# Empty compiler generated dependencies file for eyeball_geodb.
# This may be replaced when dependencies are built.
