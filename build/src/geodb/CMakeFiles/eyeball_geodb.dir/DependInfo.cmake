
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geodb/synthetic_db.cpp" "src/geodb/CMakeFiles/eyeball_geodb.dir/synthetic_db.cpp.o" "gcc" "src/geodb/CMakeFiles/eyeball_geodb.dir/synthetic_db.cpp.o.d"
  "/root/repo/src/geodb/table_db.cpp" "src/geodb/CMakeFiles/eyeball_geodb.dir/table_db.cpp.o" "gcc" "src/geodb/CMakeFiles/eyeball_geodb.dir/table_db.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/eyeball_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eyeball_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eyeball_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eyeball_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
