file(REMOVE_RECURSE
  "libeyeball_util.a"
)
