# Empty dependencies file for eyeball_util.
# This may be replaced when dependencies are built.
