file(REMOVE_RECURSE
  "CMakeFiles/eyeball_util.dir/format.cpp.o"
  "CMakeFiles/eyeball_util.dir/format.cpp.o.d"
  "CMakeFiles/eyeball_util.dir/rng.cpp.o"
  "CMakeFiles/eyeball_util.dir/rng.cpp.o.d"
  "CMakeFiles/eyeball_util.dir/stats.cpp.o"
  "CMakeFiles/eyeball_util.dir/stats.cpp.o.d"
  "CMakeFiles/eyeball_util.dir/table.cpp.o"
  "CMakeFiles/eyeball_util.dir/table.cpp.o.d"
  "libeyeball_util.a"
  "libeyeball_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
