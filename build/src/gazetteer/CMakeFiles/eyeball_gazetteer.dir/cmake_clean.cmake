file(REMOVE_RECURSE
  "CMakeFiles/eyeball_gazetteer.dir/gazetteer.cpp.o"
  "CMakeFiles/eyeball_gazetteer.dir/gazetteer.cpp.o.d"
  "CMakeFiles/eyeball_gazetteer.dir/world_data.cpp.o"
  "CMakeFiles/eyeball_gazetteer.dir/world_data.cpp.o.d"
  "CMakeFiles/eyeball_gazetteer.dir/zip_lattice.cpp.o"
  "CMakeFiles/eyeball_gazetteer.dir/zip_lattice.cpp.o.d"
  "libeyeball_gazetteer.a"
  "libeyeball_gazetteer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_gazetteer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
