# Empty compiler generated dependencies file for eyeball_gazetteer.
# This may be replaced when dependencies are built.
