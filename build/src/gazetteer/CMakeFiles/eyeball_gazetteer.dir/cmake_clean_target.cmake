file(REMOVE_RECURSE
  "libeyeball_gazetteer.a"
)
