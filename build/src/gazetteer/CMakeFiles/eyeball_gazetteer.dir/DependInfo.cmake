
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gazetteer/gazetteer.cpp" "src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/gazetteer.cpp.o" "gcc" "src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/gazetteer.cpp.o.d"
  "/root/repo/src/gazetteer/world_data.cpp" "src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/world_data.cpp.o" "gcc" "src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/world_data.cpp.o.d"
  "/root/repo/src/gazetteer/zip_lattice.cpp" "src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/zip_lattice.cpp.o" "gcc" "src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/zip_lattice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/eyeball_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eyeball_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
