file(REMOVE_RECURSE
  "libeyeball_p2p.a"
)
