file(REMOVE_RECURSE
  "CMakeFiles/eyeball_p2p.dir/app.cpp.o"
  "CMakeFiles/eyeball_p2p.dir/app.cpp.o.d"
  "CMakeFiles/eyeball_p2p.dir/churn.cpp.o"
  "CMakeFiles/eyeball_p2p.dir/churn.cpp.o.d"
  "CMakeFiles/eyeball_p2p.dir/crawler.cpp.o"
  "CMakeFiles/eyeball_p2p.dir/crawler.cpp.o.d"
  "CMakeFiles/eyeball_p2p.dir/overlay.cpp.o"
  "CMakeFiles/eyeball_p2p.dir/overlay.cpp.o.d"
  "libeyeball_p2p.a"
  "libeyeball_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
