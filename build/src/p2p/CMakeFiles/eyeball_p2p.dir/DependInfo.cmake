
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p2p/app.cpp" "src/p2p/CMakeFiles/eyeball_p2p.dir/app.cpp.o" "gcc" "src/p2p/CMakeFiles/eyeball_p2p.dir/app.cpp.o.d"
  "/root/repo/src/p2p/churn.cpp" "src/p2p/CMakeFiles/eyeball_p2p.dir/churn.cpp.o" "gcc" "src/p2p/CMakeFiles/eyeball_p2p.dir/churn.cpp.o.d"
  "/root/repo/src/p2p/crawler.cpp" "src/p2p/CMakeFiles/eyeball_p2p.dir/crawler.cpp.o" "gcc" "src/p2p/CMakeFiles/eyeball_p2p.dir/crawler.cpp.o.d"
  "/root/repo/src/p2p/overlay.cpp" "src/p2p/CMakeFiles/eyeball_p2p.dir/overlay.cpp.o" "gcc" "src/p2p/CMakeFiles/eyeball_p2p.dir/overlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/eyeball_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eyeball_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eyeball_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eyeball_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
