# Empty dependencies file for eyeball_p2p.
# This may be replaced when dependencies are built.
