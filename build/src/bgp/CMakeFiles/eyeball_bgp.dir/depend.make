# Empty dependencies file for eyeball_bgp.
# This may be replaced when dependencies are built.
