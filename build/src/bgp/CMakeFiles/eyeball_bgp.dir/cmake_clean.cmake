file(REMOVE_RECURSE
  "CMakeFiles/eyeball_bgp.dir/relationship_inference.cpp.o"
  "CMakeFiles/eyeball_bgp.dir/relationship_inference.cpp.o.d"
  "CMakeFiles/eyeball_bgp.dir/rib.cpp.o"
  "CMakeFiles/eyeball_bgp.dir/rib.cpp.o.d"
  "libeyeball_bgp.a"
  "libeyeball_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
