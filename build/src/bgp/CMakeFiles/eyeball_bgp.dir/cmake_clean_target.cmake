file(REMOVE_RECURSE
  "libeyeball_bgp.a"
)
