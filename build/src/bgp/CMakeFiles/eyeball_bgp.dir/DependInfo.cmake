
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/relationship_inference.cpp" "src/bgp/CMakeFiles/eyeball_bgp.dir/relationship_inference.cpp.o" "gcc" "src/bgp/CMakeFiles/eyeball_bgp.dir/relationship_inference.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "src/bgp/CMakeFiles/eyeball_bgp.dir/rib.cpp.o" "gcc" "src/bgp/CMakeFiles/eyeball_bgp.dir/rib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/eyeball_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eyeball_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eyeball_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eyeball_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
