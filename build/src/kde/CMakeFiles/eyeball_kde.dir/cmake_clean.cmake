file(REMOVE_RECURSE
  "CMakeFiles/eyeball_kde.dir/bandwidth.cpp.o"
  "CMakeFiles/eyeball_kde.dir/bandwidth.cpp.o.d"
  "CMakeFiles/eyeball_kde.dir/contour.cpp.o"
  "CMakeFiles/eyeball_kde.dir/contour.cpp.o.d"
  "CMakeFiles/eyeball_kde.dir/estimator.cpp.o"
  "CMakeFiles/eyeball_kde.dir/estimator.cpp.o.d"
  "CMakeFiles/eyeball_kde.dir/export.cpp.o"
  "CMakeFiles/eyeball_kde.dir/export.cpp.o.d"
  "CMakeFiles/eyeball_kde.dir/grid.cpp.o"
  "CMakeFiles/eyeball_kde.dir/grid.cpp.o.d"
  "CMakeFiles/eyeball_kde.dir/peaks.cpp.o"
  "CMakeFiles/eyeball_kde.dir/peaks.cpp.o.d"
  "libeyeball_kde.a"
  "libeyeball_kde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_kde.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
