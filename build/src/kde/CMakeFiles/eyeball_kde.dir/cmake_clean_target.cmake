file(REMOVE_RECURSE
  "libeyeball_kde.a"
)
