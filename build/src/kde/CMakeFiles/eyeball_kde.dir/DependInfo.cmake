
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kde/bandwidth.cpp" "src/kde/CMakeFiles/eyeball_kde.dir/bandwidth.cpp.o" "gcc" "src/kde/CMakeFiles/eyeball_kde.dir/bandwidth.cpp.o.d"
  "/root/repo/src/kde/contour.cpp" "src/kde/CMakeFiles/eyeball_kde.dir/contour.cpp.o" "gcc" "src/kde/CMakeFiles/eyeball_kde.dir/contour.cpp.o.d"
  "/root/repo/src/kde/estimator.cpp" "src/kde/CMakeFiles/eyeball_kde.dir/estimator.cpp.o" "gcc" "src/kde/CMakeFiles/eyeball_kde.dir/estimator.cpp.o.d"
  "/root/repo/src/kde/export.cpp" "src/kde/CMakeFiles/eyeball_kde.dir/export.cpp.o" "gcc" "src/kde/CMakeFiles/eyeball_kde.dir/export.cpp.o.d"
  "/root/repo/src/kde/grid.cpp" "src/kde/CMakeFiles/eyeball_kde.dir/grid.cpp.o" "gcc" "src/kde/CMakeFiles/eyeball_kde.dir/grid.cpp.o.d"
  "/root/repo/src/kde/peaks.cpp" "src/kde/CMakeFiles/eyeball_kde.dir/peaks.cpp.o" "gcc" "src/kde/CMakeFiles/eyeball_kde.dir/peaks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/eyeball_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eyeball_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
