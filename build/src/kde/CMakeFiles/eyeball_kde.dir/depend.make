# Empty dependencies file for eyeball_kde.
# This may be replaced when dependencies are built.
