# Empty compiler generated dependencies file for eyeball_connectivity.
# This may be replaced when dependencies are built.
