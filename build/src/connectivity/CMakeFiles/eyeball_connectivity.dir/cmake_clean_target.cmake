file(REMOVE_RECURSE
  "libeyeball_connectivity.a"
)
