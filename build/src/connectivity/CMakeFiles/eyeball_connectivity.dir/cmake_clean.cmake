file(REMOVE_RECURSE
  "CMakeFiles/eyeball_connectivity.dir/as_graph.cpp.o"
  "CMakeFiles/eyeball_connectivity.dir/as_graph.cpp.o.d"
  "CMakeFiles/eyeball_connectivity.dir/case_study.cpp.o"
  "CMakeFiles/eyeball_connectivity.dir/case_study.cpp.o.d"
  "CMakeFiles/eyeball_connectivity.dir/ixp_analysis.cpp.o"
  "CMakeFiles/eyeball_connectivity.dir/ixp_analysis.cpp.o.d"
  "CMakeFiles/eyeball_connectivity.dir/predictor.cpp.o"
  "CMakeFiles/eyeball_connectivity.dir/predictor.cpp.o.d"
  "CMakeFiles/eyeball_connectivity.dir/rai_scenario.cpp.o"
  "CMakeFiles/eyeball_connectivity.dir/rai_scenario.cpp.o.d"
  "CMakeFiles/eyeball_connectivity.dir/traceroute.cpp.o"
  "CMakeFiles/eyeball_connectivity.dir/traceroute.cpp.o.d"
  "libeyeball_connectivity.a"
  "libeyeball_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
