# Empty dependencies file for eyeball_core.
# This may be replaced when dependencies are built.
