file(REMOVE_RECURSE
  "CMakeFiles/eyeball_core.dir/classifier.cpp.o"
  "CMakeFiles/eyeball_core.dir/classifier.cpp.o.d"
  "CMakeFiles/eyeball_core.dir/dataset.cpp.o"
  "CMakeFiles/eyeball_core.dir/dataset.cpp.o.d"
  "CMakeFiles/eyeball_core.dir/footprint.cpp.o"
  "CMakeFiles/eyeball_core.dir/footprint.cpp.o.d"
  "CMakeFiles/eyeball_core.dir/multi_bandwidth.cpp.o"
  "CMakeFiles/eyeball_core.dir/multi_bandwidth.cpp.o.d"
  "CMakeFiles/eyeball_core.dir/pipeline.cpp.o"
  "CMakeFiles/eyeball_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/eyeball_core.dir/pop_mapper.cpp.o"
  "CMakeFiles/eyeball_core.dir/pop_mapper.cpp.o.d"
  "libeyeball_core.a"
  "libeyeball_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
