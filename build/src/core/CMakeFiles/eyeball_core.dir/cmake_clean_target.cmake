file(REMOVE_RECURSE
  "libeyeball_core.a"
)
