file(REMOVE_RECURSE
  "CMakeFiles/eyeball_validate.dir/dimes.cpp.o"
  "CMakeFiles/eyeball_validate.dir/dimes.cpp.o.d"
  "CMakeFiles/eyeball_validate.dir/matching.cpp.o"
  "CMakeFiles/eyeball_validate.dir/matching.cpp.o.d"
  "CMakeFiles/eyeball_validate.dir/pop_pages.cpp.o"
  "CMakeFiles/eyeball_validate.dir/pop_pages.cpp.o.d"
  "CMakeFiles/eyeball_validate.dir/reference.cpp.o"
  "CMakeFiles/eyeball_validate.dir/reference.cpp.o.d"
  "CMakeFiles/eyeball_validate.dir/report.cpp.o"
  "CMakeFiles/eyeball_validate.dir/report.cpp.o.d"
  "libeyeball_validate.a"
  "libeyeball_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
