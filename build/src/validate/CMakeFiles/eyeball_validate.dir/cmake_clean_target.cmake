file(REMOVE_RECURSE
  "libeyeball_validate.a"
)
