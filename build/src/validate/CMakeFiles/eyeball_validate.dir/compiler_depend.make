# Empty compiler generated dependencies file for eyeball_validate.
# This may be replaced when dependencies are built.
