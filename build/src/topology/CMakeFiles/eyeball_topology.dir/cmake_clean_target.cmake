file(REMOVE_RECURSE
  "libeyeball_topology.a"
)
