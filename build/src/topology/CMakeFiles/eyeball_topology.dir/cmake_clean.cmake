file(REMOVE_RECURSE
  "CMakeFiles/eyeball_topology.dir/generator.cpp.o"
  "CMakeFiles/eyeball_topology.dir/generator.cpp.o.d"
  "CMakeFiles/eyeball_topology.dir/ground_truth.cpp.o"
  "CMakeFiles/eyeball_topology.dir/ground_truth.cpp.o.d"
  "CMakeFiles/eyeball_topology.dir/ip_allocator.cpp.o"
  "CMakeFiles/eyeball_topology.dir/ip_allocator.cpp.o.d"
  "CMakeFiles/eyeball_topology.dir/types.cpp.o"
  "CMakeFiles/eyeball_topology.dir/types.cpp.o.d"
  "libeyeball_topology.a"
  "libeyeball_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eyeball_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
