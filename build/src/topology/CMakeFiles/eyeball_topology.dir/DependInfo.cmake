
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/generator.cpp" "src/topology/CMakeFiles/eyeball_topology.dir/generator.cpp.o" "gcc" "src/topology/CMakeFiles/eyeball_topology.dir/generator.cpp.o.d"
  "/root/repo/src/topology/ground_truth.cpp" "src/topology/CMakeFiles/eyeball_topology.dir/ground_truth.cpp.o" "gcc" "src/topology/CMakeFiles/eyeball_topology.dir/ground_truth.cpp.o.d"
  "/root/repo/src/topology/ip_allocator.cpp" "src/topology/CMakeFiles/eyeball_topology.dir/ip_allocator.cpp.o" "gcc" "src/topology/CMakeFiles/eyeball_topology.dir/ip_allocator.cpp.o.d"
  "/root/repo/src/topology/types.cpp" "src/topology/CMakeFiles/eyeball_topology.dir/types.cpp.o" "gcc" "src/topology/CMakeFiles/eyeball_topology.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gazetteer/CMakeFiles/eyeball_gazetteer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/eyeball_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eyeball_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/eyeball_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
