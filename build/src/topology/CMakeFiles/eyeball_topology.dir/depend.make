# Empty dependencies file for eyeball_topology.
# This may be replaced when dependencies are built.
