// Lint fixture — must trigger: mutable-shared-capture (twice: parallel_for
// and submit).  `values` is const-declared, so only the mutable captures
// are reported.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstddef>
#include <vector>

struct Pool {
  template <typename F>
  void submit(F&&);
  template <typename F>
  void parallel_for(std::size_t, std::size_t, F&&, std::size_t = 0);
};

double race_prone_total(Pool& pool, const std::vector<double>& values) {
  double total = 0.0;
  // `total` is written from every chunk: a data race, and even with atomics
  // the accumulation order would be nondeterministic.
  pool.parallel_for(0, values.size(), [&total, &values](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) total += values[i];
  });
  std::size_t submitted = 0;
  pool.submit([&submitted] { ++submitted; });
  return total + static_cast<double>(submitted);
}
