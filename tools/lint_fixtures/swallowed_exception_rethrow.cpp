// Lint fixture — must stay clean: catch-all handlers whose failure keeps
// travelling.  A bare rethrow, capturing the exception_ptr for later
// rethrow (the thread-pool idiom), and std::rethrow_exception all count.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <exception>

void work();

void rethrows() {
  try {
    work();
  } catch (const std::exception&) {  // fine: the failure continues
    throw;
  }
}

void captures(std::exception_ptr& slot) {
  try {
    work();
  } catch (...) {  // fine: stored for rethrow on the joining thread
    slot = std::current_exception();
  }
}

void forwards(std::exception_ptr slot) {
  try {
    work();
  } catch (...) {  // fine: surfaced elsewhere, not swallowed
    std::rethrow_exception(slot);
  }
}
