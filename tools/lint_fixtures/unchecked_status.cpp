// Lint fixture — must trigger: unchecked-status (three discards), and stay
// quiet on every checked idiom below.  The harvest is name-based: `Status
// name(` declarations in this file make save_snapshot/append/close
// Status-returning names.
// Never compiled; exercised by `eyeball_lint.py --self-test`.

namespace filesystem {
bool create_directories(const char* path);
}

struct Status {
  bool ok() const;
  Status with_context(const char* what) const;
};

Status save_snapshot(const char* dir);
Status create_directories(const char* dir);

struct Journal {
  Status append(int record);
  Status close();
};

void flagged(Journal& j) {
  save_snapshot("out");  // BAD: free call, result dropped on the floor
  j.append(7);           // BAD: member-chain call in statement position
  j.close();             // BAD: close() failures are real write failures
}

bool checked(Journal& j) {
  if (!save_snapshot("out").ok()) return false;  // result examined
  const Status st = j.append(7);                 // result captured
  // std::filesystem shares names with the checked layer but reports through
  // bool/error_code — qualified calls are outside the rule.
  filesystem::create_directories("scratch");
  // Brace-init temporary opening a chain: the walker must step over the {}
  // group to find the consuming `&&` instead of misreading the `}`.
  return st.ok() && Status{}.with_context("ctx").ok() &&
         j.close().ok();                         // result consumed
}
