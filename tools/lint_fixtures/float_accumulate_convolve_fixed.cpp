// Lint fixture — must be clean: std::accumulate over floats inside a
// convolve_*_fixed body is the order-pinned tap loop (compile-time trip
// count, ascending tap order), not a parallel reduction — even though the
// translation unit is parallel.  The same call OUTSIDE such a body is
// covered by the float_accumulate.cpp fixture.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstddef>
#include <numeric>

void parallel_for(std::size_t, std::size_t, int);

double convolve_taps_fixed(const double* taps, std::size_t tap_count) {
  return std::accumulate(taps, taps + tap_count, 0.0);
}

void mark_parallel() { parallel_for(0, 8, 0); }
