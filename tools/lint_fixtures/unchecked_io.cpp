// Lint fixture — must trigger: unchecked-io (and nothing else).
// Packs the near-miss cases alongside the real offenders: checked calls,
// the repo's own rename_file/Status idiom, and member functions that merely
// share a libc name must all stay quiet.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstdio>
#include <string>

struct FakeFs {
  int rename(const std::string&, const std::string&);
};

int rename_file(const char*, const char*);

void flagged(std::FILE* f, const char* buf, int fd) {
  fwrite(buf, 1, 8, f);        // BAD: short write vanishes
  std::fwrite(buf, 1, 8, f);   // BAD: qualified, still discarded
  rename("a.tmp", "a");        // BAD: the torn-snapshot classic
  ::fsync(fd);                 // BAD: "durable" write that may not be
}

bool checked(std::FILE* f, char* buf, int fd, FakeFs& fs) {
  if (fwrite(buf, 1, 8, f) != 8) return false;       // result examined
  const auto got = std::fread(buf, 1, 8, f);         // result captured
  bool ok = rename("b.tmp", "b") == 0;               // result compared
  ok = ok && ::fsync(fd) == 0;                       // result compared
  rename_file("c.tmp", "c");                         // different function
  fs.rename("d.tmp", "d");                           // member, not libc
  return ok && got == 8;
}
