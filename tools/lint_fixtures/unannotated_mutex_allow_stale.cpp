// Lint fixture — must trigger: unused-allow.  The mutex gained a
// EYEBALL_GUARDED_BY user (which satisfies the rule), so the old allow now
// suppresses nothing and must surface.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <mutex>

#define EYEBALL_GUARDED_BY(x)

class Annotated {
 private:
  // eyeball-lint: allow(unannotated-mutex): predates the annotation below
  std::mutex mutex_;
  int value_ EYEBALL_GUARDED_BY(mutex_) = 0;
};
