// Lint fixture — must be clean: a reasoned suppression of unannotated-mutex
// directly above the member.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <mutex>

class LegacyBridge {
 private:
  // eyeball-lint: allow(unannotated-mutex): handed by address to a C callback API that predates the wrappers
  std::mutex mutex_;
};
