// Lint fixture — must trigger: unused-allow (annotation suppresses nothing).
// Never compiled; exercised by `eyeball_lint.py --self-test`.

// eyeball-lint: allow(naked-new): the allocation below was refactored away
int answer() { return 42; }
