// Lint fixture — must trigger: unused-allow (annotation suppresses nothing:
// the handler below already rethrows, so the allow is stale).
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <exception>

void work();

void already_clean() {
  try {
    work();
  // eyeball-lint: allow(swallowed-exception): handler was refactored to rethrow
  } catch (...) {
    throw;
  }
}
