// Lint fixture — must trigger: unused-allow.  The discard this annotation
// suppressed was refactored into a checked call; the leftover allow must
// surface as a finding.
// Never compiled; exercised by `eyeball_lint.py --self-test`.

struct Status {
  bool ok() const;
};

Status remove_scratch(const char* path);

bool teardown(const char* path) {
  // eyeball-lint: allow(unchecked-status): best-effort scratch cleanup
  return remove_scratch(path).ok();
}
