// Lint fixture — must trigger: float-accumulate.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstddef>
#include <numeric>
#include <vector>

void parallel_for(std::size_t, std::size_t, int);

double sum_densities(const std::vector<double>& cells) {
  parallel_for(0, cells.size(), 0);  // marks this TU as parallel code
  // Reassociating float addition changes the total bit pattern; parallel
  // translation units must fold in an explicit, fixed order instead.
  return std::accumulate(cells.begin(), cells.end(), 0.0);
}
