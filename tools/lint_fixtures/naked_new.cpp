// Lint fixture — must trigger: naked-new.
// Never compiled; exercised by `eyeball_lint.py --self-test`.

struct Grid {
  double* cells;
};

Grid make_grid(unsigned n) {
  Grid g;
  g.cells = new double[n];
  return g;
}

void free_grid(Grid& g) { delete[] g.cells; }
