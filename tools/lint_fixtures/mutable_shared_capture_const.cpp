// Lint fixture — must be clean: the blessed sharing idioms.  Const state
// may be captured by reference from any number of tasks, and [&] default
// captures with disjoint-index writes are outside the rule's scope (the
// rule only tracks *named* mutable by-reference captures).
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstddef>
#include <vector>

struct Pool {
  template <typename F>
  void submit(F&&);
  template <typename F>
  void parallel_for(std::size_t, std::size_t, F&&, std::size_t = 0);
};

void blessed(Pool& pool, const std::vector<double>& weights,
             std::vector<double>& out) {
  pool.parallel_for(0, weights.size(), [&weights](std::size_t lo, std::size_t hi) {
    (void)lo;
    (void)hi;
  });
  pool.submit([&] { out[0] = weights[0]; });
}
