// Lint fixture — must trigger: unordered-iter-in-merge.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstddef>
#include <unordered_map>
#include <vector>

struct Shard {
  std::unordered_map<int, std::vector<double>> by_key;
};

// Iterating the unordered map while merging: bucket order decides the merged
// peer order, which varies across libstdc++ versions and load factors.
void merge_shards(std::vector<double>& out, const Shard& shard) {
  for (const auto& [key, values] : shard.by_key) {
    out.insert(out.end(), values.begin(), values.end());
  }
}
