// Lint fixture — must be clean: a properly annotated suppression.
// Never compiled; exercised by `eyeball_lint.py --self-test`.

struct Arena {
  char* block;
};

Arena reserve(unsigned bytes) {
  Arena a;
  // eyeball-lint: allow(naked-new): fixture demonstrating a reasoned suppression
  a.block = new char[bytes];
  return a;
}

void release(Arena& a) {
  delete[] a.block;  // eyeball-lint: allow(naked-new): paired with the arena above
}
