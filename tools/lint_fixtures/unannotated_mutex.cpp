// Lint fixture — must trigger: unannotated-mutex.  A raw std::mutex member
// with no EYEBALL_GUARDED_BY users: the lock exists but the thread-safety
// analysis cannot see what it protects, so nothing stops an unlocked access
// to `value_` from compiling.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <mutex>

class Cache {
 public:
  int get();

 private:
  std::mutex mutex_;
  int value_ = 0;
};
