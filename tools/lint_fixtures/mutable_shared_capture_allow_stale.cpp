// Lint fixture — must trigger: unused-allow.  The racy capture this
// annotation once suppressed was rewritten to a capture-free lambda; the
// stale allow must surface instead of rotting silently.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstddef>

struct Pool {
  template <typename F>
  void parallel_for(std::size_t, std::size_t, F&&, std::size_t = 0);
};

void fixed(Pool& pool) {
  // eyeball-lint: allow(mutable-shared-capture): rewritten to per-shard state long ago
  pool.parallel_for(0, 4, [](std::size_t, std::size_t) {});
}
