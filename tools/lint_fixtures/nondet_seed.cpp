// Lint fixture — must trigger: nondet-seed.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstdlib>
#include <ctime>
#include <random>

unsigned roll_the_dice() {
  std::random_device entropy;          // hardware entropy: unreproducible
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  std::mt19937 twister{entropy()};     // stdlib-dependent stream
  return twister() + static_cast<unsigned>(std::rand());
}
