// Lint fixture — must trigger: unknown-rule.
// Never compiled; exercised by `eyeball_lint.py --self-test`.

// eyeball-lint: allow(no-such-rule): typo'd rule names must not silently pass
int answer() { return 42; }
