// Lint fixture — must trigger: swallowed-exception (and nothing else).
// Both catch-all forms with bodies that make the failure vanish; the
// specifically-typed handler below must stay quiet (naming the type is
// evidence the author reasoned about that failure).
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <exception>
#include <new>

void log_line(const char*);

void flagged_silent() {
  try {
    log_line("work");
  } catch (...) {  // BAD: any failure, silently gone
  }
}

void flagged_logged_only() {
  try {
    log_line("work");
  } catch (const std::exception& e) {  // BAD: logged, then forgotten
    log_line(e.what());
  }
}

void quiet_specific_type(char*& out) {
  try {
    out = nullptr;
  } catch (const std::bad_alloc&) {  // fine: a named, reasoned-about type
    out = nullptr;
  }
}
