// Lint fixture — must be clean.  Packs the near-miss cases that tripped
// naive greps: rule keywords in comments and strings, `= delete` members,
// identifiers containing "new", ordered-map merges, and clocks used for
// timing rather than seeding.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <chrono>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

// Comments may say std::rand or std::random_device or new/delete freely.
struct NewSample {
  std::string renewal = "mt19937 is only a string here, not a seed";

  NewSample(const NewSample&) = delete;             // deleted member, not delete-expr
  NewSample& operator=(const NewSample&) = delete;  // same
};

// Merging an *ordered* map is exactly the blessed idiom.
void merge_counts(std::map<int, int>& into, const std::map<int, int>& from) {
  for (const auto& [key, count] : from) into[key] += count;
}

// Clock used for timing (no seed on the line): legitimate.
long long elapsed_ns(const std::vector<double>& values) {
  const auto start = std::chrono::steady_clock::now();
  double newest_total = 0.0;  // "new" inside an identifier must not match
  for (double v : values) newest_total += v;
  const auto stop = std::chrono::steady_clock::now();
  return (stop - start).count() + static_cast<long long>(newest_total);
}
