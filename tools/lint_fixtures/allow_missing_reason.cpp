// Lint fixture — must trigger: allow-without-reason AND the underlying
// naked-new.  A reasonless annotation suppresses nothing: the suppression
// only takes effect once it explains itself.
// Never compiled; exercised by `eyeball_lint.py --self-test`.

int* leaky() {
  // eyeball-lint: allow(naked-new)
  return new int{42};
}
