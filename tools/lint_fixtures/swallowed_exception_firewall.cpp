// Lint fixture — must stay clean: the two blessed handler shapes.
// A std::exception& handler that converts the failure into a util::Status
// passes outright (e.what() preserves the type's story); a catch (...)
// doing the same still needs a reasoned allow, because the dynamic type is
// unrecoverably gone — this fixture is the firewall pattern from
// serve/service.cpp in miniature.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <exception>
#include <string>

namespace util {
class Status {
 public:
  static Status internal(std::string);
};
}  // namespace util

util::Status firewall() {
  try {
    return util::Status::internal("unreachable");
  } catch (const std::exception& e) {  // fine: typed Status carries e.what()
    return util::Status::internal(e.what());
  }
  // eyeball-lint: allow(swallowed-exception): firewall — a non-std exception must still become a typed Status; no type info exists to preserve
  catch (...) {
    return util::Status::internal("non-std exception");
  }
}
