// Lint fixture — must be clean: a deliberately discarded Status with a
// reasoned suppression.
// Never compiled; exercised by `eyeball_lint.py --self-test`.

struct Status {
  bool ok() const;
};

Status remove_scratch(const char* path);

void teardown(const char* path) {
  // eyeball-lint: allow(unchecked-status): best-effort scratch cleanup; failure only re-deletes next run
  remove_scratch(path);
}
