// Lint fixture — must be clean: a reasoned suppression of
// mutable-shared-capture on the line above the capture.
// Never compiled; exercised by `eyeball_lint.py --self-test`.
#include <cstddef>

struct Pool {
  template <typename F>
  void parallel_for(std::size_t, std::size_t, F&&, std::size_t = 0);
};

void counted(Pool& pool) {
  unsigned rounds = 0;
  // eyeball-lint: allow(mutable-shared-capture): harness pins the pool to one worker thread
  pool.parallel_for(0, 4, [&rounds](std::size_t, std::size_t) { ++rounds; });
  (void)rounds;
}
