#!/usr/bin/env bash
# tools/check.sh — the repo's static-analysis & sanitizer gate.
#
# Stages (fail-fast, per-stage wall time reported):
#   tsan    EYEBALL_SANITIZE=thread build; pool/parallel/streaming
#           determinism tests
#   ubsan   EYEBALL_SANITIZE=undefined build; the FULL test suite, with
#           EYEBALL_DCHECK contracts forced on and UB aborting the test
#   snapshot-faults
#           EYEBALL_SANITIZE=address;undefined build; the fault-injection
#           differential harness + snapshot/file suites, so every injected
#           short write / failed fsync / bit flip / truncation is also swept
#           for memory errors in the failure paths it exercises
#   tidy    clang-tidy (.clang-tidy) over src/ via compile_commands.json
#           [skipped with a notice when clang-tidy is not installed]
#   lint    tools/eyeball_lint.py self-test + repo scan, plus the
#           check_bench_schema.py and bench_diff.py baseline tooling checks
#   strict  EYEBALL_STRICT=ON (-Wconversion -Wdouble-promotion -Werror) build
#   bench-smoke
#           each bm_* binary runs one cheap benchmark (bit-rot guard for the
#           bench sources; exit status only, no timing assertions)
#   format  clang-format --dry-run --Werror via the format-check target
#           [skipped with a notice when clang-format is not installed]
#
# Usage: tools/check.sh [--jobs N]
# Build trees live in build-tsan/, build-ubsan/, build-strict/ next to the
# default build/ tree and are reused across runs.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"
if [[ "${1:-}" == "--jobs" ]]; then
  JOBS="$2"
fi

declare -a STAGE_NAMES=()
declare -a STAGE_TIMES=()
declare -a STAGE_RESULTS=()

run_stage() {
  local name="$1"
  shift
  local start
  start=$(date +%s)
  echo
  echo "=== stage: ${name} ==="
  if "$@"; then
    STAGE_RESULTS+=("ok")
  else
    local rc=$?
    STAGE_TIMES+=("$(( $(date +%s) - start ))")
    STAGE_NAMES+=("${name}")
    STAGE_RESULTS+=("FAIL")
    report
    echo "check.sh: stage '${name}' failed (exit ${rc})" >&2
    exit "${rc}"
  fi
  STAGE_TIMES+=("$(( $(date +%s) - start ))")
  STAGE_NAMES+=("${name}")
}

skip_stage() {
  local name="$1" why="$2"
  echo
  echo "=== stage: ${name} — SKIPPED (${why}) ==="
  STAGE_NAMES+=("${name}")
  STAGE_TIMES+=(0)
  STAGE_RESULTS+=("skip: ${why}")
}

report() {
  echo
  echo "=== check.sh stage summary ==="
  local i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-8s %5ss  %s\n' "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}" \
      "${STAGE_RESULTS[$i]}"
  done
}

# --- tsan: the parallel-path determinism gate ------------------------------
tsan_stage() {
  cmake -B "${ROOT}/build-tsan" -S "${ROOT}" -DEYEBALL_SANITIZE=thread
  cmake --build "${ROOT}/build-tsan" -j "${JOBS}"
  # NB: 'snapshot_test' deliberately does not match snapshot_fault_test —
  # the fault harness runs under ASan in the snapshot-faults stage instead
  # (its interleavings are single-threaded; snapshot_test carries the
  # restore→ingest→finalize thread axis that belongs under TSan).
  ctest --test-dir "${ROOT}/build-tsan" --output-on-failure -j "${JOBS}" \
    -R 'ThreadPool|Parallel|thread_pool|Dcheck|Streaming|streaming|snapshot_test|Serving|serving'
}

# --- ubsan: full suite with UB trapping and contracts on -------------------
ubsan_stage() {
  cmake -B "${ROOT}/build-ubsan" -S "${ROOT}" -DEYEBALL_SANITIZE=undefined
  cmake --build "${ROOT}/build-ubsan" -j "${JOBS}"
  ctest --test-dir "${ROOT}/build-ubsan" --output-on-failure -j "${JOBS}"
}

# --- snapshot-faults: the crash-safety harness under ASan+UBSan ------------
snapshot_faults_stage() {
  cmake -B "${ROOT}/build-aubsan" -S "${ROOT}" \
    -DEYEBALL_SANITIZE="address;undefined"
  cmake --build "${ROOT}/build-aubsan" -j "${JOBS}" \
    -t snapshot_fault_test snapshot_test file_test
  ctest --test-dir "${ROOT}/build-aubsan" --output-on-failure -j "${JOBS}" \
    -R 'snapshot|file_test|FaultInjection|AtomicWriteFile'
}

# --- tidy: .clang-tidy over src/ -------------------------------------------
tidy_stage() {
  cmake -B "${ROOT}/build-tidy" -S "${ROOT}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  local files
  files=$(find "${ROOT}/src" -name '*.cpp' | sort)
  # shellcheck disable=SC2086
  clang-tidy -p "${ROOT}/build-tidy" --quiet ${files}
}

# --- lint: the repo-specific determinism rules -----------------------------
lint_stage() {
  python3 "${ROOT}/tools/eyeball_lint.py" --root "${ROOT}" --self-test
  python3 "${ROOT}/tools/eyeball_lint.py" --root "${ROOT}"
  python3 "${ROOT}/tools/check_bench_schema.py" --root "${ROOT}"
  python3 "${ROOT}/tools/bench_diff.py" --self-test
}

# --- bench-smoke: every bm_* binary compiles and runs ----------------------
# A bit-rot guard for the bench sources, not a timing gate: each binary runs
# one cheap benchmark (or, for bm_serving's custom driver, a full pass into
# a throwaway output file) with minimal iteration time, and only the exit
# status matters.
bench_smoke_stage() {
  cmake -B "${ROOT}/build" -S "${ROOT}"
  cmake --build "${ROOT}/build" -j "${JOBS}" \
    -t bm_dataset bm_kde bm_pipeline bm_prefix_trie bm_serving
  "${ROOT}/build/bench/bm_kde" \
    --benchmark_filter='BM_KdeBinned/1000$' --benchmark_min_time=0.01
  "${ROOT}/build/bench/bm_prefix_trie" \
    --benchmark_filter='BM_TrieInsert/1000$' --benchmark_min_time=0.01
  # These two share the generated-world fixture; its construction (crawl +
  # initial dataset build) dominates the stage's wall time.
  "${ROOT}/build/bench/bm_pipeline" \
    --benchmark_filter='BM_HaversineDistance' --benchmark_min_time=0.01
  "${ROOT}/build/bench/bm_dataset" \
    --benchmark_filter='BM_DatasetFind' --benchmark_min_time=0.01
  local serving_out
  serving_out="$(mktemp /tmp/eyeball_bench_serving.XXXXXX.json)"
  "${ROOT}/build/bench/bm_serving" "${serving_out}"
  rm -f "${serving_out}"
}

# --- strict: narrowing/promotion warnings as errors ------------------------
strict_stage() {
  cmake -B "${ROOT}/build-strict" -S "${ROOT}" -DEYEBALL_STRICT=ON
  cmake --build "${ROOT}/build-strict" -j "${JOBS}"
}

# --- format: style drift check ---------------------------------------------
format_stage() {
  cmake --build "${ROOT}/build-strict" -t format-check
}

run_stage tsan tsan_stage
run_stage ubsan ubsan_stage
run_stage snapshot-faults snapshot_faults_stage
if command -v clang-tidy > /dev/null 2>&1; then
  run_stage tidy tidy_stage
else
  skip_stage tidy "clang-tidy not installed"
fi
if command -v python3 > /dev/null 2>&1; then
  run_stage lint lint_stage
else
  skip_stage lint "python3 not installed"
fi
run_stage strict strict_stage
run_stage bench-smoke bench_smoke_stage
if command -v clang-format > /dev/null 2>&1; then
  run_stage format format_stage
else
  skip_stage format "clang-format not installed"
fi

report
echo
echo "check.sh: all stages passed"
