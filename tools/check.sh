#!/usr/bin/env bash
# tools/check.sh — the repo's static-analysis & sanitizer gate.
#
# Stages run fail-fast in the order of the STAGES table below (the one
# source of truth — `tools/check.sh --list` prints it, and the README's
# stage table is generated from the same text).  Per-stage wall time is
# reported at the end.
#
# Usage: tools/check.sh [--jobs N] [--list]
# Build trees live in build-tsan/, build-ubsan/, build-aubsan/,
# build-analysis/, build-strict/ next to the default build/ tree and are
# reused across runs.  Every configure exports compile_commands.json
# (CMAKE_EXPORT_COMPILE_COMMANDS=ON); the tidy and thread-safety stages
# share the build-analysis/ tree so clang-tidy and the Clang thread-safety
# build read one compile-commands DB.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

# name|what it does — the canonical stage list, in execution order.
STAGES=(
  "tsan|EYEBALL_SANITIZE=thread build; pool/parallel/streaming/serving determinism tests"
  "ubsan|EYEBALL_SANITIZE=undefined build; the FULL test suite with EYEBALL_DCHECK forced on and UB aborting"
  "snapshot-faults|EYEBALL_SANITIZE=address;undefined build; fault-injection differential harness + snapshot/file suites"
  "artifact-faults|EYEBALL_SANITIZE=address;undefined build; serving-artifact differential + fault sweep (zero-copy mmap battery)"
  "chaos|EYEBALL_SANITIZE=address;undefined build; 100-seed whole-lifecycle fault storms over EyeballService (Chaos.Concurrent* also under TSan)"
  "tidy|clang-tidy (.clang-tidy) over src/ via build-analysis/compile_commands.json [skipped when clang-tidy is absent]"
  "thread-safety|EYEBALL_THREAD_SAFETY=ON Clang build: capability analysis as errors + compile-fail probes [skipped when clang++ is absent]"
  "lint|tools/eyeball_lint.py self-test + repo scan, BENCH_*.json schema check, bench_diff self-test"
  "strict|EYEBALL_STRICT=ON (-Wconversion -Wdouble-promotion -Werror) build"
  "bench-smoke|each bm_* binary runs one cheap benchmark (bit-rot guard; a missing or failing binary is a hard stage failure)"
  "format|clang-format --dry-run --Werror via the format-check target [skipped when clang-format is absent]"
)

list_stages() {
  local entry
  for entry in "${STAGES[@]}"; do
    printf '%-16s %s\n' "${entry%%|*}" "${entry#*|}"
  done
}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs)
      JOBS="$2"
      shift 2
      ;;
    --list)
      list_stages
      exit 0
      ;;
    *)
      echo "check.sh: unknown argument '$1' (usage: tools/check.sh [--jobs N] [--list])" >&2
      exit 2
      ;;
  esac
done

declare -a STAGE_NAMES=()
declare -a STAGE_TIMES=()
declare -a STAGE_RESULTS=()

run_stage() {
  local name="$1"
  shift
  local start
  start=$(date +%s)
  echo
  echo "=== stage: ${name} ==="
  if "$@"; then
    STAGE_RESULTS+=("ok")
  else
    local rc=$?
    STAGE_TIMES+=("$(( $(date +%s) - start ))")
    STAGE_NAMES+=("${name}")
    STAGE_RESULTS+=("FAIL")
    report
    echo "check.sh: stage '${name}' failed (exit ${rc})" >&2
    exit "${rc}"
  fi
  STAGE_TIMES+=("$(( $(date +%s) - start ))")
  STAGE_NAMES+=("${name}")
}

skip_stage() {
  local name="$1" why="$2"
  echo
  echo "=== stage: ${name} — SKIPPED (${why}) ==="
  STAGE_NAMES+=("${name}")
  STAGE_TIMES+=(0)
  STAGE_RESULTS+=("skip: ${why}")
}

report() {
  echo
  echo "=== check.sh stage summary ==="
  local i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-14s %5ss  %s\n' "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}" \
      "${STAGE_RESULTS[$i]}"
  done
}

# --- tsan: the parallel-path determinism gate ------------------------------
tsan_stage() {
  cmake -B "${ROOT}/build-tsan" -S "${ROOT}" -DEYEBALL_SANITIZE=thread \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${ROOT}/build-tsan" -j "${JOBS}"
  # NB: 'snapshot_test' deliberately does not match snapshot_fault_test —
  # the fault harness runs under ASan in the snapshot-faults stage instead
  # (its interleavings are single-threaded; snapshot_test carries the
  # restore→ingest→finalize thread axis that belongs under TSan).
  ctest --test-dir "${ROOT}/build-tsan" --output-on-failure -j "${JOBS}" \
    -R 'ThreadPool|Parallel|thread_pool|Dcheck|Streaming|streaming|snapshot_test|Serving|serving'
}

# --- ubsan: full suite with UB trapping and contracts on -------------------
ubsan_stage() {
  cmake -B "${ROOT}/build-ubsan" -S "${ROOT}" -DEYEBALL_SANITIZE=undefined \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${ROOT}/build-ubsan" -j "${JOBS}"
  ctest --test-dir "${ROOT}/build-ubsan" --output-on-failure -j "${JOBS}"
}

# --- snapshot-faults: the crash-safety harness under ASan+UBSan ------------
snapshot_faults_stage() {
  cmake -B "${ROOT}/build-aubsan" -S "${ROOT}" \
    -DEYEBALL_SANITIZE="address;undefined" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${ROOT}/build-aubsan" -j "${JOBS}" \
    -t snapshot_fault_test snapshot_test file_test
  ctest --test-dir "${ROOT}/build-aubsan" --output-on-failure -j "${JOBS}" \
    -R 'snapshot|file_test|FaultInjection|AtomicWriteFile'
}

# --- artifact-faults: the zero-copy serving artifact under ASan+UBSan ------
# Shares build-aubsan/ with snapshot-faults.  The differential suite doubles
# as the alignment/aliasing gate for the in-place mmap reads; the fault
# sweep's acceptance bar is zero silent corruptions.
artifact_faults_stage() {
  cmake -B "${ROOT}/build-aubsan" -S "${ROOT}" \
    -DEYEBALL_SANITIZE="address;undefined" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${ROOT}/build-aubsan" -j "${JOBS}" \
    -t artifact_test artifact_fault_test
  ctest --test-dir "${ROOT}/build-aubsan" --output-on-failure -j "${JOBS}" \
    -R 'artifact'
}

# --- chaos: whole-lifecycle fault storms over the serving layer ------------
# Shares build-aubsan/ with the fault stages (the storm's oracle includes
# memory-clean restores); the Chaos.Concurrent* slice additionally runs
# under the TSan tree, where readers polling health() and epochs race the
# retrying writer.
chaos_stage() {
  cmake -B "${ROOT}/build-aubsan" -S "${ROOT}" \
    -DEYEBALL_SANITIZE="address;undefined" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${ROOT}/build-aubsan" -j "${JOBS}" -t chaos_test
  ctest --test-dir "${ROOT}/build-aubsan" --output-on-failure -R 'chaos'
  cmake -B "${ROOT}/build-tsan" -S "${ROOT}" -DEYEBALL_SANITIZE=thread \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${ROOT}/build-tsan" -j "${JOBS}" -t chaos_test
  "${ROOT}/build-tsan/tests/chaos_test" --gtest_filter='Chaos.Concurrent*'
}

# --- build-analysis/: one Clang tree for tidy + thread-safety --------------
# Configured with clang++ when available so its compile_commands.json
# carries Clang-compatible flags for clang-tidy AND the tree doubles as the
# thread-safety build.  Falls back to the default compiler (tidy still
# works off gcc-flagged commands in practice) when clang++ is missing.
configure_analysis_tree() {
  local -a compiler_args=()
  if command -v clang++ > /dev/null 2>&1; then
    compiler_args+=("-DCMAKE_CXX_COMPILER=clang++" "-DEYEBALL_THREAD_SAFETY=ON")
  fi
  # ${arr[@]+...} guards the empty-array expansion against `set -u` on
  # older bash.
  cmake -B "${ROOT}/build-analysis" -S "${ROOT}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON ${compiler_args[@]+"${compiler_args[@]}"}
}

# --- tidy: .clang-tidy over src/ -------------------------------------------
tidy_stage() {
  configure_analysis_tree
  local files
  files=$(find "${ROOT}/src" -name '*.cpp' | sort)
  # shellcheck disable=SC2086
  clang-tidy -p "${ROOT}/build-analysis" --quiet ${files}
}

# --- thread-safety: Clang capability analysis as errors --------------------
# Configure already ran the annotation layer's compile-fail probes (the
# locked probe must compile, the unlocked one must not); the build then
# sweeps the whole tree under -Werror=thread-safety-analysis.
thread_safety_stage() {
  configure_analysis_tree
  cmake --build "${ROOT}/build-analysis" -j "${JOBS}"
}

# --- lint: the repo-specific determinism rules -----------------------------
lint_stage() {
  python3 "${ROOT}/tools/eyeball_lint.py" --root "${ROOT}" --self-test
  python3 "${ROOT}/tools/eyeball_lint.py" --root "${ROOT}"
  python3 "${ROOT}/tools/check_bench_schema.py" --root "${ROOT}"
  python3 "${ROOT}/tools/bench_diff.py" --self-test
}

# --- bench-smoke: every bm_* binary compiles and runs ----------------------
# A bit-rot guard for the bench sources, not a timing gate: each binary runs
# one cheap benchmark (or, for bm_serving's custom driver, a full pass into
# a throwaway output file) with minimal iteration time, and only the exit
# status matters.  `set -e` is suspended inside a function invoked through
# run_stage's `if`, so every step carries an explicit `|| return 1` — and a
# bm_* binary that was never produced is a hard stage failure, not a shell
# 127 masked by a later success.
run_bench() {
  local bin="${ROOT}/build/bench/$1"
  shift
  if [[ ! -x "${bin}" ]]; then
    echo "check.sh: bench binary '${bin}' is missing — bench-smoke fails hard" >&2
    return 1
  fi
  "${bin}" "$@"
}

bench_smoke_stage() {
  cmake -B "${ROOT}/build" -S "${ROOT}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON || return 1
  cmake --build "${ROOT}/build" -j "${JOBS}" \
    -t bm_dataset bm_kde bm_pipeline bm_prefix_trie bm_serving || return 1
  run_bench bm_kde \
    --benchmark_filter='BM_KdeBinned/1000$' --benchmark_min_time=0.01 || return 1
  run_bench bm_prefix_trie \
    --benchmark_filter='BM_TrieInsert/1000$' --benchmark_min_time=0.01 || return 1
  # These two share the generated-world fixture; its construction (crawl +
  # initial dataset build) dominates the stage's wall time.
  run_bench bm_pipeline \
    --benchmark_filter='BM_HaversineDistance' --benchmark_min_time=0.01 || return 1
  run_bench bm_dataset \
    --benchmark_filter='BM_DatasetFind' --benchmark_min_time=0.01 || return 1
  local serving_out
  serving_out="$(mktemp /tmp/eyeball_bench_serving.XXXXXX.json)" || return 1
  run_bench bm_serving "${serving_out}" || { rm -f "${serving_out}"; return 1; }
  rm -f "${serving_out}"
}

# --- strict: narrowing/promotion warnings as errors ------------------------
strict_stage() {
  cmake -B "${ROOT}/build-strict" -S "${ROOT}" -DEYEBALL_STRICT=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
  cmake --build "${ROOT}/build-strict" -j "${JOBS}"
}

# --- format: style drift check ---------------------------------------------
format_stage() {
  cmake --build "${ROOT}/build-strict" -t format-check
}

run_stage tsan tsan_stage
run_stage ubsan ubsan_stage
run_stage snapshot-faults snapshot_faults_stage
run_stage artifact-faults artifact_faults_stage
run_stage chaos chaos_stage
if command -v clang-tidy > /dev/null 2>&1; then
  run_stage tidy tidy_stage
else
  skip_stage tidy "clang-tidy not installed"
fi
if command -v clang++ > /dev/null 2>&1; then
  run_stage thread-safety thread_safety_stage
else
  skip_stage thread-safety "clang++ not installed (-Wthread-safety is Clang-only)"
fi
if command -v python3 > /dev/null 2>&1; then
  run_stage lint lint_stage
else
  skip_stage lint "python3 not installed"
fi
run_stage strict strict_stage
run_stage bench-smoke bench_smoke_stage
if command -v clang-format > /dev/null 2>&1; then
  run_stage format format_stage
else
  skip_stage format "clang-format not installed"
fi

report
echo
echo "check.sh: all stages passed"
