#!/usr/bin/env python3
"""eyeball-lint: repo-specific determinism & UB invariants, checked statically.

The parallel pipeline's correctness contract — "byte-identical to the serial
path at any thread count" — survives refactors only if a handful of idioms
stay out of the codebase.  Each rule below names one way that contract has
historically been broken in systems like this:

  unordered-iter-in-merge  Iterating std::unordered_{map,set} inside a
                           *merge*/*reduce*/*fold* function or inside a
                           parallel_map_reduce call: bucket order is
                           implementation- and size-dependent, so the merged
                           result ceases to be deterministic.
  nondet-seed              std::rand/srand, std::random_device, std::mt19937,
                           or time-derived seeding outside src/util/rng.*:
                           all randomness must flow through the explicitly
                           seeded xoshiro generator.
  float-accumulate         std::accumulate with a floating-point initial
                           value in a file that uses the thread pool:
                           reassociating float sums changes results; parallel
                           code must reduce through an explicit ordered fold.
                           Bodies of convolve_*_fixed functions are exempt —
                           their tap loops accumulate in a fixed compile-time
                           order by construction (see src/kde/estimator.cpp).
  naked-new                Raw new/delete expressions: ownership lives in
                           containers and smart pointers (`= delete` for
                           deleted members is, of course, fine).
  mutable-shared-capture   A named by-reference capture ([&x]) of *mutable*
                           state on a lambda handed to submit/parallel_for/
                           parallel_map_reduce: one variable written from
                           every task is a data race or an order dependence.
                           Captures of const-declared state are fine, as is
                           [&] with writes to disjoint indices, or private
                           per-shard state merged in order.  (Supersedes the
                           old ref-capture-parallel rule, which could not
                           tell const from mutable and ignored submit().)
  unchecked-status         A call to a util::Status-returning function in
                           statement position, i.e. with the result
                           discarded.  `class [[nodiscard]] Status` makes the
                           compiler catch this in compiled code; the lint
                           extends the contract to code the compiler never
                           sees (ifdef'd paths, fixtures) and to refactors
                           that launder the result through auto&&.  Function
                           names are harvested from `Status name(...)`
                           declarations across the scan set.  A deliberate
                           discard is spelled static_cast<void>(...) plus a
                           reasoned allow.
  unannotated-mutex        A raw std::mutex / std::shared_mutex member in
                           src/ with no EYEBALL_GUARDED_BY(member) user and
                           no EYEBALL_CAPABILITY wrapper above it: a lock
                           that guards nothing the analysis can see. Use
                           util::Mutex / util::SharedMutex (src/util/
                           mutex.hpp) and annotate what it protects.
  unchecked-io             A raw fwrite/fread/rename/fsync call in statement
                           position (return value discarded) outside the
                           checked I/O layer (src/util/file.*): a short write
                           or failed rename that nobody looks at is exactly
                           the torn-snapshot bug the crash-safety harness
                           exists to catch.  All raw I/O goes through
                           util::FileSystem's Status-returning wrappers.
  swallowed-exception      A `catch (...)` or `catch (std::exception&)` whose
                           body neither rethrows (throw;, rethrow_exception,
                           current_exception) nor converts the failure into a
                           util::Status: the error vanishes — a long-lived
                           server keeps running on silently-wrong state.  A
                           std::exception& handler that produces a Status
                           passes (e.what() preserves the type's story); a
                           `catch (...)` that converts to Status still needs
                           a reasoned allow, because the dynamic type is
                           unrecoverably gone — the publish firewall in
                           serve/service.cpp is the one blessed site.

Suppression: a finding is silenced by an annotation on the same line or the
line directly above, and the annotation must carry a reason:

    // eyeball-lint: allow(naked-new): arena block handed to mmap teardown

Annotations without a reason, naming an unknown rule, or suppressing nothing
are themselves findings — suppressions never go stale silently.

Exit status: 0 clean, 1 findings, 2 usage/self-test harness error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "unordered-iter-in-merge":
        "iteration over an unordered container in a merge/reduce/fold path",
    "nondet-seed":
        "non-deterministic randomness source outside src/util/rng",
    "float-accumulate":
        "std::accumulate over floats in parallel code (use an ordered fold; "
        "convolve_*_fixed bodies are exempt)",
    "naked-new":
        "raw new/delete expression (use containers or smart pointers)",
    "mutable-shared-capture":
        "named by-reference capture of mutable state in a lambda handed to "
        "submit/parallel_for/parallel_map_reduce",
    "unchecked-status":
        "util::Status-returning call in statement position (result discarded)",
    "unannotated-mutex":
        "raw std::mutex member with no EYEBALL_GUARDED_BY users or capability "
        "wrapper (use util::Mutex and annotate what it guards)",
    "unchecked-io":
        "raw fwrite/fread/rename/fsync with its return value discarded "
        "(route I/O through util/file's Status-returning layer)",
    "swallowed-exception":
        "catch (...) / catch (std::exception&) body that neither rethrows nor "
        "produces a util::Status (the error vanishes)",
}

META_RULES = {
    "allow-without-reason":
        "eyeball-lint allow(...) annotation without a ': reason' suffix",
    "unknown-rule":
        "eyeball-lint allow(...) annotation naming a rule that does not exist",
    "unused-allow":
        "eyeball-lint allow(...) annotation that suppresses nothing",
}

SCAN_DIRS = ("src", "tests", "bench", "examples")
SCAN_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}
# Files allowed to own non-deterministic-looking RNG machinery.
NONDET_EXEMPT = ("src/util/rng.hpp", "src/util/rng.cpp")
# The checked I/O layer: the ONE place raw libc I/O calls may live (their
# results feed util::Status there, under test by the fault harness).
IO_EXEMPT = ("src/util/file.hpp", "src/util/file.cpp")

ALLOW_RE = re.compile(
    r"//\s*eyeball-lint:\s*allow\(([A-Za-z0-9_-]+)\)(\s*:\s*(\S.*))?")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def matching_brace_span(text: str, open_index: int) -> int:
    """Index one past the brace/paren that closes the one at open_index."""
    pairs = {"{": "}", "(": ")"}
    close = pairs[text[open_index]]
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == text[open_index]:
            depth += 1
        elif text[i] == close:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def back_over_group(text: str, close_index: int) -> int:
    """Index of the paren/bracket/brace that opens the one closing at
    close_index."""
    pairs = {")": "(", "]": "[", "}": "{"}
    open_c = pairs[text[close_index]]
    close_c = text[close_index]
    depth = 0
    for i in range(close_index, -1, -1):
        if text[i] == close_c:
            depth += 1
        elif text[i] == open_c:
            depth -= 1
            if depth == 0:
                return i
    return 0


def line_of(text: str, index: int) -> int:
    return text.count("\n", 0, index) + 1


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


MERGE_FN_RE = re.compile(r"\b\w*(?:merge|reduce|fold)\w*\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*&?\s*(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*:\s*[^)]+)\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(")
ACCUMULATE_RE = re.compile(r"std\s*::\s*accumulate\s*\(")
FLOATISH_RE = re.compile(r"\d\.\d*|\.\d|\d\.?\d*f\b|\b(?:double|float)\b")
NEW_RE = re.compile(r"\bnew\b\s*(?:\(|[A-Za-z_:])")
DELETE_RE = re.compile(r"\bdelete\b\s*(?:\[\s*\])?\s*[A-Za-z_(*&]")
PARALLEL_CALL_RE = re.compile(r"\bparallel_(?:for|map_reduce)\s*\(")
# The pool's full task-spawning surface: anything here runs the lambda on
# another thread (submit) or on many (parallel_*).
TASK_CALL_RE = re.compile(r"\b(?:submit|parallel_for|parallel_map_reduce)\s*\(")
NAMED_REF_CAPTURE_RE = re.compile(r"\[((?:[^\[\]]*,)?\s*&\s*\w+[^\]]*)\]\s*\(")
# `Status name(` — declaration or definition of a Status-returning function.
# Matches plain, util::-qualified, [[nodiscard]], virtual, static forms (the
# qualifier/attribute sits left of the \b).  "status" itself is denied so a
# variable named like the type can never poison the harvest.
STATUS_FN_RE = re.compile(r"\bStatus\s+(\w+)\s*\(")
STATUS_NAME_DENYLIST = {"status"}
# std::filesystem's API shares names with the checked layer it underlies
# (create_directories, rename, ...) but reports through bool/error_code —
# calls reached through these namespace qualifiers are not Status discards.
STD_FS_QUALIFIER_RE = re.compile(r"\b(?:filesystem|stdfs)\s*::\s*$")
CONVOLVE_FIXED_RE = re.compile(r"\bconvolve_\w*_fixed\s*\(")
RAW_MUTEX_RE = re.compile(r"\bstd\s*::\s*(?:shared_)?mutex\s+(\w+)\s*[;={]")
NONDET_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*rand\b|\bsrand\s*\("), "std::rand/srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937 (stdlib-dependent stream)"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time()-derived value"),
)
CLOCK_NOW_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\(")
SEEDY_RE = re.compile(r"seed|rng", re.IGNORECASE)
IO_CALL_RE = re.compile(r"\b(fwrite|fread|rename|fsync)\s*\(")
# The two catch forms that can swallow ANY failure.  Handlers for specific
# types (catch (const std::bad_alloc&)) are deliberately not matched: naming
# the type is itself evidence the author reasoned about that failure.
CATCH_ALL_RE = re.compile(
    r"\bcatch\s*\(\s*(\.\.\.|(?:const\s+)?std\s*::\s*exception\s*&\s*\w*)\s*\)")
# Tokens that prove the failure leaves the handler: a bare rethrow, storing /
# rethrowing the exception_ptr, or std::rethrow_exception.
RETHROW_TOKEN_RE = re.compile(r"\bthrow\b|rethrow_exception|current_exception")
STATUS_TOKEN_RE = re.compile(r"\bStatus\b")


def io_call_in_statement_position(stripped: str, start: int) -> bool:
    """True when the raw-I/O call at `start` discards its return value.

    Heuristic: walk back over optional `std` / `::` qualifiers, then look at
    the preceding non-space character.  A `;`, `{`, `}` (or file start) means
    the call opens a statement, so nothing consumes the result.  Anything
    else — `=`, `(`, `!`, `,`, a cast, `return` — means the result flows
    somewhere.  `rename_file(` and `fs.rename(` never reach here: the word
    boundary and the `.`/`_` context rule them out.  Deliberately does NOT
    follow member chains the way status_result_discarded does: `fs.rename(`
    is a *wrapper* call that must stay out of this libc-level rule.
    """
    i = start
    while True:
        j = i
        while j > 0 and stripped[j - 1] in " \t\n":
            j -= 1
        if j >= 2 and stripped[j - 2:j] == "::":
            i = j - 2
            continue
        if (j >= 3 and stripped[j - 3:j] == "std"
                and (j == 3 or not (stripped[j - 4].isalnum()
                                    or stripped[j - 4] == "_"))):
            i = j - 3
            continue
        break
    k = i - 1
    while k >= 0 and stripped[k] in " \t\n":
        k -= 1
    return k < 0 or stripped[k] in ";{}"


def status_result_discarded(stripped: str, name_start: int) -> bool:
    """True when the Status-returning call whose name starts at name_start
    opens a statement, i.e. nothing consumes the returned Status.

    Unlike the libc walker above, this one follows postfix chains leftward —
    `builder.save_snapshot(dir);` and `fs().remove_file(p);` are discards even
    though the name is not the first token of the statement.  Each loop turn
    consumes one connector (`.`, `->`, `::`) plus the chain element before it
    (trailing call/index groups, then an identifier).  The walk stops at:

      ; { }  or file start  ->  statement position, result discarded;
      anything else (=, (, !, &&, return's final 'n', a type name in a
      declaration, a cast's closing paren)  ->  the result flows somewhere.
    """
    i = name_start
    while True:
        j = i
        while j > 0 and stripped[j - 1] in " \t\n":
            j -= 1
        if j == 0:
            return True
        if stripped[j - 1] in ";{}":
            return True
        if stripped[j - 2:j] in ("::", "->"):
            i = j - 2
        elif stripped[j - 1] == ".":
            i = j - 1
        else:
            return False
        # Consume the chain element left of the connector: first any trailing
        # (...) / [...] / {...} groups (the last for brace-init temporaries,
        # `Status{}.with_context(...)`), then the identifier that owns them.
        j = i
        while True:
            while j > 0 and stripped[j - 1] in " \t\n":
                j -= 1
            if j > 0 and stripped[j - 1] in ")]}":
                j = back_over_group(stripped, j - 1)
            else:
                break
        while j > 0 and (stripped[j - 1].isalnum() or stripped[j - 1] == "_"):
            j -= 1
        i = j


def unordered_names(stripped: str) -> set[str]:
    return set(UNORDERED_DECL_RE.findall(stripped))


def harvest_status_names(stripped: str) -> set[str]:
    """Function names declared/defined as returning (util::)Status."""
    return {name for name in STATUS_FN_RE.findall(stripped)
            if name.lower() not in STATUS_NAME_DENYLIST}


def function_body_span(stripped: str, open_paren: int) -> tuple[int, int] | None:
    """If the argument list opening at open_paren belongs to a function
    *definition*, the span of its brace-enclosed body; None for plain calls
    and declarations.  Tolerates const/noexcept/trailing-return between the
    `)` and the `{`."""
    after_args = matching_brace_span(stripped, open_paren)
    tail = stripped[after_args:after_args + 120]
    tail_head = tail.lstrip()
    body_match = re.match(
        r"(?:const\b\s*)?(?:noexcept\b\s*)?(?:->\s*[\w:<>&,\s]+?)?\{", tail_head)
    if not body_match:
        return None
    brace_at = after_args + (len(tail) - len(tail_head)) + body_match.end() - 1
    return brace_at, matching_brace_span(stripped, brace_at)


def merge_scope_spans(stripped: str) -> list[tuple[int, int]]:
    """Spans of merge/reduce/fold function bodies and parallel_map_reduce
    call arguments (where ordered reduction is the whole point)."""
    spans = []
    for m in MERGE_FN_RE.finditer(stripped):
        span = function_body_span(stripped, m.end() - 1)
        if span:
            spans.append(span)
    for m in re.finditer(r"\bparallel_map_reduce\s*\(", stripped):
        open_paren = m.end() - 1
        spans.append((open_paren, matching_brace_span(stripped, open_paren)))
    return spans


def fixed_order_spans(stripped: str) -> list[tuple[int, int]]:
    """Bodies of convolve_*_fixed definitions: their accumulation order is
    pinned by a compile-time tap window, so float-accumulate does not apply."""
    spans = []
    for m in CONVOLVE_FIXED_RE.finditer(stripped):
        span = function_body_span(stripped, m.end() - 1)
        if span:
            spans.append(span)
    return spans


def const_declared(stripped: str, name: str) -> bool:
    """True if `name` appears as a const-qualified declaration/parameter
    somewhere in the file — `const T& name`, `const T name`.  The character
    class forbids crossing `;`/`=`/braces, so a const elsewhere in the file
    cannot launder an unrelated mutable variable."""
    return re.search(
        rf"\bconst\b[^;{{}}=]{{0,200}}?[&\s]\s*{re.escape(name)}\b",
        stripped) is not None


def scan_text(rel_path: str, raw: str,
              status_names: set[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    stripped = strip_comments_and_strings(raw)
    add = lambda line, rule, msg: findings.append(Finding(rel_path, line, rule, msg))

    # --- unordered-iter-in-merge ------------------------------------------
    names = unordered_names(stripped)
    for lo, hi in merge_scope_spans(stripped):
        scope = stripped[lo:hi]
        for m in RANGE_FOR_RE.finditer(scope):
            iterable = m.group(1).split(":", 1)[-1]
            if "unordered_" in iterable or any(
                    re.search(rf"\b{re.escape(n)}\b", iterable) for n in names):
                add(line_of(stripped, lo + m.start()), "unordered-iter-in-merge",
                    "range-for over an unordered container in an ordered "
                    "merge/reduce path — bucket order is not deterministic")
        for m in BEGIN_CALL_RE.finditer(scope):
            if m.group(1) in names:
                add(line_of(stripped, lo + m.start()), "unordered-iter-in-merge",
                    f"iterator walk of unordered container '{m.group(1)}' in an "
                    "ordered merge/reduce path")

    # --- nondet-seed -------------------------------------------------------
    if not rel_path.endswith(NONDET_EXEMPT):
        for pattern, what in NONDET_PATTERNS:
            for m in pattern.finditer(stripped):
                add(line_of(stripped, m.start()), "nondet-seed",
                    f"{what} — all randomness must flow through util/rng "
                    "with an explicit seed")
        for m in CLOCK_NOW_RE.finditer(stripped):
            line = line_of(stripped, m.start())
            line_text = stripped.splitlines()[line - 1]
            if SEEDY_RE.search(line_text):
                add(line, "nondet-seed",
                    "clock-derived seed — derive seeds from util/rng instead")

    # --- float-accumulate --------------------------------------------------
    if PARALLEL_CALL_RE.search(stripped) or "thread_pool.hpp" in raw:
        exempt_spans = fixed_order_spans(stripped)
        for m in ACCUMULATE_RE.finditer(stripped):
            if any(lo <= m.start() < hi for lo, hi in exempt_spans):
                continue
            args = stripped[m.end() - 1: matching_brace_span(stripped, m.end() - 1)]
            if FLOATISH_RE.search(args):
                add(line_of(stripped, m.start()), "float-accumulate",
                    "float std::accumulate in a parallel translation unit — "
                    "reassociation changes results; use an explicit ordered fold")

    # --- naked-new ---------------------------------------------------------
    for m in NEW_RE.finditer(stripped):
        add(line_of(stripped, m.start()), "naked-new",
            "raw new expression — ownership belongs in containers/smart pointers")
    for m in DELETE_RE.finditer(stripped):
        add(line_of(stripped, m.start()), "naked-new",
            "raw delete expression — ownership belongs in containers/smart pointers")

    # --- mutable-shared-capture -------------------------------------------
    for m in TASK_CALL_RE.finditer(stripped):
        span_base = m.end() - 1
        span = stripped[span_base: matching_brace_span(stripped, span_base)]
        for cap in NAMED_REF_CAPTURE_RE.finditer(span):
            named_refs = re.findall(r"&\s*(\w+)", cap.group(1))
            mutable_refs = [n for n in named_refs
                            if not const_declared(stripped, n)]
            if mutable_refs:
                add(line_of(stripped, span_base + cap.start()),
                    "mutable-shared-capture",
                    f"task lambda captures mutable {mutable_refs} by "
                    "reference — shared mutation across tasks breaks the "
                    "determinism contract (const state, [&] with disjoint "
                    "writes, or per-shard state merged in order)")

    # --- unchecked-status --------------------------------------------------
    # In compiled code `class [[nodiscard]] Status` already makes this a
    # compiler warning; the lint re-checks it name-wise so ifdef'd-out paths
    # and never-compiled fixtures honor the same contract.
    if status_names is None:
        status_names = harvest_status_names(stripped)
    if status_names:
        call_re = re.compile(
            r"\b(" + "|".join(sorted(re.escape(n) for n in status_names)) + r")\s*\(")
        for m in call_re.finditer(stripped):
            if STD_FS_QUALIFIER_RE.search(stripped, 0, m.start(1)):
                continue
            if status_result_discarded(stripped, m.start(1)):
                add(line_of(stripped, m.start(1)), "unchecked-status",
                    f"result of Status-returning '{m.group(1)}' discarded — "
                    "check it, propagate it, or spell the discard "
                    "static_cast<void>(...) with a reasoned allow")

    # --- unannotated-mutex -------------------------------------------------
    # src/-only: production locks must be visible to the Clang thread-safety
    # analysis.  A raw std::mutex member passes only when something in the
    # file is EYEBALL_GUARDED_BY it, or when it sits inside a capability
    # wrapper (util::Mutex itself — the EYEBALL_CAPABILITY text precedes the
    # member in that case).
    if rel_path.startswith("src/"):
        for m in RAW_MUTEX_RE.finditer(stripped):
            name = m.group(1)
            if re.search(rf"\bEYEBALL_GUARDED_BY\s*\(\s*{re.escape(name)}\s*\)",
                         stripped):
                continue
            if "EYEBALL_CAPABILITY" in stripped[:m.start()]:
                continue
            add(line_of(stripped, m.start()), "unannotated-mutex",
                f"raw mutex member '{name}' guards nothing the thread-safety "
                "analysis can see — use util::Mutex/util::SharedMutex and "
                "EYEBALL_GUARDED_BY the state it protects")

    # --- unchecked-io ------------------------------------------------------
    if not rel_path.endswith(IO_EXEMPT):
        for m in IO_CALL_RE.finditer(stripped):
            if io_call_in_statement_position(stripped, m.start(1)):
                add(line_of(stripped, m.start(1)), "unchecked-io",
                    f"return value of {m.group(1)} discarded — raw I/O belongs "
                    "in util/file's checked layer; here, at minimum, the "
                    "result must be examined")

    # --- swallowed-exception -----------------------------------------------
    # A catch-all handler passes when its body rethrows (the failure keeps
    # travelling) or — for std::exception& only, where e.what() preserves the
    # story — when it produces a util::Status.  A `catch (...)` converting to
    # Status is still a finding: the dynamic type is gone, so the one such
    # firewall site must carry a reasoned allow.
    for m in CATCH_ALL_RE.finditer(stripped):
        brace = stripped.find("{", m.end())
        if brace < 0:
            continue
        body = stripped[brace:matching_brace_span(stripped, brace)]
        if RETHROW_TOKEN_RE.search(body):
            continue
        caught = m.group(1)
        if caught != "..." and STATUS_TOKEN_RE.search(body):
            continue
        what = "catch (...)" if caught == "..." else "catch (std::exception&)"
        add(line_of(stripped, m.start()), "swallowed-exception",
            f"{what} body neither rethrows nor produces a util::Status — "
            "the failure vanishes; rethrow it, convert it to a typed "
            "Status, or (for a reasoned firewall) carry an allow")

    # --- suppression handling ---------------------------------------------
    allows = []  # (line, rule, has_reason, used)
    raw_lines = raw.splitlines()
    for i, line_text in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line_text)
        if not m:
            continue
        rule, reason = m.group(1), m.group(3)
        if rule not in RULES:
            findings.append(Finding(rel_path, i, "unknown-rule",
                                    f"allow({rule}) names no known rule; known: "
                                    + ", ".join(sorted(RULES))))
            continue
        if not reason:
            findings.append(Finding(rel_path, i, "allow-without-reason",
                                    f"allow({rule}) must explain itself: "
                                    f"`// eyeball-lint: allow({rule}): <why>`"))
            continue
        allows.append({"line": i, "rule": rule, "used": False})

    kept = []
    for f in findings:
        suppressed = False
        for a in allows:
            if a["rule"] == f.rule and f.line in (a["line"], a["line"] + 1):
                a["used"] = True
                suppressed = True
        if not suppressed:
            kept.append(f)
    for a in allows:
        if not a["used"]:
            kept.append(Finding(rel_path, a["line"], "unused-allow",
                                f"allow({a['rule']}) suppresses nothing — stale "
                                "annotation, remove it"))
    kept.sort(key=lambda f: f.line)
    return kept


def iter_source_files(root: Path):
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SCAN_SUFFIXES and path.is_file():
                yield path


def run_scan(root: Path, paths: list[Path]) -> list[Finding]:
    findings = []
    targets = paths if paths else list(iter_source_files(root))
    # unchecked-status needs the cross-file picture: a Status API declared in
    # util/file.hpp must be flagged when discarded in core/snapshot.cpp.  One
    # harvest pass over the whole scan set (plus any explicit targets) feeds
    # every file's scan.
    status_names: set[str] = set()
    for path in {*targets, *iter_source_files(root)}:
        status_names |= harvest_status_names(
            strip_comments_and_strings(path.read_text(encoding="utf-8")))
    for path in targets:
        rel = str(path.relative_to(root)) if path.is_absolute() else str(path)
        findings.extend(scan_text(rel, path.read_text(encoding="utf-8"),
                                  status_names))
    return findings


# --------------------------------------------------------------------------
# Self-test: every rule must fire on its fixture and stay quiet on the clean
# ones.  Fixtures live in tools/lint_fixtures/ and are never compiled.  Each
# fixture is scanned as if it lived at src/<name> so src/-scoped rules
# (unannotated-mutex) apply; status names are harvested per-fixture.
FIXTURE_EXPECTATIONS = {
    "unordered_iter_in_merge.cpp": ["unordered-iter-in-merge"],
    "nondet_seed.cpp": ["nondet-seed"],
    "float_accumulate.cpp": ["float-accumulate"],
    "float_accumulate_convolve_fixed.cpp": [],
    "naked_new.cpp": ["naked-new"],
    "mutable_shared_capture.cpp": ["mutable-shared-capture"],
    "mutable_shared_capture_const.cpp": [],
    "mutable_shared_capture_allow.cpp": [],
    "mutable_shared_capture_allow_stale.cpp": ["unused-allow"],
    "unchecked_status.cpp": ["unchecked-status"],
    "unchecked_status_allow.cpp": [],
    "unchecked_status_allow_stale.cpp": ["unused-allow"],
    "unannotated_mutex.cpp": ["unannotated-mutex"],
    "unannotated_mutex_allow.cpp": [],
    "unannotated_mutex_allow_stale.cpp": ["unused-allow"],
    "unchecked_io.cpp": ["unchecked-io"],
    "swallowed_exception.cpp": ["swallowed-exception"],
    "swallowed_exception_firewall.cpp": [],
    "swallowed_exception_rethrow.cpp": [],
    "swallowed_exception_allow_stale.cpp": ["unused-allow"],
    "allow_ok.cpp": [],
    "allow_missing_reason.cpp": ["allow-without-reason", "naked-new"],
    "allow_unknown_rule.cpp": ["unknown-rule"],
    "allow_stale.cpp": ["unused-allow"],
    "clean.cpp": [],
}


def run_self_test(root: Path) -> int:
    fixtures = root / "tools" / "lint_fixtures"
    failures = 0
    for name, expected_rules in sorted(FIXTURE_EXPECTATIONS.items()):
        path = fixtures / name
        if not path.is_file():
            print(f"SELF-TEST FAIL {name}: fixture missing")
            failures += 1
            continue
        found = scan_text("src/" + name, path.read_text(encoding="utf-8"))
        found_rules = sorted({f.rule for f in found})
        if expected_rules and found_rules != sorted(set(expected_rules)):
            print(f"SELF-TEST FAIL {name}: expected {sorted(set(expected_rules))}, "
                  f"got {found_rules}")
            for f in found:
                print(f"    {f}")
            failures += 1
        elif not expected_rules and found:
            print(f"SELF-TEST FAIL {name}: expected clean, got {found_rules}")
            for f in found:
                print(f"    {f}")
            failures += 1
        else:
            label = ", ".join(expected_rules) if expected_rules else "clean"
            print(f"self-test ok   {name}: {label}")
    if failures:
        print(f"\n{failures} self-test failure(s)")
        return 2
    print(f"\nall {len(FIXTURE_EXPECTATIONS)} lint self-tests passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="specific files to lint (default: src/, tests/, "
                             "bench/, examples/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-tests and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule, blurb in {**RULES, **META_RULES}.items():
            print(f"{rule:26} {blurb}")
        return 0
    if args.self_test:
        return run_self_test(args.root.resolve())

    findings = run_scan(args.root.resolve(), args.paths)
    for f in findings:
        print(f)
    if findings:
        print(f"\neyeball-lint: {len(findings)} finding(s)")
        return 1
    print("eyeball-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
