#!/usr/bin/env python3
"""eyeball-lint: repo-specific determinism & UB invariants, checked statically.

The parallel pipeline's correctness contract — "byte-identical to the serial
path at any thread count" — survives refactors only if a handful of idioms
stay out of the codebase.  Each rule below names one way that contract has
historically been broken in systems like this:

  unordered-iter-in-merge  Iterating std::unordered_{map,set} inside a
                           *merge*/*reduce*/*fold* function or inside a
                           parallel_map_reduce call: bucket order is
                           implementation- and size-dependent, so the merged
                           result ceases to be deterministic.
  nondet-seed              std::rand/srand, std::random_device, std::mt19937,
                           or time-derived seeding outside src/util/rng.*:
                           all randomness must flow through the explicitly
                           seeded xoshiro generator.
  float-accumulate         std::accumulate with a floating-point initial
                           value in a file that uses the thread pool:
                           reassociating float sums changes results; parallel
                           code must reduce through an explicit ordered fold.
  naked-new                Raw new/delete expressions: ownership lives in
                           containers and smart pointers (`= delete` for
                           deleted members is, of course, fine).
  ref-capture-parallel     A named by-reference capture ([&x]) on a lambda
                           passed to parallel_for/parallel_map_reduce: one
                           variable mutated from every chunk is a data race
                           or an order dependence.  The blessed idioms are
                           [&] with writes to disjoint indices, or private
                           per-shard state merged in order.
  unchecked-io             A raw fwrite/fread/rename/fsync call in statement
                           position (return value discarded) outside the
                           checked I/O layer (src/util/file.*): a short write
                           or failed rename that nobody looks at is exactly
                           the torn-snapshot bug the crash-safety harness
                           exists to catch.  All raw I/O goes through
                           util::FileSystem's Status-returning wrappers.

Suppression: a finding is silenced by an annotation on the same line or the
line directly above, and the annotation must carry a reason:

    // eyeball-lint: allow(naked-new): arena block handed to mmap teardown

Annotations without a reason, naming an unknown rule, or suppressing nothing
are themselves findings — suppressions never go stale silently.

Exit status: 0 clean, 1 findings, 2 usage/self-test harness error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = {
    "unordered-iter-in-merge":
        "iteration over an unordered container in a merge/reduce/fold path",
    "nondet-seed":
        "non-deterministic randomness source outside src/util/rng",
    "float-accumulate":
        "std::accumulate over floats in parallel code (use an ordered fold)",
    "naked-new":
        "raw new/delete expression (use containers or smart pointers)",
    "ref-capture-parallel":
        "named by-reference capture in a parallel_for/parallel_map_reduce body",
    "unchecked-io":
        "raw fwrite/fread/rename/fsync with its return value discarded "
        "(route I/O through util/file's Status-returning layer)",
}

META_RULES = {
    "allow-without-reason":
        "eyeball-lint allow(...) annotation without a ': reason' suffix",
    "unknown-rule":
        "eyeball-lint allow(...) annotation naming a rule that does not exist",
    "unused-allow":
        "eyeball-lint allow(...) annotation that suppresses nothing",
}

SCAN_DIRS = ("src", "tests", "bench", "examples")
SCAN_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}
# Files allowed to own non-deterministic-looking RNG machinery.
NONDET_EXEMPT = ("src/util/rng.hpp", "src/util/rng.cpp")
# The checked I/O layer: the ONE place raw libc I/O calls may live (their
# results feed util::Status there, under test by the fault harness).
IO_EXEMPT = ("src/util/file.hpp", "src/util/file.cpp")

ALLOW_RE = re.compile(
    r"//\s*eyeball-lint:\s*allow\(([A-Za-z0-9_-]+)\)(\s*:\s*(\S.*))?")


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def matching_brace_span(text: str, open_index: int) -> int:
    """Index one past the brace/paren that closes the one at open_index."""
    pairs = {"{": "}", "(": ")"}
    close = pairs[text[open_index]]
    depth = 0
    for i in range(open_index, len(text)):
        if text[i] == text[open_index]:
            depth += 1
        elif text[i] == close:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def line_of(text: str, index: int) -> int:
    return text.count("\n", 0, index) + 1


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


MERGE_FN_RE = re.compile(r"\b\w*(?:merge|reduce|fold)\w*\s*\(")
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*&?\s*(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*:\s*[^)]+)\)")
BEGIN_CALL_RE = re.compile(r"\b(\w+)\s*\.\s*c?(?:begin|end|rbegin|rend)\s*\(")
ACCUMULATE_RE = re.compile(r"std\s*::\s*accumulate\s*\(")
FLOATISH_RE = re.compile(r"\d\.\d*|\.\d|\d\.?\d*f\b|\b(?:double|float)\b")
NEW_RE = re.compile(r"\bnew\b\s*(?:\(|[A-Za-z_:])")
DELETE_RE = re.compile(r"\bdelete\b\s*(?:\[\s*\])?\s*[A-Za-z_(*&]")
PARALLEL_CALL_RE = re.compile(r"\bparallel_(?:for|map_reduce)\s*\(")
NAMED_REF_CAPTURE_RE = re.compile(r"\[((?:[^\[\]]*,)?\s*&\s*\w+[^\]]*)\]\s*\(")
NONDET_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*rand\b|\bsrand\s*\("), "std::rand/srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937 (stdlib-dependent stream)"),
    (re.compile(r"\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"), "time()-derived value"),
)
CLOCK_NOW_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\s*\(")
SEEDY_RE = re.compile(r"seed|rng", re.IGNORECASE)
IO_CALL_RE = re.compile(r"\b(fwrite|fread|rename|fsync)\s*\(")


def io_call_in_statement_position(stripped: str, start: int) -> bool:
    """True when the raw-I/O call at `start` discards its return value.

    Heuristic: walk back over optional `std` / `::` qualifiers, then look at
    the preceding non-space character.  A `;`, `{`, `}` (or file start) means
    the call opens a statement, so nothing consumes the result.  Anything
    else — `=`, `(`, `!`, `,`, a cast, `return` — means the result flows
    somewhere.  `rename_file(` and `fs.rename(` never reach here: the word
    boundary and the `.`/`_` context rule them out.
    """
    i = start
    while True:
        j = i
        while j > 0 and stripped[j - 1] in " \t\n":
            j -= 1
        if j >= 2 and stripped[j - 2:j] == "::":
            i = j - 2
            continue
        if (j >= 3 and stripped[j - 3:j] == "std"
                and (j == 3 or not (stripped[j - 4].isalnum()
                                    or stripped[j - 4] == "_"))):
            i = j - 3
            continue
        break
    k = i - 1
    while k >= 0 and stripped[k] in " \t\n":
        k -= 1
    return k < 0 or stripped[k] in ";{}"


def unordered_names(stripped: str) -> set[str]:
    return set(UNORDERED_DECL_RE.findall(stripped))


def merge_scope_spans(stripped: str) -> list[tuple[int, int]]:
    """Spans of merge/reduce/fold function bodies and parallel_map_reduce
    call arguments (where ordered reduction is the whole point)."""
    spans = []
    for m in MERGE_FN_RE.finditer(stripped):
        # Walk from the '(' to its close, then decide: definition if the next
        # non-space token opens a body ('{' possibly after const/noexcept/->).
        open_paren = m.end() - 1
        after_args = matching_brace_span(stripped, open_paren)
        tail = stripped[after_args:after_args + 120]
        tail_head = tail.lstrip()
        body_match = re.match(
            r"(?:const\b\s*)?(?:noexcept\b\s*)?(?:->\s*[\w:<>&,\s]+?)?\{", tail_head)
        if body_match:
            brace_at = after_args + (len(tail) - len(tail_head)) + body_match.end() - 1
            spans.append((brace_at, matching_brace_span(stripped, brace_at)))
    for m in re.finditer(r"\bparallel_map_reduce\s*\(", stripped):
        open_paren = m.end() - 1
        spans.append((open_paren, matching_brace_span(stripped, open_paren)))
    return spans


def scan_text(rel_path: str, raw: str) -> list[Finding]:
    findings: list[Finding] = []
    stripped = strip_comments_and_strings(raw)
    add = lambda line, rule, msg: findings.append(Finding(rel_path, line, rule, msg))

    # --- unordered-iter-in-merge ------------------------------------------
    names = unordered_names(stripped)
    for lo, hi in merge_scope_spans(stripped):
        scope = stripped[lo:hi]
        for m in RANGE_FOR_RE.finditer(scope):
            iterable = m.group(1).split(":", 1)[-1]
            if "unordered_" in iterable or any(
                    re.search(rf"\b{re.escape(n)}\b", iterable) for n in names):
                add(line_of(stripped, lo + m.start()), "unordered-iter-in-merge",
                    "range-for over an unordered container in an ordered "
                    "merge/reduce path — bucket order is not deterministic")
        for m in BEGIN_CALL_RE.finditer(scope):
            if m.group(1) in names:
                add(line_of(stripped, lo + m.start()), "unordered-iter-in-merge",
                    f"iterator walk of unordered container '{m.group(1)}' in an "
                    "ordered merge/reduce path")

    # --- nondet-seed -------------------------------------------------------
    if not rel_path.endswith(NONDET_EXEMPT):
        for pattern, what in NONDET_PATTERNS:
            for m in pattern.finditer(stripped):
                add(line_of(stripped, m.start()), "nondet-seed",
                    f"{what} — all randomness must flow through util/rng "
                    "with an explicit seed")
        for m in CLOCK_NOW_RE.finditer(stripped):
            line = line_of(stripped, m.start())
            line_text = stripped.splitlines()[line - 1]
            if SEEDY_RE.search(line_text):
                add(line, "nondet-seed",
                    "clock-derived seed — derive seeds from util/rng instead")

    # --- float-accumulate --------------------------------------------------
    if PARALLEL_CALL_RE.search(stripped) or "thread_pool.hpp" in raw:
        for m in ACCUMULATE_RE.finditer(stripped):
            args = stripped[m.end() - 1: matching_brace_span(stripped, m.end() - 1)]
            if FLOATISH_RE.search(args):
                add(line_of(stripped, m.start()), "float-accumulate",
                    "float std::accumulate in a parallel translation unit — "
                    "reassociation changes results; use an explicit ordered fold")

    # --- naked-new ---------------------------------------------------------
    for m in NEW_RE.finditer(stripped):
        add(line_of(stripped, m.start()), "naked-new",
            "raw new expression — ownership belongs in containers/smart pointers")
    for m in DELETE_RE.finditer(stripped):
        add(line_of(stripped, m.start()), "naked-new",
            "raw delete expression — ownership belongs in containers/smart pointers")

    # --- ref-capture-parallel ---------------------------------------------
    for m in PARALLEL_CALL_RE.finditer(stripped):
        span = stripped[m.end() - 1: matching_brace_span(stripped, m.end() - 1)]
        for cap in NAMED_REF_CAPTURE_RE.finditer(span):
            captures = cap.group(1)
            named_refs = re.findall(r"&\s*(\w+)", captures)
            if named_refs:
                add(line_of(stripped, m.end() - 1 + cap.start()),
                    "ref-capture-parallel",
                    f"lambda passed to a parallel loop captures {named_refs} by "
                    "reference — shared mutation across chunks breaks the "
                    "determinism contract (use [&] with disjoint writes, or "
                    "per-shard state)")

    # --- unchecked-io ------------------------------------------------------
    if not rel_path.endswith(IO_EXEMPT):
        for m in IO_CALL_RE.finditer(stripped):
            if io_call_in_statement_position(stripped, m.start(1)):
                add(line_of(stripped, m.start(1)), "unchecked-io",
                    f"return value of {m.group(1)} discarded — raw I/O belongs "
                    "in util/file's checked layer; here, at minimum, the "
                    "result must be examined")

    # --- suppression handling ---------------------------------------------
    allows = []  # (line, rule, has_reason, used)
    raw_lines = raw.splitlines()
    for i, line_text in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line_text)
        if not m:
            continue
        rule, reason = m.group(1), m.group(3)
        if rule not in RULES:
            findings.append(Finding(rel_path, i, "unknown-rule",
                                    f"allow({rule}) names no known rule; known: "
                                    + ", ".join(sorted(RULES))))
            continue
        if not reason:
            findings.append(Finding(rel_path, i, "allow-without-reason",
                                    f"allow({rule}) must explain itself: "
                                    f"`// eyeball-lint: allow({rule}): <why>`"))
            continue
        allows.append({"line": i, "rule": rule, "used": False})

    kept = []
    for f in findings:
        suppressed = False
        for a in allows:
            if a["rule"] == f.rule and f.line in (a["line"], a["line"] + 1):
                a["used"] = True
                suppressed = True
        if not suppressed:
            kept.append(f)
    for a in allows:
        if not a["used"]:
            kept.append(Finding(rel_path, a["line"], "unused-allow",
                                f"allow({a['rule']}) suppresses nothing — stale "
                                "annotation, remove it"))
    kept.sort(key=lambda f: f.line)
    return kept


def iter_source_files(root: Path):
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SCAN_SUFFIXES and path.is_file():
                yield path


def run_scan(root: Path, paths: list[Path]) -> list[Finding]:
    findings = []
    targets = paths if paths else list(iter_source_files(root))
    for path in targets:
        rel = str(path.relative_to(root)) if path.is_absolute() else str(path)
        findings.extend(scan_text(rel, path.read_text(encoding="utf-8")))
    return findings


# --------------------------------------------------------------------------
# Self-test: every rule must fire on its fixture and stay quiet on the clean
# ones.  Fixtures live in tools/lint_fixtures/ and are never compiled.
FIXTURE_EXPECTATIONS = {
    "unordered_iter_in_merge.cpp": ["unordered-iter-in-merge"],
    "nondet_seed.cpp": ["nondet-seed"],
    "float_accumulate.cpp": ["float-accumulate"],
    "naked_new.cpp": ["naked-new"],
    "ref_capture_parallel.cpp": ["ref-capture-parallel"],
    "unchecked_io.cpp": ["unchecked-io"],
    "allow_ok.cpp": [],
    "allow_missing_reason.cpp": ["allow-without-reason", "naked-new"],
    "allow_unknown_rule.cpp": ["unknown-rule"],
    "allow_stale.cpp": ["unused-allow"],
    "clean.cpp": [],
}


def run_self_test(root: Path) -> int:
    fixtures = root / "tools" / "lint_fixtures"
    failures = 0
    for name, expected_rules in sorted(FIXTURE_EXPECTATIONS.items()):
        path = fixtures / name
        if not path.is_file():
            print(f"SELF-TEST FAIL {name}: fixture missing")
            failures += 1
            continue
        found = scan_text(name, path.read_text(encoding="utf-8"))
        found_rules = sorted({f.rule for f in found})
        if expected_rules and found_rules != sorted(set(expected_rules)):
            print(f"SELF-TEST FAIL {name}: expected {sorted(set(expected_rules))}, "
                  f"got {found_rules}")
            for f in found:
                print(f"    {f}")
            failures += 1
        elif not expected_rules and found:
            print(f"SELF-TEST FAIL {name}: expected clean, got {found_rules}")
            for f in found:
                print(f"    {f}")
            failures += 1
        else:
            label = ", ".join(expected_rules) if expected_rules else "clean"
            print(f"self-test ok   {name}: {label}")
    if failures:
        print(f"\n{failures} self-test failure(s)")
        return 2
    print(f"\nall {len(FIXTURE_EXPECTATIONS)} lint self-tests passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path.cwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="specific files to lint (default: src/, tests/, "
                             "bench/, examples/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the fixture self-tests and exit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args()

    if args.list_rules:
        for rule, blurb in {**RULES, **META_RULES}.items():
            print(f"{rule:26} {blurb}")
        return 0
    if args.self_test:
        return run_self_test(args.root.resolve())

    findings = run_scan(args.root.resolve(), args.paths)
    for f in findings:
        print(f)
    if findings:
        print(f"\neyeball-lint: {len(findings)} finding(s)")
        return 1
    print("eyeball-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
