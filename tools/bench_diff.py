#!/usr/bin/env python3
"""Compares two benchmark baselines (BENCH_*.json) benchmark by benchmark.

Both the google-benchmark format (BENCH_dataset.json: entries with "name" +
"real_time", optionally "items_per_second"/"bytes_per_second") and the
bm_serving custom format (entries with "name" + "qps"/"p50_ns"/"p99_ns") are
understood; a benchmark present in only one file is reported but never fails
the run (axes come and go as the suite grows).

For each shared benchmark the primary throughput metric is compared
(items_per_second, bytes_per_second, or qps — whichever the entry carries;
falling back to 1/real_time when none is present, so "bigger is better"
uniformly).  The exit status is nonzero when any shared benchmark regressed
by more than --threshold (default 10%), which makes the tool usable as a CI
tripwire:

    tools/bench_diff.py old/BENCH_dataset.json BENCH_dataset.json
    tools/bench_diff.py --threshold 25 old.json new.json

`--self-test` runs the built-in fixtures (improvement, small wobble, real
regression, disjoint axes, malformed input) and is wired into the lint
ctest stage so the tool cannot bit-rot.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_benchmarks(path: pathlib.Path) -> dict[str, dict]:
    """Maps benchmark name -> entry; raises ValueError on malformed input."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"{path}: unreadable or invalid JSON: {error}") from error
    if not isinstance(data, dict) or not isinstance(data.get("benchmarks"), list):
        raise ValueError(f"{path}: missing 'benchmarks' array")
    out: dict[str, dict] = {}
    for entry in data["benchmarks"]:
        if isinstance(entry, dict) and isinstance(entry.get("name"), str):
            out[entry["name"]] = entry
    if not out:
        raise ValueError(f"{path}: no named benchmarks")
    return out


def throughput(entry: dict) -> tuple[float, str] | None:
    """(bigger-is-better metric, its name) for an entry, or None."""
    for key in ("items_per_second", "bytes_per_second", "qps"):
        value = entry.get(key)
        if isinstance(value, (int, float)) and value > 0:
            return float(value), key
    value = entry.get("real_time")
    if isinstance(value, (int, float)) and value > 0:
        return 1.0 / float(value), "1/real_time"
    return None


def diff(old: dict[str, dict], new: dict[str, dict], threshold_pct: float,
         out=sys.stdout) -> list[str]:
    """Prints the per-benchmark delta table; returns regression messages."""
    regressions: list[str] = []
    shared = [name for name in old if name in new]
    for name in shared:
        old_metric = throughput(old[name])
        new_metric = throughput(new[name])
        if old_metric is None or new_metric is None:
            print(f"  {name:<44} (no comparable metric)", file=out)
            continue
        old_value, metric = old_metric
        new_value, _ = new_metric
        delta_pct = (new_value / old_value - 1.0) * 100.0
        marker = ""
        if delta_pct < -threshold_pct:
            marker = "  << REGRESSION"
            regressions.append(
                f"{name}: {metric} fell {-delta_pct:.1f}% "
                f"({old_value:.4g} -> {new_value:.4g}), threshold {threshold_pct:.1f}%")
        print(f"  {name:<44} {metric:<18} {old_value:>12.4g} -> {new_value:>12.4g}"
              f"  {delta_pct:+7.1f}%{marker}", file=out)
    for name in old:
        if name not in new:
            print(f"  {name:<44} (removed in new baseline)", file=out)
    for name in new:
        if name not in old:
            print(f"  {name:<44} (new axis, no baseline)", file=out)
    if not shared:
        print("  (no shared benchmarks)", file=out)
    return regressions


def self_test() -> int:
    import io

    def bench(**entries):
        return {name: dict(e, name=name) for name, e in entries.items()}

    failures: list[str] = []

    def expect(label: str, condition: bool) -> None:
        if not condition:
            failures.append(label)

    sink = io.StringIO()
    # 1. Improvement: no regression reported.
    r = diff(bench(a={"items_per_second": 100.0}),
             bench(a={"items_per_second": 300.0}), 10.0, sink)
    expect("improvement passes", r == [])
    # 2. Small wobble below the threshold: passes.
    r = diff(bench(a={"items_per_second": 100.0}),
             bench(a={"items_per_second": 95.0}), 10.0, sink)
    expect("wobble below threshold passes", r == [])
    # 3. Real regression: reported.
    r = diff(bench(a={"items_per_second": 100.0}),
             bench(a={"items_per_second": 50.0}), 10.0, sink)
    expect("regression detected", len(r) == 1 and "fell 50.0%" in r[0])
    # 4. Disjoint axes: never fails.
    r = diff(bench(a={"items_per_second": 100.0}),
             bench(b={"items_per_second": 1.0}), 10.0, sink)
    expect("disjoint axes pass", r == [])
    # 5. real_time fallback: lower time is better.
    r = diff(bench(a={"real_time": 100.0}), bench(a={"real_time": 400.0}), 10.0, sink)
    expect("real_time fallback detects slowdown", len(r) == 1)
    # 6. qps metric (bm_serving schema).
    r = diff(bench(q={"qps": 1000.0}), bench(q={"qps": 10.0}), 10.0, sink)
    expect("qps regression detected", len(r) == 1)
    # 7. Malformed file raises.
    try:
        load_benchmarks(pathlib.Path("/nonexistent/bench.json"))
        expect("malformed input raises", False)
    except ValueError:
        pass

    for failure in failures:
        print(f"bench_diff self-test FAILED: {failure}", file=sys.stderr)
    if not failures:
        print("bench_diff: self-test OK (7 fixtures)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("old", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("new", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.old or not args.new:
        parser.error("old and new baselines are required (or --self-test)")
    try:
        old = load_benchmarks(pathlib.Path(args.old))
        new = load_benchmarks(pathlib.Path(args.new))
    except ValueError as error:
        print(f"bench_diff: {error}", file=sys.stderr)
        return 1

    print(f"bench_diff: {args.old} -> {args.new} (threshold {args.threshold:.1f}%)")
    regressions = diff(old, new, args.threshold)
    for regression in regressions:
        print(f"bench_diff: REGRESSION {regression}", file=sys.stderr)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
