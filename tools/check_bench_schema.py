#!/usr/bin/env python3
"""Sanity-checks the committed benchmark baselines (BENCH_*.json).

Two schemas are in play:

  BENCH_dataset.json   google-benchmark --benchmark_out format: a "context"
                       object and a non-empty "benchmarks" array whose
                       entries carry "name" and a numeric "real_time".

  BENCH_serving.json   the bm_serving custom driver's format: a "context"
                       object (readers/windows/epochs_published) and a
                       non-empty "benchmarks" array whose entries carry
                       "name", "queries", "qps" and p50/p99 tail latencies
                       with p50 <= p99.

Run from tools/check.sh's lint stage so a regenerated baseline that is
truncated, hand-mangled, or written by a crashed bench run fails fast.

Every BENCH_*.json at the repo root is checked: the two named above get
their full schema, and any future baseline gets the shared shell check —
which includes the context.eyeball_build_type == "release" stamp, so a
baseline recorded from a debug build can never land quietly.

Exit status: 0 when every present baseline validates, 1 otherwise.
BENCH_dataset.json and BENCH_serving.json are required (both are committed
artifacts of this repo).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def fail(path: pathlib.Path, message: str) -> str:
    return f"{path.name}: {message}"


def check_common(path: pathlib.Path) -> tuple[dict | None, list[str]]:
    """Parses the file and checks the shared context/benchmarks shell."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return None, [fail(path, f"unreadable or invalid JSON: {error}")]
    errors = []
    if not isinstance(data, dict):
        return None, [fail(path, "top level is not an object")]
    if not isinstance(data.get("context"), dict):
        errors.append(fail(path, "missing or non-object 'context'"))
    else:
        # Baselines must come from an optimized build of the repo's own code.
        # The bench mains stamp "eyeball_build_type" from NDEBUG (see
        # bench/common.hpp); a missing stamp means the baseline predates the
        # stamp and must be re-recorded.  Note google-benchmark's own
        # "library_build_type" reports the *system benchmark library* flavor,
        # which this repo does not control — it is deliberately not checked.
        build_type = data["context"].get("eyeball_build_type")
        if build_type != "release":
            errors.append(
                fail(
                    path,
                    "context.eyeball_build_type is "
                    f"{build_type!r}, want 'release' — re-record this baseline "
                    "from an optimized (NDEBUG) build",
                )
            )
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        errors.append(fail(path, "missing, non-array, or empty 'benchmarks'"))
        return None, errors
    for i, entry in enumerate(benchmarks):
        if not isinstance(entry, dict) or not isinstance(entry.get("name"), str):
            errors.append(fail(path, f"benchmarks[{i}] has no string 'name'"))
    return data, errors


def check_dataset(path: pathlib.Path) -> list[str]:
    data, errors = check_common(path)
    if data is None:
        return errors
    names = set()
    for entry in data["benchmarks"]:
        name = entry.get("name", "?")
        names.add(name)
        if not isinstance(entry.get("real_time"), (int, float)):
            errors.append(fail(path, f"{name}: missing numeric 'real_time'"))
    # The serving-artifact rows are load-bearing (the open-latency acceptance
    # number lives in this baseline), and check_common already pinned the
    # whole file to an optimized build via the eyeball_build_type stamp — so
    # requiring the names here means the artifact numbers can never be
    # dropped or recorded from a debug build without this check firing.
    for required in ("BM_ArtifactWrite", "BM_ArtifactOpen"):
        if required not in names:
            errors.append(fail(path, f"missing required benchmark '{required}'"))
    return errors


def check_serving(path: pathlib.Path) -> list[str]:
    data, errors = check_common(path)
    if data is None:
        return errors
    context = data.get("context", {})
    for key in ("readers", "windows", "epochs_published"):
        if not isinstance(context.get(key), int) or context[key] <= 0:
            errors.append(fail(path, f"context.{key} missing or non-positive"))
    names = set()
    for entry in data["benchmarks"]:
        name = entry.get("name", "?")
        names.add(name)
        for key in ("queries", "qps", "p50_ns", "p99_ns"):
            if not isinstance(entry.get(key), (int, float)) or entry[key] < 0:
                errors.append(fail(path, f"{name}: missing/negative '{key}'"))
        if all(isinstance(entry.get(k), (int, float)) for k in ("p50_ns", "p99_ns")):
            if entry["p50_ns"] > entry["p99_ns"]:
                errors.append(fail(path, f"{name}: p50_ns exceeds p99_ns"))
        if isinstance(entry.get("queries"), (int, float)) and entry["queries"] <= 0:
            errors.append(fail(path, f"{name}: zero queries recorded"))
    for required in ("ServingPointQuery", "ServingBatchQuery"):
        if required not in names:
            errors.append(fail(path, f"missing required benchmark '{required}'"))
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = pathlib.Path(args.root)

    checkers = {
        "BENCH_dataset.json": check_dataset,
        "BENCH_serving.json": check_serving,
    }
    errors: list[str] = []
    for name, checker in checkers.items():
        if not (root / name).exists():
            errors.append(f"{name}: committed baseline is missing")
    # Glob rather than enumerate: a freshly added baseline gets at least the
    # shared shell check (incl. the release-build stamp) without anyone
    # remembering to register it here.
    for path in sorted(root.glob("BENCH_*.json")):
        checker = checkers.get(path.name)
        if checker is not None:
            errors.extend(checker(path))
        else:
            _, shell_errors = check_common(path)
            errors.extend(shell_errors)

    for error in errors:
        print(f"check_bench_schema: {error}", file=sys.stderr)
    if not errors:
        print("check_bench_schema: all baselines OK")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
