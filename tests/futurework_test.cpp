// Tests for the future-work implementations: longitudinal crawling with
// dynamic-IP churn, data-driven bandwidth selection, and the geography-
// based connectivity predictor.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "connectivity/predictor.hpp"
#include "connectivity/rai_scenario.hpp"
#include "kde/bandwidth.hpp"
#include "p2p/churn.hpp"
#include "pipeline_fixture.hpp"
#include "util/rng.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;

// ---- Longitudinal crawl / churn (paper: 89.1M unique IPs over 6 months) --

p2p::CrawlerConfig small_crawl_config() {
  p2p::CrawlerConfig config;
  config.seed = 77;
  config.coverage = 0.05;
  return config;
}

TEST(Churn, UniqueIpsGrowAcrossWindows) {
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 6;
  const auto result = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  ASSERT_EQ(result.cumulative_unique.size(), 6u);
  for (std::size_t w = 1; w < result.cumulative_unique.size(); ++w) {
    EXPECT_GT(result.cumulative_unique[w], result.cumulative_unique[w - 1]);
  }
  EXPECT_EQ(result.samples.size(), result.cumulative_unique.back());
}

TEST(Churn, MoreUniqueIpsThanUsers) {
  // Dynamic addressing inflates unique IPs above the observed user count —
  // the paper's 89.1M IPs vs 48M conditioned users.
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 6;
  churn.lease_survival = 0.4;  // aggressive reassignment
  const auto result = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  EXPECT_GT(result.samples.size(), result.distinct_users);
}

TEST(Churn, StableLeasesReduceInflation) {
  const auto& f = shared_fixture();
  p2p::ChurnConfig stable;
  stable.windows = 6;
  stable.lease_survival = 0.95;
  p2p::ChurnConfig volatile_leases;
  volatile_leases.windows = 6;
  volatile_leases.lease_survival = 0.2;
  const auto stable_result =
      p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), stable);
  const auto volatile_result =
      p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), volatile_leases);
  EXPECT_LT(stable_result.samples.size(), volatile_result.samples.size());
}

TEST(Churn, SingleWindowMatchesOneCrawlScale) {
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 1;
  const auto result = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  EXPECT_EQ(result.cumulative_unique.size(), 1u);
  EXPECT_GT(result.samples.size(), 1000u);
}

TEST(Churn, ReassignedIpsStayInTheSamePool) {
  // Churned addresses must still geo-map consistently: every sampled IP
  // belongs to an eyeball service pool.
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 3;
  const auto result = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  std::size_t checked = 0;
  for (const auto& sample : result.samples) {
    const auto truth = f.truth.locate(sample.ip);
    ASSERT_TRUE(truth);
    EXPECT_FALSE(truth->transit_only);
    if (++checked > 300) break;
  }
}

TEST(Churn, CumulativeUniqueIsMonotoneAndMatchesWindowPrefixes) {
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 5;
  const auto result = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  ASSERT_EQ(result.windows.size(), 5u);
  ASSERT_EQ(result.cumulative_unique.size(), 5u);
  // cumulative_unique[w] is the unique (app, ip) count of windows[0..w] —
  // monotone by construction, and recomputable from the emitted spans.
  std::unordered_set<std::uint64_t> unique;
  for (std::size_t w = 0; w < result.windows.size(); ++w) {
    for (const auto& sample : result.windows[w]) {
      unique.insert((static_cast<std::uint64_t>(sample.app) << 32) |
                    sample.ip.value());
    }
    EXPECT_EQ(result.cumulative_unique[w], unique.size()) << "window " << w;
    if (w > 0) {
      EXPECT_GE(result.cumulative_unique[w], result.cumulative_unique[w - 1]);
    }
  }
  EXPECT_EQ(result.samples.size(), unique.size());
}

TEST(Churn, DistinctUsersBoundedByWindowActives) {
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 4;
  const auto result = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  // Every distinct user was observed in at least one window, so the user
  // count cannot exceed the sum of per-window active observations.
  std::size_t window_actives = 0;
  for (const auto& window : result.windows) window_actives += window.size();
  EXPECT_LE(result.distinct_users, window_actives);
  EXPECT_GT(result.distinct_users, 0u);
}

TEST(Churn, LeaseSurvivalDeterministicAcrossIdenticalSeeds) {
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 4;
  churn.lease_survival = 0.5;
  const auto a = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  const auto b = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  // Same seeds => the same lease rolls, addresses and window membership,
  // byte for byte — the property every longitudinal repro rests on.
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.cumulative_unique, b.cumulative_unique);
  EXPECT_EQ(a.distinct_users, b.distinct_users);
}

TEST(Churn, ReassignedIpKeepsItsPopPoolAcrossWindows) {
  // The header's consistency promise: a reassigned address still belongs to
  // the same (AS, PoP) pool, so an IP observed in several windows must
  // ground-truth to one location — the property that keeps longitudinal
  // geo-conditioning sound.
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 4;
  churn.lease_survival = 0.3;  // aggressive reassignment
  const auto result = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  std::unordered_map<std::uint32_t, std::pair<net::Asn, geo::GeoPoint>> first_seen;
  std::size_t recurrences = 0;
  for (const auto& window : result.windows) {
    for (const auto& sample : window) {
      const auto truth = f.truth.locate(sample.ip);
      ASSERT_TRUE(truth);
      const auto [it, inserted] = first_seen.try_emplace(
          sample.ip.value(), truth->asn, truth->location);
      if (!inserted) {
        ++recurrences;
        EXPECT_EQ(it->second.first, truth->asn) << sample.ip.to_string();
        EXPECT_EQ(it->second.second, truth->location) << sample.ip.to_string();
      }
    }
  }
  // Churn must actually re-observe addresses for this to mean anything.
  EXPECT_GT(recurrences, 0u);
}

TEST(Churn, PipelineConsumesLongitudinalSamples) {
  const auto& f = shared_fixture();
  p2p::ChurnConfig churn;
  churn.windows = 4;
  const auto result = p2p::longitudinal_crawl(f.eco, f.gaz, small_crawl_config(), churn);
  const auto dataset = f.pipeline.build_dataset(result.samples);
  EXPECT_GT(dataset.stats().final_ases, 0u);
}

// ---- Bandwidth selection ----

TEST(Bandwidth, SilvermanScalesWithSpread) {
  util::Rng rng{5};
  std::vector<geo::GeoPoint> tight;
  std::vector<geo::GeoPoint> wide;
  for (int i = 0; i < 2000; ++i) {
    tight.push_back(geo::destination({41.9, 12.5}, rng.uniform(0.0, 360.0),
                                     rng.normal(0.0, 10.0)));
    wide.push_back(geo::destination({41.9, 12.5}, rng.uniform(0.0, 360.0),
                                    rng.normal(0.0, 100.0)));
  }
  EXPECT_LT(kde::silverman_bandwidth_km(tight), kde::silverman_bandwidth_km(wide));
}

TEST(Bandwidth, SilvermanShrinksWithSampleSize) {
  util::Rng rng{6};
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 10000; ++i) {
    points.push_back(geo::destination({41.9, 12.5}, rng.uniform(0.0, 360.0),
                                      rng.normal(0.0, 50.0)));
  }
  const std::span<const geo::GeoPoint> all{points};
  EXPECT_GT(kde::silverman_bandwidth_km(all.subspan(0, 100)),
            kde::silverman_bandwidth_km(all));
}

TEST(Bandwidth, SilvermanMagnitudeReasonable) {
  // A country-scale cloud (sigma ~150 km, n ~ 1e4): h = sigma n^{-1/6} ~ 30km.
  util::Rng rng{7};
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 10000; ++i) {
    points.push_back(geo::destination({46.0, 9.0}, rng.uniform(0.0, 360.0),
                                      std::abs(rng.normal(0.0, 150.0))));
  }
  const double h = kde::silverman_bandwidth_km(points);
  EXPECT_GT(h, 10.0);
  EXPECT_LT(h, 80.0);
}

TEST(Bandwidth, ConstrainedRespectsBounds) {
  util::Rng rng{8};
  std::vector<geo::GeoPoint> points;
  for (int i = 0; i < 50000; ++i) {
    points.push_back(geo::destination({41.9, 12.5}, rng.uniform(0.0, 360.0),
                                      rng.normal(0.0, 5.0)));
  }
  // Tight cloud + many samples => tiny Silverman, clamped to the floor.
  EXPECT_DOUBLE_EQ(kde::constrained_bandwidth_km(points, 40.0, 80.0), 40.0);
}

TEST(Bandwidth, RejectsDegenerateInput) {
  const std::vector<geo::GeoPoint> one{{41.9, 12.5}};
  EXPECT_THROW((void)kde::silverman_bandwidth_km(one), std::invalid_argument);
}

// ---- Connectivity predictor ----

TEST(Predictor, RaiNaturalProviderIsPredicted) {
  const auto gaz = gazetteer::Gazetteer::builtin();
  const auto scenario = connectivity::build_rai_scenario(gaz);
  const connectivity::ConnectivityPredictor predictor{scenario.ecosystem, gaz};

  // RAI's footprint: Rome only.
  core::PopFootprint footprint;
  core::PopEntry rome;
  rome.city = *gaz.find_by_name("Rome", "IT");
  rome.score = 1.0;
  rome.peak_location = gaz.city(rome.city).location;
  footprint.pops.push_back(rome);

  const auto prediction = predictor.predict(footprint);
  // Transit networks with Rome PoPs must be proposed (Easynet, Colt,
  // BT-Italia all have Rome sites in the scenario).
  ASSERT_FALSE(prediction.providers.empty());
  const auto score = predictor.score(scenario.rai, prediction);
  EXPECT_GT(score.provider_recall, 0.0);
  // Geography cannot see all five providers from a Rome-only footprint:
  // Infostrada/Fastweb are eyeballs (not proposed as transit) and the
  // top-2 rule misses most of the multi-homing.
  EXPECT_LT(score.provider_recall_top2, 1.0);
}

TEST(Predictor, RaiRemotePeeringIsUnpredictable) {
  const auto gaz = gazetteer::Gazetteer::builtin();
  const auto scenario = connectivity::build_rai_scenario(gaz);
  const connectivity::ConnectivityPredictor predictor{scenario.ecosystem, gaz};
  core::PopFootprint footprint;
  core::PopEntry rome;
  rome.city = *gaz.find_by_name("Rome", "IT");
  rome.score = 1.0;
  rome.peak_location = gaz.city(rome.city).location;
  footprint.pops.push_back(rome);

  const auto prediction = predictor.predict(footprint);
  const auto score = predictor.score(scenario.rai, prediction);
  // RAI's only membership is the REMOTE MIX (Milan): invisible from Rome.
  EXPECT_DOUBLE_EQ(score.ixp_recall, 0.0);
  EXPECT_EQ(score.unpredictable_ixps, 1u);
}

TEST(Predictor, PredictionsRankedByOverlap) {
  const auto& f = shared_fixture();
  const connectivity::ConnectivityPredictor predictor{f.eco, f.gaz};
  const auto& as = f.dataset.ases()[0];
  const auto pops = f.pipeline.pop_footprint(as, 40.0);
  const auto prediction = predictor.predict(pops);
  for (std::size_t i = 1; i < prediction.providers.size(); ++i) {
    EXPECT_GE(prediction.providers[i - 1].overlap, prediction.providers[i].overlap);
  }
  for (std::size_t i = 1; i < prediction.ixps.size(); ++i) {
    EXPECT_GE(prediction.ixps[i - 1].local_density, prediction.ixps[i].local_density);
  }
}

TEST(Predictor, GeographyUnderPredictsOnGeneratedWorld) {
  const auto& f = shared_fixture();
  const connectivity::ConnectivityPredictor predictor{f.eco, f.gaz};
  double recall_total = 0.0;
  std::size_t unpredictable = 0;
  std::size_t total_providers = 0;
  std::size_t analyzed = 0;
  for (const auto& as : f.dataset.ases()) {
    const auto pops = f.pipeline.pop_footprint(as, 40.0);
    if (pops.pops.empty()) continue;
    const auto score = predictor.score(as.asn, predictor.predict(pops));
    recall_total += score.provider_recall;
    unpredictable += score.unpredictable_providers;
    total_providers += f.eco.providers_of(as.asn).size();
    ++analyzed;
    if (analyzed >= 25) break;
  }
  ASSERT_GT(analyzed, 10u);
  // Geography finds a meaningful share of providers...
  EXPECT_GT(recall_total / static_cast<double>(analyzed), 0.3);
  // ...but some connectivity stays invisible (the paper's conclusion).
  EXPECT_GT(unpredictable, 0u);
}

}  // namespace
}  // namespace eyeball
