// Snapshot/restore coverage for StreamingDatasetBuilder: round-trip
// byte-identity (including finalize() at threads 1/2/hw — this suite runs
// under the TSan gate), restore→ingest→finalize interleavings, the typed
// refusal taxonomy (corruption / version skew / config mismatch), byte-level
// corruption fuzzing, and the generation fallback scheme.
//
// State identity is asserted two ways: SnapshotCodec::encode at generation 0
// is canonical (equal states → equal bytes), and finalize() results are
// compared field-by-field.  The encode comparison catches divergence in
// state finalize() doesn't read (window trail, touched set, dedup keys).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "core/streaming_dataset.hpp"
#include "p2p/churn.hpp"
#include "pipeline_fixture.hpp"
#include "util/crc32c.hpp"
#include "util/file.hpp"
#include "util/status.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;
using util::Status;
using util::StatusCode;

/// Same longitudinal world as streaming_dataset_test's StreamWorld: lowered
/// min-peers so ASes cross the threshold mid-stream, five churned windows.
struct SnapWorld {
  const testing::PipelineFixture& f = shared_fixture();
  core::DatasetConfig config = [] {
    auto dataset_config = shared_fixture().pipeline.config().dataset;
    dataset_config.min_peers_per_as = 300;
    return dataset_config;
  }();
  core::DatasetBuilder builder{f.primary, f.secondary, f.mapper, config};
  p2p::LongitudinalResult churn = [this] {
    p2p::CrawlerConfig crawl_config;
    crawl_config.seed = 77;
    crawl_config.coverage = 0.05;
    p2p::ChurnConfig churn_config;
    churn_config.seed = 2009;
    churn_config.windows = 5;
    churn_config.lease_survival = 0.6;
    return p2p::longitudinal_crawl(f.eco, f.gaz, crawl_config, churn_config);
  }();

  [[nodiscard]] core::StreamingDatasetBuilder streaming() const {
    return builder.streaming();
  }
};

const SnapWorld& snap_world() {
  static const SnapWorld instance;
  return instance;
}

/// Canonical state bytes: generation pinned to 0 so two builders' encodings
/// are comparable regardless of their snapshot history.
[[nodiscard]] std::vector<std::byte> state_bytes(
    const core::StreamingDatasetBuilder& builder) {
  return core::SnapshotCodec::encode(builder, 0);
}

void expect_same_dataset(const core::TargetDataset& reference,
                         const core::TargetDataset& candidate, const char* context) {
  EXPECT_EQ(reference.stats(), candidate.stats())
      << context << " diverged: "
      << core::diff_stats(reference.stats(), candidate.stats());
  ASSERT_EQ(reference.ases().size(), candidate.ases().size()) << context;
  for (std::size_t a = 0; a < reference.ases().size(); ++a) {
    const auto& ra = reference.ases()[a];
    const auto& ca = candidate.ases()[a];
    EXPECT_EQ(ra.asn, ca.asn) << context << " as index " << a;
    ASSERT_EQ(ra.peers.size(), ca.peers.size()) << context << " as index " << a;
    for (std::size_t p = 0; p < ra.peers.size(); ++p) {
      const auto& rp = ra.peers[p];
      const auto& cp = ca.peers[p];
      const bool same = rp.ip == cp.ip && rp.app == cp.app &&
                        rp.location == cp.location &&
                        rp.geo_error_km == cp.geo_error_km &&
                        rp.reported_city == cp.reported_city;
      EXPECT_TRUE(same) << context << " as index " << a << " peer " << p;
      if (!same) return;
    }
  }
}

/// Fresh per-test snapshot directory.  Removing it up-front matters: the
/// generation counter continues from whatever is on disk, so leftovers from
/// a previous run would shift every expected generation number.
[[nodiscard]] std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "eyeball_snapshot_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

[[nodiscard]] std::vector<std::string> snapshot_files(const std::string& dir) {
  std::vector<std::string> names;
  EXPECT_TRUE(util::local_filesystem().list_dir(dir, names).ok());
  return names;
}

// ---- Round trip and interleavings ----

TEST(Snapshot, MidStreamRoundTripIsByteIdenticalAtEveryThreadCount) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("round_trip");
  auto& fs = util::local_filesystem();

  // Uninterrupted reference run over all five windows.
  auto uninterrupted = w.streaming();
  for (const auto& window : w.churn.windows) uninterrupted.ingest(window, 2);

  // Crash-restart run: three windows, snapshot, restore into a fresh
  // builder (simulating a new process), remaining two windows.
  auto first_process = w.streaming();
  for (std::size_t i = 0; i < 3; ++i) first_process.ingest(w.churn.windows[i], 2);
  std::uint64_t generation = 0;
  ASSERT_TRUE(first_process.save_snapshot(dir, fs, &generation).ok());
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ(first_process.last_generation(), 1u);

  auto second_process = w.streaming();
  core::SnapshotRestoreInfo info;
  ASSERT_TRUE(second_process.restore_snapshot(dir, fs, &info).ok());
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.generations_skipped, 0u);
  EXPECT_EQ(second_process.last_generation(), 1u);

  // The restored logical state is bit-for-bit the saved one.
  EXPECT_EQ(state_bytes(second_process), state_bytes(first_process));
  EXPECT_EQ(second_process.windows_ingested(), 3u);
  EXPECT_EQ(second_process.unique_samples(), first_process.unique_samples());
  // Memos restart cold — a cache, not state.
  EXPECT_EQ(second_process.memo_hits(), 0u);
  EXPECT_EQ(second_process.memo_misses(), 0u);

  for (std::size_t i = 3; i < w.churn.windows.size(); ++i) {
    second_process.ingest(w.churn.windows[i], 2);
  }
  EXPECT_EQ(state_bytes(second_process), state_bytes(uninterrupted));

  // finalize() byte-identity at threads 1 / 2 / hardware (0 = one shard per
  // hardware thread), the acceptance-criteria axis, under the TSan gate.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    auto reference_copy = uninterrupted;
    auto restored_copy = second_process;
    expect_same_dataset(
        reference_copy.finalize(threads), restored_copy.finalize(threads),
        ("restored run, threads=" + std::to_string(threads)).c_str());
  }
}

TEST(Snapshot, RoundTripPreservesWindowTrailAndTouchedSet) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("observability");
  auto& fs = util::local_filesystem();

  auto original = w.streaming();
  original.ingest(w.churn.windows[0], 2);
  original.ingest(w.churn.windows[1], 2);

  ASSERT_TRUE(original.save_snapshot(dir, fs).ok());
  auto restored = w.streaming();
  ASSERT_TRUE(restored.restore_snapshot(dir, fs).ok());

  ASSERT_EQ(restored.stats().windows.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(restored.stats().windows[i], original.stats().windows[i]) << "window " << i;
  }
  EXPECT_EQ(restored.stats(), original.stats());
  EXPECT_EQ(restored.stats().rejected_samples, original.stats().rejected_samples);
  // The incremental re-analysis work list survives the restart.
  const auto touched_original = original.touched_asns();
  const auto touched_restored = restored.touched_asns();
  ASSERT_FALSE(touched_restored.empty());
  EXPECT_EQ(touched_restored, touched_original);
}

TEST(Snapshot, RestoreReplacesExistingStateWholesale) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("replace");
  auto& fs = util::local_filesystem();

  auto original = w.streaming();
  original.ingest(w.churn.windows[0], 2);
  ASSERT_TRUE(original.save_snapshot(dir, fs).ok());

  // A builder mid-way through a DIFFERENT stream restores: no merging.
  auto diverged = w.streaming();
  diverged.ingest(w.churn.windows[3], 2);
  diverged.ingest(w.churn.windows[4], 2);
  ASSERT_TRUE(diverged.restore_snapshot(dir, fs).ok());
  EXPECT_EQ(state_bytes(diverged), state_bytes(original));
}

TEST(Snapshot, EncodeIsCanonicalAcrossBatchSplits) {
  const auto& w = snap_world();
  // Same admitted stream through different batchings → identical bytes
  // (unordered containers are sorted on encode).
  auto by_window = w.streaming();
  for (const auto& window : w.churn.windows) by_window.ingest(window, 2);

  std::vector<p2p::PeerSample> concatenated;
  for (const auto& window : w.churn.windows) {
    concatenated.insert(concatenated.end(), window.begin(), window.end());
  }
  auto one_gulp = w.streaming();
  one_gulp.ingest(concatenated, 1);

  // Window trails differ (5 windows vs 1), so compare after aligning: the
  // buckets/seen/touched sections must match byte-for-byte.  Simplest
  // sufficient check here: same stream re-batched identically twice.
  auto by_window_again = w.streaming();
  for (const auto& window : w.churn.windows) by_window_again.ingest(window, 0);
  EXPECT_EQ(state_bytes(by_window), state_bytes(by_window_again));
  // And the coarse invariant against the one-gulp run:
  EXPECT_EQ(one_gulp.unique_samples(), by_window.unique_samples());
}

// ---- Typed refusals ----

TEST(Snapshot, ConfigMismatchIsARefusalNotSilentDrift) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("config_mismatch");
  auto& fs = util::local_filesystem();

  auto original = w.streaming();
  original.ingest(w.churn.windows[0], 2);
  ASSERT_TRUE(original.save_snapshot(dir, fs).ok());

  auto other_config = w.config;
  other_config.max_geo_error_km = 40.0;  // result-affecting
  core::StreamingDatasetBuilder other{w.f.primary, w.f.secondary, w.f.mapper,
                                      other_config};
  other.ingest(w.churn.windows[1], 2);
  const auto before = state_bytes(other);

  const Status status = other.restore_snapshot(dir, fs);
  EXPECT_EQ(status.code(), StatusCode::kConfigMismatch) << status;
  // Refusal is total: the mismatched builder is untouched.
  EXPECT_EQ(state_bytes(other), before);
}

TEST(Snapshot, ThreadAndMemoKnobsDoNotFingerprint) {
  const auto& w = snap_world();
  // Execution knobs have byte-identical results, so snapshots transfer.
  auto knobs = w.config;
  knobs.threads = 7;
  knobs.lookup_memo_slots = 16;
  EXPECT_EQ(core::SnapshotCodec::config_fingerprint(knobs),
            core::SnapshotCodec::config_fingerprint(w.config));
  auto results = w.config;
  results.min_peers_per_as += 1;
  EXPECT_NE(core::SnapshotCodec::config_fingerprint(results),
            core::SnapshotCodec::config_fingerprint(w.config));
}

TEST(Snapshot, VersionSkewOnAnIntactFileIsVersionMismatchNotCorruption) {
  const auto& w = snap_world();
  auto builder = w.streaming();
  builder.ingest(std::span<const p2p::PeerSample>{w.churn.windows[0]}.first(64), 1);

  // A genuine future-format file: version bumped AND the file CRC redone,
  // so every checksum passes and only the version check can refuse it.
  auto bytes = core::SnapshotCodec::encode(builder, 1);
  bytes[8] = std::byte{2};  // format version field, little-endian low byte
  const std::size_t body_size = bytes.size() - 12;
  const std::uint32_t crc = util::crc32c({bytes.data(), body_size});
  for (int i = 0; i < 4; ++i) {
    bytes[body_size + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((crc >> (8 * i)) & 0xffU);
  }

  auto target = w.streaming();
  EXPECT_EQ(core::SnapshotCodec::decode(bytes, target).code(),
            StatusCode::kVersionMismatch);

  // The same byte damaged WITHOUT fixing the CRC is indistinguishable from
  // media corruption and must say so.
  auto corrupt_bytes = core::SnapshotCodec::encode(builder, 1);
  corrupt_bytes[8] = std::byte{2};
  EXPECT_EQ(core::SnapshotCodec::decode(corrupt_bytes, target).code(),
            StatusCode::kCorruption);
}

// ---- Byte-level corruption fuzz ----

TEST(Snapshot, EverySingleBitFlipIsDetected) {
  const auto& w = snap_world();
  auto builder = w.streaming();
  // Small state keeps the quadratic sweep (decode per flipped byte) cheap.
  builder.ingest(std::span<const p2p::PeerSample>{w.churn.windows[0]}.first(150), 1);
  const auto pristine = core::SnapshotCodec::encode(builder, 3);

  auto target = w.streaming();
  target.ingest(w.churn.windows[1], 1);
  const auto target_state = state_bytes(target);

  std::size_t failures = 0;
  auto flipped = pristine;
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    // One deterministic bit per byte, varying across offsets.
    const auto bit = static_cast<unsigned>(i % 8);
    flipped[i] = pristine[i] ^ static_cast<std::byte>(1U << bit);
    const Status status = core::SnapshotCodec::decode(flipped, target);
    if (status.ok()) ++failures;
    flipped[i] = pristine[i];
  }
  // Zero silent corruption: every flip is caught (the whole-file CRC covers
  // the body; the footer bytes are the CRC itself and the tail magic)...
  EXPECT_EQ(failures, 0u);
  // ...and the strong guarantee held through every failed decode.
  EXPECT_EQ(state_bytes(target), target_state);

  // Control: the pristine bytes still decode, into the exact saved state.
  ASSERT_TRUE(core::SnapshotCodec::decode(pristine, target).ok());
  EXPECT_EQ(state_bytes(target), state_bytes(builder));
}

TEST(Snapshot, EveryTruncationLengthIsDetected) {
  const auto& w = snap_world();
  auto builder = w.streaming();
  builder.ingest(std::span<const p2p::PeerSample>{w.churn.windows[0]}.first(150), 1);
  const auto pristine = core::SnapshotCodec::encode(builder, 3);

  auto target = w.streaming();
  const auto target_state = state_bytes(target);
  std::size_t failures = 0;
  for (std::size_t keep = 0; keep < pristine.size(); ++keep) {
    const std::span<const std::byte> torn{pristine.data(), keep};
    if (core::SnapshotCodec::decode(torn, target).ok()) ++failures;
  }
  EXPECT_EQ(failures, 0u);
  EXPECT_EQ(state_bytes(target), target_state);
}

TEST(Snapshot, EmptyAndGarbageInputsAreCorruptionNotCrashes) {
  const auto& w = snap_world();
  auto target = w.streaming();
  EXPECT_EQ(core::SnapshotCodec::decode({}, target).code(), StatusCode::kCorruption);
  std::vector<std::byte> zeros(4096, std::byte{0});
  EXPECT_EQ(core::SnapshotCodec::decode(zeros, target).code(), StatusCode::kCorruption);
  std::vector<std::byte> noise;
  for (std::size_t i = 0; i < 4096; ++i) {
    noise.push_back(static_cast<std::byte>((i * 2654435761u) >> 13));
  }
  EXPECT_EQ(core::SnapshotCodec::decode(noise, target).code(), StatusCode::kCorruption);
}

// ---- Generations: pruning, fallback, post-fallback numbering ----

TEST(Snapshot, SaveAdvancesGenerationsAndPrunesToTwo) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("prune");
  auto& fs = util::local_filesystem();

  auto builder = w.streaming();
  for (std::size_t i = 0; i < 3; ++i) {
    builder.ingest(w.churn.windows[i], 2);
    std::uint64_t generation = 0;
    ASSERT_TRUE(builder.save_snapshot(dir, fs, &generation).ok());
    EXPECT_EQ(generation, i + 1);
  }
  // Current + last-good only; generation 1 was pruned.
  EXPECT_EQ(snapshot_files(dir),
            (std::vector<std::string>{"snapshot.00000000000000000002.eyb",
                                      "snapshot.00000000000000000003.eyb"}));
}

TEST(Snapshot, RestoreFallsBackPastACorruptNewestGeneration) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("fallback");
  auto& fs = util::local_filesystem();

  auto builder = w.streaming();
  builder.ingest(w.churn.windows[0], 2);
  ASSERT_TRUE(builder.save_snapshot(dir, fs).ok());
  const auto state_a = state_bytes(builder);

  builder.ingest(w.churn.windows[1], 2);
  ASSERT_TRUE(builder.save_snapshot(dir, fs).ok());

  // Corrupt generation 2 on disk (one flipped byte mid-file).
  const std::string newest = dir + "/snapshot.00000000000000000002.eyb";
  std::vector<std::byte> bytes;
  ASSERT_TRUE(fs.read_file(newest, bytes).ok());
  bytes[bytes.size() / 2] ^= std::byte{0x10};
  ASSERT_TRUE(util::atomic_write_file(fs, newest, bytes).ok());

  auto restored = w.streaming();
  core::SnapshotRestoreInfo info;
  ASSERT_TRUE(restored.restore_snapshot(dir, fs, &info).ok());
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.generations_skipped, 1u);
  EXPECT_EQ(state_bytes(restored), state_a);

  // A save after the fallback must NOT reuse the dead generation's number:
  // the corrupt gen-2 file is still on disk, so the next save is gen 3.
  std::uint64_t generation = 0;
  ASSERT_TRUE(restored.save_snapshot(dir, fs, &generation).ok());
  EXPECT_EQ(generation, 3u);
}

TEST(Snapshot, AllGenerationsCorruptReportsTheNewestError) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("all_corrupt");
  auto& fs = util::local_filesystem();

  auto builder = w.streaming();
  builder.ingest(w.churn.windows[0], 2);
  ASSERT_TRUE(builder.save_snapshot(dir, fs).ok());
  builder.ingest(w.churn.windows[1], 2);
  ASSERT_TRUE(builder.save_snapshot(dir, fs).ok());

  for (const std::string& name : snapshot_files(dir)) {
    std::vector<std::byte> bytes;
    ASSERT_TRUE(fs.read_file(dir + "/" + name, bytes).ok());
    bytes[bytes.size() / 3] ^= std::byte{0x01};
    ASSERT_TRUE(util::atomic_write_file(fs, dir + "/" + name, bytes).ok());
  }

  auto restored = w.streaming();
  const auto before = state_bytes(restored);
  const Status status = restored.restore_snapshot(dir, fs);
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status;
  // The message names the newest generation (the one an operator should
  // investigate first), and the failed restore changed nothing.
  EXPECT_NE(status.message().find("generation 2"), std::string::npos) << status;
  EXPECT_EQ(state_bytes(restored), before);
}

TEST(Snapshot, CorruptGenerationIsQuarantinedWithItsVerdictNotDeleted) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("quarantine");
  auto& fs = util::local_filesystem();

  auto builder = w.streaming();
  builder.ingest(w.churn.windows[0], 2);
  ASSERT_TRUE(builder.save_snapshot(dir, fs).ok());
  builder.ingest(w.churn.windows[1], 2);
  ASSERT_TRUE(builder.save_snapshot(dir, fs).ok());

  const std::string newest = dir + "/snapshot.00000000000000000002.eyb";
  std::vector<std::byte> damaged;
  ASSERT_TRUE(fs.read_file(newest, damaged).ok());
  damaged[damaged.size() / 2] ^= std::byte{0x10};
  ASSERT_TRUE(util::atomic_write_file(fs, newest, damaged).ok());

  auto restored = w.streaming();
  core::SnapshotRestoreInfo info;
  ASSERT_TRUE(restored.restore_snapshot(dir, fs, &info).ok());
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.generations_skipped, 1u);

  // The condemned file moved aside intact — evidence, not garbage — with
  // the typed verdict recorded next to it.
  EXPECT_FALSE(std::filesystem::exists(newest));
  const std::string aside = newest + std::string{util::kQuarantineSuffix};
  std::vector<std::byte> preserved;
  ASSERT_TRUE(fs.read_file(aside, preserved).ok());
  EXPECT_EQ(preserved, damaged);
  std::vector<std::byte> reason;
  ASSERT_TRUE(fs.read_file(aside + ".reason", reason).ok());
  EXPECT_FALSE(reason.empty());

  // A second restore never re-trips on the corpse: the quarantined name no
  // longer parses as a live generation, so generation 1 loads first try.
  auto again = w.streaming();
  core::SnapshotRestoreInfo second;
  ASSERT_TRUE(again.restore_snapshot(dir, fs, &second).ok());
  EXPECT_EQ(second.generation, 1u);
  EXPECT_EQ(second.generations_skipped, 0u);
}

TEST(Snapshot, PruneNeverRemovesAQuarantinedGenerationAndNeverReusesItsNumber) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("quarantine_prune");
  auto& fs = util::local_filesystem();

  auto builder = w.streaming();
  builder.ingest(w.churn.windows[0], 2);
  ASSERT_TRUE(builder.save_snapshot(dir, fs).ok());
  builder.ingest(w.churn.windows[1], 2);
  ASSERT_TRUE(builder.save_snapshot(dir, fs).ok());

  // Damage and quarantine generation 2 via a failed restore.
  const std::string newest = dir + "/snapshot.00000000000000000002.eyb";
  std::vector<std::byte> bytes;
  ASSERT_TRUE(fs.read_file(newest, bytes).ok());
  bytes[bytes.size() / 2] ^= std::byte{0x04};
  ASSERT_TRUE(util::atomic_write_file(fs, newest, bytes).ok());
  auto restored = w.streaming();
  ASSERT_TRUE(restored.restore_snapshot(dir, fs).ok());
  const std::string aside = newest + std::string{util::kQuarantineSuffix};
  ASSERT_TRUE(std::filesystem::exists(aside));

  // The first save after the fallback must skip the quarantined number (a
  // reused generation 2 would collide with the preserved evidence)...
  std::uint64_t generation = 0;
  ASSERT_TRUE(restored.save_snapshot(dir, fs, &generation).ok());
  EXPECT_EQ(generation, 3u);
  // ...and however many saves follow, keep-2 pruning only ever counts LIVE
  // generations: the corpse outlives all of them.
  for (std::uint64_t expected = 4; expected < 8; ++expected) {
    restored.ingest(w.churn.windows[2], 2);
    ASSERT_TRUE(restored.save_snapshot(dir, fs, &generation).ok());
    EXPECT_EQ(generation, expected);
  }
  EXPECT_TRUE(std::filesystem::exists(aside));
  EXPECT_TRUE(std::filesystem::exists(aside + ".reason"));
  const std::vector<std::string> names = snapshot_files(dir);
  // Two live generations + corpse + reason sidecar, nothing else.
  EXPECT_EQ(names.size(), 4u);
  EXPECT_TRUE(std::find(names.begin(), names.end(),
                        "snapshot.00000000000000000006.eyb") != names.end());
  EXPECT_TRUE(std::find(names.begin(), names.end(),
                        "snapshot.00000000000000000007.eyb") != names.end());
}

TEST(Snapshot, MissingOrEmptyDirectoryIsNotFound) {
  const auto& w = snap_world();
  auto builder = w.streaming();
  const std::string dir = scratch_dir("missing");
  EXPECT_EQ(builder.restore_snapshot(dir).code(), StatusCode::kNotFound);
  std::filesystem::create_directories(dir);
  EXPECT_EQ(builder.restore_snapshot(dir).code(), StatusCode::kNotFound);
}

TEST(Snapshot, ResetForgetsTheGenerationCounter) {
  const auto& w = snap_world();
  const std::string dir = scratch_dir("reset_gen");
  auto builder = w.streaming();
  builder.ingest(w.churn.windows[0], 2);
  ASSERT_TRUE(builder.save_snapshot(dir).ok());
  EXPECT_EQ(builder.last_generation(), 1u);
  builder.reset();
  EXPECT_EQ(builder.last_generation(), 0u);
}

}  // namespace
}  // namespace eyeball
