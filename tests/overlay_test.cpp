#include <gtest/gtest.h>

#include <set>

#include "gazetteer/gazetteer.hpp"
#include "p2p/overlay.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"

namespace eyeball::p2p {
namespace {

struct Fixture {
  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::AsEcosystem eco = [this] {
    topology::EcosystemConfig config;
    config.seed = 404;
    return topology::generate_ecosystem(gaz, config.scaled(0.02));
  }();

  OverlayPopulationConfig population_config = [] {
    OverlayPopulationConfig config;
    config.seed = 404;
    // Boost penetration so the small test ecosystem yields a real overlay.
    config.penetration.set_rates(gazetteer::Continent::kNorthAmerica, {0.015, 0.015, 0.015});
    config.penetration.set_rates(gazetteer::Continent::kEurope, {0.015, 0.015, 0.015});
    config.penetration.set_rates(gazetteer::Continent::kAsia, {0.015, 0.015, 0.015});
    return config;
  }();

  OverlayPopulation kad_population{eco, App::kKad, population_config};
};

const Fixture& fixture() {
  static const Fixture instance;
  return instance;
}

TEST(OverlayPopulation, MembersAreUniqueAndSorted) {
  const auto& nodes = fixture().kad_population.nodes();
  ASSERT_GT(nodes.size(), 1000u);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1].ip, nodes[i].ip);
  }
}

TEST(OverlayPopulation, OnlineFractionNearConfig) {
  const auto& population = fixture().kad_population;
  const double fraction = static_cast<double>(population.online_count()) /
                          static_cast<double>(population.nodes().size());
  EXPECT_NEAR(fraction, 0.75, 0.03);
}

TEST(OverlayPopulation, MembersBelongToEyeballs) {
  const auto& f = fixture();
  const topology::GroundTruthLocator locator{f.eco, f.gaz};
  std::size_t checked = 0;
  for (const auto& node : f.kad_population.nodes()) {
    const auto truth = locator.locate(node.ip);
    ASSERT_TRUE(truth);
    EXPECT_EQ(f.eco.at(truth->asn).role, topology::AsRole::kEyeball);
    if (++checked > 500) break;
  }
}

TEST(OverlayPopulation, NodeIdsUniformish) {
  // Top bit of the DHT id should split the population roughly in half.
  const auto& nodes = fixture().kad_population.nodes();
  std::size_t high = 0;
  for (const auto& node : nodes) {
    if (node.node_id >> 63) ++high;
  }
  const double fraction = static_cast<double>(high) / static_cast<double>(nodes.size());
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(KadNetwork, DenseSweepReachesNearlyAllOnlineNodes) {
  const auto& f = fixture();
  const KadNetwork kad{f.kad_population, 1};
  CrawlStats stats;
  // One zone per ~2 nodes: practically exhaustive, like real Kad crawlers.
  const auto samples = kad.crawl(f.kad_population.nodes().size() / 2, &stats);
  EXPECT_GT(stats.discovered,
            static_cast<std::size_t>(0.95 * static_cast<double>(
                                                f.kad_population.online_count())));
  EXPECT_EQ(samples.size(), stats.discovered);
}

TEST(KadNetwork, CoverageGrowsWithZones) {
  const auto& f = fixture();
  const KadNetwork kad{f.kad_population, 1};
  const auto sparse = kad.crawl(50);
  const auto dense = kad.crawl(2000);
  EXPECT_GT(dense.size(), sparse.size());
}

TEST(KadNetwork, SamplesAreUnique) {
  const auto& f = fixture();
  const KadNetwork kad{f.kad_population, 1};
  const auto samples = kad.crawl(500);
  std::set<std::uint32_t> ips;
  for (const auto& sample : samples) {
    EXPECT_TRUE(ips.insert(sample.ip.value()).second);
    EXPECT_EQ(sample.app, App::kKad);
  }
}

TEST(GnutellaNetwork, BfsCoversGiantComponent) {
  const auto& f = fixture();
  const OverlayPopulation population{f.eco, App::kGnutella, f.population_config};
  const GnutellaNetwork gnutella{population, 7};
  ASSERT_GT(gnutella.ultrapeer_count(), 10u);
  CrawlStats stats;
  const auto samples = gnutella.crawl(5, &stats);
  // Degree-10 random graphs are connected with overwhelming probability:
  // the crawl should see the vast majority of online nodes.
  EXPECT_GT(samples.size(),
            static_cast<std::size_t>(0.9 * static_cast<double>(population.online_count())));
  EXPECT_GT(stats.queries, 0u);
}

TEST(GnutellaNetwork, OfflineNodesNotDiscovered) {
  const auto& f = fixture();
  const OverlayPopulation population{f.eco, App::kGnutella, f.population_config};
  const GnutellaNetwork gnutella{population, 7};
  const auto samples = gnutella.crawl(5);
  std::set<std::uint32_t> online_ips;
  for (const auto& node : population.nodes()) {
    if (node.online) online_ips.insert(node.ip.value());
  }
  for (const auto& sample : samples) {
    EXPECT_TRUE(online_ips.count(sample.ip.value()) > 0);
  }
}

TEST(SwarmNetwork, TopTorrentCrawlMissesTail) {
  const auto& f = fixture();
  const OverlayPopulation population{f.eco, App::kBitTorrent, f.population_config};
  const SwarmNetwork swarms{population, 9, 500};
  const auto few = swarms.crawl(10, 200);
  const auto many = swarms.crawl(500, 200);
  EXPECT_GT(many.size(), few.size());
  EXPECT_LT(few.size(), population.online_count());
}

TEST(SwarmNetwork, ScrapeCapLimitsPerSwarmSamples) {
  const auto& f = fixture();
  const OverlayPopulation population{f.eco, App::kBitTorrent, f.population_config};
  const SwarmNetwork swarms{population, 9, 500};
  CrawlStats small_cap;
  CrawlStats large_cap;
  (void)swarms.crawl(20, 10, &small_cap);
  (void)swarms.crawl(20, 10000, &large_cap);
  EXPECT_LT(small_cap.discovered, large_cap.discovered);
  EXPECT_LE(small_cap.discovered, 20u * 10u);
}

TEST(SwarmNetwork, DeterministicCrawls) {
  const auto& f = fixture();
  const OverlayPopulation population{f.eco, App::kBitTorrent, f.population_config};
  const SwarmNetwork swarms{population, 9, 300};
  const auto a = swarms.crawl(50, 100);
  const auto b = swarms.crawl(50, 100);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Overlays, StructuralBiasDiffersByApplication) {
  // The three crawls see different subsets of the same world — the
  // mechanism behind the paper's per-application sample skew.
  const auto& f = fixture();
  const KadNetwork kad{f.kad_population, 1};
  const OverlayPopulation gnutella_population{f.eco, App::kGnutella, f.population_config};
  const GnutellaNetwork gnutella{gnutella_population, 7};
  const OverlayPopulation bt_population{f.eco, App::kBitTorrent, f.population_config};
  const SwarmNetwork swarms{bt_population, 9, 500};

  const double kad_coverage =
      static_cast<double>(kad.crawl(f.kad_population.nodes().size() / 2).size()) /
      static_cast<double>(f.kad_population.online_count());
  const double bt_coverage =
      static_cast<double>(swarms.crawl(25, 50).size()) /
      static_cast<double>(bt_population.online_count());
  // Kad sweeps are near-exhaustive; scraping a few swarms is not.
  EXPECT_GT(kad_coverage, 0.9);
  EXPECT_LT(bt_coverage, 0.7);
}

}  // namespace
}  // namespace eyeball::p2p
