// util::ThreadPool unit tests plus the determinism contract of the parallel
// execution engine: the KDE convolution passes and the pipeline's per-AS
// fan-out must produce bit-identical results at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/multi_bandwidth.hpp"
#include "kde/estimator.hpp"
#include "pipeline_fixture.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace eyeball {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  util::ThreadPool pool{2};
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitRunsOnWorkerThread) {
  util::ThreadPool pool{2};
  EXPECT_FALSE(util::ThreadPool::on_worker_thread());
  auto future = pool.submit([] { return util::ThreadPool::on_worker_thread(); });
  EXPECT_TRUE(future.get());
}

TEST(ThreadPool, ExceptionPropagatesFromWorker) {
  util::ThreadPool pool{2};
  auto future = pool.submit(
      []() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  util::ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::invalid_argument{"chunk 0"};
                        }),
      std::invalid_argument);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  util::ThreadPool pool{2};
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForRangeSmallerThanWorkers) {
  util::ThreadPool pool{8};
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  util::ThreadPool pool{4};
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(10, 10 + kCount, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i - 10];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsMaxConcurrency) {
  util::ThreadPool pool{8};
  std::atomic<int> chunks{0};
  pool.parallel_for(
      0, 1000, [&](std::size_t, std::size_t) { ++chunks; }, 3);
  EXPECT_LE(chunks.load(), 3);
}

TEST(ThreadPool, ChunkCountIndependentOfPoolSize) {
  // Chunk boundaries must depend only on the range and the requested
  // concurrency, never on how many workers happen to exist — a 1-worker
  // pool asked for 4 chunks still produces 4 (queued) chunks, so the
  // sharded merge order is identical on any machine.
  util::ThreadPool pool{1};
  std::atomic<int> chunks{0};
  pool.parallel_for(
      0, 1000, [&](std::size_t, std::size_t) { ++chunks; }, 4);
  EXPECT_EQ(chunks.load(), 4);

  std::vector<std::pair<std::size_t, std::size_t>> seen;
  pool.parallel_map_reduce(
      0, 1000,
      [](std::size_t lo, std::size_t hi) { return std::make_pair(lo, hi); },
      [&](std::pair<std::size_t, std::size_t> bounds) { seen.push_back(bounds); },
      4);
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen.front().first, 0u);
  EXPECT_EQ(seen.back().second, 1000u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].first, seen[i - 1].second);
  }
}

TEST(ThreadPool, NestedParallelForRunsInlineOnWorker) {
  util::ThreadPool pool{2};
  std::atomic<int> inner_chunks{0};
  pool.parallel_for(0, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // A nested parallel_for from a worker must not re-enter the queue —
      // it runs the whole inner range as one inline chunk.
      util::ThreadPool::shared().parallel_for(
          0, 100, [&](std::size_t b, std::size_t e) {
            EXPECT_EQ(b, 0u);
            EXPECT_EQ(e, 100u);
            ++inner_chunks;
          });
    }
  });
  EXPECT_EQ(inner_chunks.load(), 4);
}

TEST(ThreadPool, MapReduceSumMatchesSerial) {
  util::ThreadPool pool{4};
  constexpr std::size_t kCount = 10000;
  long long total = 0;
  pool.parallel_map_reduce(
      0, kCount,
      [](std::size_t lo, std::size_t hi) {
        long long sum = 0;
        for (std::size_t i = lo; i < hi; ++i) sum += static_cast<long long>(i);
        return sum;
      },
      [&](long long chunk_sum) { total += chunk_sum; });
  EXPECT_EQ(total, static_cast<long long>(kCount) * (kCount - 1) / 2);
}

TEST(ThreadPool, MapReduceReducesInChunkOrder) {
  util::ThreadPool pool{4};
  // Each chunk returns its own bounds; the ordered reduction must see them
  // left-to-right and covering the range exactly once, however the chunks
  // were scheduled.
  std::vector<std::pair<std::size_t, std::size_t>> seen;
  pool.parallel_map_reduce(
      5, 505,
      [](std::size_t lo, std::size_t hi) { return std::make_pair(lo, hi); },
      [&](std::pair<std::size_t, std::size_t> bounds) { seen.push_back(bounds); });
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front().first, 5u);
  EXPECT_EQ(seen.back().second, 505u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].first, seen[i - 1].second);
  }
}

TEST(ThreadPool, MapReduceEmptyRangeAndConcurrencyOne) {
  util::ThreadPool pool{4};
  int reduces = 0;
  pool.parallel_map_reduce(
      3, 3, [](std::size_t, std::size_t) { return 0; }, [&](int) { ++reduces; });
  EXPECT_EQ(reduces, 0);
  // max_concurrency 1 runs inline as a single chunk.
  pool.parallel_map_reduce(
      0, 100, [](std::size_t lo, std::size_t hi) { return hi - lo; },
      [&](std::size_t n) {
        EXPECT_EQ(n, 100u);
        ++reduces;
      },
      1);
  EXPECT_EQ(reduces, 1);
}

TEST(ThreadPool, MapReducePropagatesMapException) {
  util::ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_map_reduce(
          0, 100,
          [](std::size_t lo, std::size_t) -> int {
            if (lo == 0) throw std::invalid_argument{"chunk 0"};
            return 0;
          },
          [](int) {}),
      std::invalid_argument);
}

std::vector<geo::GeoPoint> scattered_points(std::size_t count, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<geo::GeoPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back({rng.uniform(38.0, 46.0), rng.uniform(7.0, 18.0)});
  }
  return points;
}

TEST(ParallelKde, BinnedEstimateBitIdenticalAcrossThreadCounts) {
  const auto points = scattered_points(20000, 11);
  kde::KdeConfig serial_config;
  serial_config.bandwidth_km = 40.0;
  serial_config.cell_km = 5.0;
  serial_config.threads = 1;
  const kde::KernelDensityEstimator serial{serial_config};
  const auto box = serial.padded_box(points);
  const auto reference = serial.estimate(points, box);

  for (const std::size_t threads : {2u, 4u, 0u}) {
    kde::KdeConfig config = serial_config;
    config.threads = threads;
    const kde::KernelDensityEstimator estimator{config};
    const auto grid = estimator.estimate(points, box);
    ASSERT_EQ(grid.values().size(), reference.values().size());
    EXPECT_EQ(grid.values(), reference.values()) << "threads=" << threads;
  }
}

TEST(ParallelKde, ExactEstimateBitIdenticalAcrossThreadCounts) {
  const auto points = scattered_points(300, 12);
  kde::KdeConfig serial_config;
  serial_config.bandwidth_km = 40.0;
  serial_config.cell_km = 20.0;
  serial_config.threads = 1;
  const kde::KernelDensityEstimator serial{serial_config};
  const auto box = serial.padded_box(points);
  const auto reference = serial.estimate_exact(points, box);

  kde::KdeConfig parallel_config = serial_config;
  parallel_config.threads = 4;
  const kde::KernelDensityEstimator parallel{parallel_config};
  EXPECT_EQ(parallel.estimate_exact(points, box).values(), reference.values());
}

bool same_analysis(const core::AsAnalysis& a, const core::AsAnalysis& b) {
  if (a.asn != b.asn) return false;
  if (a.classification.level != b.classification.level ||
      a.classification.dominant_region != b.classification.dominant_region ||
      a.classification.dominant_share != b.classification.dominant_share) {
    return false;
  }
  if (a.footprint.grid.values() != b.footprint.grid.values()) return false;
  if (a.footprint.peaks.size() != b.footprint.peaks.size()) return false;
  for (std::size_t i = 0; i < a.footprint.peaks.size(); ++i) {
    const auto& pa = a.footprint.peaks[i];
    const auto& pb = b.footprint.peaks[i];
    if (pa.location != pb.location || pa.density != pb.density ||
        pa.score != pb.score || pa.row != pb.row || pa.col != pb.col) {
      return false;
    }
  }
  if (a.pops.unmapped_peaks != b.pops.unmapped_peaks) return false;
  if (a.pops.pops.size() != b.pops.pops.size()) return false;
  for (std::size_t i = 0; i < a.pops.pops.size(); ++i) {
    const auto& pa = a.pops.pops[i];
    const auto& pb = b.pops.pops[i];
    if (pa.city != pb.city || pa.score != pb.score ||
        pa.peak_density != pb.peak_density || pa.peak_location != pb.peak_location) {
      return false;
    }
  }
  return true;
}

TEST(ParallelPipeline, AnalyzeAllMatchesSerialOnSyntheticTopology) {
  const auto& fixture = testing::shared_fixture();
  const auto ases = fixture.dataset.ases();
  ASSERT_FALSE(ases.empty());

  const auto serial = fixture.pipeline.analyze_all(ases, 1);
  ASSERT_EQ(serial.size(), ases.size());
  // Serial fan-out equals the plain per-AS loop.
  for (std::size_t i = 0; i < ases.size(); ++i) {
    EXPECT_TRUE(same_analysis(serial[i], fixture.pipeline.analyze(ases[i]))) << i;
  }

  for (const std::size_t threads : {2u, 4u, 0u}) {
    const auto parallel = fixture.pipeline.analyze_all(ases, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_analysis(serial[i], parallel[i]))
          << "threads=" << threads << " as index " << i;
    }
  }
}

void expect_same_dataset(const core::TargetDataset& reference,
                         const core::TargetDataset& candidate, std::size_t threads) {
  EXPECT_EQ(reference.stats(), candidate.stats())
      << "threads=" << threads << " diverged: "
      << core::diff_stats(reference.stats(), candidate.stats());
  ASSERT_EQ(reference.ases().size(), candidate.ases().size()) << "threads=" << threads;
  for (std::size_t a = 0; a < reference.ases().size(); ++a) {
    const auto& ra = reference.ases()[a];
    const auto& ca = candidate.ases()[a];
    EXPECT_EQ(ra.asn, ca.asn) << "threads=" << threads << " as index " << a;
    ASSERT_EQ(ra.peers.size(), ca.peers.size())
        << "threads=" << threads << " as index " << a;
    for (std::size_t p = 0; p < ra.peers.size(); ++p) {
      const auto& rp = ra.peers[p];
      const auto& cp = ca.peers[p];
      const bool same = rp.ip == cp.ip && rp.app == cp.app &&
                        rp.location == cp.location &&
                        rp.geo_error_km == cp.geo_error_km &&
                        rp.reported_city == cp.reported_city;
      EXPECT_TRUE(same) << "threads=" << threads << " as index " << a << " peer " << p;
      if (!same) return;
    }
  }
}

TEST(ParallelDataset, ShardedBuildByteIdenticalAcrossThreadCounts) {
  const auto& fixture = testing::shared_fixture();
  const auto samples = std::span<const p2p::PeerSample>{fixture.crawl.samples};

  const auto reference = fixture.pipeline.build_dataset(samples, 1);
  // The serial shard path is the fixture dataset's own build.
  expect_same_dataset(fixture.dataset, reference, 1);

  for (const std::size_t threads : {2u, 3u, 4u, 0u}) {
    expect_same_dataset(reference, fixture.pipeline.build_dataset(samples, threads),
                        threads);
  }
}

TEST(ParallelDataset, LookupMemoInvisibleToResults) {
  const auto& fixture = testing::shared_fixture();
  core::DatasetConfig no_memo = fixture.pipeline.config().dataset;
  no_memo.lookup_memo_slots = 0;
  const core::DatasetBuilder builder{fixture.primary, fixture.secondary,
                                     fixture.mapper, no_memo};
  expect_same_dataset(fixture.dataset, builder.build(fixture.crawl.samples, 4), 4);
}

TEST(ParallelPipeline, MultiBandwidthRefineMatchesSerial) {
  const auto& fixture = testing::shared_fixture();
  const auto ases = fixture.dataset.ases();
  ASSERT_FALSE(ases.empty());
  const core::GeoFootprintEstimator estimator{fixture.pipeline.config().footprint};

  core::MultiBandwidthConfig serial_config;
  serial_config.threads = 1;
  core::MultiBandwidthConfig parallel_config;
  parallel_config.threads = 2;
  const core::MultiBandwidthRefiner serial{fixture.gaz, estimator, serial_config};
  const core::MultiBandwidthRefiner parallel{fixture.gaz, estimator, parallel_config};

  const auto& as = ases.front();
  const auto a = serial.refine(as);
  const auto b = parallel.refine(as);
  EXPECT_EQ(a.splits, b.splits);
  ASSERT_EQ(a.pops.pops.size(), b.pops.pops.size());
  EXPECT_EQ(a.pops.unmapped_peaks, b.pops.unmapped_peaks);
  for (std::size_t i = 0; i < a.pops.pops.size(); ++i) {
    EXPECT_EQ(a.pops.pops[i].city, b.pops.pops[i].city);
    EXPECT_EQ(a.pops.pops[i].score, b.pops.pops[i].score);
    EXPECT_EQ(a.pops.pops[i].peak_density, b.pops.pops[i].peak_density);
    EXPECT_EQ(a.pops.pops[i].peak_location, b.pops.pops[i].peak_location);
  }
}

}  // namespace
}  // namespace eyeball
