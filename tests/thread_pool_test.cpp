// util::ThreadPool unit tests plus the determinism contract of the parallel
// execution engine: the KDE convolution passes and the pipeline's per-AS
// fan-out must produce bit-identical results at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/multi_bandwidth.hpp"
#include "kde/estimator.hpp"
#include "pipeline_fixture.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace eyeball {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  util::ThreadPool pool{2};
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitRunsOnWorkerThread) {
  util::ThreadPool pool{2};
  EXPECT_FALSE(util::ThreadPool::on_worker_thread());
  auto future = pool.submit([] { return util::ThreadPool::on_worker_thread(); });
  EXPECT_TRUE(future.get());
}

TEST(ThreadPool, ExceptionPropagatesFromWorker) {
  util::ThreadPool pool{2};
  auto future = pool.submit(
      []() -> int { throw std::runtime_error{"boom"}; });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  util::ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t lo, std::size_t) {
                          if (lo == 0) throw std::invalid_argument{"chunk 0"};
                        }),
      std::invalid_argument);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  util::ThreadPool pool{2};
  std::atomic<int> calls{0};
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { ++calls; });
  pool.parallel_for(7, 3, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForRangeSmallerThanWorkers) {
  util::ThreadPool pool{8};
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(0, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  util::ThreadPool pool{4};
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(10, 10 + kCount, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i - 10];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForRespectsMaxConcurrency) {
  util::ThreadPool pool{8};
  std::atomic<int> chunks{0};
  pool.parallel_for(
      0, 1000, [&](std::size_t, std::size_t) { ++chunks; }, 3);
  EXPECT_LE(chunks.load(), 3);
}

TEST(ThreadPool, NestedParallelForRunsInlineOnWorker) {
  util::ThreadPool pool{2};
  std::atomic<int> inner_chunks{0};
  pool.parallel_for(0, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // A nested parallel_for from a worker must not re-enter the queue —
      // it runs the whole inner range as one inline chunk.
      util::ThreadPool::shared().parallel_for(
          0, 100, [&](std::size_t b, std::size_t e) {
            EXPECT_EQ(b, 0u);
            EXPECT_EQ(e, 100u);
            ++inner_chunks;
          });
    }
  });
  EXPECT_EQ(inner_chunks.load(), 4);
}

std::vector<geo::GeoPoint> scattered_points(std::size_t count, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<geo::GeoPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back({rng.uniform(38.0, 46.0), rng.uniform(7.0, 18.0)});
  }
  return points;
}

TEST(ParallelKde, BinnedEstimateBitIdenticalAcrossThreadCounts) {
  const auto points = scattered_points(20000, 11);
  kde::KdeConfig serial_config;
  serial_config.bandwidth_km = 40.0;
  serial_config.cell_km = 5.0;
  serial_config.threads = 1;
  const kde::KernelDensityEstimator serial{serial_config};
  const auto box = serial.padded_box(points);
  const auto reference = serial.estimate(points, box);

  for (const std::size_t threads : {2u, 4u, 0u}) {
    kde::KdeConfig config = serial_config;
    config.threads = threads;
    const kde::KernelDensityEstimator estimator{config};
    const auto grid = estimator.estimate(points, box);
    ASSERT_EQ(grid.values().size(), reference.values().size());
    EXPECT_EQ(grid.values(), reference.values()) << "threads=" << threads;
  }
}

TEST(ParallelKde, ExactEstimateBitIdenticalAcrossThreadCounts) {
  const auto points = scattered_points(300, 12);
  kde::KdeConfig serial_config;
  serial_config.bandwidth_km = 40.0;
  serial_config.cell_km = 20.0;
  serial_config.threads = 1;
  const kde::KernelDensityEstimator serial{serial_config};
  const auto box = serial.padded_box(points);
  const auto reference = serial.estimate_exact(points, box);

  kde::KdeConfig parallel_config = serial_config;
  parallel_config.threads = 4;
  const kde::KernelDensityEstimator parallel{parallel_config};
  EXPECT_EQ(parallel.estimate_exact(points, box).values(), reference.values());
}

bool same_analysis(const core::AsAnalysis& a, const core::AsAnalysis& b) {
  if (a.asn != b.asn) return false;
  if (a.classification.level != b.classification.level ||
      a.classification.dominant_region != b.classification.dominant_region ||
      a.classification.dominant_share != b.classification.dominant_share) {
    return false;
  }
  if (a.footprint.grid.values() != b.footprint.grid.values()) return false;
  if (a.footprint.peaks.size() != b.footprint.peaks.size()) return false;
  for (std::size_t i = 0; i < a.footprint.peaks.size(); ++i) {
    const auto& pa = a.footprint.peaks[i];
    const auto& pb = b.footprint.peaks[i];
    if (pa.location != pb.location || pa.density != pb.density ||
        pa.score != pb.score || pa.row != pb.row || pa.col != pb.col) {
      return false;
    }
  }
  if (a.pops.unmapped_peaks != b.pops.unmapped_peaks) return false;
  if (a.pops.pops.size() != b.pops.pops.size()) return false;
  for (std::size_t i = 0; i < a.pops.pops.size(); ++i) {
    const auto& pa = a.pops.pops[i];
    const auto& pb = b.pops.pops[i];
    if (pa.city != pb.city || pa.score != pb.score ||
        pa.peak_density != pb.peak_density || pa.peak_location != pb.peak_location) {
      return false;
    }
  }
  return true;
}

TEST(ParallelPipeline, AnalyzeAllMatchesSerialOnSyntheticTopology) {
  const auto& fixture = testing::shared_fixture();
  const auto ases = fixture.dataset.ases();
  ASSERT_FALSE(ases.empty());

  const auto serial = fixture.pipeline.analyze_all(ases, 1);
  ASSERT_EQ(serial.size(), ases.size());
  // Serial fan-out equals the plain per-AS loop.
  for (std::size_t i = 0; i < ases.size(); ++i) {
    EXPECT_TRUE(same_analysis(serial[i], fixture.pipeline.analyze(ases[i]))) << i;
  }

  for (const std::size_t threads : {2u, 4u, 0u}) {
    const auto parallel = fixture.pipeline.analyze_all(ases, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(same_analysis(serial[i], parallel[i]))
          << "threads=" << threads << " as index " << i;
    }
  }
}

TEST(ParallelPipeline, MultiBandwidthRefineMatchesSerial) {
  const auto& fixture = testing::shared_fixture();
  const auto ases = fixture.dataset.ases();
  ASSERT_FALSE(ases.empty());
  const core::GeoFootprintEstimator estimator{fixture.pipeline.config().footprint};

  core::MultiBandwidthConfig serial_config;
  serial_config.threads = 1;
  core::MultiBandwidthConfig parallel_config;
  parallel_config.threads = 2;
  const core::MultiBandwidthRefiner serial{fixture.gaz, estimator, serial_config};
  const core::MultiBandwidthRefiner parallel{fixture.gaz, estimator, parallel_config};

  const auto& as = ases.front();
  const auto a = serial.refine(as);
  const auto b = parallel.refine(as);
  EXPECT_EQ(a.splits, b.splits);
  ASSERT_EQ(a.pops.pops.size(), b.pops.pops.size());
  EXPECT_EQ(a.pops.unmapped_peaks, b.pops.unmapped_peaks);
  for (std::size_t i = 0; i < a.pops.pops.size(); ++i) {
    EXPECT_EQ(a.pops.pops[i].city, b.pops.pops[i].city);
    EXPECT_EQ(a.pops.pops[i].score, b.pops.pops[i].score);
    EXPECT_EQ(a.pops.pops[i].peak_density, b.pops.pops[i].peak_density);
    EXPECT_EQ(a.pops.pops[i].peak_location, b.pops.pops[i].peak_location);
  }
}

}  // namespace
}  // namespace eyeball
