#include <gtest/gtest.h>

#include <algorithm>

#include "pipeline_fixture.hpp"
#include "validate/dimes.hpp"
#include "validate/matching.hpp"
#include "validate/reference.hpp"
#include "validate/report.hpp"

namespace eyeball::validate {
namespace {

using eyeball::testing::shared_fixture;

constexpr geo::GeoPoint kRome{41.9028, 12.4964};
constexpr geo::GeoPoint kMilan{45.4642, 9.1900};
constexpr geo::GeoPoint kNaples{40.8518, 14.2681};

TEST(Matching, BasicRecallAndPrecision) {
  const std::vector<geo::GeoPoint> reference{kRome, kMilan, kNaples};
  const std::vector<geo::GeoPoint> candidates{kRome, kMilan,
                                              geo::destination(kMilan, 90.0, 500.0)};
  const auto stats = match_pops(reference, candidates, 40.0);
  EXPECT_EQ(stats.reference_matched, 2u);
  EXPECT_EQ(stats.candidate_matched, 2u);
  EXPECT_NEAR(stats.reference_recall(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(stats.candidate_precision(), 2.0 / 3.0, 1e-9);
  EXPECT_FALSE(stats.perfect_precision());
  EXPECT_FALSE(stats.covers_reference());
}

TEST(Matching, WithinRadiusCounts) {
  const std::vector<geo::GeoPoint> reference{kRome};
  const std::vector<geo::GeoPoint> near{geo::destination(kRome, 45.0, 39.0)};
  const std::vector<geo::GeoPoint> far{geo::destination(kRome, 45.0, 41.0)};
  EXPECT_EQ(match_pops(reference, near, 40.0).reference_matched, 1u);
  EXPECT_EQ(match_pops(reference, far, 40.0).reference_matched, 0u);
}

TEST(Matching, EmptySetsBehave) {
  const std::vector<geo::GeoPoint> some{kRome};
  const std::vector<geo::GeoPoint> none;
  const auto stats = match_pops(some, none, 40.0);
  EXPECT_DOUBLE_EQ(stats.reference_recall(), 0.0);
  EXPECT_DOUBLE_EQ(stats.candidate_precision(), 0.0);
  EXPECT_FALSE(stats.perfect_precision());
  const auto inverse = match_pops(none, some, 40.0);
  EXPECT_TRUE(inverse.covers_reference());  // vacuously
}

TEST(Matching, PerfectPrecisionAndSuperset) {
  const std::vector<geo::GeoPoint> reference{kRome, kMilan};
  const std::vector<geo::GeoPoint> superset{kRome, kMilan, kNaples};
  const auto stats = match_pops(reference, superset, 40.0);
  EXPECT_TRUE(stats.covers_reference());
  EXPECT_FALSE(stats.perfect_precision());
  const auto exact = match_pops(reference, reference, 40.0);
  EXPECT_TRUE(exact.perfect_precision());
  EXPECT_TRUE(exact.covers_reference());
}

TEST(Reference, SelectsLargestStateAndCountryAses) {
  const auto& f = shared_fixture();
  const auto reference = build_reference_dataset(f.eco, f.gaz, 10);
  EXPECT_LE(reference.size(), 10u);
  EXPECT_GT(reference.size(), 0u);
  for (const auto& entry : reference) {
    const auto& as = f.eco.at(entry.asn);
    EXPECT_EQ(as.role, topology::AsRole::kEyeball);
    EXPECT_NE(as.level, topology::AsLevel::kCity);
    EXPECT_FALSE(entry.pops.empty());
  }
}

TEST(Reference, NoiseOmitsAndInflates) {
  const auto& f = shared_fixture();
  PublicationNoise no_noise;
  no_noise.omit_prob = 0.0;
  no_noise.access_points_per_pop = 0.0;
  no_noise.include_transit_only = false;
  const auto clean = build_reference_dataset(f.eco, f.gaz, 10, no_noise);

  PublicationNoise heavy;
  heavy.omit_prob = 0.0;
  heavy.access_points_per_pop = 6.0;
  const auto inflated = build_reference_dataset(f.eco, f.gaz, 10, heavy);

  ASSERT_EQ(clean.size(), inflated.size());
  std::size_t clean_total = 0;
  std::size_t inflated_total = 0;
  for (std::size_t i = 0; i < clean.size(); ++i) {
    clean_total += clean[i].pops.size();
    inflated_total += inflated[i].pops.size();
  }
  EXPECT_GT(inflated_total, clean_total);
}

TEST(Reference, CleanListMatchesTrueServicePops) {
  const auto& f = shared_fixture();
  PublicationNoise no_noise;
  no_noise.omit_prob = 0.0;
  no_noise.access_points_per_pop = 0.0;
  no_noise.include_transit_only = false;
  const auto clean = build_reference_dataset(f.eco, f.gaz, 5, no_noise);
  for (const auto& entry : clean) {
    const auto expected = true_service_pops(f.eco.at(entry.asn), f.gaz);
    EXPECT_EQ(entry.pops.size(), expected.size());
    for (const auto& pop : entry.pops) {
      EXPECT_EQ(pop.kind, PublishedPop::Kind::kService);
    }
  }
}

TEST(Reference, DeterministicForSeed) {
  const auto& f = shared_fixture();
  const auto a = build_reference_dataset(f.eco, f.gaz, 8);
  const auto b = build_reference_dataset(f.eco, f.gaz, 8);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].asn, b[i].asn);
    EXPECT_EQ(a[i].pops.size(), b[i].pops.size());
  }
}

TEST(Dimes, DiscoversFewPopsPerAs) {
  const auto& f = shared_fixture();
  const auto dimes = simulate_dimes(f.eco, f.gaz);
  ASSERT_FALSE(dimes.empty());
  double total = 0.0;
  for (const auto& entry : dimes) total += static_cast<double>(entry.pops.size());
  const double avg = total / static_cast<double>(dimes.size());
  // The paper reports 1.54 PoPs per AS for DIMES.
  EXPECT_GT(avg, 0.5);
  EXPECT_LT(avg, 3.5);
}

TEST(Dimes, OneEntryPerEyeball) {
  const auto& f = shared_fixture();
  const auto dimes = simulate_dimes(f.eco, f.gaz);
  EXPECT_EQ(dimes.size(), f.eco.eyeballs().size());
}

TEST(Dimes, PopsAreRealPopCities) {
  const auto& f = shared_fixture();
  const auto dimes = simulate_dimes(f.eco, f.gaz);
  for (const auto& entry : dimes) {
    const auto& as = f.eco.at(entry.asn);
    for (const auto& pop_location : entry.pops) {
      bool matches_true_pop = false;
      for (const auto& pop : as.pops) {
        if (geo::distance_km(pop_location, f.gaz.city(pop.city).location) < 1.0) {
          matches_true_pop = true;
        }
      }
      EXPECT_TRUE(matches_true_pop) << as.name;
    }
  }
}

TEST(Report, ValidationSweepStructure) {
  const auto& f = shared_fixture();
  const auto reference = build_reference_dataset(f.eco, f.gaz, 15);
  const auto report = validate_against_reference(f.pipeline, f.dataset, reference,
                                                 {10.0, 40.0, 80.0});
  ASSERT_EQ(report.sweeps.size(), 3u);
  EXPECT_GT(report.reference_as_count, 0u);
  EXPECT_GT(report.avg_reference_pops_per_as, 0.0);
  for (const auto& sweep : report.sweeps) {
    EXPECT_EQ(sweep.reference_recall.size(), report.reference_as_count);
    EXPECT_EQ(sweep.candidate_precision.size(), report.reference_as_count);
    for (const double r : sweep.reference_recall) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(Report, SmallerBandwidthFindsMorePops) {
  // The paper: 31.9 / 13.6 / 7.3 average PoPs per AS at 10 / 40 / 80 km.
  const auto& f = shared_fixture();
  const auto reference = build_reference_dataset(f.eco, f.gaz, 15);
  const auto report = validate_against_reference(f.pipeline, f.dataset, reference,
                                                 {10.0, 40.0, 80.0});
  ASSERT_EQ(report.sweeps.size(), 3u);
  EXPECT_GE(report.sweeps[0].avg_pops_per_as, report.sweeps[1].avg_pops_per_as);
  EXPECT_GE(report.sweeps[1].avg_pops_per_as, report.sweeps[2].avg_pops_per_as);
}

TEST(Report, LargerBandwidthMoreReliable) {
  // Figure 2(b): larger bandwidth -> higher precision / more perfect
  // matches.
  const auto& f = shared_fixture();
  const auto reference = build_reference_dataset(f.eco, f.gaz, 15);
  const auto report = validate_against_reference(f.pipeline, f.dataset, reference,
                                                 {10.0, 80.0});
  ASSERT_EQ(report.sweeps.size(), 2u);
  const auto avg = [](const std::vector<double>& v) {
    double total = 0.0;
    for (const double x : v) total += x;
    return v.empty() ? 0.0 : total / static_cast<double>(v.size());
  };
  // Average precision trends up with bandwidth (small tolerance: suburb
  // peaks at fine bandwidth still fall inside the 40 km match radius, so
  // the average moves less than the perfect-match fraction).
  EXPECT_GE(avg(report.sweeps[1].candidate_precision),
            avg(report.sweeps[0].candidate_precision) - 0.03);
  // The paper's headline Fig. 2(b) claim: perfect matches grow sharply
  // with bandwidth (60% at 80 km vs 5% at 10 km).
  EXPECT_GT(report.sweeps[1].perfect_precision_fraction,
            report.sweeps[0].perfect_precision_fraction);
}

TEST(Report, DimesComparisonShape) {
  // §5: KDE finds several times more PoPs than traceroute-based DIMES and
  // is a superset for most ASes.
  const auto& f = shared_fixture();
  const auto dimes = simulate_dimes(f.eco, f.gaz);
  const auto comparison = compare_with_dimes(f.pipeline, f.dataset, dimes, 40.0);
  ASSERT_GT(comparison.common_as_count, 0u);
  EXPECT_GT(comparison.kde_avg_pops, comparison.dimes_avg_pops);
  EXPECT_GT(comparison.superset_fraction, 0.5);
}

}  // namespace
}  // namespace eyeball::validate
