// EYEBALL_DCHECK behavior: compiled out in optimized builds (the condition
// is never evaluated), aborts with a diagnostic in Debug/sanitized builds.
// The death tests run under the check.sh sanitizer gates, where DCHECKs are
// forced on; in the fast tier-1 build they skip.
#include <gtest/gtest.h>

#include "geo/point.hpp"
#include "kde/grid.hpp"
#include "kde/peaks.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace eyeball {
namespace {

TEST(Dcheck, PassingConditionIsQuiet) {
  EYEBALL_DCHECK(2 + 2 == 4, "arithmetic still works");
  SUCCEED();
}

TEST(Dcheck, ConditionNotEvaluatedWhenCompiledOut) {
  if (util::dchecks_enabled()) {
    GTEST_SKIP() << "dchecks are active in this build";
  }
  int evaluations = 0;
  // "unused" when the macro compiles out — which is exactly the point.
  [[maybe_unused]] const auto count_and_fail = [&evaluations] {
    ++evaluations;
    return false;
  };
  EYEBALL_DCHECK(count_and_fail(), "must not run in optimized builds");
  EXPECT_EQ(evaluations, 0);
}

TEST(DcheckDeathTest, FailingConditionAbortsWithDiagnostic) {
  if (!util::dchecks_enabled()) {
    GTEST_SKIP() << "dchecks compiled out of this build";
  }
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(EYEBALL_DCHECK(1 == 2, "forced failure"),
               "EYEBALL_DCHECK failed.*forced failure");
}

TEST(DcheckDeathTest, PeakAlphaContractEnforced) {
  if (!util::dchecks_enabled()) {
    GTEST_SKIP() << "dchecks compiled out of this build";
  }
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const geo::BoundingBox box{40.0, 42.0, 10.0, 13.0};
  kde::DensityGrid grid{box, 10.0};
  kde::PeakConfig config;
  config.alpha = 0.0;
  EXPECT_DEATH((void)kde::find_peaks(grid, config), "alpha must lie in \\(0, 1\\]");
}

TEST(DcheckDeathTest, GridBoundsContractEnforced) {
  if (!util::dchecks_enabled()) {
    GTEST_SKIP() << "dchecks compiled out of this build";
  }
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const geo::BoundingBox box{40.0, 42.0, 10.0, 13.0};
  const kde::DensityGrid grid{box, 10.0};
  EXPECT_DEATH((void)grid.value(grid.rows(), 0), "grid read out of bounds");
}

}  // namespace
}  // namespace eyeball
