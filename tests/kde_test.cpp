#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "geo/point.hpp"
#include "kde/contour.hpp"
#include "kde/estimator.hpp"
#include "kde/grid.hpp"
#include "kde/peaks.hpp"
#include "util/rng.hpp"

namespace eyeball::kde {
namespace {

constexpr geo::GeoPoint kRome{41.9028, 12.4964};
constexpr geo::GeoPoint kMilan{45.4642, 9.1900};

/// Gaussian cloud of points around a center.
std::vector<geo::GeoPoint> cloud(const geo::GeoPoint& center, double sigma_km,
                                 std::size_t count, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<geo::GeoPoint> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double r = sigma_km * std::sqrt(-2.0 * std::log1p(-rng.uniform()));
    out.push_back(geo::destination(center, rng.uniform(0.0, 360.0), r));
  }
  return out;
}

TEST(DensityGrid, GeometryBasics) {
  const geo::BoundingBox box{40.0, 42.0, 10.0, 13.0};
  const DensityGrid grid{box, 10.0};
  EXPECT_GT(grid.rows(), 10u);
  EXPECT_GT(grid.cols(), 10u);
  EXPECT_EQ(grid.cell_count(), grid.rows() * grid.cols());
  EXPECT_NEAR(grid.cell_height_km(), 10.0, 0.1);
  // Cell width at the central latitude matches the requested size.
  EXPECT_NEAR(grid.cell_width_km(grid.rows() / 2), 10.0, 0.3);
}

TEST(DensityGrid, CellOfRoundTrip) {
  const geo::BoundingBox box{40.0, 42.0, 10.0, 13.0};
  const DensityGrid grid{box, 5.0};
  for (std::size_t r = 0; r < grid.rows(); r += 7) {
    for (std::size_t c = 0; c < grid.cols(); c += 7) {
      const auto cell = grid.cell_of(grid.center_of(r, c));
      ASSERT_TRUE(cell);
      EXPECT_EQ(cell->first, r);
      EXPECT_EQ(cell->second, c);
    }
  }
}

TEST(DensityGrid, CellOfOutsideBox) {
  const geo::BoundingBox box{40.0, 42.0, 10.0, 13.0};
  const DensityGrid grid{box, 5.0};
  EXPECT_FALSE(grid.cell_of({39.0, 11.0}));
  EXPECT_FALSE(grid.cell_of({41.0, 14.0}));
}

TEST(DensityGrid, CoarsensWhenOverBudget) {
  const geo::BoundingBox box{30.0, 60.0, -10.0, 40.0};
  const DensityGrid grid{box, 1.0, 10000};
  EXPECT_LE(grid.cell_count(), 10000u);
  EXPECT_GT(grid.cell_km(), 1.0);
}

TEST(DensityGrid, RejectsBadCellSize) {
  const geo::BoundingBox box{40.0, 42.0, 10.0, 13.0};
  EXPECT_THROW(DensityGrid(box, 0.0), std::invalid_argument);
  EXPECT_THROW(DensityGrid(box, -5.0), std::invalid_argument);
}

TEST(DensityGrid, ExtremeResolutionCoarsensWithoutOverflow) {
  // Regression: the budget loop used to cast want_rows/want_cols to size_t
  // *before* comparing against max_cells, so a cell size this small pushed
  // an out-of-range double through a float->int cast (undefined behaviour,
  // trapped by -fsanitize=undefined).  The comparison now happens in double.
  const geo::BoundingBox box{30.0, 60.0, -10.0, 40.0};
  const DensityGrid grid{box, 1e-30, 10000};
  EXPECT_LE(grid.cell_count(), 10000u);
  EXPECT_GT(grid.cell_km(), 1e-30);
  EXPECT_GE(grid.rows(), 1u);
  EXPECT_GE(grid.cols(), 1u);
}

TEST(DensityGrid, MaxCellFindsMaximum) {
  const geo::BoundingBox box{40.0, 41.0, 10.0, 11.0};
  DensityGrid grid{box, 10.0};
  EXPECT_FALSE(grid.max_cell());
  grid.at(1, 2) = 5.0;
  grid.at(2, 1) = 9.0;
  const auto max = grid.max_cell();
  ASSERT_TRUE(max);
  EXPECT_EQ(max->row, 2u);
  EXPECT_EQ(max->col, 1u);
  EXPECT_DOUBLE_EQ(max->value, 9.0);
}

TEST(Estimator, ConfigValidation) {
  KdeConfig bad;
  bad.bandwidth_km = 0.0;
  EXPECT_THROW(KernelDensityEstimator{bad}, std::invalid_argument);
  bad = {};
  bad.cell_km = -1.0;
  EXPECT_THROW(KernelDensityEstimator{bad}, std::invalid_argument);
  bad = {};
  bad.truncate_sigmas = 0.5;
  EXPECT_THROW(KernelDensityEstimator{bad}, std::invalid_argument);
}

TEST(Estimator, CellSizeClampedToResolveKernel) {
  KdeConfig config;
  config.bandwidth_km = 10.0;
  config.cell_km = 40.0;
  const KernelDensityEstimator estimator{config};
  EXPECT_LE(estimator.config().cell_km, 5.0);
}

TEST(Estimator, RejectsEmptyInput) {
  const KernelDensityEstimator estimator{KdeConfig{}};
  const std::vector<geo::GeoPoint> none;
  EXPECT_THROW((void)estimator.padded_box(none), std::invalid_argument);
  const geo::BoundingBox box{40.0, 42.0, 10.0, 13.0};
  EXPECT_THROW(estimator.estimate(none, box), std::invalid_argument);
}

TEST(Estimator, DensityIntegratesToOne) {
  KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 5.0;
  const KernelDensityEstimator estimator{config};
  const auto points = cloud(kRome, 30.0, 2000, 1);
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  EXPECT_NEAR(grid.integral(), 1.0, 0.02);
}

TEST(Estimator, SinglePointPeakHeight) {
  // One point: peak density must be the kernel's peak 1 / (2 pi sigma^2).
  KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 4.0;
  const KernelDensityEstimator estimator{config};
  const std::vector<geo::GeoPoint> points{kRome};
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto max = grid.max_cell();
  ASSERT_TRUE(max);
  const double expected = 1.0 / (2.0 * std::numbers::pi * 40.0 * 40.0);
  EXPECT_NEAR(max->value, expected, expected * 0.05);
}

TEST(Estimator, PeakNearPointMass) {
  KdeConfig config;
  config.bandwidth_km = 20.0;
  const KernelDensityEstimator estimator{config};
  const auto points = cloud(kMilan, 5.0, 500, 2);
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto max = grid.max_cell();
  ASSERT_TRUE(max);
  EXPECT_LT(geo::distance_km(grid.center_of(max->row, max->col), kMilan), 15.0);
}

TEST(Estimator, BinnedMatchesExact) {
  // Property: the binned separable estimate converges to the exact sum of
  // Gaussians.  Compare on a modest cloud.
  KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 5.0;
  const KernelDensityEstimator estimator{config};
  const auto points = cloud(kRome, 50.0, 400, 3);
  const auto box = estimator.padded_box(points);
  const auto fast = estimator.estimate(points, box);
  const auto exact = estimator.estimate_exact(points, box);
  ASSERT_EQ(fast.cell_count(), exact.cell_count());

  double max_value = 0.0;
  for (const double v : exact.values()) max_value = std::max(max_value, v);
  double worst = 0.0;
  for (std::size_t i = 0; i < fast.values().size(); ++i) {
    worst = std::max(worst, std::abs(fast.values()[i] - exact.values()[i]));
  }
  // Binning shifts each point by at most half a cell (2.5 km << 40 km).
  EXPECT_LT(worst, 0.08 * max_value);
}

TEST(Estimator, TwoClustersTwoModes) {
  KdeConfig config;
  config.bandwidth_km = 30.0;
  const KernelDensityEstimator estimator{config};
  auto points = cloud(kRome, 10.0, 600, 4);
  const auto milan_points = cloud(kMilan, 10.0, 400, 5);
  points.insert(points.end(), milan_points.begin(), milan_points.end());
  const auto grid = estimator.estimate(points, estimator.padded_box(points));

  PeakConfig peak_config;
  peak_config.alpha = 0.1;
  peak_config.bandwidth_km = 30.0;
  const auto peaks = find_peaks(grid, peak_config);
  ASSERT_GE(peaks.size(), 2u);
  // Top two peaks near Rome and Milan, Rome (more points) first.
  EXPECT_LT(geo::distance_km(peaks[0].location, kRome), 25.0);
  EXPECT_LT(geo::distance_km(peaks[1].location, kMilan), 25.0);
  EXPECT_GT(peaks[0].density, peaks[1].density);
}

TEST(Estimator, ScoreApproximatesClusterShare) {
  // 70/30 split between two well-separated clusters: peak scores should
  // approximate those shares (the paper's "Milan (.130)" semantics).
  KdeConfig config;
  config.bandwidth_km = 40.0;
  const KernelDensityEstimator estimator{config};
  auto points = cloud(kRome, 8.0, 1400, 6);
  const auto milan_points = cloud(kMilan, 8.0, 600, 7);
  points.insert(points.end(), milan_points.begin(), milan_points.end());
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  PeakConfig peak_config;
  peak_config.alpha = 0.05;
  peak_config.bandwidth_km = 40.0;
  const auto peaks = find_peaks(grid, peak_config);
  ASSERT_GE(peaks.size(), 2u);
  EXPECT_NEAR(peaks[0].score, 0.7, 0.12);
  EXPECT_NEAR(peaks[1].score, 0.3, 0.12);
}

// ---- Bandwidth sweep properties (parameterized) ----

class BandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthSweep, IntegralStaysNormalized) {
  KdeConfig config;
  config.bandwidth_km = GetParam();
  const KernelDensityEstimator estimator{config};
  const auto points = cloud(kRome, 60.0, 1500, 8);
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  EXPECT_NEAR(grid.integral(), 1.0, 0.03);
}

TEST_P(BandwidthSweep, LargerBandwidthLowersPeak) {
  KdeConfig config;
  config.bandwidth_km = GetParam();
  const KernelDensityEstimator narrow{config};
  config.bandwidth_km = GetParam() * 2.0;
  const KernelDensityEstimator wide{config};
  const auto points = cloud(kRome, 5.0, 800, 9);
  const auto grid_narrow = narrow.estimate(points, narrow.padded_box(points));
  const auto grid_wide = wide.estimate(points, wide.padded_box(points));
  ASSERT_TRUE(grid_narrow.max_cell());
  ASSERT_TRUE(grid_wide.max_cell());
  EXPECT_GT(grid_narrow.max_cell()->value, grid_wide.max_cell()->value);
}

INSTANTIATE_TEST_SUITE_P(Bandwidths, BandwidthSweep,
                         ::testing::Values(10.0, 20.0, 40.0, 60.0, 80.0));

// ---- Peak resolution vs separation (parameterized) ----

struct SeparationCase {
  double separation_km;
  double bandwidth_km;
  bool expect_two_peaks;
};

class PeakSeparation : public ::testing::TestWithParam<SeparationCase> {};

TEST_P(PeakSeparation, ResolvesOrMergesClusters) {
  const auto param = GetParam();
  KdeConfig config;
  config.bandwidth_km = param.bandwidth_km;
  config.cell_km = std::min(5.0, param.bandwidth_km / 5.0);
  const KernelDensityEstimator estimator{config};
  const geo::GeoPoint other = geo::destination(kRome, 90.0, param.separation_km);
  auto points = cloud(kRome, 3.0, 800, 10);
  const auto second = cloud(other, 3.0, 800, 11);
  points.insert(points.end(), second.begin(), second.end());
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  PeakConfig peak_config;
  peak_config.alpha = 0.2;
  peak_config.bandwidth_km = param.bandwidth_km;
  const auto peaks = find_peaks(grid, peak_config);
  if (param.expect_two_peaks) {
    EXPECT_GE(peaks.size(), 2u);
  } else {
    EXPECT_EQ(peaks.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Separations, PeakSeparation,
    ::testing::Values(SeparationCase{200.0, 40.0, true},   // far apart: resolved
                      SeparationCase{120.0, 40.0, true},   // 3 sigma: resolved
                      SeparationCase{30.0, 40.0, false},   // < sigma: merged
                      SeparationCase{60.0, 20.0, true},    // finer kernel resolves
                      SeparationCase{60.0, 80.0, false})); // coarse kernel merges

TEST(Peaks, EmptyGridNoPeaks) {
  const geo::BoundingBox box{40.0, 41.0, 10.0, 11.0};
  const DensityGrid grid{box, 10.0};
  EXPECT_TRUE(find_peaks(grid).empty());
}

TEST(Peaks, AlphaFiltersMinorPeaks) {
  KdeConfig config;
  config.bandwidth_km = 20.0;
  const KernelDensityEstimator estimator{config};
  auto points = cloud(kRome, 5.0, 2000, 12);
  const auto minor = cloud(kMilan, 5.0, 10, 13);  // 0.5% of users
  points.insert(points.end(), minor.begin(), minor.end());
  const auto grid = estimator.estimate(points, estimator.padded_box(points));

  PeakConfig strict;
  strict.alpha = 0.05;
  strict.bandwidth_km = 20.0;
  PeakConfig loose;
  loose.alpha = 0.001;
  loose.bandwidth_km = 20.0;
  EXPECT_LT(find_peaks(grid, strict).size(), find_peaks(grid, loose).size());
}

TEST(Peaks, SortedByDensityDescending) {
  KdeConfig config;
  config.bandwidth_km = 30.0;
  const KernelDensityEstimator estimator{config};
  auto points = cloud(kRome, 10.0, 900, 14);
  const auto b = cloud(kMilan, 10.0, 500, 15);
  const auto c = cloud(geo::destination(kRome, 135.0, 400.0), 10.0, 200, 16);
  points.insert(points.end(), b.begin(), b.end());
  points.insert(points.end(), c.begin(), c.end());
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto peaks = find_peaks(grid, {0.01, 30.0, true});
  ASSERT_GE(peaks.size(), 2u);
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    EXPECT_GE(peaks[i - 1].density, peaks[i].density);
  }
}

TEST(Peaks, EqualDensityPeaksSortInTotalOrder) {
  // Exact density ties happen on real grids (flat plateaus, symmetric
  // inputs); the sort must impose a TOTAL order — density descending, then
  // (row, col) ascending — or equal-density peaks land in whatever relative
  // order the standard library's unstable sort leaves them, and the
  // byte-identical determinism contract dies across stdlibs.
  const geo::BoundingBox box{40.0, 42.0, 10.0, 13.0};
  DensityGrid grid{box, 10.0};
  ASSERT_GE(grid.rows(), 14u);
  ASSERT_GE(grid.cols(), 14u);
  // Three exactly-equal maxima: a two-cell plateau (collapses to one peak
  // anchored at its first cell) plus two isolated single-cell peaks.
  grid.at(5, 5) = 1.0;
  grid.at(5, 6) = 1.0;
  grid.at(5, 12) = 1.0;
  grid.at(12, 5) = 1.0;
  const auto peaks = find_peaks(grid, {0.01, 30.0, false});
  ASSERT_EQ(peaks.size(), 3u);
  for (const auto& peak : peaks) EXPECT_EQ(peak.density, 1.0);
  EXPECT_EQ(peaks[0].row, 5u);
  EXPECT_EQ(peaks[0].col, 5u);
  EXPECT_EQ(peaks[1].row, 5u);
  EXPECT_EQ(peaks[1].col, 12u);
  EXPECT_EQ(peaks[2].row, 12u);
  EXPECT_EQ(peaks[2].col, 5u);
}

TEST(Peaks, SubcellRefinementImprovesLocation) {
  KdeConfig config;
  config.bandwidth_km = 40.0;
  config.cell_km = 10.0;  // coarse grid to make refinement visible
  const KernelDensityEstimator estimator{config};
  const auto points = cloud(kRome, 4.0, 3000, 17);
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto refined = find_peaks(grid, {0.01, 40.0, true});
  const auto raw = find_peaks(grid, {0.01, 40.0, false});
  ASSERT_FALSE(refined.empty());
  ASSERT_FALSE(raw.empty());
  EXPECT_LE(geo::distance_km(refined[0].location, kRome),
            geo::distance_km(raw[0].location, kRome) + 1.0);
}

TEST(Contour, FootprintCoversCluster) {
  KdeConfig config;
  config.bandwidth_km = 30.0;
  const KernelDensityEstimator estimator{config};
  const auto points = cloud(kRome, 20.0, 1000, 18);
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto footprint = extract_footprint_relative(grid, 0.01);
  ASSERT_FALSE(footprint.partitions.empty());
  EXPECT_GT(footprint.total_area_km2(), 1000.0);
  // Nearly all users inside the 1%-of-max contour.
  EXPECT_GT(footprint.total_mass(), 0.9);
  EXPECT_FALSE(footprint.boundary.empty());
}

TEST(Contour, SeparatedClustersSeparatePartitions) {
  KdeConfig config;
  config.bandwidth_km = 25.0;
  const KernelDensityEstimator estimator{config};
  auto points = cloud(kRome, 8.0, 500, 19);
  const auto far = cloud(geo::destination(kRome, 0.0, 600.0), 8.0, 500, 20);
  points.insert(points.end(), far.begin(), far.end());
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto footprint = extract_footprint_relative(grid, 0.05);
  EXPECT_EQ(footprint.partitions.size(), 2u);
  // Partitions sorted by mass; both hold about half the users.
  EXPECT_NEAR(footprint.partitions[0].mass, 0.5, 0.1);
}

TEST(Contour, HigherLevelShrinksArea) {
  KdeConfig config;
  config.bandwidth_km = 30.0;
  const KernelDensityEstimator estimator{config};
  const auto points = cloud(kRome, 15.0, 800, 21);
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto low = extract_footprint_relative(grid, 0.01);
  const auto high = extract_footprint_relative(grid, 0.5);
  EXPECT_GT(low.total_area_km2(), high.total_area_km2());
  EXPECT_GT(low.total_mass(), high.total_mass());
}

TEST(Contour, RejectsBadLevels) {
  const geo::BoundingBox box{40.0, 41.0, 10.0, 11.0};
  DensityGrid grid{box, 10.0};
  EXPECT_THROW(extract_footprint(grid, 0.0), std::invalid_argument);
  EXPECT_THROW(extract_footprint_relative(grid, 0.0), std::invalid_argument);
  EXPECT_THROW(extract_footprint_relative(grid, 1.0), std::invalid_argument);
}

TEST(Contour, EmptyGridEmptyFootprint) {
  const geo::BoundingBox box{40.0, 41.0, 10.0, 11.0};
  const DensityGrid grid{box, 10.0};
  const auto footprint = extract_footprint_relative(grid, 0.01);
  EXPECT_TRUE(footprint.partitions.empty());
}

// Regression: when the grid coarsens itself (max_cells budget) the per-row
// sigma can drop below half a quantization step; the kernel-cache key then
// rounded to 0 and make_kernel(0, ...) produced all-NaN taps (0/0 in the
// exponent), silently corrupting the whole surface.  The key is clamped to
// >= 1 now, so the estimate stays finite.
TEST(Estimator, TinySigmaToCellRatioStaysFinite) {
  KdeConfig config;
  config.bandwidth_km = 1.0;  // pathological: kernel far below cell size
  config.cell_km = 0.5;
  config.max_cells = 100;  // forces ~hundreds-of-km cells over this box
  const KernelDensityEstimator estimator{config};
  const geo::BoundingBox box{35.0, 60.0, -10.0, 30.0};
  std::vector<geo::GeoPoint> points;
  for (const auto& p : cloud(kRome, 400.0, 200, 31)) points.push_back(p);
  for (const auto& p : cloud(kMilan, 400.0, 200, 32)) points.push_back(p);

  const auto grid = estimator.estimate(points, box);
  double sum = 0.0;
  for (const double v : grid.values()) {
    ASSERT_TRUE(std::isfinite(v));
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_GT(sum, 0.0);
  EXPECT_TRUE(std::isfinite(grid.integral()));
}

TEST(Contour, BoundarySegmentsSitNearLevel) {
  KdeConfig config;
  config.bandwidth_km = 30.0;
  const KernelDensityEstimator estimator{config};
  const auto points = cloud(kRome, 10.0, 600, 22);
  const auto grid = estimator.estimate(points, estimator.padded_box(points));
  const auto footprint = extract_footprint_relative(grid, 0.1);
  ASSERT_FALSE(footprint.boundary.empty());
  // Segment endpoints must lie inside the grid box.
  for (const auto& segment : footprint.boundary) {
    EXPECT_TRUE(grid.box().contains(segment.a));
    EXPECT_TRUE(grid.box().contains(segment.b));
  }
}

}  // namespace
}  // namespace eyeball::kde
