// End-to-end integration tests: the complete paper pipeline from synthetic
// world to PoP-level footprints, validation and the case study, run on one
// shared small ecosystem.
#include <gtest/gtest.h>

#include <algorithm>

#include "connectivity/as_graph.hpp"
#include "connectivity/case_study.hpp"
#include "connectivity/rai_scenario.hpp"
#include "connectivity/traceroute.hpp"
#include "core/multi_bandwidth.hpp"
#include "pipeline_fixture.hpp"
#include "validate/dimes.hpp"
#include "validate/reference.hpp"
#include "validate/report.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;

TEST(Integration, DatasetHasMeaningfulScale) {
  const auto& f = shared_fixture();
  EXPECT_GT(f.crawl.samples.size(), 50000u);
  EXPECT_GT(f.dataset.stats().final_ases, 10u);
  EXPECT_GT(f.dataset.stats().final_peers, 30000u);
}

TEST(Integration, FullAnalysisOnEveryTargetAs) {
  const auto& f = shared_fixture();
  for (const auto& as : f.dataset.ases()) {
    const auto analysis = f.pipeline.analyze(as);
    EXPECT_FALSE(analysis.footprint.peaks.empty()) << net::to_string(as.asn);
    EXPECT_FALSE(analysis.pops.pops.empty()) << net::to_string(as.asn);
    EXPECT_GT(analysis.pops.pops[0].score, 0.0);
  }
}

TEST(Integration, InferredPopCountTracksTruePopCount) {
  const auto& f = shared_fixture();
  // Across the dataset, ASes with more true service PoPs should on average
  // yield more inferred PoPs.
  double small_true = 0.0;
  double small_inferred = 0.0;
  std::size_t small_n = 0;
  double large_true = 0.0;
  double large_inferred = 0.0;
  std::size_t large_n = 0;
  for (const auto& as : f.dataset.ases()) {
    const auto true_pops = f.eco.at(as.asn).service_pop_count();
    const auto inferred = f.pipeline.pop_footprint(as, 40.0).pops.size();
    if (true_pops <= 2) {
      small_true += static_cast<double>(true_pops);
      small_inferred += static_cast<double>(inferred);
      ++small_n;
    } else {
      large_true += static_cast<double>(true_pops);
      large_inferred += static_cast<double>(inferred);
      ++large_n;
    }
  }
  if (small_n > 0 && large_n > 0) {
    EXPECT_GT(large_inferred / static_cast<double>(large_n),
              small_inferred / static_cast<double>(small_n));
  }
}

TEST(Integration, Figure1StyleBandwidthSweepOnItalianStyleAs) {
  // An AS with several well-separated PoPs shows the paper's Figure 1
  // behaviour: resolution decreases (peak count drops) as bandwidth grows
  // 20 -> 40 -> 60 km.
  const auto& f = shared_fixture();
  const core::AsPeerSet* target = nullptr;
  for (const auto& as : f.dataset.ases()) {
    if (f.eco.at(as.asn).service_pop_count() >= 5 && as.peers.size() > 3000) {
      target = &as;
      break;
    }
  }
  if (target == nullptr) GTEST_SKIP() << "no large multi-PoP AS in small fixture";
  const auto at20 = f.pipeline.analyze(*target, 20.0);
  const auto at40 = f.pipeline.analyze(*target, 40.0);
  const auto at60 = f.pipeline.analyze(*target, 60.0);
  EXPECT_GE(at20.footprint.peaks.size(), at40.footprint.peaks.size());
  EXPECT_GE(at40.footprint.peaks.size(), at60.footprint.peaks.size());
}

TEST(Integration, ValidationAndDimesReproducePaperShape) {
  const auto& f = shared_fixture();
  const auto reference = validate::build_reference_dataset(f.eco, f.gaz, 20);
  const auto report = validate::validate_against_reference(f.pipeline, f.dataset,
                                                           reference, {10.0, 40.0, 80.0});
  ASSERT_EQ(report.sweeps.size(), 3u);
  // Shape claims from §5: pop counts decrease with bandwidth, precision
  // increases with bandwidth.
  EXPECT_GT(report.sweeps[0].avg_pops_per_as, report.sweeps[2].avg_pops_per_as);
  EXPECT_LE(report.sweeps[0].perfect_precision_fraction,
            report.sweeps[2].perfect_precision_fraction + 1e-9);

  const auto dimes = validate::simulate_dimes(f.eco, f.gaz);
  const auto comparison = validate::compare_with_dimes(f.pipeline, f.dataset, dimes);
  EXPECT_GT(comparison.kde_avg_pops, 1.5 * comparison.dimes_avg_pops);
}

TEST(Integration, RaiCaseStudyEndToEnd) {
  // Build the §6 scenario, crawl it, run the full pipeline on RAI's peers,
  // and confirm both the geography (Rome-only city-level AS) and the
  // surprising connectivity.
  const auto gaz = gazetteer::Gazetteer::builtin();
  const auto scenario = connectivity::build_rai_scenario(gaz);
  const topology::GroundTruthLocator truth{scenario.ecosystem, gaz};
  const geodb::SyntheticGeoDatabase primary{"a", truth, geodb::ErrorModel{}, 1};
  const geodb::SyntheticGeoDatabase secondary{"b", truth, geodb::ErrorModel{}, 2};
  const auto rib = bgp::RibSnapshot::from_ecosystem(scenario.ecosystem, 1);
  const bgp::IpToAsMapper mapper{rib};
  const core::EyeballPipeline pipeline{gaz, primary, secondary, mapper};

  p2p::CrawlerConfig crawl_config;
  crawl_config.seed = 99;
  crawl_config.coverage = 1.0;
  // Boost penetration so RAI's 3000 users yield >= 1000 peers.
  crawl_config.penetration.set_rates(gazetteer::Continent::kEurope, {0.5, 0.2, 0.2});
  const auto crawl = p2p::Crawler{scenario.ecosystem, gaz, crawl_config}.crawl();
  const auto dataset = pipeline.build_dataset(crawl.samples);

  const auto* rai_peers = dataset.find(scenario.rai);
  ASSERT_NE(rai_peers, nullptr) << "RAI did not survive conditioning";
  const auto analysis = pipeline.analyze(*rai_peers);
  EXPECT_EQ(analysis.classification.level, topology::AsLevel::kCity);
  EXPECT_EQ(analysis.classification.dominant_region, "Rome");
  ASSERT_FALSE(analysis.pops.pops.empty());
  EXPECT_EQ(gaz.city(analysis.pops.pops[0].city).name, "Rome");

  // Geography says "simple AS"; the relationship data says otherwise.
  const auto report = connectivity::analyze_connectivity(scenario.ecosystem, gaz,
                                                         scenario.rai);
  EXPECT_EQ(report.upstreams.size(), 5u);
  EXPECT_EQ(report.surprises.size(), 4u);

  // Traceroute validation: an external probe reaches RAI through one of its
  // providers; RAI reaches its MIX peers directly.
  const connectivity::AsGraph graph{scenario.ecosystem};
  const connectivity::TracerouteSimulator sim{graph, rib};
  const auto& rai_as = scenario.ecosystem.at(scenario.rai);
  const auto trace = sim.trace(scenario.vantage, rai_as.pops[0].prefixes[0].first());
  ASSERT_TRUE(trace);
  EXPECT_EQ(trace->origin, scenario.rai);
  const auto peer_route = sim.trace_as(scenario.rai, scenario.itgate);
  ASSERT_TRUE(peer_route);
  EXPECT_EQ(peer_route->route_class, connectivity::RouteClass::kPeer);
}

TEST(Integration, InfostradaFootprintSpansItaly) {
  // The paper's "natural provider" example: Infostrada is Italy-wide with
  // PoPs across the country, including Rome.
  const auto gaz = gazetteer::Gazetteer::builtin();
  const auto scenario = connectivity::build_rai_scenario(gaz);
  const topology::GroundTruthLocator truth{scenario.ecosystem, gaz};
  const geodb::SyntheticGeoDatabase primary{"a", truth, geodb::ErrorModel{}, 1};
  const geodb::SyntheticGeoDatabase secondary{"b", truth, geodb::ErrorModel{}, 2};
  const auto rib = bgp::RibSnapshot::from_ecosystem(scenario.ecosystem, 1);
  const bgp::IpToAsMapper mapper{rib};
  const core::EyeballPipeline pipeline{gaz, primary, secondary, mapper};

  p2p::CrawlerConfig crawl_config;
  crawl_config.coverage = 0.05;
  const auto crawl = p2p::Crawler{scenario.ecosystem, gaz, crawl_config}.crawl();
  const auto dataset = pipeline.build_dataset(crawl.samples);
  const auto* peers = dataset.find(scenario.infostrada);
  ASSERT_NE(peers, nullptr);
  const auto analysis = pipeline.analyze(*peers);
  EXPECT_EQ(analysis.classification.level, topology::AsLevel::kCountry);
  EXPECT_EQ(analysis.classification.dominant_region, "IT");
  // PoPs across Italy including Rome and Milan.
  EXPECT_GE(analysis.pops.pops.size(), 4u);
  const auto rome = *gaz.find_by_name("Rome", "IT");
  const auto milan = *gaz.find_by_name("Milan", "IT");
  EXPECT_TRUE(analysis.pops.has_city(rome));
  EXPECT_TRUE(analysis.pops.has_city(milan));
}

TEST(Integration, DeterministicEndToEnd) {
  // Two identical fixtures must produce byte-identical PoP footprints.
  const eyeball::testing::PipelineFixture a{0.02, 0.25, 123};
  const eyeball::testing::PipelineFixture b{0.02, 0.25, 123};
  ASSERT_EQ(a.dataset.ases().size(), b.dataset.ases().size());
  for (std::size_t i = 0; i < a.dataset.ases().size(); ++i) {
    const auto pa = a.pipeline.pop_footprint(a.dataset.ases()[i], 40.0);
    const auto pb = b.pipeline.pop_footprint(b.dataset.ases()[i], 40.0);
    ASSERT_EQ(pa.pops.size(), pb.pops.size());
    for (std::size_t j = 0; j < pa.pops.size(); ++j) {
      EXPECT_EQ(pa.pops[j].city, pb.pops[j].city);
      EXPECT_DOUBLE_EQ(pa.pops[j].score, pb.pops[j].score);
    }
  }
}

TEST(Integration, BiasAblationLosesPops) {
  // §4.3: significant sampling bias (blackouts) hides PoPs from inference.
  const auto& clean = shared_fixture();

  p2p::CrawlerConfig biased_config;
  biased_config.seed = 77;
  biased_config.coverage = 0.25;
  biased_config.bias.blackout_prob = 0.5;
  const auto biased_crawl =
      p2p::Crawler{clean.eco, clean.gaz, biased_config}.crawl();
  const auto biased_dataset = clean.pipeline.build_dataset(biased_crawl.samples);

  std::size_t clean_pops = 0;
  std::size_t biased_pops = 0;
  std::size_t compared = 0;
  for (const auto& as : clean.dataset.ases()) {
    const auto* biased_as = biased_dataset.find(as.asn);
    if (biased_as == nullptr) continue;
    clean_pops += clean.pipeline.pop_footprint(as, 40.0).pops.size();
    biased_pops += clean.pipeline.pop_footprint(*biased_as, 40.0).pops.size();
    ++compared;
  }
  ASSERT_GT(compared, 3u);
  EXPECT_LT(biased_pops, clean_pops);
}

}  // namespace
}  // namespace eyeball
