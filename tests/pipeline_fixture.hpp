// Shared end-to-end fixture: a small but complete world (gazetteer ->
// ecosystem -> ground truth -> dual geo databases -> RIB -> crawl ->
// pipeline), built once per test binary.
#pragma once

#include "bgp/rib.hpp"
#include "core/pipeline.hpp"
#include "gazetteer/gazetteer.hpp"
#include "geodb/synthetic_db.hpp"
#include "p2p/crawler.hpp"
#include "topology/generator.hpp"
#include "topology/ground_truth.hpp"

namespace eyeball::testing {

struct PipelineFixture {
  gazetteer::Gazetteer gaz = gazetteer::Gazetteer::builtin();
  topology::AsEcosystem eco;
  topology::GroundTruthLocator truth;
  geodb::SyntheticGeoDatabase primary;
  geodb::SyntheticGeoDatabase secondary;
  bgp::RibSnapshot rib;
  bgp::IpToAsMapper mapper;
  core::EyeballPipeline pipeline;
  p2p::CrawlResult crawl;
  core::TargetDataset dataset;

  explicit PipelineFixture(double scale = 0.05, double coverage = 0.25,
                           std::uint64_t seed = 77,
                           core::PipelineConfig pipeline_config = {})
      : eco([&] {
          topology::EcosystemConfig config;
          config.seed = seed;
          return topology::generate_ecosystem(gaz, config.scaled(scale));
        }()),
        truth(eco, gaz),
        primary("geoip-city-like", truth, geodb::ErrorModel{}, 0xaaaa),
        secondary("ip2location-like", truth, geodb::ErrorModel{}, 0xbbbb),
        rib(bgp::RibSnapshot::from_ecosystem(eco, seed)),
        mapper(rib),
        pipeline(gaz, primary, secondary, mapper, pipeline_config),
        crawl([&] {
          p2p::CrawlerConfig config;
          config.seed = seed;
          config.coverage = coverage;
          return p2p::Crawler{eco, gaz, config}.crawl();
        }()),
        dataset(pipeline.build_dataset(crawl.samples)) {}
};

/// The fixture is expensive; share one instance per binary.
inline const PipelineFixture& shared_fixture() {
  static const PipelineFixture instance;
  return instance;
}

}  // namespace eyeball::testing
