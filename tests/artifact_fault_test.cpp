// Fault battery for the serving artifact (core/artifact.hpp), the
// this-PR acceptance bar stated as a number: ZERO silent corruptions.
//
// Three sweeps:
//   1. Write-path: ArtifactCodec::write under every FaultInjectingFileSystem
//      fault class at every offset class — a damaged image must be refused
//      typed at open (or the write itself must fail and leave the previous
//      artifact serving); never a successful open of wrong bytes.
//   2. Image mutation: EVERY single-bit flip over the header + section
//      table + tail region, strided flips across every payload section, and
//      EVERY truncation length — each mutated image must fail open with
//      kCorruption.  The format makes this provable: every byte of the file
//      is covered by the meta CRC, a section CRC, a zero-padding rule, or
//      the tail-magic compare.
//   3. Hostile structure: offset-table and AS-index records rewritten with
//      RECOMPUTED CRCs (out-of-bounds, overlapping, misaligned, unsorted,
//      out-of-range enums, inconsistent grid geometry) — past the checksums
//      on purpose, so the structural walk itself is what refuses them.
//
// Runs under ASan+UBSan in tools/check.sh's artifact-faults stage: a wild
// read on any of these paths is a sanitizer abort, not a flake.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "core/artifact.hpp"
#include "core/snapshot.hpp"
#include "core/streaming_dataset.hpp"
#include "p2p/churn.hpp"
#include "pipeline_fixture.hpp"
#include "util/crc32c.hpp"
#include "util/file.hpp"
#include "util/status.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;
using util::FileFault;
using util::Status;
using util::StatusCode;

constexpr std::size_t kHeaderSize = 56;
constexpr std::size_t kTableEntrySize = 40;
constexpr std::size_t kSectionCount = 11;
constexpr std::size_t kMetaSize = kHeaderSize + kSectionCount * kTableEntrySize;

/// A deliberately SMALL epoch: the exhaustive sweeps below scale with the
/// image size (every truncation length, every meta-region bit), so the
/// fixture takes one truncated window and a lowered AS threshold.
struct FaultWorld {
  const testing::PipelineFixture& f = shared_fixture();
  core::PipelineConfig config = [] {
    core::PipelineConfig pipeline_config = shared_fixture().pipeline.config();
    pipeline_config.dataset.min_peers_per_as = 20;
    pipeline_config.threads = 1;
    return pipeline_config;
  }();
  core::EyeballPipeline pipeline{f.gaz, f.primary, f.secondary, f.mapper, config};
  p2p::LongitudinalResult churn = [this] {
    p2p::CrawlerConfig crawl_config;
    crawl_config.seed = 77;
    crawl_config.coverage = 0.05;
    p2p::ChurnConfig churn_config;
    churn_config.seed = 2009;
    churn_config.windows = 2;
    churn_config.lease_survival = 0.6;
    return p2p::longitudinal_crawl(f.eco, f.gaz, crawl_config, churn_config);
  }();
  std::span<const p2p::PeerSample> window_a =
      std::span<const p2p::PeerSample>{churn.windows[0]}.first(
          std::min<std::size_t>(churn.windows[0].size(), 400));
  std::span<const p2p::PeerSample> window_b =
      std::span<const p2p::PeerSample>{churn.windows[1]}.first(
          std::min<std::size_t>(churn.windows[1].size(), 400));
  std::uint64_t fingerprint = core::SnapshotCodec::config_fingerprint(config.dataset);
  core::TargetDataset dataset = [this] {
    auto builder = pipeline.streaming_builder();
    builder.ingest(window_a);
    return builder.finalize(1);
  }();
  std::vector<core::AsAnalysis> analyses = pipeline.refresh_analyses(dataset, {}, {});
  /// The intact reference image every mutation sweep starts from.
  std::vector<std::byte> image = [this] {
    std::vector<std::byte> bytes;
    const Status status =
        core::ArtifactCodec::encode(dataset, analyses, 1, fingerprint, bytes);
    EXPECT_TRUE(status.ok()) << status.message();
    return bytes;
  }();
};

const FaultWorld& fault_world() {
  static const FaultWorld instance;
  return instance;
}

// ---- byte-patch helpers (little-endian, mirror of the codec) -------------

[[nodiscard]] std::uint32_t read_u32(std::span<const std::byte> bytes,
                                     std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t read_u64(std::span<const std::byte> bytes,
                                     std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[at + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  return v;
}

void write_u32(std::span<std::byte> bytes, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xffU);
  }
}

void write_u64(std::span<std::byte> bytes, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[at + static_cast<std::size_t>(i)] =
        static_cast<std::byte>((v >> (8 * i)) & 0xffU);
  }
}

/// Recomputes the meta CRC after a deliberate header/table rewrite, so the
/// mutation reaches the structural checks instead of dying at the checksum.
void fix_meta_crc(std::span<std::byte> image) {
  std::vector<std::byte> meta(image.begin(),
                              image.begin() + static_cast<std::ptrdiff_t>(kMetaSize));
  write_u32(meta, 48, 0);
  write_u32(image, 48, util::crc32c(meta));
}

/// Recomputes section `index`'s payload CRC from the (possibly mutated)
/// payload bytes, then re-fixes the meta CRC the rewrite invalidated.
void fix_section_crc(std::span<std::byte> image, std::size_t index) {
  const std::size_t entry = kHeaderSize + index * kTableEntrySize;
  const auto offset = static_cast<std::size_t>(read_u64(image, entry + 8));
  const auto stored = static_cast<std::size_t>(read_u64(image, entry + 16));
  write_u32(image, entry + 32, util::crc32c(image.subspan(offset, stored)));
  fix_meta_crc(image);
}

/// Opens a mutated image and scores the outcome: 0 when the open failed
/// with one of `allowed`, 1 (plus a test failure) when it succeeded or
/// failed with an unexpected code — the silent-corruption tally.
[[nodiscard]] std::size_t expect_refused(std::span<const std::byte> image,
                                         std::initializer_list<StatusCode> allowed,
                                         const std::string& label) {
  core::ArtifactView view;
  const Status status = core::ArtifactView::from_borrowed(image, view);
  if (status.ok()) {
    ADD_FAILURE() << label << ": mutated image opened cleanly — silent corruption";
    return 1;
  }
  for (const StatusCode code : allowed) {
    if (status.code() == code) return 0;
  }
  ADD_FAILURE() << label << ": unexpected refusal " << status;
  return 1;
}

// ---- Sweep 2: exhaustive bit flips and truncations -----------------------

TEST(ArtifactFaults, EveryMetaRegionBitFlipIsTypedCorruption) {
  const auto& w = fault_world();
  ASSERT_GT(w.dataset.ases().size(), 0u)
      << "fixture produced no ASes — sweeps below would be vacuous";
  ASSERT_GT(w.image.size(), kMetaSize + 8);

  std::size_t silent = 0;
  std::vector<std::byte> mutated;
  // Every bit of the header + section table, plus every bit of the final
  // 16 bytes (closing padding + tail magic).  Everything in this region is
  // covered by the meta CRC, the envelope checks or the tail compare, so
  // every flip must refuse as kCorruption.
  std::vector<std::size_t> positions;
  for (std::size_t at = 0; at < kMetaSize; ++at) positions.push_back(at);
  for (std::size_t at = w.image.size() - 16; at < w.image.size(); ++at) {
    positions.push_back(at);
  }
  for (const std::size_t at : positions) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated = w.image;
      mutated[at] ^= static_cast<std::byte>(1U << bit);
      silent += expect_refused(mutated, {StatusCode::kCorruption},
                               "flip byte " + std::to_string(at) + " bit " +
                                   std::to_string(bit));
    }
  }
  EXPECT_EQ(silent, 0u);
}

TEST(ArtifactFaults, StridedPayloadBitFlipsAreTypedCorruption) {
  const auto& w = fault_world();
  std::size_t silent = 0;
  std::vector<std::byte> mutated;
  // Payload region: every section's stored bytes (and inter-section
  // padding) are CRC-covered, so a flip anywhere must refuse.  Strided to
  // keep the suite's runtime bounded; the stride is coprime-ish with the
  // record sizes so hits land on every field family over the sweep.
  const std::size_t begin = kMetaSize;
  const std::size_t end = w.image.size() - 16;
  const std::size_t stride = std::max<std::size_t>(1, (end - begin) / 1024);
  for (std::size_t at = begin; at < end; at += stride) {
    for (int bit = 0; bit < 8; ++bit) {
      mutated = w.image;
      mutated[at] ^= static_cast<std::byte>(1U << bit);
      silent += expect_refused(mutated, {StatusCode::kCorruption},
                               "payload flip byte " + std::to_string(at) + " bit " +
                                   std::to_string(bit));
    }
  }
  EXPECT_EQ(silent, 0u);
}

TEST(ArtifactFaults, EveryTruncationLengthIsTypedCorruption) {
  const auto& w = fault_world();
  std::size_t silent = 0;
  const std::span<const std::byte> image{w.image};
  // Every proper prefix, including the empty file.  from_borrowed makes
  // this O(n) opens with zero copies.
  for (std::size_t length = 0; length < image.size(); ++length) {
    silent += expect_refused(image.first(length), {StatusCode::kCorruption},
                             "truncate to " + std::to_string(length));
  }
  EXPECT_EQ(silent, 0u);
  // And the intact image still opens (the sweep above would be vacuous
  // against an image that never opened at all).
  core::ArtifactView view;
  const Status status = core::ArtifactView::from_borrowed(image, view);
  EXPECT_TRUE(status.ok()) << status.message();
}

// ---- Sweep 3: hostile structure behind valid checksums -------------------

TEST(ArtifactFaults, HostileOffsetTablesAreRefusedByTheStructuralWalk) {
  const auto& w = fault_world();
  std::size_t silent = 0;
  std::vector<std::byte> mutated;
  const std::size_t entry2 = kHeaderSize + 2 * kTableEntrySize;  // section 3

  const auto fresh = [&] { mutated = w.image; return std::span<std::byte>{mutated}; };

  {  // out-of-line offset (gap): breaks the exact-packing rule
    auto m = fresh();
    write_u64(m, entry2 + 8, read_u64(m, entry2 + 8) + 8);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "offset +8");
  }
  {  // overlapping offset: points back into the previous section
    auto m = fresh();
    write_u64(m, entry2 + 8, read_u64(m, entry2 + 8) - 8);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "offset -8");
  }
  {  // misaligned offset
    auto m = fresh();
    write_u64(m, entry2 + 8, read_u64(m, entry2 + 8) + 4);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "offset +4");
  }
  {  // last section claims bytes past the end of the image
    const std::size_t last = kHeaderSize + (kSectionCount - 1) * kTableEntrySize;
    auto m = fresh();
    write_u64(m, last + 16, w.image.size());
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "size past end");
  }
  {  // a grown stored_size shifts every later section off the packing rule
    auto m = fresh();
    write_u64(m, entry2 + 16, read_u64(m, entry2 + 16) + 8);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "stored_size +8");
  }
  {  // unknown encoding
    auto m = fresh();
    write_u32(m, entry2 + 4, 7);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "encoding 7");
  }
  {  // raw section relabeled zstd: version_mismatch without zstd in the
     // build (well-formed but unreadable), corruption with it (the bytes
     // don't decompress)
    auto m = fresh();
    write_u32(m, entry2 + 4, 1);
    fix_meta_crc(m);
    silent += expect_refused(
        mutated, {StatusCode::kVersionMismatch, StatusCode::kCorruption},
        "fake zstd");
  }
  {  // section ids out of order
    auto m = fresh();
    write_u32(m, entry2, 4);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "id disorder");
  }
  {  // future format version, CRC-valid: the one typed NON-corruption header
     // refusal
    auto m = fresh();
    write_u32(m, 8, 2);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kVersionMismatch}, "version 2");
  }
  {  // AS count inflated
    auto m = fresh();
    write_u64(m, 40, read_u64(m, 40) + 1);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "as_count +1");
  }
  {  // recorded file size wrong (caught by the envelope before the CRC)
    auto m = fresh();
    write_u64(m, 32, read_u64(m, 32) + 8);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "file_size +8");
  }
  EXPECT_EQ(silent, 0u);
}

TEST(ArtifactFaults, UnalignedImageSizesAreRefusedAtTheEnvelope) {
  // The encoder pads every section to 8 bytes, so a well-formed image's
  // size is always a multiple of 8 and the validator now refuses anything
  // else outright.  Grow the image by 1..7 zero bytes ahead of the tail
  // magic, with the recorded size and meta CRC made consistent, so the
  // alignment rule itself is the only thing left to refuse on.
  const auto& w = fault_world();
  std::size_t silent = 0;
  for (std::size_t extra = 1; extra < 8; ++extra) {
    std::vector<std::byte> mutated(w.image.begin(), w.image.end() - 8);
    mutated.insert(mutated.end(), extra, std::byte{0});
    mutated.insert(mutated.end(), w.image.end() - 8, w.image.end());
    const std::span<std::byte> m{mutated};
    write_u64(m, 32, mutated.size());
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption},
                             "grow by " + std::to_string(extra));
  }
  EXPECT_EQ(silent, 0u);
}

TEST(ArtifactFaults, UnalignedPayloadEndCannotWrapTheSectionBoundsCheck) {
  // Regression for a u64 underflow in the section-table walk: shorten a
  // raw section by 4 bytes in both the table and the image and end the
  // file right there, so payload_end lands BETWEEN the new cursor and the
  // align8'd offset the table still records for the next section.  The
  // bounds check used to compute `payload_end - offset` in that geometry,
  // wrapping to a huge value and waving an arbitrary stored_size through
  // to an out-of-bounds CRC read.  Must refuse typed (and this whole
  // suite runs under ASan, so a surviving wild read is an abort).
  const auto& w = fault_world();
  const std::size_t entry6 = kHeaderSize + 5 * kTableEntrySize;  // grid values
  const auto off6 = static_cast<std::size_t>(read_u64(w.image, entry6 + 8));
  const auto size6 = static_cast<std::size_t>(read_u64(w.image, entry6 + 16));
  ASSERT_GE(size6, 8u) << "fixture grid-values section too small to shorten";

  std::vector<std::byte> mutated(
      w.image.begin(),
      w.image.begin() + static_cast<std::ptrdiff_t>(off6 + size6 - 4));
  mutated.insert(mutated.end(), w.image.end() - 8, w.image.end());  // tail magic
  const std::span<std::byte> m{mutated};
  write_u64(m, entry6 + 16, size6 - 4);
  write_u64(m, entry6 + 24, size6 - 4);
  write_u64(m, 32, mutated.size());
  fix_section_crc(m, 5);
  EXPECT_EQ(expect_refused(mutated, {StatusCode::kCorruption},
                           "unaligned payload_end"),
            0u);
}

TEST(ArtifactFaults, HostileZstdRawSizeIsRefusedBeforeAllocation) {
  // raw_size drives the decompression buffer's allocation, so a crafted
  // table must not reach `assign`: a 2^60 claim is refused by the
  // expansion-ratio cap in the table walk, and a ratio-plausible lie is
  // refused by the frame-content-size cross-check — both typed, neither
  // allocating.  (Pre-fix, the first was an OOM/bad_alloc escaping load.)
  if (!core::ArtifactCodec::zstd_supported()) {
    GTEST_SKIP() << "built without zstd";
  }
  const auto& w = fault_world();
  std::vector<std::byte> image;
  core::ArtifactCodec::EncodeOptions options;
  options.compress_cold = true;
  const Status encoded = core::ArtifactCodec::encode(w.dataset, w.analyses, 1,
                                                     w.fingerprint, image, options);
  ASSERT_TRUE(encoded.ok()) << encoded.message();
  const std::size_t entry4 = kHeaderSize + 3 * kTableEntrySize;  // peers
  ASSERT_EQ(read_u32(image, entry4 + 4), 1u) << "peers section is not zstd";

  std::size_t silent = 0;
  {  // impossible expansion ratio: caught by the table walk
    std::vector<std::byte> mutated = image;
    const std::span<std::byte> m{mutated};
    write_u64(m, entry4 + 24, std::uint64_t{1} << 60);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "raw_size 2^60");
  }
  {  // plausible ratio but disagreeing with the zstd frame header
    std::vector<std::byte> mutated = image;
    const std::span<std::byte> m{mutated};
    write_u64(m, entry4 + 24, read_u64(image, entry4 + 24) + 8);
    fix_meta_crc(m);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "raw_size +8");
  }
  EXPECT_EQ(silent, 0u);
}

TEST(ArtifactFaults, HostileAsIndexRecordsAreRefusedByTheStructuralWalk) {
  const auto& w = fault_world();
  ASSERT_GT(w.dataset.ases().size(), 0u);
  std::size_t silent = 0;
  std::vector<std::byte> mutated;
  // Section 2 (the AS index) payload offset, from the intact table.
  const std::size_t index_entry = kHeaderSize + 1 * kTableEntrySize;
  const auto index_off = static_cast<std::size_t>(read_u64(w.image, index_entry + 8));

  const auto hostile = [&](std::size_t field_at, std::uint64_t value,
                           std::initializer_list<StatusCode> allowed,
                           const char* label) {
    mutated = w.image;
    const std::span<std::byte> m{mutated};
    write_u64(m, index_off + field_at, value);
    fix_section_crc(m, 1);
    silent += expect_refused(mutated, allowed, label);
  };

  // Entry 0 field offsets (see the format doc in artifact.hpp).
  hostile(40, 1, {StatusCode::kCorruption}, "peer_offset 1");       // breaks tiling
  const std::uint64_t peer_count = read_u64(w.image, index_off + 48);
  hostile(48, peer_count + 1, {StatusCode::kCorruption}, "peer_count +1");
  hostile(48, std::uint64_t{1} << 60, {StatusCode::kCorruption}, "peer_count huge");
  hostile(88, read_u64(w.image, index_off + 88) + 1, {StatusCode::kCorruption},
          "grid_rows +1");  // inconsistent with box + cell size
  hostile(56, 1, {StatusCode::kCorruption}, "grid_run_offset 1");
  hostile(64, std::uint64_t{1} << 60, {StatusCode::kCorruption},
          "grid_run_count huge");
  hostile(72, 1, {StatusCode::kCorruption}, "grid_value_offset 1");
  hostile(80, read_u64(w.image, index_off + 80) + 1, {StatusCode::kCorruption},
          "grid_nonzero_count +1");
  {  // level / continent enum range (u32 fields, packed in the first 16 B)
    mutated = w.image;
    std::span<std::byte> m{mutated};
    write_u32(m, index_off + 4, 9);
    fix_section_crc(m, 1);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "level 9");
    mutated = w.image;
    m = std::span<std::byte>{mutated};
    write_u32(m, index_off + 8, 9);
    fix_section_crc(m, 1);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "continent 9");
  }
  {  // non-finite bounding box (would throw in BoundingBox if it got there)
    mutated = w.image;
    const std::span<std::byte> m{mutated};
    write_u64(m, index_off + 104, 0x7ff8000000000000ULL);  // NaN min_lat
    fix_section_crc(m, 1);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "NaN min_lat");
  }
  {  // doubled cell size: rows/cols no longer match the derivation
    const std::uint64_t cell_bits = read_u64(w.image, index_off + 136);
    mutated = w.image;
    const std::span<std::byte> m{mutated};
    // Doubling a positive double = +1 on the exponent field.
    write_u64(m, index_off + 136, cell_bits + (std::uint64_t{1} << 52));
    fix_section_crc(m, 1);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "cell_km x2");
  }
  if (w.dataset.ases().size() >= 2) {
    // ASN order no longer a sorted permutation: swap the first two slots.
    const std::size_t order_entry = kHeaderSize + 2 * kTableEntrySize;
    const auto order_off = static_cast<std::size_t>(read_u64(w.image, order_entry + 8));
    mutated = w.image;
    const std::span<std::byte> m{mutated};
    const std::uint32_t a = read_u32(m, order_off);
    const std::uint32_t b = read_u32(m, order_off + 4);
    write_u32(m, order_off, b);
    write_u32(m, order_off + 4, a);
    fix_section_crc(m, 2);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "order swap");
    // Duplicate index: not a permutation.
    mutated = w.image;
    const std::span<std::byte> m2{mutated};
    write_u32(m2, order_off + 4, read_u32(w.image, order_off));
    fix_section_crc(m2, 2);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "order dup");
  }
  EXPECT_EQ(silent, 0u);
}

TEST(ArtifactFaults, HostileGridRunRecordsAreRefusedByTheStructuralWalk) {
  const auto& w = fault_world();
  ASSERT_GT(w.dataset.ases().size(), 0u);
  std::size_t silent = 0;
  std::vector<std::byte> mutated;
  // Section payload offsets from the intact table: 5 = grid runs (table
  // index 4), 6 = grid nonzero values (table index 5), 2 = AS index.
  const auto index_off = static_cast<std::size_t>(
      read_u64(w.image, kHeaderSize + 1 * kTableEntrySize + 8));
  const auto runs_off = static_cast<std::size_t>(
      read_u64(w.image, kHeaderSize + 4 * kTableEntrySize + 8));
  const auto values_off = static_cast<std::size_t>(
      read_u64(w.image, kHeaderSize + 5 * kTableEntrySize + 8));
  // Entry 0's grid geometry (a real AS has nonzero density, so >= 1 run).
  const std::uint64_t run_count = read_u64(w.image, index_off + 64);
  const std::uint64_t cells =
      read_u64(w.image, index_off + 88) * read_u64(w.image, index_off + 96);
  ASSERT_GE(run_count, 1u);

  const auto hostile_run = [&](std::size_t field_at, std::uint64_t value,
                               const char* label) {
    mutated = w.image;
    const std::span<std::byte> m{mutated};
    write_u64(m, runs_off + field_at, value);
    fix_section_crc(m, 4);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, label);
  };

  // Run 0 of AS 0 rewritten behind a recomputed CRC: only the structural
  // walk's run canonicality checks stand between these and a wild scatter
  // in materialize().
  hostile_run(8, 0, "run count 0");
  hostile_run(8, std::uint64_t{1} << 60, "run count huge");
  hostile_run(0, cells, "run start at cell count");
  hostile_run(0, ~std::uint64_t{0}, "run start huge");
  if (run_count >= 2) {
    // Second run starting at (or before) the first run's end: overlapping /
    // non-maximal runs are refused even when counts still add up.
    const std::uint64_t start0 = read_u64(w.image, runs_off);
    hostile_run(16, start0, "run overlap");
  }
  {  // A bit-zero double smuggled into the nonzero value arena.
    mutated = w.image;
    const std::span<std::byte> m{mutated};
    write_u64(m, values_off, 0);
    fix_section_crc(m, 5);
    silent += expect_refused(mutated, {StatusCode::kCorruption}, "bit-zero value");
  }
  EXPECT_EQ(silent, 0u);
}

TEST(ArtifactFaults, MisalignedImageBaseIsRefusedNotMisread) {
  const auto& w = fault_world();
  // The in-place double reads need an 8-aligned base; a borrowed buffer at
  // base+1 must refuse typed instead of handing out misaligned loads (the
  // UBSan tree would abort on those).
  std::vector<std::byte> shifted(w.image.size() + 1);
  std::copy(w.image.begin(), w.image.end(), shifted.begin() + 1);
  core::ArtifactView view;
  const Status status = core::ArtifactView::from_borrowed(
      std::span<const std::byte>{shifted}.subspan(1), view);
  // A 16-byte-aligned vector base means base+1 is always misaligned.
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status;
}

// ---- Sweep 1: write-path faults through the checked-I/O seam -------------

/// One write-under-fault scenario.  Returns the silent-corruption count.
[[nodiscard]] std::size_t run_write_scenario(const FaultWorld& w,
                                             const FileFault& fault, bool fail_rename,
                                             const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "eyeball_artifact_fault_" + name;
  std::filesystem::remove(path);
  auto& clean_fs = util::local_filesystem();
  const std::string label =
      std::string{util::to_string(fault.kind)} + " offset=" +
      std::to_string(fault.offset) + (fail_rename ? " rename" : "");

  // Epoch 1 published cleanly; epoch 2's write hits the fault.
  Status status = core::ArtifactCodec::write(clean_fs, path, w.dataset, w.analyses,
                                             1, w.fingerprint);
  EXPECT_TRUE(status.ok()) << label << ": " << status;
  util::FaultInjectingFileSystem faulty_fs{clean_fs};
  if (fail_rename) {
    faulty_fs.fail_next_rename();
  } else {
    faulty_fs.arm(fault);
  }
  const Status save = core::ArtifactCodec::write(faulty_fs, path, w.dataset,
                                                 w.analyses, 2, w.fingerprint);

  core::ArtifactView view;
  const Status open = core::ArtifactView::open(path, clean_fs, view);

  if (!save.ok()) {
    // Reported failure: the atomic-write protocol must have left epoch 1.
    if (!open.ok() || view.epoch() != 1) {
      ADD_FAILURE() << label << ": failed write damaged the published artifact ("
                    << open << ")";
      return 1;
    }
    return 0;
  }
  if (!faulty_fs.fault_fired()) {
    // Fault never triggered (offset beyond the file): a genuinely clean
    // publish of epoch 2.
    if (!open.ok() || view.epoch() != 2) {
      ADD_FAILURE() << label << ": clean write did not round-trip (" << open << ")";
      return 1;
    }
    return 0;
  }
  // Silent fault, "successful" write: the published image is damaged and
  // open must refuse it typed.  A clean open here is the silent-corruption
  // outcome this suite exists to rule out.
  if (open.ok()) {
    ADD_FAILURE() << label << ": silently damaged artifact opened cleanly";
    return 1;
  }
  if (open.code() != StatusCode::kCorruption) {
    ADD_FAILURE() << label << ": unexpected refusal " << open;
    return 1;
  }
  return 0;
}

TEST(ArtifactFaults, EveryWriteFaultClassAtEveryOffsetClassIsSafe) {
  const auto& w = fault_world();
  const std::size_t file_size = w.image.size();
  ASSERT_GT(file_size, kMetaSize);

  const std::vector<std::uint64_t> offsets = {
      0,                    // head magic
      9,                    // format version
      49,                   // meta CRC
      kHeaderSize + 8,      // first table entry's offset field
      kMetaSize + 1,        // first payload byte
      file_size / 2,        // payload interior
      file_size - 4,        // tail magic
      std::uint64_t{1} << 40,  // beyond the file: fault must not fire
  };
  const FileFault::Kind kinds[] = {
      FileFault::Kind::kShortWrite,
      FileFault::Kind::kFailedSync,
      FileFault::Kind::kBitFlip,
      FileFault::Kind::kTruncate,
  };

  std::size_t silent = 0;
  std::size_t scenario = 0;
  for (const FileFault::Kind kind : kinds) {
    for (const std::uint64_t offset : offsets) {
      FileFault fault;
      fault.kind = kind;
      fault.offset = offset;
      fault.bit = static_cast<std::uint32_t>(offset % 8);
      silent += run_write_scenario(w, fault, /*fail_rename=*/false,
                                   "scenario_" + std::to_string(scenario++));
    }
  }
  silent += run_write_scenario(w, FileFault{}, /*fail_rename=*/true, "rename");
  EXPECT_EQ(silent, 0u);
}

}  // namespace
}  // namespace eyeball
