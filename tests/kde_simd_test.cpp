// Differential tests for the register-tiled separable-KDE convolutions
// (src/kde/convolve.hpp; DESIGN.md "Data layout & vectorization").
//
// The tiled kernels promise EXACT equality with the obvious scalar loop:
// tiling widens across independent output cells and each cell still sums
// its taps in ascending index order, so no floating-point operation is
// reassociated — including in the clipped edge tiles and under the hot-TU
// -O3/-mavx2 build this binary links against.  Every comparison here is
// therefore `==` on doubles, never a tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "geo/point.hpp"
#include "kde/convolve.hpp"
#include "kde/estimator.hpp"
#include "util/rng.hpp"

namespace eyeball::kde {
namespace {

constexpr std::size_t kTile = detail::kConvolveTile;

/// The one-output-at-a-time reference: for output i, taps accumulate in
/// ascending tap order, out-of-range taps dropped (edge clipping).
std::vector<double> reference_convolve(const std::vector<double>& src,
                                       const std::vector<double>& taps) {
  const auto n = static_cast<std::ptrdiff_t>(src.size());
  const auto radius = static_cast<std::ptrdiff_t>(taps.size() / 2);
  std::vector<double> dst(src.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(taps.size()); ++k) {
      const std::ptrdiff_t j = i + k - radius;
      if (j < 0 || j >= n) continue;
      acc += src[static_cast<std::size_t>(j)] * taps[static_cast<std::size_t>(k)];
    }
    dst[static_cast<std::size_t>(i)] = acc;
  }
  return dst;
}

std::vector<double> random_values(util::Rng& rng, std::size_t n) {
  std::vector<double> out(n);
  // Mixed-sign values so a dropped or duplicated tap cannot cancel out.
  for (auto& v : out) v = rng.uniform(-2.0, 2.0);
  return out;
}

std::vector<double> random_taps(util::Rng& rng, std::size_t radius) {
  std::vector<double> taps(2 * radius + 1);
  for (auto& t : taps) t = rng.uniform(0.0, 1.0);
  return taps;
}

void expect_row_matches_reference(const std::vector<double>& src,
                                  const std::vector<double>& taps) {
  const auto want = reference_convolve(src, taps);
  std::vector<double> got(src.size(), -1.0);
  detail::convolve_row(src.data(), got.data(), src.size(), taps.data(), taps.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "n=" << src.size() << " taps=" << taps.size()
                               << " cell " << i;
  }
}

TEST(ConvolveRow, MatchesScalarReferenceOnRandomizedInputs) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng rng{seed};
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 300));
    const auto radius = static_cast<std::size_t>(rng.uniform_int(0, 80));
    expect_row_matches_reference(random_values(rng, n), random_taps(rng, radius));
  }
}

TEST(ConvolveRow, EdgeClippingExactAtTileBoundaries) {
  util::Rng rng{42};
  // Sizes straddling every peel boundary: partial-tile tails, rows fully
  // inside the clipped region, tiles spilling from the clipped prologue
  // into the interior, and kernels wider than the whole row.
  const std::size_t sizes[] = {1,         2,         kTile - 1, kTile,
                               kTile + 1, 2 * kTile, 3 * kTile + 7};
  const std::size_t radii[] = {0, 1, 5, kTile - 1, kTile, 2 * kTile, 100};
  for (const std::size_t n : sizes) {
    for (const std::size_t radius : radii) {
      expect_row_matches_reference(random_values(rng, n), random_taps(rng, radius));
    }
  }
}

/// Reference vertical pass: column-by-column scalar walk in ascending row
/// (= tap) order over the row-major rows x cols image.
std::vector<double> reference_convolve_columns(const std::vector<double>& src,
                                               std::size_t rows, std::size_t cols,
                                               const std::vector<double>& taps) {
  const auto srows = static_cast<std::ptrdiff_t>(rows);
  const auto radius = static_cast<std::ptrdiff_t>(taps.size() / 2);
  std::vector<double> dst(src.size());
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::ptrdiff_t i = 0; i < srows; ++i) {
      double acc = 0.0;
      for (std::ptrdiff_t k = 0; k < static_cast<std::ptrdiff_t>(taps.size()); ++k) {
        const std::ptrdiff_t j = i + k - radius;
        if (j < 0 || j >= srows) continue;
        acc += src[static_cast<std::size_t>(j) * cols + c] *
               taps[static_cast<std::size_t>(k)];
      }
      dst[static_cast<std::size_t>(i) * cols + c] = acc;
    }
  }
  return dst;
}

void expect_columns_match_reference(std::size_t rows, std::size_t cols,
                                    std::size_t radius, std::uint64_t seed) {
  util::Rng rng{seed};
  const auto src = random_values(rng, rows * cols);
  const auto taps = random_taps(rng, radius);
  const auto want = reference_convolve_columns(src, rows, cols, taps);
  std::vector<double> got(src.size(), -1.0);
  // Tile the columns exactly the way estimate() does, remainder tile last.
  for (std::size_t col = 0; col < cols; col += kTile) {
    detail::convolve_columns_tile(src.data(), got.data(), rows, cols, col,
                                  std::min(kTile, cols - col), taps.data(),
                                  taps.size());
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << rows << "x" << cols << " taps=" << taps.size()
                               << " cell " << i;
  }
}

TEST(ConvolveColumns, MatchesScalarReferenceOnRandomizedImages) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng{seed * 977};
    const auto rows = static_cast<std::size_t>(rng.uniform_int(1, 90));
    const auto cols = static_cast<std::size_t>(rng.uniform_int(1, 90));
    const auto radius = static_cast<std::size_t>(rng.uniform_int(0, 40));
    expect_columns_match_reference(rows, cols, radius, seed);
  }
}

TEST(ConvolveColumns, RemainderTilesAndShortImagesExact) {
  std::uint64_t seed = 7;
  // cols exercising the full-tile path, the <kTile remainder path, and
  // both; rows at and below 2*radius force the all-clipped degenerate walk.
  const std::size_t col_counts[] = {1, 5, kTile - 1, kTile, kTile + 3, 2 * kTile + 1};
  for (const std::size_t cols : col_counts) {
    for (const std::size_t rows : {1u, 3u, 9u, 40u}) {
      for (const std::size_t radius : {1u, 4u, 20u}) {
        expect_columns_match_reference(rows, cols, radius, ++seed);
      }
    }
  }
}

/// Seeded point cloud around Rome, with a share of the points pushed onto
/// the bounding box's rim so the clipped edge tiles carry real mass.
std::vector<geo::GeoPoint> random_cloud(std::uint64_t seed, std::size_t count) {
  util::Rng rng{seed};
  const geo::GeoPoint rome{41.9028, 12.4964};
  std::vector<geo::GeoPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double bearing = rng.uniform(0.0, 360.0);
    const double km = i % 8 == 0 ? rng.uniform(140.0, 150.0)  // rim cluster
                                 : rng.uniform(0.0, 150.0);
    points.push_back(geo::destination(rome, bearing, km));
  }
  return points;
}

TEST(KdeSimd, EstimateByteIdenticalAcrossThreadCounts) {
  KdeConfig config;
  config.bandwidth_km = 25.0;
  config.cell_km = 5.0;
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto points = random_cloud(seed, 600);
    config.threads = 1;
    const KernelDensityEstimator serial{config};
    // A tight box (no kernel padding): edge cells clip real kernel mass.
    const auto box = geo::BoundingBox::around(points);
    const auto reference = serial.estimate(points, box);
    for (const std::size_t threads : {2u, 3u, 0u}) {
      config.threads = threads;
      const auto parallel = KernelDensityEstimator{config}.estimate(points, box);
      ASSERT_EQ(parallel.rows(), reference.rows());
      ASSERT_EQ(parallel.cols(), reference.cols());
      // Bytes, not approximately: the convolutions never reassociate.
      EXPECT_TRUE(parallel.values() == reference.values())
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(KdeSimd, EstimateIsDeterministicAcrossRepeatedCalls) {
  const auto points = random_cloud(99, 400);
  KdeConfig config;
  config.bandwidth_km = 30.0;
  config.cell_km = 6.0;
  const KernelDensityEstimator estimator{config};
  const auto box = estimator.padded_box(points);
  const auto first = estimator.estimate(points, box);
  // The thread_local scratch buffer is reused on the second call; stale
  // contents must be unobservable.
  const auto second = estimator.estimate(points, box);
  EXPECT_TRUE(first.values() == second.values());
}

}  // namespace
}  // namespace eyeball::kde
