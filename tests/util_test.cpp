#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "util/clock.hpp"
#include "util/format.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"
#include "util/table.hpp"

namespace eyeball::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng{11};
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng{13};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{17};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{19};
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng{23};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng{29};
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng{31};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng rng{37};
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(static_cast<double>(rng.poisson(3.0)));
  }
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
}

TEST(Rng, PoissonLargeLambdaMean) {
  Rng rng{41};
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.poisson(200.0)));
  }
  EXPECT_NEAR(stats.mean(), 200.0, 1.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng{43};
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng root{47};
  Rng a = root.fork(1);
  Rng b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BernoulliProbability) {
  Rng rng{53};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Mix64, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 50; ++a) {
    for (std::uint64_t b = 0; b < 50; ++b) seen.insert(mix64(a, b));
  }
  EXPECT_EQ(seen.size(), 2500u);
}

TEST(HashString, StableAndDiscriminating) {
  EXPECT_EQ(hash_string("Milan"), hash_string("Milan"));
  EXPECT_NE(hash_string("Milan"), hash_string("Rome"));
  EXPECT_NE(hash_string(""), hash_string(" "));
}

TEST(ZipfSampler, RankZeroMostLikely) {
  ZipfSampler zipf{100, 1.0};
  EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
  EXPECT_GT(zipf.pmf(1), zipf.pmf(10));
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf{50, 1.2};
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSampler, EmpiricalMatchesPmf) {
  ZipfSampler zipf{10, 1.0};
  Rng rng{59};
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01);
  }
}

TEST(ZipfSampler, RejectsZeroSize) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(DiscreteSampler, MatchesWeights) {
  const std::vector<double> weights{1.0, 3.0, 6.0};
  DiscreteSampler sampler{weights};
  EXPECT_NEAR(sampler.probability(0), 0.1, 1e-12);
  EXPECT_NEAR(sampler.probability(1), 0.3, 1e-12);
  EXPECT_NEAR(sampler.probability(2), 0.6, 1e-12);
}

TEST(DiscreteSampler, RejectsBadWeights) {
  const std::vector<double> empty;
  EXPECT_THROW(DiscreteSampler{std::span<const double>{empty}}, std::invalid_argument);
  const std::vector<double> negative{1.0, -0.5};
  EXPECT_THROW(DiscreteSampler{std::span<const double>{negative}}, std::invalid_argument);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{std::span<const double>{zeros}}, std::invalid_argument);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  const std::vector<double> weights{0.0, 1.0};
  DiscreteSampler sampler{weights};
  Rng rng{61};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 5.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 15.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i * 0.7) * 10;
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(5.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(Percentile, KnownValues) {
  const std::vector<double> values{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 30);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(values, 25), 20);
}

TEST(Percentile, InterpolatesBetweenValues) {
  const std::vector<double> values{0, 10};
  EXPECT_DOUBLE_EQ(percentile(values, 50), 5);
  EXPECT_DOUBLE_EQ(percentile(values, 90), 9);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50), std::invalid_argument);
  const std::vector<double> one{1.0};
  EXPECT_THROW((void)percentile(one, -1), std::invalid_argument);
  EXPECT_THROW((void)percentile(one, 101), std::invalid_argument);
}

TEST(Percentile, RejectsNanQuantile) {
  // Regression: NaN compares false on both sides of the old range check, so
  // it reached the float->int rank cast — undefined behaviour under UBSan.
  const std::vector<double> one{1.0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)percentile(one, nan), std::invalid_argument);
  std::vector<double> scratch{2.0, 1.0};
  EXPECT_THROW((void)percentile_in_place(scratch, nan), std::invalid_argument);
}

TEST(EmpiricalCdf, QuantileRejectsNan) {
  const EmpiricalCdf cdf{{1.0, 2.0, 3.0}};
  EXPECT_THROW((void)cdf.quantile(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Percentile, InPlaceMatchesCopyingVariantAndSorts) {
  const std::vector<double> values{7, 3, 9, 1, 5, 5, 2};
  for (const double q : {0.0, 10.0, 50.0, 90.0, 100.0}) {
    std::vector<double> scratch = values;
    EXPECT_DOUBLE_EQ(percentile_in_place(scratch, q), percentile(values, q)) << q;
    EXPECT_TRUE(std::is_sorted(scratch.begin(), scratch.end()));
  }
  std::vector<double> empty;
  EXPECT_THROW((void)percentile_in_place(empty, 50), std::invalid_argument);
  std::vector<double> one{1.0};
  EXPECT_THROW((void)percentile_in_place(one, 101), std::invalid_argument);
}

TEST(MeanMedian, Basic) {
  const std::vector<double> values{1, 2, 3, 4, 100};
  EXPECT_DOUBLE_EQ(mean(values), 22.0);
  EXPECT_DOUBLE_EQ(median(values), 3.0);
}

TEST(EmpiricalCdf, MonotoneAndBounded) {
  EmpiricalCdf cdf{{3.0, 1.0, 2.0, 2.0}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInvertsCdf) {
  std::vector<double> values;
  for (int i = 0; i <= 100; ++i) values.push_back(i);
  EmpiricalCdf cdf{std::move(values)};
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(cdf.quantile(0.9), 90.0, 1.0);
}

TEST(EmpiricalCdf, TraceIsNondecreasing) {
  EmpiricalCdf cdf{{1.0, 5.0, 9.0, 9.5}};
  const auto trace = cdf.trace(0.0, 10.0, 21);
  ASSERT_EQ(trace.size(), 21u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].cumulative_fraction, trace[i - 1].cumulative_fraction);
  }
  EXPECT_DOUBLE_EQ(trace.front().x, 0.0);
  EXPECT_DOUBLE_EQ(trace.back().x, 10.0);
}

TEST(EmpiricalCdf, RejectsEmpty) {
  EXPECT_THROW(EmpiricalCdf{std::vector<double>{}}, std::invalid_argument);
}

TEST(Histogram, BinningBasics) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.5);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
}

// Regression: out-of-range samples used to be clamped into the edge bins,
// silently inflating the tail counts of the validation CDFs.  They must be
// tallied separately instead.
TEST(Histogram, OutOfRangeCountedSeparatelyNotClamped) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);      // below lo: underflow, not bin 0
  h.add(100.0, 2.0);  // above hi: overflow, not bin 9
  h.add(10.0);        // hi itself is outside [lo, hi)
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 3.0);
  EXPECT_DOUBLE_EQ(h.in_range(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 6.0);
}

TEST(Histogram, NanGoesToUnderflowNotABin) {
  Histogram h{0.0, 10.0, 4};
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.in_range(), 0.0);
  for (std::size_t b = 0; b < h.bin_count(); ++b) EXPECT_DOUBLE_EQ(h.count(b), 0.0);
}

TEST(Histogram, RejectsDegenerate) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 5), std::invalid_argument);
}

TEST(TextTable, RendersAlignedCells) {
  TextTable table{{"Region", "Count"}};
  table.add_row({"EU", "12"});
  table.add_row({"NA", "345"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Region"), std::string::npos);
  EXPECT_NE(out.find("345"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table{{"a", "b"}};
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiChart, RendersSeries) {
  AsciiChart chart{40, 10};
  chart.add_series("line", {0, 1, 2, 3}, {0, 10, 20, 30});
  const std::string out = chart.render();
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("line"), std::string::npos);
}

TEST(AsciiChart, RejectsEmptySeries) {
  AsciiChart chart{40, 10};
  EXPECT_THROW(chart.add_series("x", {}, {}), std::invalid_argument);
  EXPECT_THROW(chart.add_series("x", {1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Format, Fixed) {
  EXPECT_EQ(fixed(0.12999, 3), "0.130");
  EXPECT_EQ(fixed(-1.5, 1), "-1.5");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(18004123), "18,004,123");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(Format, InThousands) {
  EXPECT_EQ(in_thousands(18004000), "18004");
  EXPECT_EQ(in_thousands(1499), "1");
  EXPECT_EQ(in_thousands(1500), "2");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.415), "41.5%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

// ---- Clock: the time seam the retry policy is deterministic through. ----

TEST(FakeClock, StartsAtZeroAndAdvancesOnlyByExplicitSteps) {
  FakeClock clock;
  EXPECT_EQ(clock.now(), std::chrono::nanoseconds::zero());
  clock.sleep_for(std::chrono::milliseconds{10});
  EXPECT_EQ(clock.now(), std::chrono::milliseconds{10});
  clock.advance(std::chrono::milliseconds{5});  // external delay, not a sleep
  EXPECT_EQ(clock.now(), std::chrono::milliseconds{15});
  // Non-positive sleeps are ignored entirely: no time, no schedule entry.
  clock.sleep_for(std::chrono::nanoseconds{-1});
  clock.sleep_for(std::chrono::nanoseconds::zero());
  EXPECT_EQ(clock.now(), std::chrono::milliseconds{15});
  ASSERT_EQ(clock.sleeps().size(), 1u);
  EXPECT_EQ(clock.sleeps()[0], std::chrono::milliseconds{10});
  clock.clear_sleeps();
  EXPECT_TRUE(clock.sleeps().empty());
  EXPECT_EQ(clock.now(), std::chrono::milliseconds{15});  // time survives
}

TEST(MonotonicClock, NeverDecreases) {
  Clock& clock = monotonic_clock();
  const std::chrono::nanoseconds a = clock.now();
  const std::chrono::nanoseconds b = clock.now();
  EXPECT_LE(a.count(), b.count());
}

// ---- RetryPolicy: deterministic supervised retries. ----

TEST(RetryPolicy, BackoffScheduleIsExponentialAndSaturates) {
  RetryOptions options;
  options.initial_backoff = std::chrono::milliseconds{10};
  options.multiplier = 2.0;
  options.max_backoff = std::chrono::milliseconds{35};
  // Attempt 0 runs immediately; each later attempt doubles, clamped.
  EXPECT_EQ(RetryPolicy::backoff_for(options, 0), std::chrono::nanoseconds::zero());
  EXPECT_EQ(RetryPolicy::backoff_for(options, 1), std::chrono::milliseconds{10});
  EXPECT_EQ(RetryPolicy::backoff_for(options, 2), std::chrono::milliseconds{20});
  EXPECT_EQ(RetryPolicy::backoff_for(options, 3), std::chrono::milliseconds{35});
  EXPECT_EQ(RetryPolicy::backoff_for(options, 50), std::chrono::milliseconds{35});
  // A sub-1.0 multiplier cannot shrink the schedule (clamped to constant).
  options.multiplier = 0.5;
  EXPECT_EQ(RetryPolicy::backoff_for(options, 3), std::chrono::milliseconds{10});
}

TEST(RetryPolicy, RetriesTransientIoErrorsAndRecordsEveryAttempt) {
  FakeClock clock;
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = std::chrono::milliseconds{10};
  const RetryPolicy policy{options, clock};
  int calls = 0;
  const RetryResult result = policy.run([&calls] {
    ++calls;
    return calls < 3 ? Status::io_error("transient") : Status{};
  });
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(result.attempts_made(), 3u);
  EXPECT_EQ(result.attempts[0].status.code(), StatusCode::kIoError);
  EXPECT_EQ(result.attempts[0].backoff_before, std::chrono::nanoseconds::zero());
  EXPECT_EQ(result.attempts[1].backoff_before, std::chrono::milliseconds{10});
  EXPECT_EQ(result.attempts[2].backoff_before, std::chrono::milliseconds{20});
  EXPECT_TRUE(result.attempts[2].status.ok());
  // The clock recorded exactly the non-zero backoffs, in order.
  ASSERT_EQ(clock.sleeps().size(), 2u);
  EXPECT_EQ(clock.sleeps()[0], std::chrono::milliseconds{10});
  EXPECT_EQ(clock.sleeps()[1], std::chrono::milliseconds{20});
}

TEST(RetryPolicy, NonRetriableVerdictsFailImmediately) {
  FakeClock clock;
  const RetryPolicy policy{RetryOptions{}, clock};
  int calls = 0;
  const RetryResult result = policy.run([&calls] {
    ++calls;
    return Status::corruption("bytes are lying");
  });
  EXPECT_EQ(result.status.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);  // corruption does not heal with retries
  EXPECT_EQ(result.attempts_made(), 1u);
  EXPECT_TRUE(clock.sleeps().empty());
}

TEST(RetryPolicy, ExhaustionReportsTheLastErrorWithFullHistory) {
  FakeClock clock;
  RetryOptions options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::milliseconds{1};
  const RetryPolicy policy{options, clock};
  const RetryResult result =
      policy.run([] { return Status::io_error("disk still full"); });
  EXPECT_EQ(result.status.code(), StatusCode::kIoError);
  EXPECT_EQ(result.attempts_made(), 3u);
  for (const RetryAttempt& attempt : result.attempts) {
    EXPECT_EQ(attempt.status.code(), StatusCode::kIoError);
  }
  // max_attempts == 0 is treated as "at least one attempt".
  const RetryPolicy zero{RetryOptions{.max_attempts = 0}, clock};
  EXPECT_EQ(zero.run([] { return Status{}; }).attempts_made(), 1u);
}

TEST(RetryPolicy, ScheduleIsByteReproducibleAcrossRuns) {
  RetryOptions options;
  options.max_attempts = 5;
  options.initial_backoff = std::chrono::milliseconds{7};
  options.multiplier = 3.0;
  options.max_backoff = std::chrono::milliseconds{100};
  const auto run_once = [&options] {
    FakeClock clock;
    const RetryPolicy policy{options, clock};
    static_cast<void>(
        policy.run([] { return Status::io_error("always failing"); }));
    return clock.sleeps();
  };
  const std::vector<std::chrono::nanoseconds> first = run_once();
  const std::vector<std::chrono::nanoseconds> second = run_once();
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first[0], std::chrono::milliseconds{7});
  EXPECT_EQ(first[1], std::chrono::milliseconds{21});
  EXPECT_EQ(first[2], std::chrono::milliseconds{63});
  EXPECT_EQ(first[3], std::chrono::milliseconds{100});
}

}  // namespace
}  // namespace eyeball::util
