// Unit coverage for the checked I/O layer: the Status taxonomy, CRC32C,
// the atomic-write protocol, and the exact semantics of every
// FaultInjectingFileSystem fault kind (which the snapshot fault harness
// builds on — if these semantics drift, that harness proves nothing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/crc32c.hpp"
#include "util/file.hpp"
#include "util/status.hpp"

namespace eyeball {
namespace {

using util::FileFault;
using util::Status;
using util::StatusCode;

[[nodiscard]] std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

/// Fresh per-test scratch directory (removed up-front so reruns of the same
/// binary see the same filesystem state).
[[nodiscard]] std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "eyeball_file_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Status, DefaultIsOkAndFactoriesCarryTheTaxonomy) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.to_string(), "OK");

  const Status corruption = Status::corruption("section 3 CRC mismatch");
  EXPECT_FALSE(corruption.ok());
  EXPECT_EQ(corruption.code(), StatusCode::kCorruption);
  EXPECT_EQ(corruption.to_string(), "CORRUPTION: section 3 CRC mismatch");

  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::io_error("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::version_mismatch("x").code(), StatusCode::kVersionMismatch);
  EXPECT_EQ(Status::config_mismatch("x").code(), StatusCode::kConfigMismatch);
}

TEST(Status, WithContextPrependsButKeepsTheCode) {
  const Status inner = Status::io_error("fsync failed");
  const Status outer = inner.with_context("generation 7");
  EXPECT_EQ(outer.code(), StatusCode::kIoError);
  EXPECT_EQ(outer.message(), "generation 7: fsync failed");
  // OK statuses pass through untouched: context on success is noise.
  EXPECT_TRUE(Status{}.with_context("anything").ok());
}

TEST(Crc32c, MatchesThePublishedCheckValue) {
  // The iSCSI/RFC 3720 check value for "123456789".
  EXPECT_EQ(util::crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(util::crc32c({}), 0u);
}

TEST(Crc32c, SeedChainingEqualsOneShot) {
  const auto whole = bytes_of("eyeball ASes: from geography to connectivity");
  for (const std::size_t split : {std::size_t{0}, std::size_t{1}, whole.size() / 2,
                                  whole.size() - 1, whole.size()}) {
    const std::span<const std::byte> head{whole.data(), split};
    const std::span<const std::byte> tail{whole.data() + split, whole.size() - split};
    EXPECT_EQ(util::crc32c(tail, util::crc32c(head)), util::crc32c(whole))
        << "split at " << split;
  }
}

TEST(Crc32cFast, EqualsTheTableImplementationOverArbitraryInputs) {
  // The artifact open path (core/artifact.hpp) trusts crc32c_fast to be the
  // same function as crc32c — pin that equality across sizes that exercise
  // the 8-byte main loop, the byte tail, and the empty input, plus seeds.
  std::vector<std::byte> data;
  std::uint32_t state = 0x243f6a88U;  // deterministic pseudo-random fill
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{4097}}) {
    data.resize(size);
    for (auto& b : data) {
      state = state * 1664525U + 1013904223U;
      b = static_cast<std::byte>(state >> 24);
    }
    EXPECT_EQ(util::crc32c_fast(data), util::crc32c(data)) << "size " << size;
    EXPECT_EQ(util::crc32c_fast(data, 0x12345678U), util::crc32c(data, 0x12345678U))
        << "seeded, size " << size;
  }
  EXPECT_EQ(util::crc32c_fast(bytes_of("123456789")), 0xE3069283u);
}

TEST(AtomicWriteFile, PublishesBytesAndLeavesNoTemp) {
  const std::string dir = scratch_dir("publish");
  const std::string path = dir + "/data.bin";
  auto& fs = util::local_filesystem();
  const auto payload = bytes_of("hello, durable world");
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());

  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, payload);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Overwrite is a full replacement, not an append.
  const auto second = bytes_of("v2");
  ASSERT_TRUE(util::atomic_write_file(fs, path, second).ok());
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, second);
}

TEST(LocalFileSystem, MissingFileIsNotFoundAndListDirIsSorted) {
  const std::string dir = scratch_dir("listing");
  auto& fs = util::local_filesystem();
  std::vector<std::byte> out;
  EXPECT_EQ(fs.read_file(dir + "/absent", out).code(), StatusCode::kNotFound);

  std::vector<std::string> names;
  EXPECT_EQ(fs.list_dir(dir + "/no_such_dir", names).code(), StatusCode::kNotFound);

  ASSERT_TRUE(util::atomic_write_file(fs, dir + "/bb", bytes_of("2")).ok());
  ASSERT_TRUE(util::atomic_write_file(fs, dir + "/aa", bytes_of("1")).ok());
  ASSERT_TRUE(fs.list_dir(dir, names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"aa", "bb"}));
}

// ---- Read-only mappings: the artifact's zero-copy substrate. ----

TEST(MappedFile, MapsRealFilesAndReportsTypedFailures) {
  const std::string dir = scratch_dir("mmap");
  const std::string path = dir + "/image.bin";
  auto& fs = util::local_filesystem();
  const auto payload = bytes_of("mapped, not copied");
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());

  util::MappedFile map;
  ASSERT_TRUE(util::map_file_read_only(path, map).ok());
  ASSERT_EQ(map.bytes().size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), map.bytes().begin()));

  // Missing path is kNotFound, and a failed map leaves `out` untouched.
  util::MappedFile untouched;
  EXPECT_EQ(util::map_file_read_only(dir + "/absent", untouched).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(untouched.bytes().empty());

  // Empty files map successfully to an empty span.
  ASSERT_TRUE(util::atomic_write_file(fs, dir + "/empty", {}).ok());
  util::MappedFile empty;
  ASSERT_TRUE(util::map_file_read_only(dir + "/empty", empty).ok());
  EXPECT_TRUE(empty.bytes().empty());
}

TEST(MappedFile, MoveTransfersTheMappingAndResetEmpties) {
  const std::string dir = scratch_dir("mmap_move");
  const std::string path = dir + "/image.bin";
  auto& fs = util::local_filesystem();
  const auto payload = bytes_of("ownership moves, bytes stay put");
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());

  util::MappedFile a;
  ASSERT_TRUE(util::map_file_read_only(path, a).ok());
  const std::byte* const base = a.bytes().data();
  util::MappedFile b = std::move(a);
  EXPECT_EQ(b.bytes().data(), base);  // same mapping, no remap or copy
  EXPECT_EQ(b.bytes().size(), payload.size());
  EXPECT_TRUE(a.bytes().empty());  // NOLINT(bugprone-use-after-move): pinned empty

  b.reset();
  EXPECT_TRUE(b.bytes().empty());

  const auto buffer_backed = util::MappedFile::from_buffer(payload);
  ASSERT_EQ(buffer_backed.bytes().size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         buffer_backed.bytes().begin()));
}

TEST(FileSystem, MapReadOnlyRoutesThroughTheSeam) {
  const std::string dir = scratch_dir("map_seam");
  const std::string path = dir + "/image.bin";
  auto& local = util::local_filesystem();
  const auto payload = bytes_of("same bytes through every backend");
  ASSERT_TRUE(util::atomic_write_file(local, path, payload).ok());

  // The real filesystem's override (mmap) and the base-class default (read
  // into an owned buffer, reached here via the fault injector, which adds
  // no read-side faults) must produce identical bytes.
  util::MappedFile mapped;
  ASSERT_TRUE(local.map_read_only(path, mapped).ok());
  util::FaultInjectingFileSystem faulty{local};
  util::MappedFile buffered;
  ASSERT_TRUE(faulty.map_read_only(path, buffered).ok());
  ASSERT_EQ(mapped.bytes().size(), buffered.bytes().size());
  EXPECT_TRUE(std::equal(mapped.bytes().begin(), mapped.bytes().end(),
                         buffered.bytes().begin()));

  util::MappedFile missing;
  EXPECT_EQ(faulty.map_read_only(dir + "/absent", missing).code(),
            StatusCode::kNotFound);
}

// ---- Fault kinds: the exact writer-visible / on-disk split the harness
// relies on (see the table in util/file.hpp). ----

TEST(FaultInjection, ShortWriteReportsAnErrorAndAtomicWritePublishesNothing) {
  const std::string dir = scratch_dir("short_write");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kShortWrite, 5, 0});

  const Status status = util::atomic_write_file(fs, path, bytes_of("0123456789"));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  // The protocol held: the failed write never reached the published name,
  // and the temp was cleaned up.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(FaultInjection, FailedSyncReportsAnErrorAndPublishesNothing) {
  const std::string dir = scratch_dir("failed_sync");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kFailedSync, 0, 0});

  EXPECT_EQ(util::atomic_write_file(fs, path, bytes_of("0123456789")).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FaultInjection, BitFlipIsSilentAndChangesExactlyOneBit) {
  const std::string dir = scratch_dir("bit_flip");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kBitFlip, 3, 6});

  const auto payload = bytes_of("0123456789");
  // Silent: the writer sees full success...
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());
  EXPECT_TRUE(fs.fault_fired());

  // ...but the disk is lying, in exactly one bit.
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  ASSERT_EQ(read_back.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(read_back[i], payload[i] ^ std::byte{1U << 6}) << "byte " << i;
    } else {
      EXPECT_EQ(read_back[i], payload[i]) << "byte " << i;
    }
  }
}

TEST(FaultInjection, TruncateIsSilentAndDropsTheTail) {
  const std::string dir = scratch_dir("truncate");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kTruncate, 4, 0});

  // Silent: success reported, so the torn file gets renamed into place —
  // the torn-write case the snapshot layer must catch at restore time.
  ASSERT_TRUE(util::atomic_write_file(fs, path, bytes_of("0123456789")).ok());
  EXPECT_TRUE(fs.fault_fired());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, bytes_of("0123"));
}

TEST(FaultInjection, FaultBeyondTheStreamNeverFires) {
  const std::string dir = scratch_dir("no_fire");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kBitFlip, 1000, 0});

  const auto payload = bytes_of("short");
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());
  EXPECT_FALSE(fs.fault_fired());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, payload);
}

TEST(FaultInjection, FailNextRenameBlocksPublication) {
  const std::string dir = scratch_dir("rename");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.fail_next_rename();

  EXPECT_EQ(util::atomic_write_file(fs, path, bytes_of("x")).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  EXPECT_FALSE(std::filesystem::exists(path));

  // One-shot: the next write goes through.
  EXPECT_TRUE(util::atomic_write_file(fs, path, bytes_of("x")).ok());
}

TEST(FaultInjection, FaultArmsTheNextOpenOnly) {
  const std::string dir = scratch_dir("one_shot");
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kShortWrite, 0, 0});

  EXPECT_FALSE(util::atomic_write_file(fs, dir + "/a", bytes_of("aaaa")).ok());
  // The armed fault was consumed by the first open.
  EXPECT_TRUE(util::atomic_write_file(fs, dir + "/b", bytes_of("bbbb")).ok());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(dir + "/b", read_back).ok());
  EXPECT_EQ(read_back, bytes_of("bbbb"));
}

TEST(FaultInjection, NoSpaceKeepsRefusingEveryFurtherAppend) {
  // ENOSPC differs from a short write in PERSISTENCE of the error: the
  // prefix that fit stays written, and every retried append re-fails with
  // the same typed error — the shape a retry loop sees from a full disk.
  const std::string dir = scratch_dir("no_space");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kNoSpace, 4, 0});

  std::unique_ptr<util::WritableFile> file;
  ASSERT_TRUE(fs.open_for_write(path, file).ok());
  const auto payload = bytes_of("0123456789");
  const Status first = file->append(payload);
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  // The device stays full: identical typed refusal on every retry.
  for (int retry = 0; retry < 3; ++retry) {
    EXPECT_EQ(file->append(payload), first) << "retry " << retry;
  }
  ASSERT_TRUE(file->close().ok());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, bytes_of("0123"));  // the prefix persisted exactly once

  // Through the atomic protocol the failure stays clean: nothing published.
  fs.arm(FileFault{FileFault::Kind::kNoSpace, 2, 0});
  EXPECT_EQ(util::atomic_write_file(fs, dir + "/atomic.bin", payload).code(),
            StatusCode::kIoError);
  EXPECT_FALSE(std::filesystem::exists(dir + "/atomic.bin"));
}

TEST(FaultInjection, TransientOpenFailuresRecoverAfterCount) {
  const std::string dir = scratch_dir("transient_open");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm_transient_open_failures(2);

  // Exactly two refusals, then the write path heals — the error class a
  // retry-with-backoff policy exists for.
  EXPECT_EQ(util::atomic_write_file(fs, path, bytes_of("x")).code(),
            StatusCode::kIoError);
  EXPECT_EQ(util::atomic_write_file(fs, path, bytes_of("x")).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  ASSERT_TRUE(util::atomic_write_file(fs, path, bytes_of("healed")).ok());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, bytes_of("healed"));
}

TEST(FaultInjection, TransientRenameFailuresRecoverAfterCount) {
  const std::string dir = scratch_dir("transient_rename");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm_transient_rename_failures(1);

  EXPECT_EQ(util::atomic_write_file(fs, path, bytes_of("x")).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(util::atomic_write_file(fs, path, bytes_of("y")).ok());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, bytes_of("y"));
}

TEST(FaultInjection, FailedRenameCanLeaveThePoisonedTmpBehind) {
  // fail_next_rename_leaving_tmp models the crash window between "rename
  // refused" and "tmp unlinked": the cleanup is also refused once, so the
  // tmp survives as debris.  The NEXT atomic_write_file to the same path
  // must reclaim it — a poisoned tmp can neither mask nor corrupt a later
  // publish.
  const std::string dir = scratch_dir("tmp_left_behind");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.fail_next_rename_leaving_tmp();

  EXPECT_EQ(util::atomic_write_file(fs, path, bytes_of("poison")).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  // The debris is real: the tmp holds the failed write's full payload.
  ASSERT_TRUE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(path));
  std::vector<std::byte> tmp_bytes;
  ASSERT_TRUE(fs.read_file(path + ".tmp", tmp_bytes).ok());
  EXPECT_EQ(tmp_bytes, bytes_of("poison"));

  // Reclaim: the next write publishes ITS bytes and clears the corpse.
  ASSERT_TRUE(util::atomic_write_file(fs, path, bytes_of("fresh")).ok());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, bytes_of("fresh"));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicWriteFile, ReclaimsAStaleTmpFromACrashedWriter) {
  // A stale tmp can also appear with no fault injector at all (a previous
  // process died between write and rename).  Plant one directly.
  const std::string dir = scratch_dir("stale_tmp");
  const std::string path = dir + "/data.bin";
  auto& fs = util::local_filesystem();
  std::unique_ptr<util::WritableFile> tmp;
  ASSERT_TRUE(fs.open_for_write(path + ".tmp", tmp).ok());
  ASSERT_TRUE(tmp->append(bytes_of("stale garbage")).ok());
  ASSERT_TRUE(tmp->close().ok());

  ASSERT_TRUE(util::atomic_write_file(fs, path, bytes_of("current")).ok());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, bytes_of("current"));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(QuarantineFile, MovesTheFileAsideAndRecordsWhy) {
  const std::string dir = scratch_dir("quarantine");
  const std::string path = dir + "/snapshot.bad";
  auto& fs = util::local_filesystem();
  ASSERT_TRUE(util::atomic_write_file(fs, path, bytes_of("damaged")).ok());

  const Status why = Status::corruption("whole-file CRC mismatch");
  ASSERT_TRUE(util::quarantine_file(fs, path, why).ok());

  // Moved, not deleted: the evidence survives under the quarantine name.
  EXPECT_FALSE(std::filesystem::exists(path));
  const std::string aside = path + std::string{util::kQuarantineSuffix};
  std::vector<std::byte> preserved;
  ASSERT_TRUE(fs.read_file(aside, preserved).ok());
  EXPECT_EQ(preserved, bytes_of("damaged"));

  // The reason sidecar carries the typed verdict for the post-mortem.
  std::vector<std::byte> reason;
  ASSERT_TRUE(fs.read_file(aside + ".reason", reason).ok());
  const std::string reason_text{reinterpret_cast<const char*>(reason.data()),
                                reason.size()};
  EXPECT_NE(reason_text.find("CORRUPTION"), std::string::npos);
  EXPECT_NE(reason_text.find("CRC mismatch"), std::string::npos);

  // Quarantining a missing file is a typed failure, not a crash.
  EXPECT_FALSE(util::quarantine_file(fs, path, why).ok());
  EXPECT_FALSE(util::quarantine_file(fs, "", why).ok());
}

TEST(Status, InternalIsATypedNonRetriableVerdict) {
  const Status internal = Status::internal("analysis threw mid-publish");
  EXPECT_FALSE(internal.ok());
  EXPECT_EQ(internal.code(), StatusCode::kInternal);
  EXPECT_EQ(internal.to_string(), "INTERNAL: analysis threw mid-publish");
}

}  // namespace
}  // namespace eyeball
