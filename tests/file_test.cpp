// Unit coverage for the checked I/O layer: the Status taxonomy, CRC32C,
// the atomic-write protocol, and the exact semantics of every
// FaultInjectingFileSystem fault kind (which the snapshot fault harness
// builds on — if these semantics drift, that harness proves nothing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/crc32c.hpp"
#include "util/file.hpp"
#include "util/status.hpp"

namespace eyeball {
namespace {

using util::FileFault;
using util::Status;
using util::StatusCode;

[[nodiscard]] std::vector<std::byte> bytes_of(std::string_view text) {
  std::vector<std::byte> out;
  out.reserve(text.size());
  for (const char c : text) out.push_back(static_cast<std::byte>(c));
  return out;
}

/// Fresh per-test scratch directory (removed up-front so reruns of the same
/// binary see the same filesystem state).
[[nodiscard]] std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "eyeball_file_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Status, DefaultIsOkAndFactoriesCarryTheTaxonomy) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.to_string(), "OK");

  const Status corruption = Status::corruption("section 3 CRC mismatch");
  EXPECT_FALSE(corruption.ok());
  EXPECT_EQ(corruption.code(), StatusCode::kCorruption);
  EXPECT_EQ(corruption.to_string(), "CORRUPTION: section 3 CRC mismatch");

  EXPECT_EQ(Status::not_found("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::io_error("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::invalid_argument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::version_mismatch("x").code(), StatusCode::kVersionMismatch);
  EXPECT_EQ(Status::config_mismatch("x").code(), StatusCode::kConfigMismatch);
}

TEST(Status, WithContextPrependsButKeepsTheCode) {
  const Status inner = Status::io_error("fsync failed");
  const Status outer = inner.with_context("generation 7");
  EXPECT_EQ(outer.code(), StatusCode::kIoError);
  EXPECT_EQ(outer.message(), "generation 7: fsync failed");
  // OK statuses pass through untouched: context on success is noise.
  EXPECT_TRUE(Status{}.with_context("anything").ok());
}

TEST(Crc32c, MatchesThePublishedCheckValue) {
  // The iSCSI/RFC 3720 check value for "123456789".
  EXPECT_EQ(util::crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(util::crc32c({}), 0u);
}

TEST(Crc32c, SeedChainingEqualsOneShot) {
  const auto whole = bytes_of("eyeball ASes: from geography to connectivity");
  for (const std::size_t split : {std::size_t{0}, std::size_t{1}, whole.size() / 2,
                                  whole.size() - 1, whole.size()}) {
    const std::span<const std::byte> head{whole.data(), split};
    const std::span<const std::byte> tail{whole.data() + split, whole.size() - split};
    EXPECT_EQ(util::crc32c(tail, util::crc32c(head)), util::crc32c(whole))
        << "split at " << split;
  }
}

TEST(Crc32cFast, EqualsTheTableImplementationOverArbitraryInputs) {
  // The artifact open path (core/artifact.hpp) trusts crc32c_fast to be the
  // same function as crc32c — pin that equality across sizes that exercise
  // the 8-byte main loop, the byte tail, and the empty input, plus seeds.
  std::vector<std::byte> data;
  std::uint32_t state = 0x243f6a88U;  // deterministic pseudo-random fill
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{4097}}) {
    data.resize(size);
    for (auto& b : data) {
      state = state * 1664525U + 1013904223U;
      b = static_cast<std::byte>(state >> 24);
    }
    EXPECT_EQ(util::crc32c_fast(data), util::crc32c(data)) << "size " << size;
    EXPECT_EQ(util::crc32c_fast(data, 0x12345678U), util::crc32c(data, 0x12345678U))
        << "seeded, size " << size;
  }
  EXPECT_EQ(util::crc32c_fast(bytes_of("123456789")), 0xE3069283u);
}

TEST(AtomicWriteFile, PublishesBytesAndLeavesNoTemp) {
  const std::string dir = scratch_dir("publish");
  const std::string path = dir + "/data.bin";
  auto& fs = util::local_filesystem();
  const auto payload = bytes_of("hello, durable world");
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());

  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, payload);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  // Overwrite is a full replacement, not an append.
  const auto second = bytes_of("v2");
  ASSERT_TRUE(util::atomic_write_file(fs, path, second).ok());
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, second);
}

TEST(LocalFileSystem, MissingFileIsNotFoundAndListDirIsSorted) {
  const std::string dir = scratch_dir("listing");
  auto& fs = util::local_filesystem();
  std::vector<std::byte> out;
  EXPECT_EQ(fs.read_file(dir + "/absent", out).code(), StatusCode::kNotFound);

  std::vector<std::string> names;
  EXPECT_EQ(fs.list_dir(dir + "/no_such_dir", names).code(), StatusCode::kNotFound);

  ASSERT_TRUE(util::atomic_write_file(fs, dir + "/bb", bytes_of("2")).ok());
  ASSERT_TRUE(util::atomic_write_file(fs, dir + "/aa", bytes_of("1")).ok());
  ASSERT_TRUE(fs.list_dir(dir, names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"aa", "bb"}));
}

// ---- Read-only mappings: the artifact's zero-copy substrate. ----

TEST(MappedFile, MapsRealFilesAndReportsTypedFailures) {
  const std::string dir = scratch_dir("mmap");
  const std::string path = dir + "/image.bin";
  auto& fs = util::local_filesystem();
  const auto payload = bytes_of("mapped, not copied");
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());

  util::MappedFile map;
  ASSERT_TRUE(util::map_file_read_only(path, map).ok());
  ASSERT_EQ(map.bytes().size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), map.bytes().begin()));

  // Missing path is kNotFound, and a failed map leaves `out` untouched.
  util::MappedFile untouched;
  EXPECT_EQ(util::map_file_read_only(dir + "/absent", untouched).code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(untouched.bytes().empty());

  // Empty files map successfully to an empty span.
  ASSERT_TRUE(util::atomic_write_file(fs, dir + "/empty", {}).ok());
  util::MappedFile empty;
  ASSERT_TRUE(util::map_file_read_only(dir + "/empty", empty).ok());
  EXPECT_TRUE(empty.bytes().empty());
}

TEST(MappedFile, MoveTransfersTheMappingAndResetEmpties) {
  const std::string dir = scratch_dir("mmap_move");
  const std::string path = dir + "/image.bin";
  auto& fs = util::local_filesystem();
  const auto payload = bytes_of("ownership moves, bytes stay put");
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());

  util::MappedFile a;
  ASSERT_TRUE(util::map_file_read_only(path, a).ok());
  const std::byte* const base = a.bytes().data();
  util::MappedFile b = std::move(a);
  EXPECT_EQ(b.bytes().data(), base);  // same mapping, no remap or copy
  EXPECT_EQ(b.bytes().size(), payload.size());
  EXPECT_TRUE(a.bytes().empty());  // NOLINT(bugprone-use-after-move): pinned empty

  b.reset();
  EXPECT_TRUE(b.bytes().empty());

  const auto buffer_backed = util::MappedFile::from_buffer(payload);
  ASSERT_EQ(buffer_backed.bytes().size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         buffer_backed.bytes().begin()));
}

TEST(FileSystem, MapReadOnlyRoutesThroughTheSeam) {
  const std::string dir = scratch_dir("map_seam");
  const std::string path = dir + "/image.bin";
  auto& local = util::local_filesystem();
  const auto payload = bytes_of("same bytes through every backend");
  ASSERT_TRUE(util::atomic_write_file(local, path, payload).ok());

  // The real filesystem's override (mmap) and the base-class default (read
  // into an owned buffer, reached here via the fault injector, which adds
  // no read-side faults) must produce identical bytes.
  util::MappedFile mapped;
  ASSERT_TRUE(local.map_read_only(path, mapped).ok());
  util::FaultInjectingFileSystem faulty{local};
  util::MappedFile buffered;
  ASSERT_TRUE(faulty.map_read_only(path, buffered).ok());
  ASSERT_EQ(mapped.bytes().size(), buffered.bytes().size());
  EXPECT_TRUE(std::equal(mapped.bytes().begin(), mapped.bytes().end(),
                         buffered.bytes().begin()));

  util::MappedFile missing;
  EXPECT_EQ(faulty.map_read_only(dir + "/absent", missing).code(),
            StatusCode::kNotFound);
}

// ---- Fault kinds: the exact writer-visible / on-disk split the harness
// relies on (see the table in util/file.hpp). ----

TEST(FaultInjection, ShortWriteReportsAnErrorAndAtomicWritePublishesNothing) {
  const std::string dir = scratch_dir("short_write");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kShortWrite, 5, 0});

  const Status status = util::atomic_write_file(fs, path, bytes_of("0123456789"));
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  // The protocol held: the failed write never reached the published name,
  // and the temp was cleaned up.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(FaultInjection, FailedSyncReportsAnErrorAndPublishesNothing) {
  const std::string dir = scratch_dir("failed_sync");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kFailedSync, 0, 0});

  EXPECT_EQ(util::atomic_write_file(fs, path, bytes_of("0123456789")).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(FaultInjection, BitFlipIsSilentAndChangesExactlyOneBit) {
  const std::string dir = scratch_dir("bit_flip");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kBitFlip, 3, 6});

  const auto payload = bytes_of("0123456789");
  // Silent: the writer sees full success...
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());
  EXPECT_TRUE(fs.fault_fired());

  // ...but the disk is lying, in exactly one bit.
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  ASSERT_EQ(read_back.size(), payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (i == 3) {
      EXPECT_EQ(read_back[i], payload[i] ^ std::byte{1U << 6}) << "byte " << i;
    } else {
      EXPECT_EQ(read_back[i], payload[i]) << "byte " << i;
    }
  }
}

TEST(FaultInjection, TruncateIsSilentAndDropsTheTail) {
  const std::string dir = scratch_dir("truncate");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kTruncate, 4, 0});

  // Silent: success reported, so the torn file gets renamed into place —
  // the torn-write case the snapshot layer must catch at restore time.
  ASSERT_TRUE(util::atomic_write_file(fs, path, bytes_of("0123456789")).ok());
  EXPECT_TRUE(fs.fault_fired());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, bytes_of("0123"));
}

TEST(FaultInjection, FaultBeyondTheStreamNeverFires) {
  const std::string dir = scratch_dir("no_fire");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kBitFlip, 1000, 0});

  const auto payload = bytes_of("short");
  ASSERT_TRUE(util::atomic_write_file(fs, path, payload).ok());
  EXPECT_FALSE(fs.fault_fired());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(path, read_back).ok());
  EXPECT_EQ(read_back, payload);
}

TEST(FaultInjection, FailNextRenameBlocksPublication) {
  const std::string dir = scratch_dir("rename");
  const std::string path = dir + "/data.bin";
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.fail_next_rename();

  EXPECT_EQ(util::atomic_write_file(fs, path, bytes_of("x")).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(fs.fault_fired());
  EXPECT_FALSE(std::filesystem::exists(path));

  // One-shot: the next write goes through.
  EXPECT_TRUE(util::atomic_write_file(fs, path, bytes_of("x")).ok());
}

TEST(FaultInjection, FaultArmsTheNextOpenOnly) {
  const std::string dir = scratch_dir("one_shot");
  util::FaultInjectingFileSystem fs{util::local_filesystem()};
  fs.arm(FileFault{FileFault::Kind::kShortWrite, 0, 0});

  EXPECT_FALSE(util::atomic_write_file(fs, dir + "/a", bytes_of("aaaa")).ok());
  // The armed fault was consumed by the first open.
  EXPECT_TRUE(util::atomic_write_file(fs, dir + "/b", bytes_of("bbbb")).ok());
  std::vector<std::byte> read_back;
  ASSERT_TRUE(fs.read_file(dir + "/b", read_back).ok());
  EXPECT_EQ(read_back, bytes_of("bbbb"));
}

}  // namespace
}  // namespace eyeball
