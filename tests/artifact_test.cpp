// Differential battery for the serving artifact (core/artifact.hpp): every
// answer an ArtifactView gives must EXACTLY equal the in-memory epoch it was
// written from — peers, grid values, contours, peaks, PoP mappings, stats —
// and the encoding must be canonical (byte-identical across finalize thread
// counts; split-invariant outside the window trail, which records batching
// history by design, mirroring DatasetStats::operator==).
//
// This suite also runs under the ASan+UBSan tree (tools/check.sh
// `artifact-faults` stage), where the full-accessor sweep doubles as the
// alignment/aliasing gate for the in-place mmap reads.
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact.hpp"
#include "core/snapshot.hpp"
#include "core/streaming_dataset.hpp"
#include "p2p/churn.hpp"
#include "pipeline_fixture.hpp"
#include "serve/service.hpp"
#include "util/file.hpp"
#include "util/status.hpp"

namespace eyeball {
namespace {

using eyeball::testing::shared_fixture;
using util::Status;
using util::StatusCode;

/// Longitudinal stream + the finalized epoch the artifact must reproduce.
struct ArtifactWorld {
  const testing::PipelineFixture& f = shared_fixture();
  core::PipelineConfig config = [] {
    core::PipelineConfig pipeline_config = shared_fixture().pipeline.config();
    pipeline_config.dataset.min_peers_per_as = 300;
    pipeline_config.threads = 2;
    return pipeline_config;
  }();
  core::EyeballPipeline pipeline{f.gaz, f.primary, f.secondary, f.mapper, config};
  p2p::LongitudinalResult churn = [this] {
    p2p::CrawlerConfig crawl_config;
    crawl_config.seed = 77;
    crawl_config.coverage = 0.05;
    p2p::ChurnConfig churn_config;
    churn_config.seed = 2009;
    churn_config.windows = 5;
    churn_config.lease_survival = 0.6;
    return p2p::longitudinal_crawl(f.eco, f.gaz, crawl_config, churn_config);
  }();
  std::uint64_t fingerprint =
      core::SnapshotCodec::config_fingerprint(config.dataset);
  /// The reference epoch: all windows streamed in, finalized at 2 threads,
  /// analyzed by the pipeline.
  core::TargetDataset dataset = [this] {
    auto builder = pipeline.streaming_builder();
    for (const auto& window : churn.windows) builder.ingest(window);
    return builder.finalize(2);
  }();
  std::vector<core::AsAnalysis> analyses =
      pipeline.refresh_analyses(dataset, {}, {});
};

const ArtifactWorld& world() {
  static const ArtifactWorld instance;
  return instance;
}

[[nodiscard]] std::vector<std::byte> encode_or_die(
    const core::TargetDataset& dataset, std::span<const core::AsAnalysis> analyses,
    std::uint64_t epoch, std::uint64_t fingerprint) {
  std::vector<std::byte> bytes;
  const Status status =
      core::ArtifactCodec::encode(dataset, analyses, epoch, fingerprint, bytes);
  EXPECT_TRUE(status.ok()) << status.message();
  return bytes;
}

[[nodiscard]] std::string scratch_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "eyeball_artifact_test_" + name;
  std::filesystem::remove(path);
  return path;
}

/// File offset of section 2 (the AS index), read from the section table:
/// everything from here to the tail is the batching-independent payload.
[[nodiscard]] std::size_t second_section_offset(std::span<const std::byte> bytes) {
  // header 56 B, table entries 40 B each, offset at entry byte 8.
  const std::size_t at = 56 + 40 + 8;
  std::uint64_t offset = 0;
  for (int i = 0; i < 8; ++i) {
    offset |= static_cast<std::uint64_t>(bytes[at + static_cast<std::size_t>(i)])
              << (8 * i);
  }
  return static_cast<std::size_t>(offset);
}

void expect_view_equals_epoch(const core::ArtifactView& view,
                              const core::TargetDataset& dataset,
                              std::span<const core::AsAnalysis> analyses,
                              const char* context) {
  ASSERT_EQ(view.as_count(), dataset.ases().size()) << context;

  // Stats: conditioning counters via operator==, the excluded fields
  // explicitly — the artifact restores the epoch's stats verbatim.
  EXPECT_EQ(view.stats(), dataset.stats()) << context;
  EXPECT_EQ(view.stats().rejected_samples, dataset.stats().rejected_samples) << context;
  ASSERT_EQ(view.stats().windows.size(), dataset.stats().windows.size()) << context;
  for (std::size_t w = 0; w < dataset.stats().windows.size(); ++w) {
    EXPECT_EQ(view.stats().windows[w], dataset.stats().windows[w])
        << context << " window " << w;
  }

  for (std::size_t i = 0; i < view.as_count(); ++i) {
    const auto as = view.as_at(i);
    const core::AsPeerSet& peers = dataset.ases()[i];
    const core::AsAnalysis& analysis = analyses[i];
    SCOPED_TRACE(std::string{context} + " as index " + std::to_string(i));

    EXPECT_EQ(as.asn(), peers.asn);
    EXPECT_EQ(as.level(), analysis.classification.level);
    EXPECT_EQ(as.continent(), analysis.classification.continent);
    EXPECT_EQ(as.dominant_share(), analysis.classification.dominant_share);
    EXPECT_EQ(as.dominant_region(), analysis.classification.dominant_region);

    ASSERT_EQ(as.peer_count(), peers.peers.size());
    for (std::size_t p = 0; p < peers.peers.size(); ++p) {
      const core::PeerRecord got = as.peer(p);
      const core::PeerRecord& want = peers.peers[p];
      EXPECT_EQ(got.ip, want.ip) << "peer " << p;
      EXPECT_EQ(got.app, want.app) << "peer " << p;
      EXPECT_EQ(got.reported_city, want.reported_city) << "peer " << p;
      EXPECT_EQ(got.location, want.location) << "peer " << p;
      EXPECT_EQ(got.geo_error_km, want.geo_error_km) << "peer " << p;
    }

    const kde::DensityGrid& grid = analysis.footprint.grid;
    EXPECT_EQ(as.grid_rows(), grid.rows());
    EXPECT_EQ(as.grid_cols(), grid.cols());
    EXPECT_EQ(as.grid_box().min_lat(), grid.box().min_lat());
    EXPECT_EQ(as.grid_box().max_lat(), grid.box().max_lat());
    EXPECT_EQ(as.grid_box().min_lon(), grid.box().min_lon());
    EXPECT_EQ(as.grid_box().max_lon(), grid.box().max_lon());
    EXPECT_EQ(as.grid_cell_km(), grid.cell_km());
    // Zero-suppressed grid: reconstruct the dense row-major values from the
    // runs + nonzero arena and compare bit-for-bit (0.0 vs -0.0 matters, so
    // compare the u64 bit patterns, not the doubles).
    {
      const std::span<const double> nonzero = as.grid_nonzero_values();
      ASSERT_EQ(nonzero.size(), as.grid_nonzero_count());
      std::vector<double> dense(grid.values().size(), 0.0);
      std::size_t cursor = 0;
      std::uint64_t prev_end = 0;
      for (std::size_t r = 0; r < as.grid_run_count(); ++r) {
        const core::GridRun run = as.grid_run(r);
        ASSERT_GE(run.count, 1u) << "run " << r;
        if (r > 0) {
          ASSERT_GT(run.start_cell, prev_end) << "run " << r;
        }
        ASSERT_LE(run.start_cell + run.count, dense.size()) << "run " << r;
        for (std::uint64_t c = 0; c < run.count; ++c) {
          dense[static_cast<std::size_t>(run.start_cell + c)] = nonzero[cursor++];
        }
        prev_end = run.start_cell + run.count;
      }
      ASSERT_EQ(cursor, nonzero.size());
      for (std::size_t c = 0; c < dense.size(); ++c) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(dense[c]),
                  std::bit_cast<std::uint64_t>(grid.values()[c]))
            << "grid cell " << c;
      }
    }

    const kde::Footprint& contour = analysis.footprint.contour;
    EXPECT_EQ(as.contour_level(), contour.level);
    ASSERT_EQ(as.partition_count(), contour.partitions.size());
    for (std::size_t p = 0; p < contour.partitions.size(); ++p) {
      const kde::FootprintPartition got = as.partition(p);
      const kde::FootprintPartition& want = contour.partitions[p];
      EXPECT_EQ(got.cell_count, want.cell_count) << "partition " << p;
      EXPECT_EQ(got.area_km2, want.area_km2) << "partition " << p;
      EXPECT_EQ(got.mass, want.mass) << "partition " << p;
      EXPECT_EQ(got.peak_density, want.peak_density) << "partition " << p;
      EXPECT_EQ(got.peak_location, want.peak_location) << "partition " << p;
      EXPECT_EQ(got.min_lat, want.min_lat) << "partition " << p;
      EXPECT_EQ(got.max_lat, want.max_lat) << "partition " << p;
      EXPECT_EQ(got.min_lon, want.min_lon) << "partition " << p;
      EXPECT_EQ(got.max_lon, want.max_lon) << "partition " << p;
    }
    ASSERT_EQ(as.boundary_count(), contour.boundary.size());
    for (std::size_t s = 0; s < contour.boundary.size(); ++s) {
      EXPECT_EQ(as.boundary(s).a, contour.boundary[s].a) << "segment " << s;
      EXPECT_EQ(as.boundary(s).b, contour.boundary[s].b) << "segment " << s;
    }

    ASSERT_EQ(as.peak_count(), analysis.footprint.peaks.size());
    for (std::size_t p = 0; p < analysis.footprint.peaks.size(); ++p) {
      const kde::Peak got = as.peak(p);
      const kde::Peak& want = analysis.footprint.peaks[p];
      EXPECT_EQ(got.location, want.location) << "peak " << p;
      EXPECT_EQ(got.density, want.density) << "peak " << p;
      EXPECT_EQ(got.score, want.score) << "peak " << p;
      EXPECT_EQ(got.row, want.row) << "peak " << p;
      EXPECT_EQ(got.col, want.col) << "peak " << p;
    }

    ASSERT_EQ(as.pop_count(), analysis.pops.pops.size());
    for (std::size_t p = 0; p < analysis.pops.pops.size(); ++p) {
      const core::PopEntry got = as.pop(p);
      const core::PopEntry& want = analysis.pops.pops[p];
      EXPECT_EQ(got.city, want.city) << "pop " << p;
      EXPECT_EQ(got.score, want.score) << "pop " << p;
      EXPECT_EQ(got.peak_density, want.peak_density) << "pop " << p;
      EXPECT_EQ(got.peak_location, want.peak_location) << "pop " << p;
    }
    EXPECT_EQ(as.unmapped_peaks(), analysis.pops.unmapped_peaks);
    EXPECT_EQ(as.sample_count(), analysis.footprint.sample_count);
    EXPECT_EQ(as.bandwidth_km(), analysis.footprint.bandwidth_km);
  }

  // find(): same answer as TargetDataset::find for every served ASN, and
  // the same miss behavior for an ASN outside the epoch.
  for (std::size_t i = 0; i < dataset.ases().size(); ++i) {
    const net::Asn asn = dataset.ases()[i].asn;
    const std::optional<std::size_t> found = view.find_index(asn);
    ASSERT_TRUE(found.has_value()) << context << " asn " << net::value_of(asn);
    const core::AsPeerSet* reference = dataset.find(asn);
    ASSERT_NE(reference, nullptr);
    EXPECT_EQ(*found, static_cast<std::size_t>(reference - dataset.ases().data()))
        << context << " asn " << net::value_of(asn);
  }
  EXPECT_FALSE(view.find(net::Asn{0xFFFFFFFFu}).has_value()) << context;
}

bool same_analysis(const core::AsAnalysis& a, const core::AsAnalysis& b) {
  if (a.asn != b.asn) return false;
  if (a.classification.level != b.classification.level ||
      a.classification.continent != b.classification.continent ||
      a.classification.dominant_region != b.classification.dominant_region ||
      a.classification.dominant_share != b.classification.dominant_share) {
    return false;
  }
  if (a.footprint.grid.rows() != b.footprint.grid.rows() ||
      a.footprint.grid.cols() != b.footprint.grid.cols() ||
      a.footprint.grid.cell_km() != b.footprint.grid.cell_km() ||
      a.footprint.grid.values() != b.footprint.grid.values()) {
    return false;
  }
  if (a.footprint.contour.level != b.footprint.contour.level ||
      a.footprint.contour.partitions.size() != b.footprint.contour.partitions.size() ||
      a.footprint.contour.boundary.size() != b.footprint.contour.boundary.size() ||
      a.footprint.peaks.size() != b.footprint.peaks.size() ||
      a.footprint.sample_count != b.footprint.sample_count ||
      a.footprint.bandwidth_km != b.footprint.bandwidth_km) {
    return false;
  }
  if (a.pops.unmapped_peaks != b.pops.unmapped_peaks ||
      a.pops.pops.size() != b.pops.pops.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.pops.pops.size(); ++i) {
    const auto& pa = a.pops.pops[i];
    const auto& pb = b.pops.pops[i];
    if (pa.city != pb.city || pa.score != pb.score ||
        pa.peak_density != pb.peak_density || pa.peak_location != pb.peak_location) {
      return false;
    }
  }
  return true;
}

// ---- Canonical encode ----

TEST(Artifact, EncodeIsByteIdenticalAcrossFinalizeThreadCounts) {
  const auto& w = world();
  const std::vector<std::byte> reference =
      encode_or_die(w.dataset, w.analyses, 7, w.fingerprint);
  ASSERT_FALSE(reference.empty());

  const std::size_t hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    auto builder = w.pipeline.streaming_builder();
    for (const auto& window : w.churn.windows) builder.ingest(window);
    const core::TargetDataset dataset = builder.finalize(threads);
    const std::vector<core::AsAnalysis> analyses =
        w.pipeline.refresh_analyses(dataset, {}, {});
    const std::vector<std::byte> bytes =
        encode_or_die(dataset, analyses, 7, w.fingerprint);
    EXPECT_EQ(bytes, reference) << "threads=" << threads;
  }
}

TEST(Artifact, EncodeOutsideWindowTrailIsSplitInvariant) {
  const auto& w = world();
  // Same samples, different batching: one ingest per window vs one ingest
  // of the concatenation.  The conditioning outcome is identical, so the
  // entire payload from the AS index on must be byte-identical; only the
  // stats section (which records the batching history on purpose — see
  // DatasetStats::windows) and the offsets/CRCs that depend on its size
  // may differ.
  std::vector<p2p::PeerSample> concatenated;
  for (const auto& window : w.churn.windows) {
    concatenated.insert(concatenated.end(), window.begin(), window.end());
  }
  auto builder = w.pipeline.streaming_builder();
  builder.ingest(concatenated);
  const core::TargetDataset dataset = builder.finalize(2);
  const std::vector<core::AsAnalysis> analyses =
      w.pipeline.refresh_analyses(dataset, {}, {});

  const std::vector<std::byte> split =
      encode_or_die(w.dataset, w.analyses, 7, w.fingerprint);
  const std::vector<std::byte> merged =
      encode_or_die(dataset, analyses, 7, w.fingerprint);

  const std::span<const std::byte> split_tail =
      std::span{split}.subspan(second_section_offset(split));
  const std::span<const std::byte> merged_tail =
      std::span{merged}.subspan(second_section_offset(merged));
  ASSERT_EQ(split_tail.size(), merged_tail.size());
  EXPECT_TRUE(std::equal(split_tail.begin(), split_tail.end(), merged_tail.begin()));
  EXPECT_EQ(dataset.stats(), w.dataset.stats());
}

TEST(Artifact, EncodeIsDeterministicCallToCall) {
  const auto& w = world();
  const auto first = encode_or_die(w.dataset, w.analyses, 3, w.fingerprint);
  const auto second = encode_or_die(w.dataset, w.analyses, 3, w.fingerprint);
  EXPECT_EQ(first, second);
}

// ---- Round trip through the real filesystem (mmap path) ----

TEST(Artifact, MmapRoundTripEqualsInMemoryEpochExactly) {
  const auto& w = world();
  const std::string path = scratch_path("round_trip");
  const Status written =
      core::ArtifactCodec::write(util::local_filesystem(), path, w.dataset,
                                 w.analyses, 42, w.fingerprint);
  ASSERT_TRUE(written.ok()) << written.message();

  core::ArtifactView view;
  const Status opened = core::ArtifactView::open(path, view);
  ASSERT_TRUE(opened.ok()) << opened.message();
  EXPECT_TRUE(view.valid());
  EXPECT_EQ(view.epoch(), 42u);
  EXPECT_EQ(view.config_fingerprint(), w.fingerprint);
  EXPECT_EQ(view.image_size(), std::filesystem::file_size(path));

  expect_view_equals_epoch(view, w.dataset, w.analyses, "mmap round trip");
}

TEST(Artifact, FromBytesRoundTripEqualsInMemoryEpochExactly) {
  const auto& w = world();
  std::vector<std::byte> bytes = encode_or_die(w.dataset, w.analyses, 1, w.fingerprint);
  core::ArtifactView view;
  const Status opened = core::ArtifactView::from_bytes(std::move(bytes), view);
  ASSERT_TRUE(opened.ok()) << opened.message();
  expect_view_equals_epoch(view, w.dataset, w.analyses, "owned-bytes round trip");
}

TEST(Artifact, MaterializeReproducesTheExactAnalyses) {
  const auto& w = world();
  std::vector<std::byte> bytes = encode_or_die(w.dataset, w.analyses, 1, w.fingerprint);
  core::ArtifactView view;
  ASSERT_TRUE(core::ArtifactView::from_bytes(std::move(bytes), view).ok());
  for (std::size_t i = 0; i < view.as_count(); ++i) {
    const core::AsAnalysis thawed = view.as_at(i).materialize();
    EXPECT_TRUE(same_analysis(thawed, w.analyses[i])) << "as index " << i;
    // Boundary segments and peaks field-by-field (same_analysis checks
    // counts; the differential sweep above checks the view accessors — this
    // pins the materialized copies too).
    for (std::size_t s = 0; s < thawed.footprint.contour.boundary.size(); ++s) {
      EXPECT_EQ(thawed.footprint.contour.boundary[s].a,
                w.analyses[i].footprint.contour.boundary[s].a);
      EXPECT_EQ(thawed.footprint.contour.boundary[s].b,
                w.analyses[i].footprint.contour.boundary[s].b);
    }
    const core::AsPeerSet peers = view.as_at(i).materialize_peers();
    EXPECT_EQ(peers.asn, w.dataset.ases()[i].asn);
    ASSERT_EQ(peers.peers.size(), w.dataset.ases()[i].peers.size());
    for (std::size_t p = 0; p < peers.peers.size(); ++p) {
      const auto& got = peers.peers[p];
      const auto& want = w.dataset.ases()[i].peers[p];
      EXPECT_TRUE(got.ip == want.ip && got.app == want.app &&
                  got.location == want.location &&
                  got.geo_error_km == want.geo_error_km &&
                  got.reported_city == want.reported_city)
          << "as " << i << " peer " << p;
    }
  }
}

TEST(Artifact, EmptyEpochRoundTrips) {
  const auto& w = world();
  // A builder that never ingested finalizes to an empty dataset.
  auto builder = w.pipeline.streaming_builder();
  const core::TargetDataset empty = builder.finalize(1);
  ASSERT_EQ(empty.ases().size(), 0u);
  std::vector<std::byte> bytes = encode_or_die(empty, {}, 9, w.fingerprint);
  core::ArtifactView view;
  const Status opened = core::ArtifactView::from_bytes(std::move(bytes), view);
  ASSERT_TRUE(opened.ok()) << opened.message();
  EXPECT_EQ(view.as_count(), 0u);
  EXPECT_EQ(view.epoch(), 9u);
  EXPECT_FALSE(view.find(net::Asn{1}).has_value());
}

TEST(Artifact, EncodeRefusesMismatchedInputs) {
  const auto& w = world();
  std::vector<std::byte> bytes;
  // analyses not parallel to the dataset.
  std::span<const core::AsAnalysis> short_span{w.analyses.data(),
                                               w.analyses.size() - 1};
  EXPECT_EQ(core::ArtifactCodec::encode(w.dataset, short_span, 1, 0, bytes).code(),
            StatusCode::kInvalidArgument);
  // compress_cold without zstd in the build refuses typed instead of
  // silently writing raw (when zstd IS available, it must succeed).
  core::ArtifactCodec::EncodeOptions options;
  options.compress_cold = true;
  const Status compressed =
      core::ArtifactCodec::encode(w.dataset, w.analyses, 1, 0, bytes, options);
  if (core::ArtifactCodec::zstd_supported()) {
    EXPECT_TRUE(compressed.ok()) << compressed.message();
    core::ArtifactView view;
    const Status opened = core::ArtifactView::from_bytes(std::move(bytes), view);
    ASSERT_TRUE(opened.ok()) << opened.message();
    expect_view_equals_epoch(view, w.dataset, w.analyses, "zstd round trip");
  } else {
    EXPECT_EQ(compressed.code(), StatusCode::kInvalidArgument);
  }
}

// ---- Service integration: publish-time emission + zero-copy restore ----

TEST(Artifact, ServiceEmitsArtifactAndRestoresIdenticalAnswers) {
  const auto& w = world();
  const std::string path = scratch_path("service");

  serve::ServiceConfig writer_config;
  writer_config.threads = 2;
  writer_config.artifact_path = path;
  serve::EyeballService writer{w.pipeline, writer_config};
  for (const auto& window : w.churn.windows) writer.ingest(window);
  const std::shared_ptr<const serve::ServingSnapshot> published = writer.publish();
  ASSERT_NE(published, nullptr);
  ASSERT_TRUE(writer.last_artifact_status().ok())
      << writer.last_artifact_status().message();

  // A cold replica restores the serving surface straight from the artifact.
  serve::ServiceConfig reader_config;
  reader_config.threads = 2;
  serve::EyeballService replica{w.pipeline, reader_config};
  const Status restored = replica.restore_from_artifact(path);
  ASSERT_TRUE(restored.ok()) << restored.message();

  const std::shared_ptr<const serve::ServingSnapshot> snap = replica.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_TRUE(snap->artifact_backed());
  EXPECT_EQ(snap->epoch(), 1u);
  ASSERT_EQ(snap->as_count(), published->as_count());

  // Stats parity through the kind-agnostic surface.
  const auto stats = replica.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->stats, published->stats());
  EXPECT_EQ(stats->stats.windows.size(), published->stats().windows.size());

  // Every served ASN answers identically; repeated queries return the SAME
  // thawed object (stable addresses, one materialization per AS).
  for (std::size_t i = 0; i < published->as_count(); ++i) {
    const net::Asn asn = published->asn_at(i);
    EXPECT_EQ(snap->asn_at(i), asn);
    const serve::AnalysisRef first = replica.query(asn);
    ASSERT_TRUE(first) << "asn " << net::value_of(asn);
    const serve::AnalysisRef again = replica.query(asn);
    EXPECT_EQ(first.analysis, again.analysis);
    EXPECT_TRUE(same_analysis(*first.analysis, *published->analysis_at(i)))
        << "asn " << net::value_of(asn);
  }
  EXPECT_FALSE(replica.query(net::Asn{0xFFFFFFFFu}));

  // Batch queries pin the artifact-backed epoch like any other.
  std::vector<net::Asn> probe;
  for (std::size_t i = 0; i < snap->as_count() && probe.size() < 8; ++i) {
    probe.push_back(snap->asn_at(i));
  }
  const serve::BatchResult batch = replica.query_batch(probe);
  EXPECT_EQ(batch.snapshot, snap);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(batch.analyses[i], snap->find(probe[i]));
  }

  // The replica can resume WRITING after an artifact restore: the next
  // publish re-analyzes from its own builder and swings a normal in-memory
  // epoch above the artifact-backed one.
  replica.ingest(w.churn.windows[0]);
  const auto next = replica.publish();
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->epoch(), 2u);
  EXPECT_FALSE(next->artifact_backed());
  // The old artifact-backed epoch stays pinned and answering for holders.
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_NE(snap->find(probe[0]), nullptr);
}

TEST(Artifact, ServiceRefusesForeignConfigArtifact) {
  const auto& w = world();
  const std::string path = scratch_path("foreign");
  // Same bytes, wrong fingerprint: must be refused as kConfigMismatch, and
  // the service must keep serving what it had.
  const Status written =
      core::ArtifactCodec::write(util::local_filesystem(), path, w.dataset,
                                 w.analyses, 1, w.fingerprint + 1);
  ASSERT_TRUE(written.ok()) << written.message();

  serve::EyeballService service{w.pipeline};
  const Status refused = service.restore_from_artifact(path);
  EXPECT_EQ(refused.code(), StatusCode::kConfigMismatch);
  EXPECT_EQ(service.snapshot(), nullptr);

  const Status missing = service.restore_from_artifact(path + ".does-not-exist");
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_EQ(service.snapshot(), nullptr);
}

}  // namespace
}  // namespace eyeball
